//! Tier-1 EXPLAIN ANALYZE battery: one representative query per
//! EXPERIMENTS.md family (figs 7–10 plus the plain scan sources), each run
//! under metrics collection on a small fixed graph. Every family must
//! produce an annotated plan whose operators were actually pulled and whose
//! graph counters are populated — a zeroed or missing counter means the
//! instrumentation regressed even if results are still correct.

use grfusion::{Database, ParallelConfig, QueryMetrics, Value};

/// Weighted directed diamond-with-tail plus a back edge so `Length = 3`
/// cycles (the fig-10 triangle shape) exist: 1->2, 1->3, 2->4, 3->4,
/// 4->5, 5->6, 4->1.
fn fixture_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE v (id INTEGER PRIMARY KEY)").unwrap();
    db.execute("CREATE TABLE e (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, w DOUBLE)")
        .unwrap();
    let vrows: Vec<Vec<Value>> = (1..=6i64).map(|i| vec![Value::Integer(i)]).collect();
    db.bulk_insert("v", vrows).unwrap();
    let edges = [
        (10i64, 1i64, 2i64),
        (11, 1, 3),
        (12, 2, 4),
        (13, 3, 4),
        (14, 4, 5),
        (15, 5, 6),
        (16, 4, 1),
    ];
    let erows: Vec<Vec<Value>> = edges
        .iter()
        .map(|(id, a, b)| {
            vec![
                Value::Integer(*id),
                Value::Integer(*a),
                Value::Integer(*b),
                Value::Double(1.0),
            ]
        })
        .collect();
    db.bulk_insert("e", erows).unwrap();
    db.execute(
        "CREATE DIRECTED GRAPH VIEW g VERTEXES(ID = id) FROM v \
         EDGES(ID = id, FROM = a, TO = b, w = w) FROM e",
    )
    .unwrap();
    db
}

/// Run under metrics collection and apply the shared non-zero checks:
/// every plan node pulled and timed, and (when `graph` is set) non-zero
/// traversal counters somewhere in the tree.
fn collect(db: &Database, family: &str, sql: &str, expect_graph_work: bool) -> QueryMetrics {
    let rs = db
        .execute_with_metrics(sql)
        .unwrap_or_else(|e| panic!("{family}: {e}"));
    let m = rs.metrics.unwrap_or_else(|| panic!("{family}: metrics missing"));
    assert!(!m.nodes.is_empty(), "{family}: empty plan");
    for n in &m.nodes {
        assert!(n.next_calls > 0, "{family}: node {} never pulled", n.label);
    }
    if expect_graph_work {
        let g = m.graph_totals();
        assert!(
            g.vertices_visited > 0,
            "{family}: zero vertices visited\n{}",
            m.render()
        );
    }
    // The same query through the SQL front-end: EXPLAIN ANALYZE must print
    // an annotated tree, one plan line per metrics node plus worker lines.
    let rs = db.execute(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
    let text: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    // When epoch publication is on (GRFUSION_EPOCHS=1) the annotated tree is
    // prefixed with one `epoch=N` line identifying the pinned snapshot.
    let epoch_lines = text.iter().filter(|l| l.starts_with("epoch=")).count();
    assert!(epoch_lines <= 1, "{family}: repeated epoch annotation");
    assert_eq!(
        text.len(),
        m.nodes.len() + m.workers.len() + epoch_lines,
        "{family}: EXPLAIN ANALYZE line count"
    );
    assert!(
        text.iter().any(|l| l.contains("rows=")),
        "{family}: plan not annotated: {text:?}"
    );
    m
}

/// Fig 7 family — unconstrained s→t reachability (planner fast path).
#[test]
fn fig7_reachability_counters() {
    let db = fixture_db();
    let m = collect(
        &db,
        "fig7",
        "SELECT PS.Length FROM g.Paths PS \
         WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 6 \
         AND PS.Length <= 10 LIMIT 1",
        true,
    );
    let scan = m.node("PathScan").expect("no PathScan node");
    let g = scan.graph.expect("reachability scan lost its counters");
    assert!(g.edges_expanded > 0, "targeted BFS expanded no edges");
}

/// Fig 8 family — constrained reachability: the pushed edge predicate must
/// show up as tuple-pointer dereferences (§6.2's per-hop attribute cost).
#[test]
fn fig8_constrained_counts_derefs() {
    let db = fixture_db();
    let m = collect(
        &db,
        "fig8",
        "SELECT PS.PathString FROM g.Paths PS \
         WHERE PS.StartVertex.Id = 1 AND PS.Length >= 1 AND PS.Length <= 3 \
         AND PS.Edges[0..*].w > 0.5",
        true,
    );
    let g = m.graph_totals();
    assert!(g.tuple_derefs > 0, "pushed predicate never dereferenced a tuple");
}

/// Fig 9 family — shortest paths via HINT(SHORTESTPATH(w)).
#[test]
fn fig9_shortest_path_counters() {
    let db = fixture_db();
    let m = collect(
        &db,
        "fig9",
        "SELECT PS.PathString, PS.Cost FROM g.Paths PS HINT(SHORTESTPATH(w)) \
         WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 6 LIMIT 1",
        true,
    );
    let g = m.graph_totals();
    assert!(g.edges_expanded > 0, "Dijkstra examined no edges");
}

/// Fig 10 family — triangle counting: unanchored Length = 3 cycles.
#[test]
fn fig10_triangle_counters() {
    let db = fixture_db();
    let rs = db
        .execute_with_metrics(
            "SELECT COUNT(PS) FROM g.Paths PS \
             WHERE PS.Length = 3 AND PS.StartVertex.Id = PS.EndVertex.Id",
        )
        .unwrap();
    // 2->4->1->2, 4->1->2->4 etc.: the 2-4-1 cycle seen from each seed that
    // survives the simple-path window.
    assert!(matches!(rs.rows[0][0], Value::Integer(n) if n > 0));
    let m = rs.metrics.unwrap();
    let g = m.graph_totals();
    assert!(g.vertices_visited > 0 && g.edges_expanded > 0);
    let agg = m.node("Aggregate").expect("no Aggregate node");
    assert_eq!(agg.rows, 1);
}

/// Plain scan sources — vertex and edge scans over the graph view.
#[test]
fn scan_sources_are_metered() {
    let db = fixture_db();
    let m = collect(
        &db,
        "vertex-scan",
        "SELECT VS.Id FROM g.Vertexes VS WHERE VS.fanOut >= 1",
        false,
    );
    let scan = m.node("VertexScan").expect("no VertexScan node");
    assert!(scan.rows > 0 && scan.time_ns > 0);
    let m = collect(
        &db,
        "edge-scan",
        "SELECT ES.Id FROM g.Edges ES",
        false,
    );
    let scan = m.node("EdgeScan").expect("no EdgeScan node");
    assert_eq!(scan.rows, 7);
}

/// The workers = 4 battery: a multi-morsel unanchored scan must surface
/// per-worker morsel/path/traversal counters, and their sums must agree
/// with the result set.
#[test]
fn parallel_scan_reports_worker_metrics() {
    let db = fixture_db();
    let mut cfg = db.config();
    cfg.parallel = ParallelConfig {
        workers: 4,
        morsel_size: 2,
    };
    db.set_config(cfg);
    let rs = db
        .execute_with_metrics(
            "SELECT PS.PathString FROM g.Paths PS \
             WHERE PS.Length >= 1 AND PS.Length <= 3",
        )
        .unwrap();
    let m = rs.metrics.unwrap();
    assert!(!m.workers.is_empty(), "no worker metrics from parallel scan");
    assert_eq!(m.workers.iter().map(|w| w.morsels).sum::<u64>(), 3);
    assert_eq!(
        m.workers.iter().map(|w| w.paths).sum::<u64>(),
        rs.rows.len() as u64
    );
    assert!(m.workers.iter().map(|w| w.counters.edges_expanded).sum::<u64>() > 0);
    // Worker lines make it into the rendered plan too.
    assert!(m.render().contains("worker"), "{}", m.render());
}

/// Metrics off (the default execute path) must leave `metrics` unset — the
/// counters are not collected, not just not rendered.
#[test]
fn metrics_absent_when_not_requested() {
    let db = fixture_db();
    let rs = db
        .execute("SELECT PS.Length FROM g.Paths PS WHERE PS.Length = 1")
        .unwrap();
    assert!(rs.metrics.is_none());
}
