//! CI battery for the morsel-driven parallel PathScan: every query shape
//! the engine supports runs down the parallel path (workers = 4, the
//! config equivalent of `GRFUSION_WORKERS=4`) on every plain
//! `cargo test -q`, and each answer is checked against serial execution.
//!
//! The property tests (`property.rs`) cover random graphs; this battery
//! pins a deterministic mid-size follower graph so failures reproduce
//! immediately, and additionally covers the shapes proptest skips
//! (prepared statements, aggregation above the scan, DML maintenance
//! between runs, the env-var knob itself).

use grfusion::{Database, EngineConfig, ParallelConfig, Value};

/// Deterministic follower-style graph: 120 vertexes, each following
/// `(v*7+k) % 120` for k in 1..=3, plus a weighted chain for SP queries.
fn follower_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE v (id INTEGER PRIMARY KEY)").unwrap();
    db.execute("CREATE TABLE e (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, w DOUBLE)")
        .unwrap();
    let n = 120i64;
    let vrows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Integer(i)]).collect();
    db.bulk_insert("v", vrows).unwrap();
    let mut erows = Vec::new();
    let mut eid = 0i64;
    for v in 0..n {
        for k in 1..=3i64 {
            let t = (v * 7 + k) % n;
            erows.push(vec![
                Value::Integer(eid),
                Value::Integer(v),
                Value::Integer(t),
                Value::Double(1.0 + (eid % 5) as f64),
            ]);
            eid += 1;
        }
    }
    db.bulk_insert("e", erows).unwrap();
    db.execute(
        "CREATE DIRECTED GRAPH VIEW g VERTEXES(ID = id) FROM v \
         EDGES(ID = id, FROM = a, TO = b, w = w) FROM e",
    )
    .unwrap();
    db
}

fn set_workers(db: &Database, workers: usize) {
    let mut cfg = db.config();
    cfg.parallel = ParallelConfig {
        workers,
        morsel_size: 16,
    };
    db.set_config(cfg);
}

fn rows_exact(db: &Database, sql: &str) -> Vec<Vec<String>> {
    db.execute(sql)
        .unwrap()
        .rows
        .iter()
        .map(|r| r.iter().map(|v| v.to_string()).collect())
        .collect()
}

/// Run `sql` serially and with 4 workers; rows must match exactly.
fn assert_parallel_equals_serial(db: &Database, sql: &str) {
    set_workers(db, 1);
    let serial = rows_exact(db, sql);
    set_workers(db, 4);
    let parallel = rows_exact(db, sql);
    assert_eq!(parallel, serial, "parallel output diverged for: {sql}");
    assert!(
        !serial.is_empty(),
        "battery query returned no rows (not exercising anything): {sql}"
    );
}

#[test]
fn enumeration_battery_runs_parallel() {
    let db = follower_db();
    for sql in [
        // Multi-seed enumeration, every physical operator.
        "SELECT PS.PathString FROM g.Paths PS HINT(DFS) WHERE PS.Length >= 1 AND PS.Length <= 2",
        "SELECT PS.PathString FROM g.Paths PS HINT(BFS) WHERE PS.Length >= 1 AND PS.Length <= 2",
        "SELECT PS.PathString FROM g.Paths PS WHERE PS.Length = 2",
        // Anchored scans.
        "SELECT PS.PathString FROM g.Paths PS HINT(DFS) \
         WHERE PS.StartVertex.Id = 0 AND PS.Length >= 1 AND PS.Length <= 4",
        "SELECT PS.PathString FROM g.Paths PS HINT(BFS) \
         WHERE PS.StartVertex.Id = 0 AND PS.Length >= 1 AND PS.Length <= 4",
        // Pushed predicates (bind per morsel).
        "SELECT PS.PathString FROM g.Paths PS HINT(DFS) \
         WHERE PS.Edges[0..*].w < 4.0 AND PS.Length >= 1 AND PS.Length <= 3",
        // Pushed running aggregate (prefix checks in the workers).
        "SELECT PS.PathString FROM g.Paths PS HINT(DFS) \
         WHERE PS.StartVertex.Id = 0 AND SUM(PS.Edges.w) < 9.0 \
         AND PS.Length >= 1 AND PS.Length <= 4",
        // Bounded shortest path (enumerative SPScan, single morsel).
        "SELECT PS.PathString, PS.Cost FROM g.Paths PS HINT(SHORTESTPATH(w)) \
         WHERE PS.StartVertex.Id = 0 AND PS.EndVertex.Id = 60 AND PS.Length <= 5 LIMIT 1",
    ] {
        assert_parallel_equals_serial(&db, sql);
    }
}

#[test]
fn relational_composition_runs_parallel() {
    let db = follower_db();
    for sql in [
        // Aggregation above the parallel scan.
        "SELECT COUNT(P) FROM g.Paths P WHERE P.Length >= 1 AND P.Length <= 2",
        // Projection of path components.
        "SELECT PS.StartVertex.Id, PS.EndVertex.Id FROM g.Paths PS \
         WHERE PS.Length = 2 AND PS.StartVertex.Id = 5",
        // ORDER BY above the scan.
        "SELECT PS.Length FROM g.Paths PS WHERE PS.StartVertex.Id = 0 \
         AND PS.Length >= 1 AND PS.Length <= 3 ORDER BY PS.Length",
    ] {
        assert_parallel_equals_serial(&db, sql);
    }
}

#[test]
fn prepared_statements_run_parallel() {
    let db = follower_db();
    let q = db
        .prepare(
            "SELECT PS.PathString FROM g.Paths PS HINT(DFS) \
             WHERE PS.StartVertex.Id = ? AND PS.Length >= 1 AND PS.Length <= 3",
        )
        .unwrap();
    for start in [0i64, 17, 63] {
        set_workers(&db, 1);
        let serial = db
            .execute_prepared(&q, &[Value::Integer(start)])
            .unwrap()
            .rows;
        set_workers(&db, 4);
        let parallel = db
            .execute_prepared(&q, &[Value::Integer(start)])
            .unwrap()
            .rows;
        assert_eq!(parallel, serial, "prepared start={start}");
        assert!(!serial.is_empty());
    }
}

#[test]
fn maintenance_then_parallel_scan_sees_updates() {
    let db = follower_db();
    set_workers(&db, 4);
    let before = rows_exact(
        &db,
        "SELECT COUNT(P) FROM g.Paths P WHERE P.StartVertex.Id = 0 AND P.Length = 1",
    );
    db.execute("INSERT INTO v VALUES (500)").unwrap();
    db.execute("INSERT INTO e VALUES (900, 0, 500, 1.0)").unwrap();
    let after = rows_exact(
        &db,
        "SELECT COUNT(P) FROM g.Paths P WHERE P.StartVertex.Id = 0 AND P.Length = 1",
    );
    let parse = |r: &Vec<Vec<String>>| r[0][0].parse::<i64>().unwrap();
    assert_eq!(parse(&after), parse(&before) + 1);
    // Deleting the edge restores the old answer (topology maintenance and
    // the parallel scan agree through DML churn).
    db.execute("DELETE FROM e WHERE id = 900").unwrap();
    assert_eq!(
        rows_exact(
            &db,
            "SELECT COUNT(P) FROM g.Paths P WHERE P.StartVertex.Id = 0 AND P.Length = 1",
        ),
        before
    );
}

#[test]
fn env_knob_reaches_engine_config() {
    // The CI hook: GRFUSION_WORKERS must flow into EngineConfig::default()
    // (and only there — ParallelConfig::default() stays serial so embedded
    // uses are unaffected).
    std::env::set_var("GRFUSION_WORKERS", "4");
    std::env::set_var("GRFUSION_MORSEL_SIZE", "16");
    let cfg = EngineConfig::default();
    std::env::remove_var("GRFUSION_WORKERS");
    std::env::remove_var("GRFUSION_MORSEL_SIZE");
    assert_eq!(cfg.parallel.workers, 4);
    assert_eq!(cfg.parallel.morsel_size, 16);
    assert_eq!(ParallelConfig::default().workers, 1);

    // A database built from that config answers identically to serial.
    let db = follower_db();
    let sql = "SELECT PS.PathString FROM g.Paths PS WHERE PS.Length = 2";
    set_workers(&db, 1);
    let serial = rows_exact(&db, sql);
    db.set_config(cfg);
    assert_eq!(rows_exact(&db, sql), serial);
}
