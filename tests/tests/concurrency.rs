//! Concurrency: `Database` is `Send + Sync` with serial execution inside
//! (the H-Store model). Concurrent callers must never deadlock, corrupt
//! state, or observe torn graph views.

use std::sync::Arc;

use grfusion::{CsrConfig, Database, EngineConfig, EpochConfig, ExecLimits, ParallelConfig, Value};

fn seeded_db() -> Arc<Database> {
    seeded_db_with(Database::new())
}

/// `seeded_db`, but with epoch publication on (sealed CSR, serial).
fn epoch_db() -> Arc<Database> {
    seeded_db_with(Database::with_config(EngineConfig {
        csr: CsrConfig::sealed(),
        epochs: EpochConfig::enabled(),
        ..Default::default()
    }))
}

fn seeded_db_with(db: Database) -> Arc<Database> {
    db.execute("CREATE TABLE v (id INTEGER PRIMARY KEY)").unwrap();
    db.execute("CREATE TABLE e (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, w DOUBLE)")
        .unwrap();
    let vrows: Vec<Vec<Value>> = (0..200i64).map(|i| vec![Value::Integer(i)]).collect();
    db.bulk_insert("v", vrows).unwrap();
    let erows: Vec<Vec<Value>> = (0..199i64)
        .map(|i| {
            vec![
                Value::Integer(i),
                Value::Integer(i),
                Value::Integer(i + 1),
                Value::Double(1.0),
            ]
        })
        .collect();
    db.bulk_insert("e", erows).unwrap();
    db.execute(
        "CREATE DIRECTED GRAPH VIEW g VERTEXES(ID = id) FROM v \
         EDGES(ID = id, FROM = a, TO = b, w = w) FROM e",
    )
    .unwrap();
    Arc::new(db)
}

#[test]
fn concurrent_readers_see_consistent_answers() {
    let db = seeded_db();
    let mut handles = Vec::new();
    for t in 0..8 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..50 {
                let s = (t * 7 + i) % 150;
                let rs = db
                    .execute(&format!(
                        "SELECT PS.Length FROM g.Paths PS WHERE PS.StartVertex.Id = {s} \
                         AND PS.EndVertex.Id = {} AND PS.Length <= 30 LIMIT 1",
                        s + 20
                    ))
                    .unwrap();
                // chain graph: s+20 is exactly 20 hops downstream
                assert_eq!(rs.rows.len(), 1, "thread {t} query {i}");
                assert_eq!(rs.rows[0][0], Value::Integer(20));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_writers_and_readers_serialize() {
    let db = seeded_db();
    let mut handles = Vec::new();
    // Writers append fresh chain segments; readers traverse concurrently.
    for w in 0..4 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..25 {
                let vid = 1000 + w * 100 + i;
                db.execute(&format!("INSERT INTO v VALUES ({vid})")).unwrap();
                db.execute(&format!(
                    "INSERT INTO e VALUES ({}, 0, {vid}, 1.0)",
                    1000 + w * 100 + i
                ))
                .unwrap();
            }
        }));
    }
    for _ in 0..4 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..50 {
                let rs = db
                    .execute(
                        "SELECT COUNT(P) FROM g.Paths P WHERE P.StartVertex.Id = 0 \
                         AND P.Length = 1",
                    )
                    .unwrap();
                // Vertex 0 starts with exactly 1 out-edge; writers add more.
                let n = rs.scalar().unwrap().as_integer().unwrap();
                assert!((1..=101).contains(&n), "count {n}");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Final state: 100 writer edges + the original one.
    let s = db.graph_stats("g").unwrap();
    assert_eq!(s.vertex_count, 300);
    assert_eq!(s.edge_count, 299);
}

/// Many caller threads, each running morsel-parallel scans against the
/// same shared `GraphTopology`: worker threads inside worker threads must
/// neither deadlock nor diverge from the serial answer.
#[test]
fn parallel_scans_hammer_shared_topology() {
    let db = seeded_db();
    let mut cfg = db.config();
    cfg.parallel = ParallelConfig {
        workers: 4,
        morsel_size: 16,
    };
    db.set_config(cfg);
    // Reference answer computed serially (on a fresh DB so the parallel
    // config above stays in force for the hammering threads).
    let serial_db = seeded_db();
    let sql = "SELECT COUNT(P) FROM g.Paths P WHERE P.Length >= 1 AND P.Length <= 3";
    let expected = serial_db
        .execute(sql)
        .unwrap()
        .scalar()
        .unwrap()
        .as_integer()
        .unwrap();

    let mut handles = Vec::new();
    for t in 0..6 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..20 {
                let n = db
                    .execute(sql)
                    .unwrap()
                    .scalar()
                    .unwrap()
                    .as_integer()
                    .unwrap();
                assert_eq!(n, expected, "thread {t} iteration {i}");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

/// A row-budget violation inside a worker thread must surface as one clean
/// `Err` — same variant and message as serial execution — with no panic,
/// deadlock, or poisoned state; the database stays usable afterwards.
#[test]
fn worker_budget_error_propagates_cleanly() {
    let limited = |workers| EngineConfig {
        limits: ExecLimits {
            max_intermediate_rows: Some(50),
        },
        parallel: ParallelConfig {
            workers,
            morsel_size: 8,
        },
        ..EngineConfig::default()
    };
    let sql = "SELECT PS.PathString FROM g.Paths PS WHERE PS.Length >= 1 AND PS.Length <= 4";

    let db = seeded_db();
    db.set_config(limited(1));
    let serial_err = db.execute(sql).expect_err("serial run must exceed budget");

    db.set_config(limited(4));
    let parallel_err = db.execute(sql).expect_err("parallel run must exceed budget");
    assert_eq!(parallel_err, serial_err);
    assert!(parallel_err.to_string().contains("resource exhausted"));

    // The engine is not poisoned: a cheap query still works in parallel mode.
    let rs = db
        .execute("SELECT COUNT(P) FROM g.Paths P WHERE P.StartVertex.Id = 0 AND P.Length = 1")
        .unwrap();
    assert_eq!(rs.scalar().unwrap().as_integer().unwrap(), 1);
}

/// An evaluation error raised mid-traversal inside a worker (negative edge
/// cost during shortest-path enumeration) propagates as the same clean
/// `Err` the serial scan produces.
#[test]
fn worker_traversal_error_matches_serial() {
    let db = seeded_db();
    // Poison one edge weight so bounded shortest-path enumeration errors.
    db.execute("INSERT INTO v VALUES (900)").unwrap();
    db.execute("INSERT INTO e VALUES (900, 0, 900, -3.0)").unwrap();
    // Bounded => the enumerative SPScan (no Dijkstra fast path).
    let sql = "SELECT PS.Cost FROM g.Paths PS HINT(SHORTESTPATH(w)) \
               WHERE PS.StartVertex.Id = 0 AND PS.EndVertex.Id = 5 AND PS.Length <= 6";

    let serial_err = db.execute(sql).expect_err("negative cost must error");

    let mut cfg = db.config();
    cfg.parallel = ParallelConfig {
        workers: 4,
        morsel_size: 8,
    };
    db.set_config(cfg);
    let parallel_err = db.execute(sql).expect_err("negative cost must error in parallel");
    assert_eq!(parallel_err, serial_err);
}

#[test]
fn prepared_queries_shared_across_threads() {
    let db = seeded_db();
    let q = Arc::new(
        db.prepare(
            "SELECT PS.Length FROM g.Paths PS WHERE PS.StartVertex.Id = ? \
             AND PS.EndVertex.Id = ? AND PS.Length <= 30 LIMIT 1",
        )
        .unwrap(),
    );
    let mut handles = Vec::new();
    for t in 0..6 {
        let db = db.clone();
        let q = q.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..40 {
                let s = (t * 11 + i) % 150;
                let rs = db
                    .execute_prepared(&q, &[Value::Integer(s), Value::Integer(s + 10)])
                    .unwrap();
                assert_eq!(rs.rows[0][0], Value::Integer(10));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

// ---------------------------------------------------------------------------
// Epoch lifecycle: pin → survive re-seals → reclaim
// ---------------------------------------------------------------------------

/// Relink `count` chain edges to fresh distinct targets — enough overlaid
/// vertexes to push the view past `reseal_fraction` and force a re-seal.
/// Returns how many automatic re-seals fired (observed as the overlay
/// shrinking across a statement).
fn relink_round(db: &Database, round: i64, count: i64) -> usize {
    let mut reseals = 0;
    let mut overlay = db.graph_stats("g").unwrap().overlay_bytes;
    for i in 0..count {
        db.execute(&format!(
            "UPDATE e SET b = {} WHERE id = {i}",
            (i + 100 + round * 13) % 200
        ))
        .unwrap();
        let now = db.graph_stats("g").unwrap().overlay_bytes;
        if now < overlay {
            reseals += 1;
        }
        overlay = now;
    }
    reseals
}

/// A held pin keeps its epoch alive through ≥3 writer re-seals; dropping
/// the last pin returns retained bytes to the zero baseline.
#[test]
fn reader_pin_survives_reseals_until_dropped() {
    let db = epoch_db();
    assert_eq!(db.epoch_stats(), (1, 0), "baseline: current epoch only");

    let snap = db.pin_snapshot().expect("epoch published after setup");
    let pinned = snap.number();
    let dump0 = snap.state_dump();

    // Three rounds of 60 distinct relinks: each round overlays well over
    // 25% of the 200 vertexes, so each triggers at least one re-seal.
    for round in 0..3 {
        let reseals = relink_round(&db, round, 60);
        assert!(reseals >= 1, "round {round}: no automatic re-seal fired");
        let stats = db.graph_stats("g").unwrap();
        assert!(stats.sealed_bytes > 0, "round {round}: lost the CSR seal");
    }
    assert!(
        db.current_epoch().unwrap() > pinned,
        "writer published past the pin"
    );

    // Exactly two epochs alive: the pin and the current one. The pinned
    // snapshot still reads as the pre-DML state, byte for byte.
    let (live, retained) = db.epoch_stats();
    assert_eq!(live, 2, "pinned + current");
    assert!(retained > 0, "pinned epoch holds bytes");
    let gstats = db.graph_stats("g").unwrap();
    assert_eq!(gstats.live_epochs, 2);
    assert_eq!(gstats.retained_bytes, retained);
    assert_eq!(snap.state_dump(), dump0, "pinned snapshot mutated");

    // Dropping the last pin reclaims the superseded epoch immediately.
    drop(snap);
    assert_eq!(db.epoch_stats(), (1, 0), "retained bytes back to baseline");
    assert_eq!(db.graph_stats("g").unwrap().retained_bytes, 0);
}

/// A clone of a pin is a pin: reclamation waits for the *last* holder.
#[test]
fn epoch_reclaimed_only_after_last_pin_drops() {
    let db = epoch_db();
    let a = db.pin_snapshot().unwrap();
    let b = a.clone();
    relink_round(&db, 0, 60);
    assert_eq!(db.epoch_stats().0, 2);
    drop(a);
    assert_eq!(db.epoch_stats().0, 2, "second holder still pins");
    drop(b);
    assert_eq!(db.epoch_stats(), (1, 0));
}

/// Cancellation firing mid-read still releases the reader's epoch pin: the
/// cancelled query's `ExecContext` drops on the error path, and with it
/// the pinned epoch.
#[test]
fn cancel_mid_read_releases_epoch_pin() {
    let db = epoch_db();
    let token = db.cancel_token();

    // Make the pinned-at-query-start epoch superseded while the reader is
    // still running, so the only thing keeping it alive is the query pin.
    let reader = {
        let db = db.clone();
        std::thread::spawn(move || {
            // Unbounded-ish enumeration over the chain: long enough to
            // outlive the writer + cancel sequence below.
            db.execute(
                "SELECT COUNT(P) FROM g.Paths P WHERE P.Length >= 1 AND P.Length <= 199",
            )
        })
    };
    // Let the reader pin and start traversing, then overwrite and cancel.
    std::thread::sleep(std::time::Duration::from_millis(50));
    relink_round(&db, 1, 60);
    token.cancel();
    let err = reader.join().unwrap().expect_err("reader must be cancelled");
    assert!(
        err.to_string().contains("cancel"),
        "unexpected error: {err}"
    );

    // The cancelled reader's pin is gone: only the current epoch survives.
    assert_eq!(db.epoch_stats(), (1, 0), "cancelled reader leaked its pin");
}

/// A deadline abort mid-read likewise releases the pin.
#[test]
fn deadline_mid_read_releases_epoch_pin() {
    let db = epoch_db();
    let mut cfg = db.config();
    cfg.governor.deadline_ms = Some(60);
    db.set_config(cfg);

    let reader = {
        let db = db.clone();
        std::thread::spawn(move || {
            db.execute(
                "SELECT COUNT(P) FROM g.Paths P WHERE P.Length >= 1 AND P.Length <= 199",
            )
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(20));
    relink_round(&db, 2, 60);
    let err = reader.join().unwrap().expect_err("reader must hit the deadline");
    assert!(
        err.to_string().contains("deadline"),
        "unexpected error: {err}"
    );
    assert_eq!(db.epoch_stats(), (1, 0), "deadline abort leaked the pin");
}
