//! Concurrency: `Database` is `Send + Sync` with serial execution inside
//! (the H-Store model). Concurrent callers must never deadlock, corrupt
//! state, or observe torn graph views.

use std::sync::Arc;

use grfusion::{Database, Value};

fn seeded_db() -> Arc<Database> {
    let db = Database::new();
    db.execute("CREATE TABLE v (id INTEGER PRIMARY KEY)").unwrap();
    db.execute("CREATE TABLE e (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, w DOUBLE)")
        .unwrap();
    let vrows: Vec<Vec<Value>> = (0..200i64).map(|i| vec![Value::Integer(i)]).collect();
    db.bulk_insert("v", vrows).unwrap();
    let erows: Vec<Vec<Value>> = (0..199i64)
        .map(|i| {
            vec![
                Value::Integer(i),
                Value::Integer(i),
                Value::Integer(i + 1),
                Value::Double(1.0),
            ]
        })
        .collect();
    db.bulk_insert("e", erows).unwrap();
    db.execute(
        "CREATE DIRECTED GRAPH VIEW g VERTEXES(ID = id) FROM v \
         EDGES(ID = id, FROM = a, TO = b, w = w) FROM e",
    )
    .unwrap();
    Arc::new(db)
}

#[test]
fn concurrent_readers_see_consistent_answers() {
    let db = seeded_db();
    let mut handles = Vec::new();
    for t in 0..8 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..50 {
                let s = (t * 7 + i) % 150;
                let rs = db
                    .execute(&format!(
                        "SELECT PS.Length FROM g.Paths PS WHERE PS.StartVertex.Id = {s} \
                         AND PS.EndVertex.Id = {} AND PS.Length <= 30 LIMIT 1",
                        s + 20
                    ))
                    .unwrap();
                // chain graph: s+20 is exactly 20 hops downstream
                assert_eq!(rs.rows.len(), 1, "thread {t} query {i}");
                assert_eq!(rs.rows[0][0], Value::Integer(20));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_writers_and_readers_serialize() {
    let db = seeded_db();
    let mut handles = Vec::new();
    // Writers append fresh chain segments; readers traverse concurrently.
    for w in 0..4 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..25 {
                let vid = 1000 + w * 100 + i;
                db.execute(&format!("INSERT INTO v VALUES ({vid})")).unwrap();
                db.execute(&format!(
                    "INSERT INTO e VALUES ({}, 0, {vid}, 1.0)",
                    1000 + w * 100 + i
                ))
                .unwrap();
            }
        }));
    }
    for _ in 0..4 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..50 {
                let rs = db
                    .execute(
                        "SELECT COUNT(P) FROM g.Paths P WHERE P.StartVertex.Id = 0 \
                         AND P.Length = 1",
                    )
                    .unwrap();
                // Vertex 0 starts with exactly 1 out-edge; writers add more.
                let n = rs.scalar().unwrap().as_integer().unwrap();
                assert!((1..=101).contains(&n), "count {n}");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Final state: 100 writer edges + the original one.
    let s = db.graph_stats("g").unwrap();
    assert_eq!(s.vertex_count, 300);
    assert_eq!(s.edge_count, 299);
}

#[test]
fn prepared_queries_shared_across_threads() {
    let db = seeded_db();
    let q = Arc::new(
        db.prepare(
            "SELECT PS.Length FROM g.Paths PS WHERE PS.StartVertex.Id = ? \
             AND PS.EndVertex.Id = ? AND PS.Length <= 30 LIMIT 1",
        )
        .unwrap(),
    );
    let mut handles = Vec::new();
    for t in 0..6 {
        let db = db.clone();
        let q = q.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..40 {
                let s = (t * 11 + i) % 150;
                let rs = db
                    .execute_prepared(&q, &[Value::Integer(s), Value::Integer(s + 10)])
                    .unwrap();
                assert_eq!(rs.rows[0][0], Value::Integer(10));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}
