//! Cost-based optimizer battery (tier-1): plan-choice shape locks on
//! skewed fixtures, EXPLAIN cost-annotation formatting, and properties of
//! the cardinality estimates.
//!
//! Every lock runs the same query through an optimizer-on and an
//! optimizer-off engine and demands byte-identical rows — the optimizer's
//! whole contract is that it only re-picks *how* a result is computed,
//! never *what* the result is. The shape assertions then pin that the
//! cost model actually picked a **different** plan than the rule-based
//! reference on fixtures skewed to make the alternative cheaper.

use proptest::prelude::*;

use grfusion::{Database, EngineConfig, Value};

/// Engine with the cost-based optimizer explicitly on or off (independent
/// of the ambient `GRFUSION_OPTIMIZER` environment).
fn db_with_optimizer(on: bool) -> Database {
    let mut cfg = EngineConfig::default();
    cfg.optimizer.cost_based = on;
    Database::with_config(cfg)
}

/// Load `n` vertexes and the given directed edge list as tables `v`/`e`
/// plus graph view `g` (sealed at creation, so seal-time statistics are
/// fresh when the optimizer plans).
fn load_graph(db: &Database, n: i64, edges: &[(i64, i64)]) {
    db.execute("CREATE TABLE v (id INTEGER PRIMARY KEY)").unwrap();
    db.execute("CREATE TABLE e (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, w DOUBLE)")
        .unwrap();
    let vrows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Integer(i)]).collect();
    db.bulk_insert("v", vrows).unwrap();
    let erows: Vec<Vec<Value>> = edges
        .iter()
        .enumerate()
        .map(|(i, (a, b))| {
            vec![
                Value::Integer(i as i64),
                Value::Integer(*a),
                Value::Integer(*b),
                Value::Double(1.0),
            ]
        })
        .collect();
    db.bulk_insert("e", erows).unwrap();
    db.execute(
        "CREATE DIRECTED GRAPH VIEW g VERTEXES(ID = id) FROM v \
         EDGES(ID = id, FROM = a, TO = b, w = w) FROM e",
    )
    .unwrap();
}

/// Rows rendered `col|col|...`, sorted (the locks compare result *sets*;
/// plan alternatives may legitimately emit in different orders under an
/// order-insensitive aggregate, and sorting keeps the comparison exact
/// without depending on that order).
fn rows(db: &Database, sql: &str) -> Vec<String> {
    let mut out: Vec<String> = db
        .execute(sql)
        .unwrap()
        .rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    out.sort();
    out
}

/// Directed complete graph on `n` vertexes (no self-loops): every vertex
/// has out-degree `n-1`, so the effective fan-out sits far above the
/// traversal-vs-join crossover.
fn clique_edges(n: i64) -> Vec<(i64, i64)> {
    let mut edges = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if a != b {
                edges.push((a, b));
            }
        }
    }
    edges
}

/// Hub-and-spoke star with a short spoke chain: average out-degree ≈ 1
/// but the hub fans out to every spoke, so only the seal-time degree
/// distribution (not the average) reveals the skew.
fn star_edges() -> Vec<(i64, i64)> {
    let mut edges: Vec<(i64, i64)> = (1..64).map(|i| (0, i)).collect();
    edges.extend_from_slice(&[(1, 2), (2, 3), (3, 4)]);
    edges
}

/// Shape lock 1 — the tentpole's marquee rewrite: on a dense clique with
/// a hash index on the edge table's FROM column, fixed-length path
/// counting is re-planned as an iterated index join over the edge table
/// (the paper's §6 relational-baseline shape), because at fan-out 8 the
/// join enumerates the same simple paths cheaper than the traversal. The
/// rule-based plan keeps the PathScan.
#[test]
fn high_fanout_clique_picks_iterated_join() {
    let sql = "SELECT COUNT(*) FROM g.Paths PS \
               WHERE PS.StartVertex.Id = 0 AND PS.Length = 2";
    let mut lanes = Vec::new();
    for on in [false, true] {
        let db = db_with_optimizer(on);
        load_graph(&db, 9, &clique_edges(9));
        db.execute("CREATE INDEX ix_ea ON e (a)").unwrap();
        let plan = db.explain(sql).unwrap();
        if on {
            assert!(plan.contains("IndexJoin(e)"), "optimizer-on plan:\n{plan}");
            assert!(plan.contains("IndexLookup(e)"), "optimizer-on plan:\n{plan}");
            assert!(!plan.contains("PathScan"), "optimizer-on plan:\n{plan}");
        } else {
            assert!(plan.contains("PathScan"), "optimizer-off plan:\n{plan}");
            assert!(!plan.contains("IndexJoin"), "optimizer-off plan:\n{plan}");
        }
        lanes.push(rows(&db, sql));
    }
    assert_eq!(lanes[0], lanes[1], "iterated join changed result bytes");
    // 8 first hops from vertex 0, each with 8 simple extensions (the
    // second hop may close the cycle back to 0 but not revisit hop 1).
    assert_eq!(lanes[0], vec!["64".to_string()]);
}

/// Shape lock 2 — physical traversal choice from the degree histogram:
/// the star's *average* out-degree (≈1) says BFS, but the seal-time
/// distribution exposes the 63-way hub, pushing the effective fan-out
/// past the path-length bound, so the cost model pins DFS. The rule-based
/// plan leaves the mode `Auto`.
#[test]
fn star_hub_skew_picks_dfs() {
    let sql = "SELECT COUNT(*) FROM g.Paths PS \
               WHERE PS.StartVertex.Id = 0 AND PS.Length = 2";
    let mut lanes = Vec::new();
    for on in [false, true] {
        let db = db_with_optimizer(on);
        load_graph(&db, 64, &star_edges());
        let plan = db.explain(sql).unwrap();
        if on {
            assert!(plan.contains("Dfs"), "optimizer-on plan:\n{plan}");
        } else {
            assert!(plan.contains("Auto"), "optimizer-off plan:\n{plan}");
            assert!(!plan.contains("Dfs"), "optimizer-off plan:\n{plan}");
        }
        lanes.push(rows(&db, sql));
    }
    assert_eq!(lanes[0], lanes[1], "traversal mode changed result bytes");
    // 0→1→2, 0→2→3, 0→3→4 are the only length-2 paths off the hub.
    assert_eq!(lanes[0], vec!["3".to_string()]);
}

/// Shape lock 3 — anchor selectivity: with both endpoints pinned, the
/// cost model picks the targeted BFS (frontier-pruned toward the end
/// anchor) instead of leaving the mode heuristic to run at execution.
#[test]
fn selective_end_anchor_picks_targeted_bfs() {
    let sql = "SELECT COUNT(*) FROM g.Paths PS \
               WHERE PS.StartVertex.Id = 0 AND PS.EndVertex.Id = 3 \
               AND PS.Length = 2";
    let mut lanes = Vec::new();
    for on in [false, true] {
        let db = db_with_optimizer(on);
        load_graph(&db, 9, &clique_edges(9));
        let plan = db.explain(sql).unwrap();
        if on {
            assert!(plan.contains("Bfs"), "optimizer-on plan:\n{plan}");
        } else {
            assert!(plan.contains("Auto"), "optimizer-off plan:\n{plan}");
        }
        lanes.push(rows(&db, sql));
    }
    assert_eq!(lanes[0], lanes[1], "targeted BFS changed result bytes");
    // 0→t→3 for t ∉ {0, 3}: seven intermediates.
    assert_eq!(lanes[0], vec!["7".to_string()]);
}

/// Negative lock: on a sparse chain the effective fan-out is ~1, far
/// below the traversal-vs-join crossover, so even with the index present
/// the optimizer must *keep* the traversal. (Guards against the rewrite
/// firing unconditionally whenever its structural gates match.)
#[test]
fn sparse_chain_keeps_traversal() {
    let sql = "SELECT COUNT(*) FROM g.Paths PS \
               WHERE PS.StartVertex.Id = 0 AND PS.Length = 2";
    let db = db_with_optimizer(true);
    let chain: Vec<(i64, i64)> = (0..39).map(|i| (i, i + 1)).collect();
    load_graph(&db, 40, &chain);
    db.execute("CREATE INDEX ix_ea ON e (a)").unwrap();
    let plan = db.explain(sql).unwrap();
    assert!(plan.contains("PathScan"), "chain plan:\n{plan}");
    assert!(!plan.contains("IndexJoin"), "chain plan:\n{plan}");
    assert_eq!(rows(&db, sql), vec!["1".to_string()]);
}

/// The diamond fixture from the parallel shape locks, with the optimizer
/// on: EXPLAIN must carry ` rows_est=N cost=C` on **every** line, and the
/// exact formatting is pinned so estimate/annotation drift is a reviewed
/// change, not an accident.
#[test]
fn explain_cost_format_pinned_on_diamond() {
    let db = db_with_optimizer(true);
    load_graph(
        &db,
        7,
        &[(1, 2), (1, 3), (2, 4), (3, 4), (4, 5), (5, 6)],
    );
    let plan = db
        .explain(
            "SELECT PS.EndVertex.Id FROM g.Paths PS \
             WHERE PS.StartVertex.Id = 1 AND PS.Length = 2",
        )
        .unwrap();
    let expected = "\
Project(1 cols) :: (id INTEGER) rows_est=1 cost=7
  Filter :: (ps PATH) rows_est=1 cost=7
    PathScan(g, Auto, len 2..=2) :: (ps PATH) rows_est=2 cost=5
";
    assert_eq!(plan, expected);
}

/// Satellite 4's stability contract: with the optimizer off, EXPLAIN is
/// byte-identical to the pre-optimizer engine — no `rows_est` fragments
/// of any kind (in particular no `rows_est=?` placeholders) may leak.
#[test]
fn explain_without_optimizer_has_no_estimates() {
    let db = db_with_optimizer(false);
    load_graph(&db, 9, &clique_edges(9));
    for sql in [
        "SELECT COUNT(*) FROM g.Paths PS WHERE PS.StartVertex.Id = 0 AND PS.Length = 2",
        "SELECT id FROM v WHERE id = 3",
    ] {
        let plan = db.explain(sql).unwrap();
        assert!(!plan.contains("rows_est"), "estimate leaked:\n{plan}");
        assert!(!plan.contains("cost="), "estimate leaked:\n{plan}");
    }
}

/// Root-node row estimate parsed off an optimizer-annotated EXPLAIN.
fn root_estimate(db: &Database, sql: &str) -> u64 {
    let plan = db.explain(sql).unwrap();
    let first = plan.lines().next().unwrap();
    let tail = first
        .split("rows_est=")
        .nth(1)
        .unwrap_or_else(|| panic!("no estimate on root line: {first}"));
    tail.split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap_or_else(|_| panic!("unparsable estimate on root line: {first}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Estimated cardinalities are finite, non-negative, and monotone
    /// under LIMIT: est(LIMIT k) ≤ est(LIMIT k') for k ≤ k', and both are
    /// bounded by the unlimited estimate. (Finite and non-negative hold
    /// by construction of the parse: the annotation renders estimates as
    /// unsigned integers, so a negative/NaN/∞ estimate would fail the
    /// `rows_est=` parse itself.)
    #[test]
    fn estimates_monotone_under_limit(
        n in 4i64..32,
        extra in proptest::collection::vec((0i64..32, 0i64..32), 0..20),
        k1 in 0u64..50,
        dk in 0u64..50,
    ) {
        let db = db_with_optimizer(true);
        let mut edges: Vec<(i64, i64)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        for (a, b) in extra {
            let (a, b) = (a % n, b % n);
            if a != b {
                edges.push((a, b));
            }
        }
        load_graph(&db, n, &edges);
        let base = "SELECT PS.EndVertex.Id FROM g.Paths PS \
                    WHERE PS.StartVertex.Id = 0 AND PS.Length <= 3";
        let k2 = k1 + dk;
        let est_k1 = root_estimate(&db, &format!("{base} LIMIT {k1}"));
        let est_k2 = root_estimate(&db, &format!("{base} LIMIT {k2}"));
        let est_all = root_estimate(&db, base);
        prop_assert!(est_k1 <= est_k2, "LIMIT {k1} est {est_k1} > LIMIT {k2} est {est_k2}");
        prop_assert!(est_k2 <= est_all, "LIMIT {k2} est {est_k2} > unlimited est {est_all}");
        prop_assert!(est_k1 <= k1, "LIMIT {k1} est {est_k1} exceeds the limit itself");
    }
}
