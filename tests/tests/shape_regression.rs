//! Performance-shape regression tests (run with `--ignored`): assert the
//! paper's qualitative results with wide margins so they survive noisy
//! machines. These are the guardrails behind EXPERIMENTS.md — if a future
//! change makes GRFusion slower than the join-based baseline on deep
//! traversals, something fundamental broke.

use std::time::Instant;

use grfusion_baselines::{GrFusionSystem, GrailSystem, GraphSystem, SqlGraphSystem};
use grfusion_datasets::{pairs_at_distance, protein, random_connected_pairs, Adjacency};

/// Row-shape and ordering locks for the morsel-parallel PathScan (these
/// run on every `cargo test`, no `--ignored` needed): the exact rows and
/// their exact order on a fixed diamond-chain graph must not move, at any
/// worker count, and the serial `workers = 1` fallback must stay
/// bit-identical to the historical serial output.
mod parallel_shape {
    use grfusion::{Database, ParallelConfig, Value};

    /// Fixed topology: 1->2, 1->3, 2->4, 3->4, 4->5, 5->6 (directed).
    pub(super) fn diamond_db() -> Database {
        let db = Database::new();
        db.execute("CREATE TABLE v (id INTEGER PRIMARY KEY)").unwrap();
        db.execute("CREATE TABLE e (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, w DOUBLE)")
            .unwrap();
        let vrows: Vec<Vec<Value>> = (1..=6i64).map(|i| vec![Value::Integer(i)]).collect();
        db.bulk_insert("v", vrows).unwrap();
        let edges = [(10i64, 1i64, 2i64), (11, 1, 3), (12, 2, 4), (13, 3, 4), (14, 4, 5), (15, 5, 6)];
        let erows: Vec<Vec<Value>> = edges
            .iter()
            .map(|(id, a, b)| {
                vec![
                    Value::Integer(*id),
                    Value::Integer(*a),
                    Value::Integer(*b),
                    Value::Double(1.0),
                ]
            })
            .collect();
        db.bulk_insert("e", erows).unwrap();
        db.execute(
            "CREATE DIRECTED GRAPH VIEW g VERTEXES(ID = id) FROM v \
             EDGES(ID = id, FROM = a, TO = b, w = w) FROM e",
        )
        .unwrap();
        db
    }

    pub(super) fn set_parallel(db: &Database, workers: usize, morsel_size: usize) {
        let mut cfg = db.config();
        cfg.parallel = ParallelConfig {
            workers,
            morsel_size,
        };
        db.set_config(cfg);
    }

    /// Rows rendered `col|col|...` in emission order (never sorted).
    fn rows(db: &Database, sql: &str) -> Vec<String> {
        db.execute(sql)
            .unwrap()
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect()
    }

    /// Run `sql` at every worker count and assert the locked output.
    /// `morsel_size = 2` forces multiple morsels on the 6-vertex graph.
    fn assert_locked(sql: &str, expected: &[&str]) {
        let db = diamond_db();
        for workers in [1usize, 2, 4, 8] {
            set_parallel(&db, workers, 2);
            let got = rows(&db, sql);
            assert_eq!(got, expected, "workers={workers} sql={sql}");
        }
    }

    #[test]
    fn dfs_anchored_order_is_locked() {
        assert_locked(
            "SELECT PS.PathString, PS.Length FROM g.Paths PS HINT(DFS) \
             WHERE PS.StartVertex.Id = 1 AND PS.Length >= 1 AND PS.Length <= 3",
            &[
                "1->2|1",
                "1->2->4|2",
                "1->2->4->5|3",
                "1->3|1",
                "1->3->4|2",
                "1->3->4->5|3",
            ],
        );
    }

    #[test]
    fn bfs_anchored_order_is_locked() {
        assert_locked(
            "SELECT PS.PathString, PS.Length FROM g.Paths PS HINT(BFS) \
             WHERE PS.StartVertex.Id = 1 AND PS.Length >= 1 AND PS.Length <= 3",
            &[
                "1->2|1",
                "1->3|1",
                "1->2->4|2",
                "1->3->4|2",
                "1->2->4->5|3",
                "1->3->4->5|3",
            ],
        );
    }

    #[test]
    fn dfs_all_vertexes_order_is_locked() {
        // Multi-seed scan: seed order is vertex insertion order, and DFS
        // drains each seed before the next — morsel merge must keep that.
        assert_locked(
            "SELECT PS.PathString FROM g.Paths PS HINT(DFS) \
             WHERE PS.Length >= 1 AND PS.Length <= 1",
            &["1->2", "1->3", "2->4", "3->4", "4->5", "5->6"],
        );
    }

    #[test]
    fn bfs_all_vertexes_order_is_locked() {
        // BFS interleaves seeds by level: all length-1 paths in seed
        // order, then all length-2 paths in seed order.
        assert_locked(
            "SELECT PS.PathString FROM g.Paths PS HINT(BFS) \
             WHERE PS.Length >= 1 AND PS.Length <= 2",
            &[
                "1->2",
                "1->3",
                "2->4",
                "3->4",
                "4->5",
                "5->6",
                "1->2->4",
                "1->3->4",
                "2->4->5",
                "3->4->5",
                "4->5->6",
            ],
        );
    }

    #[test]
    fn shortest_path_row_is_locked() {
        // Bounded SHORTESTPATH uses the enumerative SPScan (single morsel
        // through the pool when workers > 1).
        assert_locked(
            "SELECT PS.PathString, PS.Cost FROM g.Paths PS HINT(SHORTESTPATH(w)) \
             WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 5 AND PS.Length <= 4 LIMIT 1",
            &["1->2->4->5|3"],
        );
    }

    #[test]
    fn reachability_fallback_shape_unchanged() {
        // The planner-proven reachability fast path stays serial even with
        // workers > 1 (the pool declines it); shape must be identical.
        assert_locked(
            "SELECT PS.Length FROM g.Paths PS \
             WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 6 AND PS.Length <= 10 LIMIT 1",
            &["4"],
        );
    }
}

/// Typed-EXPLAIN shape locks: the statically inferred per-node schema
/// (`label :: (name TYPE, nullable TYPE?, ...)`) on the diamond fixture
/// must not drift — these lock both the plan shape *and* the analyzer's
/// type/nullability inference. These run on every `cargo test`.
mod typed_explain_shape {
    use super::parallel_shape::diamond_db;

    fn explain_lines(sql: &str) -> Vec<String> {
        let db = diamond_db();
        db.explain(sql).unwrap().lines().map(str::to_string).collect()
    }

    #[test]
    fn path_enumeration_schema_is_locked() {
        assert_eq!(
            explain_lines(
                "SELECT PS.PathString, PS.Length FROM g.Paths PS HINT(DFS) \
                 WHERE PS.StartVertex.Id = 1 AND PS.Length >= 1 AND PS.Length <= 3 \
                 ORDER BY PS.Length LIMIT 5"
            ),
            [
                "Limit(5) :: (pathstring VARCHAR, length INTEGER)",
                "  Project(2 cols) :: (pathstring VARCHAR, length INTEGER)",
                "    Sort(1 keys) :: (ps PATH)",
                "      Filter :: (ps PATH)",
                "        PathScan(g, Dfs, len 1..=3) :: (ps PATH)",
            ]
        );
    }

    #[test]
    fn aggregation_schema_is_locked() {
        assert_eq!(
            explain_lines(
                "SELECT PS.Length, COUNT(PS) FROM g.Paths PS \
                 WHERE PS.Length >= 1 AND PS.Length <= 2 GROUP BY PS.Length"
            ),
            [
                "Project(2 cols) :: (length INTEGER, count INTEGER)",
                "  Aggregate(1 groups, 1 aggs) :: (_g0 INTEGER, _a0 INTEGER)",
                "    Filter :: (ps PATH)",
                "      PathScan(g, Auto, len 1..=2) :: (ps PATH)",
            ]
        );
    }

    #[test]
    fn vertex_scan_schema_is_locked() {
        // The synthesized id/fanin/fanout columns are NOT NULL (no `?`).
        assert_eq!(
            explain_lines("SELECT V.id, V.fanout FROM g.Vertexes V WHERE V.fanout > 1"),
            [
                "Project(2 cols) :: (id INTEGER, fanout INTEGER)",
                "  VertexScan(g) :: (id INTEGER, fanin INTEGER, fanout INTEGER)",
            ]
        );
    }

    #[test]
    fn cross_model_join_schema_is_locked() {
        // Table columns stay conservatively nullable (`?`); the appended
        // path column never is.
        assert_eq!(
            explain_lines(
                "SELECT v.id, PS.Length FROM v, g.Paths PS \
                 WHERE PS.StartVertex.Id = v.id AND PS.Length = 1"
            ),
            [
                "Project(2 cols) :: (id INTEGER?, length INTEGER)",
                "  Filter :: (id INTEGER?, ps PATH)",
                "    PathJoin(g, Auto, len 1..=1) :: (id INTEGER?, ps PATH)",
                "      TableScan(v) :: (id INTEGER?)",
            ]
        );
    }
}

/// Counter-shape locks for `EXPLAIN ANALYZE`: on a fixed topology the
/// per-operator runtime counters are fully deterministic, so any drift in
/// rows / vertices visited / edges expanded signals a traversal or
/// instrumentation regression. These run on every `cargo test`.
mod explain_analyze_shape {
    use super::parallel_shape::{diamond_db, set_parallel};

    /// Anchored BFS from vertex 1, window 1..=3 on the diamond graph:
    /// paths 1-2, 1-3, 1-2-4, 1-3-4, 1-2-4-5, 1-3-4-5.
    const ANCHORED: &str = "SELECT PS.PathString FROM g.Paths PS \
                            WHERE PS.StartVertex.Id = 1 \
                            AND PS.Length >= 1 AND PS.Length <= 3";

    #[test]
    fn pathscan_counters_are_locked() {
        let db = diamond_db();
        let rs = db.execute_with_metrics(ANCHORED).unwrap();
        assert_eq!(rs.rows.len(), 6);
        let m = rs.metrics.expect("metrics requested but absent");
        let scan = m.node("PathScan").expect("no PathScan node in plan");
        assert_eq!(scan.rows, 6);
        assert_eq!(scan.next_calls, 7, "6 rows + the exhausting pull");
        let g = scan.graph.expect("PathScan reported no graph counters");
        assert_eq!(g.vertices_visited, 7);
        assert_eq!(g.edges_expanded, 6);
        assert_eq!(g.tuple_derefs, 0, "no edge/vertex attrs referenced");
        // Every node in the tree was pulled at least once and timed.
        for n in &m.nodes {
            assert!(n.next_calls > 0, "unpulled node {}", n.label);
        }
    }

    #[test]
    fn pushed_predicate_counts_tuple_derefs() {
        let db = diamond_db();
        let rs = db
            .execute_with_metrics(
                "SELECT PS.PathString FROM g.Paths PS \
                 WHERE PS.StartVertex.Id = 1 \
                 AND PS.Length >= 1 AND PS.Length <= 3 \
                 AND PS.Edges[0..*].w > 0.5",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 6); // all weights are 1.0
        let g = rs.metrics.unwrap().graph_totals();
        assert!(g.tuple_derefs > 0, "edge-weight predicate never dereferenced");
    }

    #[test]
    fn explain_analyze_prints_nonzero_counters() {
        let db = diamond_db();
        let rs = db.execute(&format!("EXPLAIN ANALYZE {ANCHORED}")).unwrap();
        let text: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
        let plan = text.join("\n");
        assert!(plan.contains("rows=6"), "plan lacks row counts:\n{plan}");
        assert!(plan.contains("vertices=7"), "plan lacks traversal counters:\n{plan}");
        assert!(plan.contains("edges=6"), "plan lacks edge counters:\n{plan}");
        // Plain EXPLAIN stays un-annotated.
        let rs = db.execute(&format!("EXPLAIN {ANCHORED}")).unwrap();
        let plain: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
        assert!(!plain.join("\n").contains("rows="), "EXPLAIN must not run the query");
    }

    /// Governor-counter lock (serial only: worker morsel-claim checks vary
    /// with thread interleaving, but serial counters are fully
    /// deterministic). With a memory cap armed, every node performs exactly
    /// one cooperative check on the diamond fixture (the end-of-stream
    /// check; pull counts never reach the 64-pull interval), and the
    /// PathScan charges exactly the sum of `path_bytes` over its six paths.
    #[test]
    fn governor_counters_are_locked() {
        use grfusion::governor::path_bytes;
        use grfusion_common::PathData;

        let db = diamond_db();
        let mut cfg = db.config();
        cfg.governor.max_memory_bytes = Some(64 * 1024 * 1024);
        db.set_config(cfg);

        let rs = db.execute_with_metrics(ANCHORED).unwrap();
        assert_eq!(rs.rows.len(), 6);
        let m = rs.metrics.expect("metrics requested but absent");
        for n in &m.nodes {
            let g = n.gov.unwrap_or_else(|| {
                panic!("governor active but node {} has no gov counters", n.label)
            });
            assert_eq!(g.checks, 1, "node {}: one end-of-stream check", n.label);
        }
        // Expected bytes: the six anchored paths 1-2, 1-3, 1-2-4, 1-3-4,
        // 1-2-4-5, 1-3-4-5 through the deterministic estimator.
        let paths: [(&[i64], &[i64]); 6] = [
            (&[1, 2], &[10]),
            (&[1, 3], &[11]),
            (&[1, 2, 4], &[10, 12]),
            (&[1, 3, 4], &[11, 13]),
            (&[1, 2, 4, 5], &[10, 12, 14]),
            (&[1, 3, 4, 5], &[11, 13, 15]),
        ];
        let expected: u64 = paths
            .iter()
            .map(|(vs, es)| {
                path_bytes(&PathData {
                    graph_view: "g".into(),
                    vertexes: vs.to_vec(),
                    edges: es.to_vec(),
                    cost: es.len() as f64,
                })
            })
            .sum();
        let scan = m.node("PathScan").expect("no PathScan node");
        assert_eq!(scan.gov.unwrap().bytes, expected);
        // The textual EXPLAIN ANALYZE carries the same counters; without a
        // governor the segment is absent entirely.
        let rs = db
            .execute(&format!("EXPLAIN ANALYZE {}", ANCHORED))
            .unwrap();
        let text: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
        let plan = text.join("\n");
        assert!(
            plan.contains(&format!("(bytes={expected} checks=1)")),
            "plan lacks governor counters:\n{plan}"
        );
        let mut cfg = db.config();
        cfg.governor.max_memory_bytes = None;
        db.set_config(cfg);
        let rs = db.execute(&format!("EXPLAIN ANALYZE {}", ANCHORED)).unwrap();
        let text: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
        assert!(
            !text.join("\n").contains("bytes="),
            "inactive governor must not annotate the plan"
        );
    }

    #[test]
    fn parallel_worker_metrics_are_locked() {
        let db = diamond_db();
        set_parallel(&db, 4, 2);
        let rs = db
            .execute_with_metrics(
                "SELECT PS.PathString FROM g.Paths PS WHERE PS.Length <= 2",
            )
            .unwrap();
        let total_rows = rs.rows.len() as u64;
        let m = rs.metrics.unwrap();
        assert!(!m.workers.is_empty(), "parallel scan reported no workers");
        // 6 seeds at morsel_size 2 = 3 morsels, every one claimed once.
        assert_eq!(m.workers.iter().map(|w| w.morsels).sum::<u64>(), 3);
        assert_eq!(m.workers.iter().map(|w| w.paths).sum::<u64>(), total_rows);
        let visited: u64 = m.workers.iter().map(|w| w.counters.vertices_visited).sum();
        assert!(visited > 0, "workers reported zero traversal work");
    }
}

/// Estimate-annotation stability locks (the cost-based optimizer's
/// EXPLAIN contract): actual-vs-estimated rows appear *only* on
/// instrumented runs with the optimizer enabled, plain EXPLAIN carries
/// numeric estimates only (a `rows_est=?` placeholder must never render
/// anywhere), and with the optimizer off every EXPLAIN byte is identical
/// to the pre-optimizer engine.
mod optimizer_estimate_shape {
    use super::explain_analyze_shape_anchored as anchored;
    use super::parallel_shape::diamond_db;
    use grfusion::Database;

    fn set_optimizer(db: &Database, on: bool) {
        let mut cfg = db.config();
        cfg.optimizer.cost_based = on;
        db.set_config(cfg);
    }

    fn explain(db: &Database, sql: &str) -> String {
        let rs = db.execute(sql).unwrap();
        rs.rows
            .iter()
            .map(|r| r[0].to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// EXPLAIN ANALYZE with the optimizer on annotates **every** node with
    /// both the actual row count and the estimate, and stays stable when
    /// the same statement later runs without instrumentation (plain
    /// EXPLAIN): the un-instrumented rendering keeps numeric estimates and
    /// never degrades to a `rows_est=?` placeholder.
    #[test]
    fn analyze_pairs_actuals_with_estimates() {
        let db = diamond_db();
        set_optimizer(&db, true);
        let analyzed = explain(&db, &format!("EXPLAIN ANALYZE {}", anchored()));
        for line in analyzed.lines() {
            assert!(line.contains("rows="), "actuals missing:\n{analyzed}");
            assert!(line.contains("(rows_est="), "estimates missing:\n{analyzed}");
        }
        // Same statement, metrics off: estimates survive as plain numbers.
        let plain = explain(&db, &format!("EXPLAIN {}", anchored()));
        for line in plain.lines() {
            assert!(line.contains("rows_est="), "estimates missing:\n{plain}");
            assert!(line.contains("cost="), "costs missing:\n{plain}");
        }
        assert!(!plain.contains("next="), "plain EXPLAIN must not run the query");
        for text in [&analyzed, &plain] {
            assert!(!text.contains("rows_est=?"), "placeholder leaked:\n{text}");
        }
    }

    /// With the optimizer off, both EXPLAIN flavors must be byte-free of
    /// estimate fragments — the `GRFUSION_OPTIMIZER=0` lane renders
    /// exactly what the pre-optimizer engine rendered.
    #[test]
    fn optimizer_off_explains_stay_unannotated() {
        let db = diamond_db();
        set_optimizer(&db, false);
        let before = explain(&db, &format!("EXPLAIN {}", anchored()));
        assert!(!before.contains("rows_est"), "estimate leaked:\n{before}");
        assert!(!before.contains("cost="), "cost leaked:\n{before}");
        let analyzed = explain(&db, &format!("EXPLAIN ANALYZE {}", anchored()));
        assert!(!analyzed.contains("rows_est"), "estimate leaked:\n{analyzed}");
        // Flipping the optimizer on and back off restores the exact bytes
        // (no sticky annotation state in the cached planner context).
        set_optimizer(&db, true);
        let _ = explain(&db, &format!("EXPLAIN {}", anchored()));
        set_optimizer(&db, false);
        let after = explain(&db, &format!("EXPLAIN {}", anchored()));
        assert_eq!(before, after, "optimizer toggle left residue in EXPLAIN");
    }
}

/// The anchored diamond query shared with `explain_analyze_shape`
/// (duplicated by value there as a module-private const).
fn explain_analyze_shape_anchored() -> &'static str {
    "SELECT PS.PathString FROM g.Paths PS \
     WHERE PS.StartVertex.Id = 1 \
     AND PS.Length >= 1 AND PS.Length <= 3"
}

/// Sealed-CSR layout locks: exact byte footprints of the compacted arrays
/// on the diamond fixture, the `layout=` annotation in `EXPLAIN ANALYZE`,
/// and the delta-overlay → re-seal lifecycle. The byte values are fully
/// determined by the seal's `with_capacity` allocations, so any drift
/// signals a change to the CSR memory layout (and to what the governor
/// charges for it). These run on every `cargo test`.
mod csr_layout_shape {
    use super::parallel_shape::diamond_db;

    const ANCHORED: &str = "SELECT PS.PathString FROM g.Paths PS \
                            WHERE PS.StartVertex.Id = 1 \
                            AND PS.Length >= 1 AND PS.Length <= 3";

    fn analyze_text(db: &grfusion::Database) -> String {
        let rs = db.execute(&format!("EXPLAIN ANALYZE {ANCHORED}")).unwrap();
        rs.rows
            .iter()
            .map(|r| r[0].to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn sealed_bytes_and_layout_lifecycle_are_locked() {
        let db = diamond_db();

        // Freshly materialized: sealed, no overlay. 6 vertexes / 6 directed
        // edges compact to (7+7) u32 offsets + 6 out-targets + 6 out-heads
        // + 6 in-targets = 128 bytes.
        let s = db.graph_stats("g").unwrap();
        assert_eq!(s.sealed_bytes, 128, "sealed CSR byte footprint drifted");
        assert_eq!(s.overlay_bytes, 0);
        assert!(
            s.memory_bytes >= s.sealed_bytes,
            "total footprint must include the sealed arrays"
        );
        assert!(analyze_text(&db).contains("(layout=csr)"), "{}", analyze_text(&db));

        // One new vertex diverts to the delta overlay (1/7 < the 0.25
        // re-seal threshold, so the statement does not re-seal).
        db.execute("INSERT INTO v VALUES (7)").unwrap();
        let s = db.graph_stats("g").unwrap();
        assert_eq!(s.sealed_bytes, 128, "seal must not rebuild below threshold");
        assert!(analyze_text(&db).contains("(layout=delta(1))"), "{}", analyze_text(&db));

        // An edge insert touches both endpoints: 3/7 overlaid ≥ 0.25, so
        // the same statement re-seals — overlay folded back, CSR rebuilt
        // for 7 vertexes / 7 edges: (8+8) u32 offsets + 7+7+7 slots = 148.
        db.execute("INSERT INTO e VALUES (16, 6, 7, 1.0)").unwrap();
        let s = db.graph_stats("g").unwrap();
        assert_eq!(s.sealed_bytes, 148, "re-sealed CSR byte footprint drifted");
        assert_eq!(s.overlay_bytes, 0, "re-seal left overlay bytes behind");
        assert!(analyze_text(&db).contains("(layout=csr)"), "{}", analyze_text(&db));
    }
}

fn avg_micros<F: FnMut() -> ()>(n: usize, mut f: F) -> f64 {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..n {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / n as f64
}

#[test]
#[ignore = "timing-sensitive; run with: cargo test --release -- --ignored"]
fn grfusion_beats_sqlgraph_on_deep_reachability() {
    let ds = protein(2_000, 42);
    let adj = Adjacency::build(&ds);
    let grf = GrFusionSystem::load(&ds).unwrap();
    let sqg = SqlGraphSystem::load_with_budget(&ds, Some(50_000_000)).unwrap();
    let pairs = pairs_at_distance(&ds, &adj, 8, 5, 7);
    assert!(!pairs.is_empty());

    let g = avg_micros(3, || {
        for (s, t) in &pairs {
            grf.reachable(*s, *t, 8, None).unwrap();
        }
    });
    let r = avg_micros(3, || {
        for (s, t) in &pairs {
            sqg.reachable(*s, *t, 8, None).unwrap();
        }
    });
    // Paper: orders of magnitude. Guardrail: at least 10×.
    assert!(
        r > 10.0 * g,
        "expected ≥10× gap at depth 8: grfusion {g:.1}µs vs sqlgraph {r:.1}µs"
    );
}

#[test]
#[ignore = "timing-sensitive; run with: cargo test --release -- --ignored"]
fn grfusion_beats_grail_on_shortest_paths() {
    let ds = protein(2_000, 43);
    let adj = Adjacency::build(&ds);
    let grf = GrFusionSystem::load(&ds).unwrap();
    let grail = GrailSystem::load(&ds).unwrap();
    let pairs = random_connected_pairs(&ds, &adj, 6, 5, 7);
    assert!(!pairs.is_empty());

    let g = avg_micros(3, || {
        for (s, t) in &pairs {
            grf.shortest_path_cost(*s, *t, None).unwrap();
        }
    });
    let r = avg_micros(3, || {
        for (s, t) in &pairs {
            grail.shortest_path_cost(*s, *t, None).unwrap();
        }
    });
    // Paper: large gaps. Guardrail: at least 2×.
    assert!(
        r > 2.0 * g,
        "expected ≥2× gap: grfusion {g:.1}µs vs grail {r:.1}µs"
    );
}

#[test]
#[ignore = "timing-sensitive; run with: cargo test --release -- --ignored"]
fn reachability_time_is_subexponential_in_depth() {
    // GRFusion's reachability must not blow up with the length bound
    // (the visited-set fast path): depth 20 within 50× of depth 4.
    let ds = protein(2_000, 44);
    let adj = Adjacency::build(&ds);
    let grf = GrFusionSystem::load(&ds).unwrap();
    let shallow = pairs_at_distance(&ds, &adj, 4, 5, 7);
    let deep = pairs_at_distance(&ds, &adj, 16, 5, 7);
    if shallow.is_empty() || deep.is_empty() {
        return; // graph too small for the deep workload at this seed
    }
    let t4 = avg_micros(3, || {
        for (s, t) in &shallow {
            grf.reachable(*s, *t, 4, None).unwrap();
        }
    });
    let t16 = avg_micros(3, || {
        for (s, t) in &deep {
            grf.reachable(*s, *t, 16, None).unwrap();
        }
    });
    assert!(
        t16 < 50.0 * t4.max(1.0),
        "depth 16 ({t16:.1}µs) should stay within 50× of depth 4 ({t4:.1}µs)"
    );
}
