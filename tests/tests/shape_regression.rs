//! Performance-shape regression tests (run with `--ignored`): assert the
//! paper's qualitative results with wide margins so they survive noisy
//! machines. These are the guardrails behind EXPERIMENTS.md — if a future
//! change makes GRFusion slower than the join-based baseline on deep
//! traversals, something fundamental broke.

use std::time::Instant;

use grfusion_baselines::{GrFusionSystem, GrailSystem, GraphSystem, SqlGraphSystem};
use grfusion_datasets::{pairs_at_distance, protein, random_connected_pairs, Adjacency};

fn avg_micros<F: FnMut() -> ()>(n: usize, mut f: F) -> f64 {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..n {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / n as f64
}

#[test]
#[ignore = "timing-sensitive; run with: cargo test --release -- --ignored"]
fn grfusion_beats_sqlgraph_on_deep_reachability() {
    let ds = protein(2_000, 42);
    let adj = Adjacency::build(&ds);
    let grf = GrFusionSystem::load(&ds).unwrap();
    let sqg = SqlGraphSystem::load_with_budget(&ds, Some(50_000_000)).unwrap();
    let pairs = pairs_at_distance(&ds, &adj, 8, 5, 7);
    assert!(!pairs.is_empty());

    let g = avg_micros(3, || {
        for (s, t) in &pairs {
            grf.reachable(*s, *t, 8, None).unwrap();
        }
    });
    let r = avg_micros(3, || {
        for (s, t) in &pairs {
            sqg.reachable(*s, *t, 8, None).unwrap();
        }
    });
    // Paper: orders of magnitude. Guardrail: at least 10×.
    assert!(
        r > 10.0 * g,
        "expected ≥10× gap at depth 8: grfusion {g:.1}µs vs sqlgraph {r:.1}µs"
    );
}

#[test]
#[ignore = "timing-sensitive; run with: cargo test --release -- --ignored"]
fn grfusion_beats_grail_on_shortest_paths() {
    let ds = protein(2_000, 43);
    let adj = Adjacency::build(&ds);
    let grf = GrFusionSystem::load(&ds).unwrap();
    let grail = GrailSystem::load(&ds).unwrap();
    let pairs = random_connected_pairs(&ds, &adj, 6, 5, 7);
    assert!(!pairs.is_empty());

    let g = avg_micros(3, || {
        for (s, t) in &pairs {
            grf.shortest_path_cost(*s, *t, None).unwrap();
        }
    });
    let r = avg_micros(3, || {
        for (s, t) in &pairs {
            grail.shortest_path_cost(*s, *t, None).unwrap();
        }
    });
    // Paper: large gaps. Guardrail: at least 2×.
    assert!(
        r > 2.0 * g,
        "expected ≥2× gap: grfusion {g:.1}µs vs grail {r:.1}µs"
    );
}

#[test]
#[ignore = "timing-sensitive; run with: cargo test --release -- --ignored"]
fn reachability_time_is_subexponential_in_depth() {
    // GRFusion's reachability must not blow up with the length bound
    // (the visited-set fast path): depth 20 within 50× of depth 4.
    let ds = protein(2_000, 44);
    let adj = Adjacency::build(&ds);
    let grf = GrFusionSystem::load(&ds).unwrap();
    let shallow = pairs_at_distance(&ds, &adj, 4, 5, 7);
    let deep = pairs_at_distance(&ds, &adj, 16, 5, 7);
    if shallow.is_empty() || deep.is_empty() {
        return; // graph too small for the deep workload at this seed
    }
    let t4 = avg_micros(3, || {
        for (s, t) in &shallow {
            grf.reachable(*s, *t, 4, None).unwrap();
        }
    });
    let t16 = avg_micros(3, || {
        for (s, t) in &deep {
            grf.reachable(*s, *t, 16, None).unwrap();
        }
    });
    assert!(
        t16 < 50.0 * t4.max(1.0),
        "depth 16 ({t16:.1}µs) should stay within 50× of depth 4 ({t4:.1}µs)"
    );
}
