//! Tier-1 enforcement of the panic-census lint: `cargo test` fails if any
//! engine crate grows its `unwrap()`/`expect(`/`panic!`/`unreachable!`
//! count past the committed baseline (`xtask/lint-baseline.txt`). The
//! same check is available standalone as `cargo run -p xtask -- lint`.

use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests crate sits one level below the repo root")
}

#[test]
fn panic_census_within_baseline() {
    if let Err(report) = xtask::check(repo_root()) {
        panic!("{report}");
    }
}

/// The ratchet only has teeth if the baseline actually parses and covers
/// the engine crates.
#[test]
fn baseline_covers_engine_crates() {
    let root = repo_root();
    let text = std::fs::read_to_string(root.join(xtask::BASELINE)).expect("baseline exists");
    let baseline = xtask::parse_baseline(&text).expect("baseline parses");
    let names: Vec<&str> = baseline.iter().map(|c| c.name.as_str()).collect();
    for krate in ["common", "core", "graph", "sql", "storage"] {
        assert!(names.contains(&krate), "baseline missing crate `{krate}`");
    }
}
