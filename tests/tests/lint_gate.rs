//! Tier-1 enforcement of the grfusion-analyze suite: `cargo test` fails if
//! any pass regresses — a panic/lossy-cast/hot-loop-alloc count grows past
//! its committed baseline under `xtask/baselines/`, or a zero-tolerance
//! pass (lock-order, shim-stack) finds anything at all. The same gate is
//! available standalone as `cargo run -p xtask -- analyze`; deliberate
//! burn-down moves regenerate baselines with `analyze --update`.

use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests crate sits one level below the repo root")
}

#[test]
fn analyze_gates_hold() {
    if let Err(report) = xtask::check(repo_root()) {
        panic!("{report}");
    }
}

/// The ratchet only has teeth if the committed baselines parse and the
/// panic baseline still covers the engine crates.
#[test]
fn baselines_parse_and_cover_engine_crates() {
    let root = repo_root();
    for pass in xtask::passes::registry() {
        let Some(rel) = pass.baseline_file() else {
            continue;
        };
        let counts = xtask::baseline::load(root, rel)
            .unwrap_or_else(|e| panic!("baseline for `{}`: {e}", pass.name()));
        if pass.name() == "panic" {
            for krate in ["common", "core", "graph", "sql", "storage"] {
                assert!(
                    counts.contains_key(krate),
                    "panic baseline missing crate `{krate}`"
                );
            }
        }
    }
}

/// Every ratcheting pass names a baseline file that exists on disk; a pass
/// silently pointing at a missing file would gate at zero and mask churn.
#[test]
fn ratchet_baseline_files_exist() {
    let root = repo_root();
    for pass in xtask::passes::registry() {
        if let Some(rel) = pass.baseline_file() {
            assert!(
                root.join(rel).is_file(),
                "pass `{}` baseline `{rel}` missing — run `cargo run -p xtask -- analyze {} --update`",
                pass.name(),
                pass.name()
            );
        }
    }
}
