//! Cross-system agreement: GRFusion, SQLGraph, Grail, and the two native
//! graph stores must return identical answers for every query family the
//! evaluation compares them on. This is the correctness bedrock under the
//! benchmark numbers — a fast system that answers differently measures
//! nothing.

use grfusion_baselines::{
    GrFusionSystem, GrailSystem, GraphSystem, NeoDb, SqlGraphSystem, TitanDb,
};
use grfusion_datasets::{
    coauthor, follower, pairs_at_distance, protein, random_connected_pairs, roads, Adjacency,
    Dataset,
};

fn all_datasets(n: usize) -> Vec<Dataset> {
    vec![
        roads(n, 1),
        protein(n, 2),
        coauthor(n, 3),
        follower(n, 4),
    ]
}

#[test]
fn reachability_agreement_across_all_systems() {
    for ds in all_datasets(300) {
        let adj = Adjacency::build(&ds);
        let grf = GrFusionSystem::load(&ds).unwrap();
        let sqg = SqlGraphSystem::load(&ds).unwrap();
        let grail = GrailSystem::load(&ds).unwrap();
        let neo = NeoDb::load(&ds);
        let titan = TitanDb::load(&ds);
        let systems: Vec<&dyn GraphSystem> = vec![&grf, &sqg, &grail, &neo, &titan];

        // Positive cases at several distances + random (possibly negative)
        // pairs.
        let mut cases: Vec<(i64, i64, usize)> = Vec::new();
        for d in [1u32, 2, 3, 4] {
            for (s, t) in pairs_at_distance(&ds, &adj, d, 3, 99) {
                cases.push((s, t, d as usize)); // exactly reachable
                if d > 1 {
                    cases.push((s, t, d as usize - 1)); // too-tight bound
                }
            }
        }
        for (s, t, h) in cases {
            let expected = adj.bfs_depths(s as usize, h as u32)[t as usize] <= h as u32;
            for sys in &systems {
                let got = sys.reachable(s, t, h, None).unwrap();
                assert_eq!(
                    got,
                    expected,
                    "{} disagrees on {}→{} within {h} hops ({})",
                    sys.name(),
                    s,
                    t,
                    ds.kind.label()
                );
            }
        }
    }
}

#[test]
fn constrained_reachability_agreement() {
    let ds = protein(300, 7);
    let sel = 50i64;
    let sub = ds.filter_edges_sel_lt(sel);
    let sub_adj = Adjacency::build(&sub);
    let grf = GrFusionSystem::load(&ds).unwrap();
    let sqg = SqlGraphSystem::load(&ds).unwrap();
    let grail = GrailSystem::load(&ds).unwrap();
    let neo = NeoDb::load(&ds);
    let titan = TitanDb::load(&ds);
    let systems: Vec<&dyn GraphSystem> = vec![&grf, &sqg, &grail, &neo, &titan];

    let mut cases = pairs_at_distance(&sub, &sub_adj, 3, 5, 11);
    cases.extend(pairs_at_distance(&sub, &sub_adj, 2, 5, 13));
    for (s, t) in cases {
        let expected = sub_adj.bfs_depths(s as usize, 4)[t as usize] <= 4;
        for sys in &systems {
            assert_eq!(
                sys.reachable(s, t, 4, Some(sel)).unwrap(),
                expected,
                "{} disagrees on {s}→{t} with sel<{sel}",
                sys.name()
            );
        }
    }
}

#[test]
fn shortest_path_cost_agreement() {
    for ds in [roads(300, 5), follower(300, 6)] {
        let adj = Adjacency::build(&ds);
        let grf = GrFusionSystem::load(&ds).unwrap();
        let grail = GrailSystem::load(&ds).unwrap();
        let neo = NeoDb::load(&ds);
        let titan = TitanDb::load(&ds);

        for (s, t) in random_connected_pairs(&ds, &adj, 4, 8, 21) {
            let reference = neo.shortest_path_cost(s, t, None).unwrap();
            for (name, got) in [
                ("grfusion", grf.shortest_path_cost(s, t, None).unwrap()),
                ("grail", grail.shortest_path_cost(s, t, None).unwrap()),
                ("titan", titan.shortest_path_cost(s, t, None).unwrap()),
            ] {
                match (got, reference) {
                    (Some(a), Some(b)) => assert!(
                        (a - b).abs() < 1e-9,
                        "{name} cost {a} vs reference {b} on {}→{} ({})",
                        s,
                        t,
                        ds.kind.label()
                    ),
                    (a, b) => assert_eq!(a, b, "{name} reachability mismatch on {s}→{t}"),
                }
            }
        }
    }
}

#[test]
fn triangle_count_agreement() {
    for ds in [protein(200, 8), coauthor(200, 9), follower(200, 10)] {
        let grf = GrFusionSystem::load(&ds).unwrap();
        let sqg = SqlGraphSystem::load(&ds).unwrap();
        let neo = NeoDb::load(&ds);
        let titan = TitanDb::load(&ds);
        for sel in [25i64, 60, 100] {
            let reference = neo.count_triangles(sel).unwrap();
            assert_eq!(
                grf.count_triangles(sel).unwrap(),
                reference,
                "grfusion triangles differ at sel {sel} on {}",
                ds.kind.label()
            );
            assert_eq!(
                sqg.count_triangles(sel).unwrap(),
                reference,
                "sqlgraph triangles differ at sel {sel} on {}",
                ds.kind.label()
            );
            assert_eq!(
                titan.count_triangles(sel).unwrap(),
                reference,
                "titan triangles differ at sel {sel} on {}",
                ds.kind.label()
            );
        }
    }
}

#[test]
fn shortest_path_with_selectivity_agreement() {
    let ds = roads(300, 12);
    let sel = 60i64;
    let sub = ds.filter_edges_sel_lt(sel);
    let sub_adj = Adjacency::build(&sub);
    let grf = GrFusionSystem::load(&ds).unwrap();
    let grail = GrailSystem::load(&ds).unwrap();
    let neo = NeoDb::load(&ds);
    for (s, t) in random_connected_pairs(&sub, &sub_adj, 4, 6, 31) {
        let reference = neo.shortest_path_cost(s, t, Some(sel)).unwrap();
        let g1 = grf.shortest_path_cost(s, t, Some(sel)).unwrap();
        let g2 = grail.shortest_path_cost(s, t, Some(sel)).unwrap();
        match (g1, g2, reference) {
            (Some(a), Some(b), Some(r)) => {
                assert!((a - r).abs() < 1e-9, "grfusion {a} vs {r}");
                assert!((b - r).abs() < 1e-9, "grail {b} vs {r}");
            }
            (a, b, r) => {
                assert_eq!(a, r);
                assert_eq!(b, r);
            }
        }
    }
}
