//! Tier-1 battery for the network front-end: loopback roundtrips, deadline
//! and cancellation propagation over the wire, admission-control shedding,
//! graceful drain, bounded overload, and a seeded chaos soak with `net.*`
//! connection faults armed.
//!
//! Every test runs a real [`Server`] on an ephemeral loopback port and
//! talks to it through the blocking [`Client`] (or raw `wire` frames where
//! the test needs to misbehave on purpose).

use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use grfusion::{Database, FaultKind, FaultPlan, FaultRule};
use grfusion_common::{Error, ResourceKind, Value};
use grfusion_server::{wire, Client, Server, ServerConfig, ServerHandle, TenantQuota};

/// A fault-free plan: pins the server's fault state to "none" regardless
/// of any `GRFUSION_FAULTS` the surrounding environment may carry.
fn no_faults() -> Option<FaultPlan> {
    Some(FaultPlan {
        seed: 0,
        rules: Vec::new(),
    })
}

fn fresh_db() -> Arc<Database> {
    let db = Database::new();
    // Neutralize any GRFUSION_FAULTS the environment may have set.
    db.set_fault_plan(None);
    Arc::new(db)
}

/// Fully connected directed graph on `n` vertexes (same combinatorial bomb
/// the robustness battery uses): unbounded path enumeration over it is the
/// workload deadlines and cancellation exist to bound.
fn load_clique(db: &Database, n: i64) {
    db.execute("CREATE TABLE v (id INTEGER PRIMARY KEY)").unwrap();
    db.execute("CREATE TABLE e (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, w DOUBLE)")
        .unwrap();
    let vrows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Integer(i)]).collect();
    db.bulk_insert("v", vrows).unwrap();
    let mut erows = Vec::new();
    let mut eid = 0i64;
    for a in 0..n {
        for b in 0..n {
            if a != b {
                erows.push(vec![
                    Value::Integer(eid),
                    Value::Integer(a),
                    Value::Integer(b),
                    Value::Double(1.0),
                ]);
                eid += 1;
            }
        }
    }
    db.bulk_insert("e", erows).unwrap();
    db.execute(
        "CREATE DIRECTED GRAPH VIEW g VERTEXES(ID = id) FROM v \
         EDGES(ID = id, FROM = a, TO = b, w = w) FROM e",
    )
    .unwrap();
}

const CLIQUE_BOMB: &str = "SELECT COUNT(P) FROM g.Paths P WHERE P.Length >= 1 AND P.Length <= 8";

fn start(db: Arc<Database>, cfg: ServerConfig) -> ServerHandle {
    Server::start(db, cfg).expect("server start")
}

/// Wait until the registry reports no in-flight work (bounded).
fn wait_drained(handle: &ServerHandle) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let busy: usize = handle.stats().iter().map(|t| t.in_flight).sum();
        if busy == 0 {
            return;
        }
        assert!(Instant::now() < deadline, "in-flight work never drained");
        thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn loopback_roundtrip_ddl_dml_query() {
    let db = fresh_db();
    let handle = start(
        db,
        ServerConfig {
            faults: no_faults(),
            ..ServerConfig::default()
        },
    );
    let mut c = Client::connect(handle.addr(), "tenant-1").unwrap();
    c.query("CREATE TABLE kv (k INTEGER PRIMARY KEY, v VARCHAR)")
        .unwrap();
    let r = c
        .query("INSERT INTO kv VALUES (1, 'one'); INSERT INTO kv VALUES (2, 'two')")
        .unwrap();
    assert_eq!(r.rows_affected, 1); // script result is the last statement's
    let r = c.query("SELECT k, v FROM kv ORDER BY k").unwrap();
    assert_eq!(r.columns, vec!["k".to_string(), "v".to_string()]);
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][0], Value::Integer(1));
    assert_eq!(r.rows[1][1], Value::text("two"));
    // Typed engine errors come back as themselves, not stringly blobs.
    let err = c.query("SELECT nope FROM kv").unwrap_err();
    assert!(matches!(err, Error::Analysis(_)), "{err:?}");
    assert!(!err.is_retryable());
    handle.shutdown();
}

#[test]
fn client_deadline_expires_as_typed_resource_exhausted() {
    let db = fresh_db();
    load_clique(&db, 12);
    let handle = start(
        db,
        ServerConfig {
            faults: no_faults(),
            ..ServerConfig::default()
        },
    );
    let mut c = Client::connect(handle.addr(), "t").unwrap();
    let start_at = Instant::now();
    let err = c.query_with_deadline(CLIQUE_BOMB, 150).unwrap_err();
    let elapsed = start_at.elapsed();
    assert!(
        matches!(
            err,
            Error::ResourceExhausted {
                kind: ResourceKind::Deadline,
                ..
            }
        ),
        "{err:?}"
    );
    // The deadline tripped roughly on time, not after the bomb finished.
    assert!(elapsed < Duration::from_secs(5), "{elapsed:?}");
    // The engine is still healthy for the next query on the same conn.
    let r = c
        .query("SELECT COUNT(P) FROM g.Paths P WHERE P.StartVertex.Id = 0 AND P.Length = 1")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Integer(11)));
    handle.shutdown();
}

#[test]
fn tenant_quota_sheds_with_retryable_overloaded() {
    let db = fresh_db();
    load_clique(&db, 12);
    let handle = start(
        db,
        ServerConfig {
            workers: 2,
            quota: TenantQuota {
                max_concurrent: 1,
                max_queued_bytes: 1 << 20,
            },
            retry_after_ms: 25,
            faults: no_faults(),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();
    // Occupy tenant "t"'s single slot with a bounded bomb.
    let occupier = thread::spawn(move || {
        let mut c = Client::connect(addr, "t").unwrap();
        let err = c.query_with_deadline(CLIQUE_BOMB, 1500).unwrap_err();
        assert!(
            matches!(err, Error::ResourceExhausted { .. }),
            "{err:?}"
        );
    });
    // Wait until the occupier is actually in flight.
    let spin = Instant::now() + Duration::from_secs(5);
    while handle.stats().iter().map(|t| t.in_flight).sum::<usize>() == 0 {
        assert!(Instant::now() < spin, "occupier never admitted");
        thread::sleep(Duration::from_millis(5));
    }
    // Same tenant: shed. Different tenant: admitted.
    let mut c2 = Client::connect(addr, "t").unwrap();
    let err = c2.query("SELECT COUNT(*) FROM v").unwrap_err();
    assert_eq!(err, Error::Overloaded { retry_after_ms: 25 });
    assert!(err.is_retryable());
    let mut other = Client::connect(addr, "other").unwrap();
    other.query("SELECT COUNT(*) FROM v").unwrap();
    occupier.join().unwrap();
    // Slot released: the shed tenant's retry now succeeds.
    wait_drained(&handle);
    c2.query("SELECT COUNT(*) FROM v").unwrap();
    let stats = handle.stats();
    let t = stats.iter().find(|s| s.tenant == "t").unwrap();
    assert!(t.shed >= 1, "{stats:?}");
    handle.shutdown();
}

#[test]
fn disconnect_mid_query_cancels_and_preserves_committed_prefix() {
    let db = fresh_db();
    load_clique(&db, 12);
    db.execute("CREATE TABLE log (id INTEGER PRIMARY KEY, note VARCHAR)")
        .unwrap();
    let handle = start(
        db.clone(),
        ServerConfig {
            faults: no_faults(),
            ..ServerConfig::default()
        },
    );

    // Acked work over a well-behaved connection.
    let mut c = Client::connect(handle.addr(), "t").unwrap();
    c.query("INSERT INTO log VALUES (1, 'acked')").unwrap();
    let expected = db.state_dump().unwrap();

    // Now a raw connection that sends a script — committed INSERT, then a
    // bomb, then another INSERT — and hangs up while the bomb runs. The
    // server must cancel the script at the bomb; the trailing INSERT never
    // executes and the aborted statement leaves no partial state.
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    wire::write_frame(
        &mut raw,
        &wire::Frame::Hello {
            tenant: "t".to_string(),
        },
    )
    .unwrap();
    assert!(matches!(
        wire::read_frame(&mut raw).unwrap(),
        Some(wire::Frame::HelloAck)
    ));
    wire::write_frame(
        &mut raw,
        &wire::Frame::Query {
            id: 1,
            deadline_ms: 0,
            sql: format!(
                "INSERT INTO log VALUES (2, 'doomed-prefix'); {CLIQUE_BOMB}; \
                 INSERT INTO log VALUES (3, 'never-runs')"
            ),
        },
    )
    .unwrap();
    // Give the script time to commit its first statement and enter the
    // bomb, then vanish without reading the response.
    thread::sleep(Duration::from_millis(200));
    drop(raw);

    wait_drained(&handle);
    let after = db.state_dump().unwrap();
    // The committed prefix (insert id=2) survives; the statement the
    // cancellation aborted (the bomb, read-only) and everything after it
    // left no trace. Replaying the acked prefix serially must match.
    let replay = fresh_db();
    load_clique(&replay, 12);
    replay
        .execute("CREATE TABLE log (id INTEGER PRIMARY KEY, note VARCHAR)")
        .unwrap();
    replay.execute("INSERT INTO log VALUES (1, 'acked')").unwrap();
    replay
        .execute("INSERT INTO log VALUES (2, 'doomed-prefix')")
        .unwrap();
    assert_eq!(after, replay.state_dump().unwrap());
    assert_ne!(after, expected, "prefix insert must have committed");
    handle.shutdown();
}

#[test]
fn graceful_drain_refuses_new_work_and_cancels_stragglers() {
    let db = fresh_db();
    load_clique(&db, 12);
    let handle = start(
        db,
        ServerConfig {
            drain_deadline_ms: 300,
            faults: no_faults(),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();
    // A long-running query that will still be in flight when drain begins.
    let straggler = thread::spawn(move || {
        let mut c = Client::connect(addr, "t").unwrap();
        c.query(CLIQUE_BOMB)
    });
    let spin = Instant::now() + Duration::from_secs(5);
    while handle.stats().iter().map(|t| t.in_flight).sum::<usize>() == 0 {
        assert!(Instant::now() < spin, "straggler never admitted");
        thread::sleep(Duration::from_millis(5));
    }
    // A second connection established before the drain starts.
    let mut bystander = Client::connect(addr, "t2").unwrap();

    let drainer = thread::spawn(move || handle.shutdown());
    thread::sleep(Duration::from_millis(50));
    // New work during the drain is refused with the typed retryable error.
    let err = bystander.query("SELECT COUNT(*) FROM v").unwrap_err();
    assert!(
        matches!(err, Error::ShuttingDown) || matches!(err, Error::Unavailable(_)),
        "{err:?}"
    );
    if let Error::ShuttingDown = err {
        assert!(err.is_retryable());
    }
    // The straggler was cancelled at the drain deadline with a typed
    // resource error, not dropped on the floor.
    let res = straggler.join().unwrap();
    let err = res.unwrap_err();
    assert!(
        matches!(err, Error::ResourceExhausted { .. }) || matches!(err, Error::Unavailable(_)),
        "{err:?}"
    );
    drainer.join().unwrap();
}

/// Seeded chaos soak: 8 tenants hammer the server with idempotent DML and
/// reads while every `net.*` fault site is armed. Invariants: the process
/// never panics, every shed/refusal is typed retryable, and the final
/// state dump byte-matches a serial replay of exactly the acked
/// statements.
#[test]
fn chaos_soak_with_net_faults_matches_serial_replay() {
    const TENANTS: usize = 8;
    const STMTS_PER_TENANT: usize = 12;

    let db = fresh_db();
    db.execute("CREATE TABLE acct (id INTEGER PRIMARY KEY, owner INTEGER, val INTEGER)")
        .unwrap();
    let mut seed_rows = Vec::new();
    for t in 0..TENANTS as i64 {
        for k in 0..5i64 {
            seed_rows.push(vec![
                Value::Integer(t * 100 + k),
                Value::Integer(t),
                Value::Integer(0),
            ]);
        }
    }
    db.bulk_insert("acct", seed_rows.clone()).unwrap();

    let faults = FaultPlan {
        seed: 42,
        rules: vec![
            FaultRule {
                site: "net.accept".into(),
                nth: 3,
                kind: FaultKind::Error,
            },
            FaultRule {
                site: "net.read_frame".into(),
                nth: 7,
                kind: FaultKind::Error,
            },
            FaultRule {
                site: "net.write_frame".into(),
                nth: 11,
                kind: FaultKind::Error,
            },
            FaultRule {
                site: "net.slow_client".into(),
                nth: 5,
                kind: FaultKind::Error,
            },
            FaultRule {
                site: "net.disconnect".into(),
                nth: 9,
                kind: FaultKind::Error,
            },
        ],
    };
    let handle = start(
        db.clone(),
        ServerConfig {
            workers: 4,
            quota: TenantQuota {
                max_concurrent: 2,
                max_queued_bytes: 1 << 16,
            },
            faults: Some(faults),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    let mut threads = Vec::new();
    for t in 0..TENANTS {
        threads.push(thread::spawn(move || {
            let tenant = format!("tenant-{t}");
            let mut acked: Vec<String> = Vec::new();
            let mut client: Option<Client> = None;
            for k in 0..STMTS_PER_TENANT {
                // Idempotent by construction: absolute-value UPDATE on rows
                // this tenant owns exclusively, so at-least-once retries
                // and cross-tenant interleavings cannot change the final
                // state a serial replay of acked statements produces.
                let stmt = format!(
                    "UPDATE acct SET val = {} WHERE id = {}",
                    k as i64 * 10 + t as i64,
                    t as i64 * 100 + (k % 5) as i64
                );
                let mut attempts = 0;
                loop {
                    attempts += 1;
                    assert!(attempts < 100, "tenant {t} stuck on `{stmt}`");
                    let c = match client.as_mut() {
                        Some(c) => c,
                        None => match Client::connect(addr, &tenant) {
                            Ok(c) => {
                                client = Some(c);
                                client.as_mut().unwrap()
                            }
                            Err(e) => {
                                assert!(e.is_retryable(), "fatal connect error: {e:?}");
                                thread::sleep(Duration::from_millis(5));
                                continue;
                            }
                        },
                    };
                    match c.query(&stmt) {
                        Ok(_) => {
                            acked.push(stmt.clone());
                            break;
                        }
                        Err(e) => {
                            assert!(e.is_retryable(), "fatal error for `{stmt}`: {e:?}");
                            if matches!(e, Error::Unavailable(_)) {
                                client = None; // torn connection: rebuild
                            }
                            thread::sleep(Duration::from_millis(5));
                        }
                    }
                }
                // Interleave a read; its result is incidental, but it must
                // never fail fatally.
                let mut torn = false;
                if let Some(c) = client.as_mut() {
                    if let Err(e) = c.query("SELECT COUNT(*) FROM acct") {
                        assert!(e.is_retryable(), "fatal read error: {e:?}");
                        torn = matches!(e, Error::Unavailable(_));
                    }
                }
                if torn {
                    client = None;
                }
            }
            acked
        }));
    }
    let acked_per_tenant: Vec<Vec<String>> =
        threads.into_iter().map(|t| t.join().unwrap()).collect();
    wait_drained(&handle);
    handle.shutdown();

    // Serial replay of exactly the acked statements, tenant by tenant
    // (tenants own disjoint rows, so inter-tenant order is immaterial).
    let replay = fresh_db();
    replay
        .execute("CREATE TABLE acct (id INTEGER PRIMARY KEY, owner INTEGER, val INTEGER)")
        .unwrap();
    replay.bulk_insert("acct", seed_rows).unwrap();
    for acked in &acked_per_tenant {
        for stmt in acked {
            replay.execute(stmt).unwrap();
        }
    }
    assert_eq!(db.state_dump().unwrap(), replay.state_dump().unwrap());
}

/// Overload stays bounded: a quota of one and saturating clients produce
/// typed sheds and flat queue occupancy, never unbounded buffering.
#[test]
fn saturating_tenant_is_shed_not_buffered() {
    let db = fresh_db();
    load_clique(&db, 8);
    let handle = start(
        db,
        ServerConfig {
            workers: 2,
            quota: TenantQuota {
                max_concurrent: 1,
                max_queued_bytes: 256,
            },
            retry_after_ms: 10,
            faults: no_faults(),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();
    let mut threads = Vec::new();
    for _ in 0..4 {
        threads.push(thread::spawn(move || {
            let mut c = Client::connect(addr, "hammer").unwrap();
            let mut done = 0u64;
            let mut shed = 0u64;
            for _ in 0..25 {
                // Each admitted query burns its full 30 ms deadline on the
                // bomb, so with quota 1 the other hammers must collide.
                match c.query_with_deadline(
                    "SELECT COUNT(P) FROM g.Paths P WHERE P.Length >= 1 AND P.Length <= 7",
                    30,
                ) {
                    Ok(_) | Err(Error::ResourceExhausted { .. }) => done += 1,
                    Err(Error::Overloaded { retry_after_ms }) => {
                        assert_eq!(retry_after_ms, 10);
                        shed += 1;
                    }
                    Err(e) => panic!("unexpected error under overload: {e:?}"),
                }
            }
            (done, shed)
        }));
    }
    let mut total_done = 0;
    let mut total_shed = 0;
    for t in threads {
        let (done, shed) = t.join().unwrap();
        total_done += done;
        total_shed += shed;
    }
    assert!(total_done > 0, "some queries must get through");
    assert!(total_shed > 0, "quota 1 with 4 hammers must shed");
    let stats = handle.stats();
    let h = stats.iter().find(|s| s.tenant == "hammer").unwrap();
    assert_eq!(h.in_flight, 0);
    assert_eq!(h.queued_bytes, 0);
    assert_eq!(h.admitted, total_done);
    assert_eq!(h.shed, total_shed);
    handle.shutdown();
}
