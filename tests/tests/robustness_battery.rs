//! Robustness battery: the resource governor (deadline / cancellation /
//! memory accountant) and the deterministic fault-injection harness.
//!
//! Two invariant families are proven here:
//!
//! * **Bounded abort**: a hostile query (unbounded enumeration on a clique)
//!   aborts with a typed `ResourceExhausted` error within 2× the configured
//!   deadline, serially and with 4 morsel workers, and the engine remains
//!   fully usable afterwards — no poisoned locks, no leaked threads, no
//!   half-built state.
//! * **Crash consistency**: for every DML fault-injection site, a fault
//!   driven into the middle of INSERT/UPDATE/DELETE graph-view maintenance
//!   leaves storage, indexes, and every topology byte-identical to never
//!   having run the statement, and the retried statement succeeds.
//!
//! All fixtures build their config explicitly (never from the environment)
//! so these tests cannot race the env-var tests in this binary.

use std::time::{Duration, Instant};

use grfusion::{
    CsrConfig, Database, EngineConfig, Error, FaultKind, FaultPlan, GovernorConfig,
    ParallelConfig, ResourceKind, Value, DML_FAULT_SITES,
};
use proptest::prelude::*;

/// Engine config immune to environment variables.
fn base_config() -> EngineConfig {
    EngineConfig {
        optimizer: Default::default(),
        limits: Default::default(),
        parallel: ParallelConfig::serial(),
        governor: GovernorConfig::default(),
        csr: CsrConfig::sealed(),
        epochs: Default::default(),
        batch: Default::default(),
    }
}

fn db_with(cfg: EngineConfig) -> Database {
    let db = Database::with_config(cfg);
    // Neutralize any GRFUSION_FAULTS another test may have set concurrently.
    db.set_fault_plan(None);
    db
}

/// Fully connected directed graph on `n` vertexes: unbounded simple-path
/// enumeration on it is combinatorially explosive (n=12 has ~10^10 simple
/// paths of length ≤ 8), which is exactly the workload the governor exists
/// to bound.
fn clique_db(n: i64, cfg: EngineConfig) -> Database {
    let db = db_with(cfg);
    db.execute("CREATE TABLE v (id INTEGER PRIMARY KEY)").unwrap();
    db.execute("CREATE TABLE e (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, w DOUBLE)")
        .unwrap();
    let vrows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Integer(i)]).collect();
    db.bulk_insert("v", vrows).unwrap();
    let mut erows = Vec::new();
    let mut eid = 0i64;
    for a in 0..n {
        for b in 0..n {
            if a != b {
                erows.push(vec![
                    Value::Integer(eid),
                    Value::Integer(a),
                    Value::Integer(b),
                    Value::Double(1.0),
                ]);
                eid += 1;
            }
        }
    }
    db.bulk_insert("e", erows).unwrap();
    db.execute(
        "CREATE DIRECTED GRAPH VIEW g VERTEXES(ID = id) FROM v \
         EDGES(ID = id, FROM = a, TO = b, w = w) FROM e",
    )
    .unwrap();
    db
}

const CLIQUE_BOMB: &str =
    "SELECT COUNT(P) FROM g.Paths P WHERE P.Length >= 1 AND P.Length <= 8";

/// Fig7-family sanity queries: the same engine that just aborted a hostile
/// query must still answer these correctly.
fn assert_engine_usable(db: &Database, n: i64) {
    let rs = db
        .execute("SELECT COUNT(P) FROM g.Paths P WHERE P.StartVertex.Id = 0 AND P.Length = 1")
        .unwrap();
    assert_eq!(rs.rows[0][0].to_string(), (n - 1).to_string());
    let rs = db
        .execute(
            "SELECT PS.Cost FROM g.Paths PS HINT(SHORTESTPATH(w)) \
             WHERE PS.StartVertex.Id = 0 AND PS.EndVertex.Id = 1 AND PS.Length <= 3 LIMIT 1",
        )
        .unwrap();
    assert_eq!(rs.rows[0][0].to_string(), "1");
}

fn deadline_smoke(workers: usize) {
    let deadline_ms = 100u64;
    let mut cfg = base_config();
    cfg.governor.deadline_ms = Some(deadline_ms);
    cfg.parallel = ParallelConfig {
        workers,
        morsel_size: 4,
    };
    let n = 12i64;
    let db = clique_db(n, cfg);

    let start = Instant::now();
    let err = db.execute(CLIQUE_BOMB).unwrap_err();
    let elapsed = start.elapsed();
    assert!(
        matches!(
            err,
            Error::ResourceExhausted {
                kind: ResourceKind::Deadline,
                ..
            }
        ),
        "workers={workers}: expected deadline abort, got {err:?}"
    );
    assert!(
        elapsed < Duration::from_millis(2 * deadline_ms),
        "workers={workers}: abort took {elapsed:?}, over 2x the {deadline_ms}ms deadline"
    );

    // The same database, deadline cleared, answers correctly: the abort
    // left no poisoned locks, leaked worker threads, or half-built state.
    let mut cfg = db.config();
    cfg.governor.deadline_ms = None;
    db.set_config(cfg);
    assert_engine_usable(&db, n);
}

#[test]
fn deadline_bounds_hostile_enumeration_serial() {
    deadline_smoke(1);
}

#[test]
fn deadline_bounds_hostile_enumeration_parallel() {
    deadline_smoke(4);
}

#[test]
fn memory_cap_bounds_materialization() {
    let n = 12i64;
    let mut cfg = base_config();
    cfg.governor.max_memory_bytes = Some(64 * 1024);
    let db = clique_db(n, cfg);
    // 13k+ paths at ~100 bytes each blow a 64 KiB cap long before the scan
    // drains.
    let err = db
        .execute("SELECT COUNT(P) FROM g.Paths P WHERE P.Length >= 1 AND P.Length <= 3")
        .unwrap_err();
    assert!(
        matches!(
            err,
            Error::ResourceExhausted {
                kind: ResourceKind::Bytes,
                ..
            }
        ),
        "expected memory abort, got {err:?}"
    );
    // Uncapped, the same query completes on the same database.
    let mut cfg = db.config();
    cfg.governor.max_memory_bytes = None;
    db.set_config(cfg);
    let rs = db
        .execute("SELECT COUNT(P) FROM g.Paths P WHERE P.Length >= 1 AND P.Length <= 3")
        .unwrap();
    // The count must match a never-governed database of the same shape.
    let fresh = clique_db(n, base_config());
    let expect = fresh
        .execute("SELECT COUNT(P) FROM g.Paths P WHERE P.Length >= 1 AND P.Length <= 3")
        .unwrap();
    assert_eq!(rs.rows[0][0], expect.rows[0][0]);
    assert_engine_usable(&db, n);
}

#[test]
fn cancellation_from_another_thread() {
    let mut cfg = base_config();
    cfg.optimizer.default_max_path_len = 10;
    let db = clique_db(12, cfg);
    let token = db.cancel_token();
    std::thread::scope(|s| {
        s.spawn(|| {
            std::thread::sleep(Duration::from_millis(30));
            token.cancel();
        });
        let start = Instant::now();
        let err = db.execute(CLIQUE_BOMB).unwrap_err();
        assert!(
            matches!(
                err,
                Error::ResourceExhausted {
                    kind: ResourceKind::Cancelled,
                    ..
                }
            ),
            "expected cancellation, got {err:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "cancellation latency unreasonable"
        );
    });
    // Edge-triggered: the cancel consumed itself with the in-flight query,
    // so the very next statement on the same database runs to completion —
    // the multiplexed-connection contract (one client's cancel must never
    // bleed into the next pooled query).
    assert_engine_usable(&db, 12);
}

// ---------------------------------------------------------------------------
// Row-budget emission accounting (serial/parallel equivalence)
// ---------------------------------------------------------------------------

#[test]
fn limit_query_budget_is_worker_count_independent() {
    // The budget is charged on emission, never during enumeration: a
    // LIMIT 1 query that fits a tiny row budget serially must also fit it
    // with 4 workers eagerly enumerating whole morsels.
    let sql = "SELECT P.PathString FROM g.Paths P HINT(DFS) \
               WHERE P.Length >= 1 AND P.Length <= 3 LIMIT 1";
    let mut cfg = base_config();
    cfg.limits.max_intermediate_rows = Some(10);
    let db = clique_db(8, cfg);
    let serial = db.execute(sql).unwrap().rows;
    assert_eq!(serial.len(), 1);

    let mut cfg = db.config();
    cfg.parallel = ParallelConfig {
        workers: 4,
        morsel_size: 2,
    };
    db.set_config(cfg);
    let parallel = db.execute(sql).unwrap().rows;
    assert_eq!(parallel, serial, "parallel budget accounting diverged");

    // Without the LIMIT the same budget does trip — at emission, with the
    // typed rows error, at any worker count.
    for workers in [1usize, 4] {
        let mut cfg = db.config();
        cfg.parallel = ParallelConfig {
            workers,
            morsel_size: 2,
        };
        db.set_config(cfg);
        let err = db
            .execute(
                "SELECT P.PathString FROM g.Paths P HINT(DFS) \
                 WHERE P.Length >= 1 AND P.Length <= 3",
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                Error::ResourceExhausted {
                    kind: ResourceKind::Rows,
                    ..
                }
            ),
            "workers={workers}: expected rows abort, got {err:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite lock for emission-time budget accounting: on random small
    /// graphs, a LIMIT 1 enumeration under a tight row budget either
    /// succeeds on both serial and 4-worker execution with identical rows,
    /// or fails on both with the same typed error — worker count can never
    /// change budget semantics.
    #[test]
    fn limit_one_budget_serial_equivalence(
        (n, edges) in (3usize..8).prop_flat_map(|n| {
            (Just(n), proptest::collection::vec((0..n, 0..n), 1..20))
        })
    ) {
        let mut cfg = base_config();
        cfg.limits.max_intermediate_rows = Some(3);
        let db = db_with(cfg);
        db.execute("CREATE TABLE v (id INTEGER PRIMARY KEY)").unwrap();
        db.execute("CREATE TABLE e (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER)").unwrap();
        let vrows: Vec<Vec<Value>> = (0..n as i64).map(|i| vec![Value::Integer(i)]).collect();
        db.bulk_insert("v", vrows).unwrap();
        let erows: Vec<Vec<Value>> = edges
            .iter()
            .enumerate()
            .map(|(i, (a, b))| {
                vec![Value::Integer(i as i64), Value::Integer(*a as i64), Value::Integer(*b as i64)]
            })
            .collect();
        db.bulk_insert("e", erows).unwrap();
        db.execute(
            "CREATE DIRECTED GRAPH VIEW g VERTEXES(ID = id) FROM v \
             EDGES(ID = id, FROM = a, TO = b) FROM e",
        ).unwrap();

        let sql = "SELECT P.PathString FROM g.Paths P HINT(DFS) \
                   WHERE P.Length >= 1 AND P.Length <= 3 LIMIT 1";
        let serial = db.execute(sql);
        let mut pcfg = db.config();
        pcfg.parallel = ParallelConfig { workers: 4, morsel_size: 2 };
        db.set_config(pcfg);
        let parallel = db.execute(sql);
        match (serial, parallel) {
            (Ok(s), Ok(p)) => prop_assert_eq!(s.rows, p.rows),
            (Err(se), Err(pe)) => prop_assert_eq!(se.to_string(), pe.to_string()),
            (s, p) => prop_assert!(false, "diverged: serial {:?} vs parallel {:?}",
                                   s.map(|r| r.rows.len()), p.map(|r| r.rows.len())),
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-injected DML: all-or-nothing across storage + indexes + topology
// ---------------------------------------------------------------------------

const CREATE_G: &str = "CREATE DIRECTED GRAPH VIEW g \
                        VERTEXES(ID = id) FROM u \
                        EDGES(ID = id, FROM = a, TO = b) FROM r";

/// Small social fixture whose DML reaches every maintenance path: vertex
/// source `u`, edge source `r`, ring topology 1->2->3->4->5->1.
fn social_db(cfg: EngineConfig) -> Database {
    let db = db_with(cfg);
    db.execute("CREATE TABLE u (id INTEGER PRIMARY KEY)").unwrap();
    db.execute("CREATE TABLE r (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER)")
        .unwrap();
    db.execute("INSERT INTO u VALUES (1), (2), (3), (4), (5)").unwrap();
    db.execute("INSERT INTO r VALUES (100, 1, 2), (101, 2, 3), (102, 3, 4), (103, 4, 5), (104, 5, 1)")
        .unwrap();
    db.execute(CREATE_G).unwrap();
    db
}

/// A DML statement guaranteed to hit the given injection site at least once
/// on the social fixture.
fn statement_for(site: &str) -> &'static str {
    if site.starts_with("dml.insert") {
        "INSERT INTO u VALUES (10)"
    } else if site.starts_with("dml.delete") {
        "DELETE FROM r WHERE id = 100"
    } else if site == "dml.update.relink" || site == "dml.update.maintain" || site == "dml.seal" {
        // The relink overlays 3 of the ring's 5 vertexes (0.6 ≥ the 0.25
        // re-seal threshold), so the same statement deterministically
        // reaches the post-statement `dml.seal` site too.
        "UPDATE r SET b = 4 WHERE id = 100"
    } else {
        // update.cascade / update.storage / update.post: a vertex-id rename
        // that cascades into the edge source.
        "UPDATE u SET id = 9 WHERE id = 1"
    }
}

/// The maintained topology must equal a fresh re-extraction from the final
/// table state (drop + recreate the view; dumps are sorted so slot layout
/// does not matter).
fn assert_reextraction_consistent(db: &Database) {
    let maintained = db.state_dump().unwrap();
    db.execute("DROP GRAPH VIEW g").unwrap();
    db.execute(CREATE_G).unwrap();
    assert_eq!(
        db.state_dump().unwrap(),
        maintained,
        "maintained topology diverged from fresh extraction"
    );
}

/// Drive `kind` into `site` on its first hit; the statement must be
/// all-or-nothing, the retry must succeed, and the final topology must
/// match a fresh re-extraction.
fn run_site(site: &str, kind: &str, workers: usize) {
    let mut cfg = base_config();
    cfg.parallel = ParallelConfig {
        workers,
        morsel_size: 4,
    };
    let db = social_db(cfg);
    let stmt = statement_for(site);
    let before = db.state_dump().unwrap();

    db.set_fault_plan(Some(
        FaultPlan::parse(&format!("0:{site}@1={kind}")).unwrap(),
    ));
    let err = db.execute(stmt).unwrap_err();
    if kind == "alloc" || kind == "deadline" {
        assert!(
            matches!(err, Error::ResourceExhausted { .. }),
            "site {site}: injected {kind} surfaced as {err:?}"
        );
    }
    assert_eq!(
        db.state_dump().unwrap(),
        before,
        "site {site} ({kind}, workers={workers}): faulted statement was not all-or-nothing"
    );

    // Retry: the rule already fired, so the same statement now succeeds and
    // leaves a topology identical to re-extracting from the tables.
    db.execute(stmt).unwrap();
    assert_ne!(db.state_dump().unwrap(), before, "retried statement was a no-op");
    assert_reextraction_consistent(&db);
}

#[test]
fn fault_sweep_every_dml_site_serial() {
    for site in DML_FAULT_SITES {
        run_site(site, "error", 1);
    }
}

#[test]
fn fault_sweep_every_dml_site_parallel_config() {
    for site in DML_FAULT_SITES {
        run_site(site, "error", 4);
    }
}

#[test]
fn fault_kinds_all_roll_back() {
    for kind in ["error", "alloc", "deadline"] {
        run_site("dml.update.relink", kind, 1);
    }
}

#[test]
fn seeded_fault_sweep_is_deterministic() {
    // Prefix rule over all DML sites with a seed-derived hit count: the
    // sweep the CI recipe runs. Every seed must roll back cleanly and the
    // retry must converge to the same final state.
    for seed in [1u64, 3, 5, 7, 11] {
        let db = social_db(base_config());
        let before = db.state_dump().unwrap();
        db.set_fault_plan(Some(FaultPlan::parse(&format!("{seed}:dml=error")).unwrap()));
        // The cascading rename hits maintain, cascade (x2), storage, post —
        // at least 4 sites, so the seeded nth in 1..=4 always fires.
        let stmt = "UPDATE u SET id = 9 WHERE id = 1";
        let err = db.execute(stmt).unwrap_err();
        assert!(
            err.to_string().contains("injected fault"),
            "seed {seed}: expected injected fault, got {err:?}"
        );
        assert_eq!(db.state_dump().unwrap(), before, "seed {seed}: not all-or-nothing");
        db.execute(stmt).unwrap();
        assert_reextraction_consistent(&db);
        let rs = db.execute("SELECT COUNT(*) FROM u WHERE id = 9").unwrap();
        assert_eq!(rs.rows[0][0].to_string(), "1", "seed {seed}");
    }
}

#[test]
fn explicit_transaction_survives_injected_fault() {
    // Statement-level atomicity inside an explicit transaction: the faulted
    // statement rolls back to its savepoint, earlier statements survive,
    // and COMMIT lands exactly the surviving work.
    let db = social_db(base_config());
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO u VALUES (20)").unwrap();
    db.set_fault_plan(Some(FaultPlan::parse("0:dml.insert.maintain@1=error").unwrap()));
    assert!(db.execute("INSERT INTO u VALUES (21)").is_err());
    db.set_fault_plan(None);
    db.execute("COMMIT").unwrap();
    let rs = db.execute("SELECT COUNT(*) FROM u").unwrap();
    assert_eq!(rs.rows[0][0].to_string(), "6", "5 seed rows + the surviving insert");
    assert_reextraction_consistent(&db);
}

// ---------------------------------------------------------------------------
// Operator-level fault injection
// ---------------------------------------------------------------------------

#[test]
fn operator_fault_aborts_query_not_engine() {
    let db = social_db(base_config());
    let sql = "SELECT P.PathString FROM g.Paths P HINT(DFS) \
               WHERE P.Length >= 1 AND P.Length <= 2";
    let clean = db.execute(sql).unwrap().rows;
    assert!(!clean.is_empty());

    db.set_fault_plan(Some(FaultPlan::parse("0:PathScan@2=error").unwrap()));
    let err = db.execute(sql).unwrap_err();
    assert!(
        err.to_string().contains("injected fault at `PathScan"),
        "wrong injection point: {err:?}"
    );
    // The engine (and the identical retry, once the plan is cleared) is
    // untouched by the mid-query abort.
    db.set_fault_plan(None);
    assert_eq!(db.execute(sql).unwrap().rows, clean);

    // The typed convenience constructor round-trips through parse().
    assert_eq!(
        FaultPlan::parse("0:PathScan@2=error").unwrap(),
        FaultPlan::single("PathScan", 2, FaultKind::Error)
    );
}

// ---------------------------------------------------------------------------
// Sealed-CSR interaction: faults, memory cap, and cancellation vs. seal
// ---------------------------------------------------------------------------

#[test]
fn seal_fault_kinds_all_roll_back() {
    // The automatic re-seal runs inside the statement's atomicity scope:
    // any fault kind driven into `dml.seal` must abort the whole statement
    // all-or-nothing, exactly like the other maintenance sites.
    for kind in ["error", "alloc", "deadline"] {
        run_site("dml.seal", kind, 1);
    }
}

#[test]
fn memory_cap_abort_mid_seal_leaves_engine_usable() {
    // The governor charges the compacted arrays *before* the re-seal
    // builds them: with a cap below the estimate, the triggering statement
    // aborts with a typed Bytes error, rolls back all-or-nothing, and the
    // topology stays on its previous (sealed + overlay) layout.
    let mut cfg = base_config();
    cfg.governor.max_memory_bytes = Some(16);
    let db = social_db(cfg);
    let before = db.state_dump().unwrap();
    let err = db.execute("UPDATE r SET b = 4 WHERE id = 100").unwrap_err();
    assert!(
        matches!(
            err,
            Error::ResourceExhausted {
                kind: ResourceKind::Bytes,
                ..
            }
        ),
        "expected memory abort from the re-seal charge, got {err:?}"
    );
    assert_eq!(
        db.state_dump().unwrap(),
        before,
        "memory-capped re-seal was not all-or-nothing"
    );

    // Cap lifted: the identical statement succeeds, the deferred re-seal
    // folds the overlay back in, and the topology matches re-extraction.
    let mut cfg = db.config();
    cfg.governor.max_memory_bytes = None;
    db.set_config(cfg);
    db.execute("UPDATE r SET b = 4 WHERE id = 100").unwrap();
    let stats = db.graph_stats("g").unwrap();
    assert!(stats.sealed_bytes > 0, "re-seal did not run after cap lift");
    assert_eq!(stats.overlay_bytes, 0, "overlay not folded back by re-seal");
    assert_reextraction_consistent(&db);
}

#[test]
fn cancel_during_sealed_parallel_bfs() {
    // Cooperative cancellation must reach morsel workers traversing the
    // sealed CSR arrays just as it reaches the adjacency path.
    let mut cfg = base_config();
    cfg.optimizer.default_max_path_len = 10;
    cfg.parallel = ParallelConfig {
        workers: 4,
        morsel_size: 4,
    };
    let db = clique_db(12, cfg);
    let stats = db.graph_stats("g").unwrap();
    assert!(stats.sealed_bytes > 0, "fixture topology is not sealed");

    let token = db.cancel_token();
    std::thread::scope(|s| {
        s.spawn(|| {
            std::thread::sleep(Duration::from_millis(30));
            token.cancel();
        });
        let start = Instant::now();
        let err = db
            .execute(
                "SELECT COUNT(P) FROM g.Paths P HINT(BFS) \
                 WHERE P.Length >= 1 AND P.Length <= 8",
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                Error::ResourceExhausted {
                    kind: ResourceKind::Cancelled,
                    ..
                }
            ),
            "expected cancellation on sealed parallel BFS, got {err:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "cancellation latency unreasonable on sealed layout"
        );
    });
    // No reset step: cancellation is edge-triggered and the engine is
    // immediately usable.
    assert_engine_usable(&db, 12);
}

// ---------------------------------------------------------------------------
// Environment knobs
// ---------------------------------------------------------------------------

#[test]
fn governor_env_knobs_reach_engine_config() {
    std::env::set_var("GRFUSION_DEADLINE_MS", "50");
    std::env::set_var("GRFUSION_MEMORY_BYTES", "1048576");
    let cfg = EngineConfig::default();
    std::env::remove_var("GRFUSION_DEADLINE_MS");
    std::env::remove_var("GRFUSION_MEMORY_BYTES");
    assert_eq!(cfg.governor.deadline_ms, Some(50));
    assert_eq!(cfg.governor.max_memory_bytes, Some(1_048_576));
    // Plain defaults stay off: governance is strictly opt-in.
    assert_eq!(GovernorConfig::default().deadline_ms, None);
    assert_eq!(GovernorConfig::default().max_memory_bytes, None);
}

#[test]
fn malformed_faults_env_surfaces_instead_of_disabling() {
    std::env::set_var("GRFUSION_FAULTS", "not-a-plan");
    let db = Database::with_config(base_config());
    std::env::remove_var("GRFUSION_FAULTS");
    let err = db.execute("CREATE TABLE t (x INTEGER)").err();
    // DDL does not consult the fault plan; DML and queries do.
    db.set_fault_plan(None);
    db.execute("CREATE TABLE t2 (x INTEGER)").unwrap();
    db.execute("INSERT INTO t2 VALUES (1)").unwrap();
    drop(err);

    std::env::set_var("GRFUSION_FAULTS", "also not a plan");
    let db = Database::with_config(base_config());
    std::env::remove_var("GRFUSION_FAULTS");
    db.execute("CREATE TABLE t (x INTEGER)").unwrap();
    let err = db.execute("INSERT INTO t VALUES (1)").unwrap_err();
    assert!(
        err.to_string().contains("GRFUSION_FAULTS"),
        "typo must surface, not silently disable injection: {err:?}"
    );
    // An explicit plan (or clearing it) recovers the database.
    db.set_fault_plan(None);
    db.execute("INSERT INTO t VALUES (1)").unwrap();
}

#[test]
fn malformed_engine_env_knob_surfaces_instead_of_degrading() {
    // A typo'd GRFUSION_WORKERS must not silently run the suite serial:
    // the database remembers the malformed value at construction and
    // fails the first statement that builds an execution context.
    std::env::set_var("GRFUSION_WORKERS", "lots");
    let db = Database::with_config(base_config());
    std::env::remove_var("GRFUSION_WORKERS");
    db.execute("CREATE TABLE t (x INTEGER)").unwrap(); // DDL: no governor
    let err = db.execute("INSERT INTO t VALUES (1)").unwrap_err();
    assert!(
        err.to_string().contains("GRFUSION_WORKERS"),
        "typo must surface with the variable name: {err:?}"
    );
    assert!(
        err.to_string().contains("lots"),
        "typo must surface the offending value: {err:?}"
    );
    // An explicit config supersedes the environment and recovers.
    db.set_config(base_config());
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    assert_eq!(db.table_len("t").unwrap(), 1);
}
