//! Property-based tests (proptest) over the core invariants:
//!
//! * traversal: DFS and BFS enumerate the same simple-path sets; emitted
//!   paths are valid, simple, windowed;
//! * shortest paths: SPScan costs match Bellman-Ford on random graphs;
//! * maintenance: a topology maintained through random DML equals a fresh
//!   re-extraction from the final table state;
//! * storage: rollback restores the exact pre-transaction state;
//! * front-end: the lexer/parser never panic on arbitrary input.

#![allow(clippy::needless_range_loop)] // test loops index parallel reference arrays

use proptest::prelude::*;

use grfusion::{Database, EngineConfig, ParallelConfig, Value};

/// A random small multigraph: vertex count + edge endpoint pairs.
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..10).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..25);
        (Just(n), edges)
    })
}

/// Build a GRFusion database holding the graph (directed flag given),
/// edge weights derived deterministically from the edge id.
fn build_db(n: usize, edges: &[(usize, usize)], directed: bool) -> Database {
    build_db_with(Database::new(), n, edges, directed)
}

fn build_db_with(db: Database, n: usize, edges: &[(usize, usize)], directed: bool) -> Database {
    db.execute("CREATE TABLE v (id INTEGER PRIMARY KEY)").unwrap();
    db.execute("CREATE TABLE e (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, w DOUBLE)")
        .unwrap();
    let vrows: Vec<Vec<Value>> = (0..n as i64).map(|i| vec![Value::Integer(i)]).collect();
    db.bulk_insert("v", vrows).unwrap();
    let erows: Vec<Vec<Value>> = edges
        .iter()
        .enumerate()
        .map(|(i, (a, b))| {
            vec![
                Value::Integer(i as i64),
                Value::Integer(*a as i64),
                Value::Integer(*b as i64),
                Value::Double(1.0 + (i % 7) as f64),
            ]
        })
        .collect();
    db.bulk_insert("e", erows).unwrap();
    db.execute(&format!(
        "CREATE {} GRAPH VIEW g VERTEXES(ID = id) FROM v \
         EDGES(ID = id, FROM = a, TO = b, w = w) FROM e",
        if directed { "DIRECTED" } else { "UNDIRECTED" }
    ))
    .unwrap();
    db
}

/// Rows rendered column-by-column, in emission order (NOT sorted: the
/// parallel-equivalence tests assert the exact serial order).
fn rows_exact(db: &Database, sql: &str) -> Vec<Vec<String>> {
    db.execute(sql)
        .unwrap()
        .rows
        .iter()
        .map(|r| r.iter().map(|v| v.to_string()).collect())
        .collect()
}

/// Reconfigure the database's graph-operator parallelism in place.
fn set_parallel(db: &Database, workers: usize, morsel_size: usize) {
    let mut cfg = db.config();
    cfg.parallel = ParallelConfig {
        workers,
        morsel_size,
    };
    db.set_config(cfg);
}

/// SQL-ish vocabulary for the engine-level fuzzer: keywords, punctuation,
/// literals, and names that resolve against `build_db`'s catalog (tables
/// `v`/`e`, graph view `g`), so random soups reach deep into the
/// analyzer, planner, and DML paths instead of dying in the parser.
const SOUP_TOKENS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "IN", "BETWEEN", "GROUP", "BY",
    "ORDER", "HAVING", "LIMIT", "DISTINCT", "AS", "INSERT", "INTO", "VALUES",
    "UPDATE", "SET", "DELETE", "CREATE", "DROP", "TABLE", "GRAPH", "VIEW",
    "EXPLAIN", "ANALYZE", "BEGIN", "COMMIT", "ROLLBACK", "HINT", "DFS", "BFS",
    "SHORTESTPATH", "COUNT", "SUM", "AVG", "MIN", "MAX", "NULL", "TRUE", "FALSE",
    "v", "e", "g", "id", "a", "b", "w", "PS", "g.Paths", "g.Vertexes", "g.Edges",
    "PS.Length", "PS.Cost", "PS.PathString", "PS.StartVertex.Id", "PS.EndVertex.Id",
    "PS.Edges[0..*].w", "PS.Edges[0]", "*", "(", ")", ",", ".", ";", "=", "<", ">",
    "<=", ">=", "<>", "+", "-", "/", "%", "0", "1", "42", "2.5", "'txt'", "?", "[", "]",
];

fn arb_sql_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..SOUP_TOKENS.len(), 0..14)
        .prop_map(|ix| ix.iter().map(|&i| SOUP_TOKENS[i]).collect::<Vec<_>>().join(" "))
}

fn path_strings(db: &Database, sql: &str) -> Vec<String> {
    let mut v: Vec<String> = db
        .execute(sql)
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].to_string())
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DFS and BFS must enumerate identical simple-path sets for any
    /// window on any graph, directed or not.
    #[test]
    fn dfs_bfs_equivalence((n, edges) in arb_graph(), directed in any::<bool>(),
                           min_len in 0usize..3, extra in 0usize..3) {
        let max_len = min_len + extra;
        let db = build_db(n, &edges, directed);
        let sql_tmpl = |hint: &str| format!(
            "SELECT PS.PathString FROM g.Paths PS HINT({hint}) \
             WHERE PS.StartVertex.Id = 0 \
             AND PS.Length >= {min_len} AND PS.Length <= {max_len}"
        );
        let dfs = path_strings(&db, &sql_tmpl("DFS"));
        let bfs = path_strings(&db, &sql_tmpl("BFS"));
        prop_assert_eq!(dfs, bfs);
    }

    /// Every emitted path is simple (no intermediate revisits, no reused
    /// edges) and respects the window.
    #[test]
    fn paths_are_simple_and_windowed((n, edges) in arb_graph(), directed in any::<bool>()) {
        let db = build_db(n, &edges, directed);
        let rs = db.execute(
            "SELECT PS FROM g.Paths PS WHERE PS.StartVertex.Id = 0 \
             AND PS.Length >= 1 AND PS.Length <= 4",
        ).unwrap();
        for row in &rs.rows {
            let p = row[0].as_path().unwrap();
            prop_assert!(p.length() >= 1 && p.length() <= 4);
            prop_assert_eq!(p.vertexes.len(), p.edges.len() + 1);
            // intermediates unique; start may be repeated only as the end
            let interior = &p.vertexes[1..];
            let mut seen = std::collections::HashSet::new();
            for (i, v) in interior.iter().enumerate() {
                if i == interior.len() - 1 && *v == p.vertexes[0] {
                    continue; // closing a cycle
                }
                prop_assert!(seen.insert(*v), "repeated intermediate {} in {}", v, p.path_string());
                prop_assert!(*v != p.vertexes[0], "start revisited mid-path in {}", p.path_string());
            }
            let mut e = p.edges.clone();
            e.sort_unstable();
            e.dedup();
            prop_assert_eq!(e.len(), p.edges.len(), "edge reused");
        }
    }

    /// SPScan shortest-path costs agree with a reference Bellman-Ford.
    #[test]
    fn spscan_matches_bellman_ford((n, edges) in arb_graph(), directed in any::<bool>()) {
        let db = build_db(n, &edges, directed);
        // reference distances from vertex 0
        let mut dist = vec![f64::INFINITY; n];
        dist[0] = 0.0;
        for _ in 0..n {
            for (i, (a, b)) in edges.iter().enumerate() {
                let w = 1.0 + (i % 7) as f64;
                if dist[*a] + w < dist[*b] {
                    dist[*b] = dist[*a] + w;
                }
                if !directed && dist[*b] + w < dist[*a] {
                    dist[*a] = dist[*b] + w;
                }
            }
        }
        for t in 0..n {
            let rs = db.execute(&format!(
                "SELECT PS.Cost FROM g.Paths PS HINT(SHORTESTPATH(w)) \
                 WHERE PS.StartVertex.Id = 0 AND PS.EndVertex.Id = {t} LIMIT 1"
            )).unwrap();
            match rs.rows.first() {
                Some(row) => {
                    let got = row[0].as_double().unwrap();
                    prop_assert!((got - dist[t]).abs() < 1e-9,
                        "target {}: got {} want {}", t, got, dist[t]);
                }
                None => prop_assert!(dist[t].is_infinite(), "target {t} should be reachable"),
            }
        }
    }

    /// Reachability (the visited-set fast path) agrees with exhaustive
    /// enumeration (COUNT of bounded paths, which cannot use it).
    #[test]
    fn reachability_fastpath_matches_enumeration((n, edges) in arb_graph(),
                                                 directed in any::<bool>(),
                                                 t in 0usize..10, h in 1usize..4) {
        let t = t % n;
        let db = build_db(n, &edges, directed);
        let fast = !db.execute(&format!(
            "SELECT PS.Length FROM g.Paths PS WHERE PS.StartVertex.Id = 0 \
             AND PS.EndVertex.Id = {t} AND PS.Length <= {h} LIMIT 1"
        )).unwrap().rows.is_empty();
        let slow = db.execute(&format!(
            "SELECT COUNT(P) FROM g.Paths P WHERE P.StartVertex.Id = 0 \
             AND P.EndVertex.Id = {t} AND P.Length >= 1 AND P.Length <= {h}"
        )).unwrap().scalar().unwrap().as_integer().unwrap() > 0;
        // source == target: the fast path counts the zero-length path.
        let expected = if t == 0 { true } else { slow };
        prop_assert_eq!(fast, expected);
    }

    /// Random DML on the sources, then: maintained topology ≡ topology
    /// re-extracted from the final table state.
    #[test]
    fn maintenance_equals_reextraction((n, edges) in arb_graph(),
                                       ops in proptest::collection::vec((0u8..4, 0usize..32), 0..12)) {
        // Use a directed view over dedicated tables.
        let db = build_db(n, &edges, true);
        let mut next_v = n as i64;
        let mut next_e = edges.len() as i64;
        for (kind, x) in ops {
            match kind {
                0 => {
                    // insert vertex
                    let _ = db.execute(&format!("INSERT INTO v VALUES ({next_v})"));
                    next_v += 1;
                }
                1 => {
                    // insert edge between random existing ids (may fail if
                    // endpoints missing — statement rolls back, fine)
                    let a = x as i64 % next_v;
                    let b = (x as i64 * 7 + 1) % next_v;
                    let _ = db.execute(&format!(
                        "INSERT INTO e VALUES ({next_e}, {a}, {b}, 1.0)"
                    ));
                    next_e += 1;
                }
                2 => {
                    // delete an edge
                    let _ = db.execute(&format!("DELETE FROM e WHERE id = {}", x as i64 % next_e.max(1)));
                }
                _ => {
                    // delete a vertex (only succeeds when isolated)
                    let _ = db.execute(&format!("DELETE FROM v WHERE id = {}", x as i64 % next_v));
                }
            }
        }
        // Reference: rebuild a second graph view from the same tables.
        db.execute(
            "CREATE DIRECTED GRAPH VIEW g2 VERTEXES(ID = id) FROM v \
             EDGES(ID = id, FROM = a, TO = b, w = w) FROM e",
        ).unwrap();
        let s1 = db.graph_stats("g").unwrap();
        let s2 = db.graph_stats("g2").unwrap();
        prop_assert_eq!(s1.vertex_count, s2.vertex_count);
        prop_assert_eq!(s1.edge_count, s2.edge_count);
        // Same 1-hop neighbourhoods for every vertex.
        let rs = db.execute("SELECT id FROM v").unwrap();
        for row in &rs.rows {
            let id = row[0].as_integer().unwrap();
            let q = |gv: &str| -> Vec<String> {
                let mut v: Vec<String> = db.execute(&format!(
                    "SELECT PS.EndVertex.Id FROM {gv}.Paths PS \
                     WHERE PS.StartVertex.Id = {id} AND PS.Length = 1"
                )).unwrap().rows.iter().map(|r| r[0].to_string()).collect();
                v.sort();
                v
            };
            prop_assert_eq!(q("g"), q("g2"), "neighbourhood of {} differs", id);
        }
    }

    /// Sealed-CSR round-trip: the same graph and random DML burst, run on
    /// a sealing engine (seal at materialization, overlay + automatic
    /// re-seal under DML) and on a never-sealing engine, must leave
    /// byte-identical state dumps and byte-identical DFS enumerations —
    /// the physical layout is invisible to every logical observer.
    #[test]
    fn seal_dml_reseal_roundtrips_to_never_sealed(
        (n, edges) in arb_graph(),
        directed in any::<bool>(),
        ops in proptest::collection::vec((0u8..4, 0usize..32), 0..12)
    ) {
        use grfusion::CsrConfig;
        let mut cfg = EngineConfig::default();
        cfg.parallel = ParallelConfig::serial();
        let mut sealed_cfg = cfg;
        sealed_cfg.csr = CsrConfig::sealed();
        let mut plain_cfg = cfg;
        plain_cfg.csr = CsrConfig::adjacency_only();
        let sealed = build_db_with(Database::with_config(sealed_cfg), n, &edges, directed);
        let plain = build_db_with(Database::with_config(plain_cfg), n, &edges, directed);
        prop_assert!(sealed.graph_stats("g").unwrap().sealed_bytes > 0);
        prop_assert_eq!(plain.graph_stats("g").unwrap().sealed_bytes, 0);

        let mut next_v = n as i64;
        let mut next_e = edges.len() as i64;
        for (kind, x) in ops {
            let stmt = match kind {
                0 => {
                    next_v += 1;
                    format!("INSERT INTO v VALUES ({})", next_v - 1)
                }
                1 => {
                    let a = x as i64 % next_v;
                    let b = (x as i64 * 7 + 1) % next_v;
                    next_e += 1;
                    format!("INSERT INTO e VALUES ({}, {a}, {b}, 1.0)", next_e - 1)
                }
                2 => format!("DELETE FROM e WHERE id = {}", x as i64 % next_e.max(1)),
                _ => format!("DELETE FROM v WHERE id = {}", x as i64 % next_v),
            };
            // Either both engines accept the statement or both reject it.
            let a = sealed.execute(&stmt).map(|r| r.rows_affected);
            let b = plain.execute(&stmt).map(|r| r.rows_affected);
            match (a, b) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "{}", stmt),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "{}: sealed {:?} vs plain {:?}", stmt, a, b),
            }
        }

        prop_assert_eq!(sealed.state_dump().unwrap(), plain.state_dump().unwrap());
        let sql = "SELECT PS.PathString FROM g.Paths PS HINT(DFS) \
                   WHERE PS.Length >= 1 AND PS.Length <= 3";
        prop_assert_eq!(rows_exact(&sealed, sql), rows_exact(&plain, sql));
    }

    /// Batch-at-a-time execution must be invisible to every logical
    /// observer: the same random graph executed on a batch-enabled engine
    /// (across batch sizes, including degenerate size 1) and on a row
    /// engine returns byte-identical rows in identical order for a spread
    /// of relational, join, aggregate, and graph-joined queries.
    #[test]
    fn batch_execution_equals_row_execution(
        (n, edges) in arb_graph(),
        directed in any::<bool>(),
        size_ix in 0usize..5,
    ) {
        use grfusion::BatchConfig;
        let batch_size = [1usize, 2, 3, 7, 1024][size_ix];
        let mut cfg = EngineConfig::default();
        cfg.parallel = ParallelConfig::serial();
        let mut row_cfg = cfg;
        row_cfg.batch = BatchConfig::disabled();
        let mut batch_cfg = cfg;
        batch_cfg.batch = BatchConfig::with_size(batch_size);
        let row = build_db_with(Database::with_config(row_cfg), n, &edges, directed);
        let batch = build_db_with(Database::with_config(batch_cfg), n, &edges, directed);
        for sql in [
            "SELECT * FROM e",
            "SELECT id, w FROM e WHERE a >= 1 AND w > 2.0",
            "SELECT id FROM e WHERE NOT (w = 3.0 OR a = 0)",
            "SELECT e.w, v.id FROM e, v WHERE e.a = v.id",
            "SELECT e.id, v.id FROM e JOIN v ON e.b = v.id",
            "SELECT a, COUNT(*), SUM(w), AVG(w), MIN(w), MAX(w) FROM e GROUP BY a",
            "SELECT COUNT(*), AVG(w) FROM e WHERE w <> 3.0",
            "SELECT DISTINCT a FROM e",
            "SELECT id FROM v ORDER BY id",
            "SELECT id, a FROM e ORDER BY a LIMIT 3",
            "SELECT PS.PathString FROM g.Paths PS HINT(DFS) \
             WHERE PS.Length >= 1 AND PS.Length <= 2",
        ] {
            prop_assert_eq!(rows_exact(&row, sql), rows_exact(&batch, sql), "{}", sql);
        }
    }

    /// Epoch publication never leaks uncommitted state: under an
    /// interleaving of auto-committed DML, committed transactions, and
    /// rolled-back transactions, every epoch a reader can pin dumps to
    /// exactly some committed prefix of the statement stream — and a
    /// rolled-back insert (poison ids ≥ 9000) is visible in none of them.
    #[test]
    fn epoch_readers_only_see_committed_prefixes(
        (n, edges) in arb_graph(),
        ops in proptest::collection::vec((0u8..6, 0usize..32), 0..14)
    ) {
        use grfusion::{CsrConfig, EpochConfig};
        let mut cfg = EngineConfig::default();
        cfg.parallel = ParallelConfig::serial();
        cfg.csr = CsrConfig::sealed();
        cfg.epochs = EpochConfig::enabled();
        let db = build_db_with(Database::with_config(cfg), n, &edges, true);

        // Committed prefixes (as state dumps) and the epoch pins observed
        // after each step; pins are held to the end, so superseded epochs
        // stay readable and must still dump to a committed prefix.
        let mut committed = vec![db.state_dump().unwrap()];
        let mut pins = vec![db.pin_snapshot().unwrap()];
        let mut poison = 9000i64;
        let mut next_v = n as i64;
        let mut next_e = edges.len() as i64;
        for (kind, x) in ops {
            match kind {
                0 => {
                    next_v += 1;
                    let st = format!("INSERT INTO v VALUES ({})", next_v - 1);
                    if db.execute(&st).is_ok() {
                        committed.push(db.state_dump().unwrap());
                    }
                }
                1 => {
                    let a = x as i64 % next_v;
                    let b = (x as i64 * 7 + 1) % next_v;
                    next_e += 1;
                    let st = format!("INSERT INTO e VALUES ({}, {a}, {b}, 1.0)", next_e - 1);
                    if db.execute(&st).is_ok() {
                        committed.push(db.state_dump().unwrap());
                    }
                }
                2 => {
                    let st = format!("DELETE FROM e WHERE id = {}", x as i64 % next_e.max(1));
                    if db.execute(&st).is_ok() {
                        committed.push(db.state_dump().unwrap());
                    }
                }
                3 => {
                    let st = format!("DELETE FROM v WHERE id = {}", x as i64 % next_v);
                    if db.execute(&st).is_ok() {
                        committed.push(db.state_dump().unwrap());
                    }
                }
                4 => {
                    // Committed transaction: one epoch for the whole batch.
                    db.execute("BEGIN").unwrap();
                    db.execute(&format!("INSERT INTO v VALUES ({next_v})")).unwrap();
                    next_v += 1;
                    // Mid-transaction, reads must NOT route through epochs
                    // (read-your-own-writes wins over snapshot reads).
                    prop_assert!(db.pin_snapshot().is_none(), "pinned mid-txn");
                    db.execute("COMMIT").unwrap();
                    committed.push(db.state_dump().unwrap());
                }
                _ => {
                    // Rolled-back transaction: its writes must never reach
                    // any epoch, no matter when a reader pins.
                    db.execute("BEGIN").unwrap();
                    db.execute(&format!("INSERT INTO v VALUES ({poison})")).unwrap();
                    poison += 1;
                    prop_assert!(db.pin_snapshot().is_none(), "pinned mid-txn");
                    db.execute("ROLLBACK").unwrap();
                }
            }
            pins.push(db.pin_snapshot().unwrap());
        }

        let prefixes: std::collections::HashSet<&String> = committed.iter().collect();
        for pin in &pins {
            let dump = pin.state_dump();
            for leaked in 9000..poison {
                prop_assert!(
                    !dump.contains(&format!(" {leaked}")),
                    "epoch {} leaked rolled-back row {}:\n{}", pin.number(), leaked, dump
                );
            }
            prop_assert!(
                prefixes.contains(&dump),
                "epoch {} is not any committed prefix:\n{}", pin.number(), dump
            );
        }
    }

    /// Rollback restores tables and topology to the pre-transaction state.
    #[test]
    #[allow(clippy::explicit_counter_loop)] // ids advance independently of the loop
    fn rollback_restores_state((n, edges) in arb_graph(),
                               inserts in proptest::collection::vec(0usize..8, 1..6)) {
        let db = build_db(n, &edges, true);
        let before_v = db.table_len("v").unwrap();
        let before_e = db.table_len("e").unwrap();
        let before = db.graph_stats("g").unwrap();

        db.execute("BEGIN").unwrap();
        let mut vid = 1000i64;
        let mut eid = 1000i64;
        for x in inserts {
            db.execute(&format!("INSERT INTO v VALUES ({vid})")).unwrap();
            let _ = db.execute(&format!(
                "INSERT INTO e VALUES ({eid}, {vid}, {}, 1.0)",
                x as i64 % n as i64
            ));
            vid += 1;
            eid += 1;
        }
        db.execute("ROLLBACK").unwrap();

        prop_assert_eq!(db.table_len("v").unwrap(), before_v);
        prop_assert_eq!(db.table_len("e").unwrap(), before_e);
        let after = db.graph_stats("g").unwrap();
        prop_assert_eq!(before.vertex_count, after.vertex_count);
        prop_assert_eq!(before.edge_count, after.edge_count);
    }

    /// The SQL front-end never panics, whatever the input.
    #[test]
    fn parser_never_panics(input in "\\PC{0,80}") {
        let _ = grfusion_sql::parse_statement(&input);
        let _ = grfusion_sql::parse_statements(&input);
    }

    /// The whole engine — parser, analyzer, planner, executor — returns
    /// `Err`, never panics, on arbitrary token soup fed to
    /// `Database::execute` against a live catalog (so name resolution,
    /// graph views, and DML paths are all reachable).
    #[test]
    fn execute_never_panics_on_token_soup(soup in arb_sql_soup(), raw in "\\PC{0,60}") {
        let db = build_db(3, &[(0, 1), (1, 2)], true);
        for sql in [soup.as_str(), raw.as_str()] {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = db.execute(sql);
                let _ = db.explain(sql);
            }));
            prop_assert!(outcome.is_ok(), "engine panicked on {:?}", sql);
        }
    }

    /// Value comparison is symmetric and consistent with equality.
    #[test]
    fn value_comparison_consistency(a in -100i64..100, b in -100i64..100) {
        use grfusion_common::Value;
        let va = Value::Integer(a);
        let vb = Value::Double(b as f64);
        let fwd = va.sql_cmp(&vb);
        let back = vb.sql_cmp(&va).map(|o| o.reverse());
        prop_assert_eq!(fwd, back);
        prop_assert_eq!(va.sql_eq(&vb), Some(a == b));
    }

    /// Serial-equivalence harness for the morsel-driven parallel PathScan:
    /// with any worker count, every traversal flavor (DFS, BFS, auto,
    /// anchored, shortest-path) must return byte-identical rows in the
    /// exact serial order. `morsel_size = 2` forces multi-morsel fan-out
    /// even on small graphs.
    #[test]
    fn parallel_pathscan_equals_serial((n, edges) in arb_graph(),
                                       directed in any::<bool>(),
                                       w_idx in 0usize..3) {
        let workers = [2usize, 4, 8][w_idx];
        let db = build_db(n, &edges, directed);
        let target = n as i64 - 1;
        let queries = vec![
            // Multi-seed (AllVertexes) enumeration down each traversal path.
            "SELECT PS.PathString FROM g.Paths PS HINT(DFS) \
             WHERE PS.Length >= 1 AND PS.Length <= 3".to_string(),
            "SELECT PS.PathString FROM g.Paths PS HINT(BFS) \
             WHERE PS.Length >= 1 AND PS.Length <= 3".to_string(),
            // Auto mode (the F < L heuristic picks the operator).
            "SELECT PS.PathString FROM g.Paths PS \
             WHERE PS.Length >= 0 AND PS.Length <= 2".to_string(),
            // Anchored single-seed scan (one morsel through the pool).
            "SELECT PS.PathString FROM g.Paths PS HINT(DFS) \
             WHERE PS.StartVertex.Id = 0 AND PS.Length >= 1 AND PS.Length <= 4".to_string(),
            // Enumerative shortest-path scan (bounded => no Dijkstra fast
            // path; runs as a single morsel through the pool).
            format!(
                "SELECT PS.PathString, PS.Cost FROM g.Paths PS HINT(SHORTESTPATH(w)) \
                 WHERE PS.StartVertex.Id = 0 AND PS.EndVertex.Id = {target} \
                 AND PS.Length <= 5"
            ),
            // Filtered enumeration (pushed edge predicate binds per morsel).
            "SELECT PS.PathString FROM g.Paths PS HINT(DFS) \
             WHERE PS.Edges[0..*].w < 5.0 AND PS.Length >= 1 AND PS.Length <= 3".to_string(),
        ];
        for sql in &queries {
            set_parallel(&db, 1, 64);
            let serial = rows_exact(&db, sql);
            set_parallel(&db, workers, 2);
            let parallel = rows_exact(&db, sql);
            prop_assert_eq!(&parallel, &serial, "workers={} sql={}", workers, sql);
        }
    }

    /// The env-var CI hook (`GRFUSION_WORKERS`) and the explicit config
    /// knob must agree: a database configured through either route gives
    /// the same answers.
    #[test]
    fn parallel_config_routes_agree((n, edges) in arb_graph(), directed in any::<bool>()) {
        let db = build_db(n, &edges, directed);
        let sql = "SELECT PS.PathString FROM g.Paths PS \
                   WHERE PS.Length >= 1 AND PS.Length <= 3";
        let serial = rows_exact(&db, sql);
        let mut cfg = EngineConfig::default();
        cfg.parallel = ParallelConfig::with_workers(4);
        db.set_config(cfg);
        prop_assert_eq!(rows_exact(&db, sql), serial);
    }
}

// ---------------------------------------------------------------------------
// Three-valued logic (3VL) pins
// ---------------------------------------------------------------------------

/// SQL literal for an optional integer (`None` → `NULL`).
fn lit(v: Option<i64>) -> String {
    match v {
        Some(i) => i.to_string(),
        None => "NULL".to_string(),
    }
}

/// A database holding one nullable-integer row per entry of `xs` (and a
/// second nullable column from `ys` when present).
fn nullable_db(xs: &[Option<i64>], ys: Option<&[Option<i64>]>) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER, y INTEGER)")
        .unwrap();
    for (i, x) in xs.iter().enumerate() {
        let y = ys.map_or(None, |ys| ys[i]);
        db.execute(&format!(
            "INSERT INTO t VALUES ({}, {}, {})",
            i,
            lit(*x),
            lit(y)
        ))
        .unwrap();
    }
    db
}

/// Ids of rows the engine lets through `WHERE <pred>` (only TRUE passes).
fn passing_ids(db: &Database, pred: &str) -> Vec<i64> {
    db.execute(&format!("SELECT id FROM t WHERE {pred}"))
        .unwrap()
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Integer(i) => *i,
            other => panic!("non-integer id {other:?}"),
        })
        .collect()
}

/// Reference Kleene `v BETWEEN lo AND hi`: UNKNOWN unless one side decides.
fn ref_between(v: Option<i64>, lo: Option<i64>, hi: Option<i64>) -> Option<bool> {
    let ge = v.zip(lo).map(|(v, lo)| v >= lo);
    let le = v.zip(hi).map(|(v, hi)| v <= hi);
    match (ge, le) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (None, _) | (_, None) => None,
        _ => Some(true),
    }
}

/// Reference Kleene `v IN (items)`: TRUE on any match, else UNKNOWN if any
/// item (or the probe) is NULL, else FALSE.
fn ref_in(v: Option<i64>, items: &[Option<i64>]) -> Option<bool> {
    let v = v?;
    let mut unknown = false;
    for it in items {
        match it {
            Some(i) if *i == v => return Some(true),
            Some(_) => {}
            None => unknown = true,
        }
    }
    if unknown {
        None
    } else {
        Some(false)
    }
}

fn arb_opt() -> impl Strategy<Value = Option<i64>> {
    (any::<bool>(), -4i64..4).prop_map(|(some, v)| some.then_some(v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `NOT BETWEEN` with NULL probe/bounds follows Kleene semantics:
    /// `NOT UNKNOWN` is UNKNOWN and must not pass the WHERE clause.
    #[test]
    fn three_vl_not_between(xs in proptest::collection::vec(arb_opt(), 1..8),
                            lo in arb_opt(), hi in arb_opt()) {
        let db = nullable_db(&xs, None);
        let pred = format!("x NOT BETWEEN {} AND {}", lit(lo), lit(hi));
        let expect: Vec<i64> = xs.iter().enumerate()
            .filter(|(_, x)| ref_between(**x, lo, hi).map(|b| !b) == Some(true))
            .map(|(i, _)| i as i64)
            .collect();
        prop_assert_eq!(passing_ids(&db, &pred), expect);
        // And BETWEEN itself is the un-negated reference.
        let pred = format!("x BETWEEN {} AND {}", lit(lo), lit(hi));
        let expect: Vec<i64> = xs.iter().enumerate()
            .filter(|(_, x)| ref_between(**x, lo, hi) == Some(true))
            .map(|(i, _)| i as i64)
            .collect();
        prop_assert_eq!(passing_ids(&db, &pred), expect);
    }

    /// `IN` / `NOT IN` with NULL list items: a NULL item can turn FALSE
    /// into UNKNOWN but never into TRUE, and `NOT IN (..., NULL, ...)`
    /// passes nothing unless a definite non-match exists for every item.
    #[test]
    fn three_vl_in_list(xs in proptest::collection::vec(arb_opt(), 1..8),
                        items in proptest::collection::vec(arb_opt(), 1..5)) {
        let db = nullable_db(&xs, None);
        let list: Vec<String> = items.iter().map(|i| lit(*i)).collect();
        let list = list.join(", ");
        let pred = format!("x IN ({list})");
        let expect: Vec<i64> = xs.iter().enumerate()
            .filter(|(_, x)| ref_in(**x, &items) == Some(true))
            .map(|(i, _)| i as i64)
            .collect();
        prop_assert_eq!(passing_ids(&db, &pred), expect);
        let pred = format!("x NOT IN ({list})");
        let expect: Vec<i64> = xs.iter().enumerate()
            .filter(|(_, x)| ref_in(**x, &items).map(|b| !b) == Some(true))
            .map(|(i, _)| i as i64)
            .collect();
        prop_assert_eq!(passing_ids(&db, &pred), expect);
    }

    /// Kleene AND/OR over nullable comparisons: FALSE dominates AND, TRUE
    /// dominates OR, NULL comparisons yield UNKNOWN, and only TRUE rows
    /// survive the WHERE clause.
    #[test]
    fn three_vl_kleene_and_or(rows in proptest::collection::vec((arb_opt(), arb_opt()), 1..8),
                              c1 in -4i64..4, c2 in -4i64..4) {
        let xs: Vec<Option<i64>> = rows.iter().map(|(x, _)| *x).collect();
        let ys: Vec<Option<i64>> = rows.iter().map(|(_, y)| *y).collect();
        let db = nullable_db(&xs, Some(&ys));
        let pa = |x: Option<i64>| x.map(|x| x < c1);
        let pb = |y: Option<i64>| y.map(|y| y < c2);
        let kleene_and = |a: Option<bool>, b: Option<bool>| match (a, b) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        };
        let kleene_or = |a: Option<bool>, b: Option<bool>| match (a, b) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        };
        let pred = format!("x < {c1} AND y < {c2}");
        let expect: Vec<i64> = rows.iter().enumerate()
            .filter(|(_, (x, y))| kleene_and(pa(*x), pb(*y)) == Some(true))
            .map(|(i, _)| i as i64)
            .collect();
        prop_assert_eq!(passing_ids(&db, &pred), expect);
        let pred = format!("x < {c1} OR y < {c2}");
        let expect: Vec<i64> = rows.iter().enumerate()
            .filter(|(_, (x, y))| kleene_or(pa(*x), pb(*y)) == Some(true))
            .map(|(i, _)| i as i64)
            .collect();
        prop_assert_eq!(passing_ids(&db, &pred), expect);
        // NOT over UNKNOWN stays UNKNOWN: NOT (AND) passes exactly the
        // rows where the conjunction is definitely FALSE.
        let pred = format!("NOT (x < {c1} AND y < {c2})");
        let expect: Vec<i64> = rows.iter().enumerate()
            .filter(|(_, (x, y))| kleene_and(pa(*x), pb(*y)) == Some(false))
            .map(|(i, _)| i as i64)
            .collect();
        prop_assert_eq!(passing_ids(&db, &pred), expect);
    }
}
