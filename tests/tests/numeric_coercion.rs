//! Numeric-coercion boundary regressions and row/batch agreement.
//!
//! Three coercion bugs are pinned here so they cannot regress:
//!
//! 1. **Index-probe saturation at 2^63** — `index_probe_key` admitted the
//!    DOUBLE `9223372036854775808.0` (= 2^63, the rounded value of
//!    `i64::MAX as f64`), which `as i64` then saturated to `i64::MAX`: an
//!    indexed equality probe against 2^63 wrongly returned the `i64::MAX`
//!    row. The probe's contract is *exact-integer* semantics: a DOUBLE key
//!    matches only the one integer it exactly equals.
//! 2. **`Value::as_integer` wrap-around** — the same open upper bound now
//!    guards every DOUBLE→INTEGER read (unit-tested next to the impl).
//! 3. **AVG precision past 2^53** — an all-integer AVG computed
//!    `isum as f64 / count as f64`, rounding the (exact, i128) sum before
//!    dividing; AVG over {2^60, 128, 1} came out 384307168202282432
//!    instead of 384307168202282368.
//!
//! The proptest sweeps integers around the 2^53 (f64 exactness) and 2^63
//! (i64 range) boundaries through inserts, DOUBLE-literal comparisons, and
//! aggregates, on a row engine and a batch engine, and requires
//! byte-identical answers.

use grfusion::{BatchConfig, Database, EngineConfig, ParallelConfig, Value};
use proptest::prelude::*;

/// Engine config immune to environment variables, with batching as given.
fn config_with_batch(batch: BatchConfig) -> EngineConfig {
    let mut cfg = EngineConfig::default();
    cfg.parallel = ParallelConfig::serial();
    cfg.batch = batch;
    cfg
}

/// A single-column PK table holding `ids` (hash-indexed on `id`).
fn ids_db(cfg: EngineConfig, ids: &[i64]) -> Database {
    let db = Database::with_config(cfg);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)").unwrap();
    db.bulk_insert("t", ids.iter().map(|i| vec![Value::Integer(*i)]).collect())
        .unwrap();
    db
}

fn ids_for(db: &Database, sql: &str) -> Vec<i64> {
    db.execute(sql)
        .unwrap()
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Integer(i) => *i,
            other => panic!("expected INTEGER, got {other}"),
        })
        .collect()
}

/// Regression (pre-fix: returned the `i64::MAX` row): an indexed equality
/// probe with the DOUBLE 2^63 — which no i64 equals — must come back empty
/// instead of saturating onto `i64::MAX`.
#[test]
fn index_probe_rejects_double_two_pow_63() {
    let db = ids_db(
        config_with_batch(BatchConfig::disabled()),
        &[0, 7, i64::MAX],
    );
    let sql = "SELECT id FROM t WHERE id = 9223372036854775808.0";
    // The probe path (not the scan filter) must be what's exercised.
    let plan = db.explain(sql).unwrap();
    assert!(plan.contains("IndexLookup"), "{plan}");
    assert_eq!(ids_for(&db, sql), Vec::<i64>::new());
}

/// The probe boundaries, both signs: the largest DOUBLEs inside i64 range
/// still probe exactly; the first ones outside match nothing. 2^53 marks
/// where f64 stops being exact, 2^63 where i64 ends.
#[test]
fn index_probe_boundaries_at_two_pow_53_and_two_pow_63() {
    const P53: i64 = 1 << 53; // 9007199254740992
    const BELOW_P63: i64 = 9_223_372_036_854_774_784; // largest f64 < 2^63
    let rows = [P53, -P53, BELOW_P63, i64::MIN, 42];
    for batch in [BatchConfig::disabled(), BatchConfig::enabled()] {
        let db = ids_db(config_with_batch(batch), &rows);
        let cases: [(&str, &[i64]); 6] = [
            ("9007199254740992.0", &[P53]),
            ("-9007199254740992.0", &[-P53]),
            ("9223372036854774784.0", &[BELOW_P63]),
            ("-9223372036854775808.0", &[i64::MIN]), // -(2^63) IS an i64
            ("9223372036854775808.0", &[]),          // 2^63 is not
            ("-9223372036854777856.0", &[]),         // next f64 below i64::MIN
        ];
        for (lit, expect) in cases {
            let sql = format!("SELECT id FROM t WHERE id = {lit}");
            assert_eq!(ids_for(&db, &sql), expect, "{sql}");
        }
    }
}

/// Regression (pre-fix: 384307168202282432): all-integer AVG divides the
/// exact i128 sum, so AVG({2^60, 128, 1}) is the correctly rounded
/// 384307168202282368.
#[test]
fn integer_avg_is_exact_past_two_pow_53() {
    for batch in [BatchConfig::disabled(), BatchConfig::enabled()] {
        let db = Database::with_config(config_with_batch(batch));
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)")
            .unwrap();
        db.bulk_insert(
            "t",
            vec![
                vec![Value::Integer(0), Value::Integer(1 << 60)],
                vec![Value::Integer(1), Value::Integer(128)],
                vec![Value::Integer(2), Value::Integer(1)],
            ],
        )
        .unwrap();
        let rs = db.execute("SELECT AVG(x) FROM t").unwrap();
        assert_eq!(rs.rows[0][0], Value::Double(384_307_168_202_282_368.0));
    }
}

/// The same exact-division fix covers the path-aggregate AVG
/// (`AVG(PS.Edges.attr)` over an all-INTEGER edge attribute).
#[test]
fn path_aggregate_avg_is_exact_past_two_pow_53() {
    let db = Database::with_config(config_with_batch(BatchConfig::disabled()));
    db.execute("CREATE TABLE v (id INTEGER PRIMARY KEY)").unwrap();
    db.execute("CREATE TABLE e (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, w INTEGER)")
        .unwrap();
    db.bulk_insert("v", (0..4i64).map(|i| vec![Value::Integer(i)]).collect())
        .unwrap();
    let ws = [1i64 << 60, 128, 1];
    db.bulk_insert(
        "e",
        (0..3i64)
            .map(|i| {
                vec![
                    Value::Integer(i),
                    Value::Integer(i),
                    Value::Integer(i + 1),
                    Value::Integer(ws[i as usize]),
                ]
            })
            .collect(),
    )
    .unwrap();
    db.execute(
        "CREATE DIRECTED GRAPH VIEW g VERTEXES(ID = id) FROM v \
         EDGES(ID = id, FROM = a, TO = b, w = w) FROM e",
    )
    .unwrap();
    let rs = db
        .execute(
            "SELECT AVG(PS.Edges.w) FROM g.Paths PS \
             WHERE PS.StartVertex.Id = 0 AND PS.Length >= 3 AND PS.Length <= 3",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Double(384_307_168_202_282_368.0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Integers around the 2^53/2^62 boundaries, inserted and then read
    /// back through DOUBLE-literal equality/range probes and the aggregate
    /// battery, must produce byte-identical results on a row engine and a
    /// batch engine — and the equality probe must hit exactly the rows
    /// whose integer is exactly the DOUBLE's value.
    #[test]
    fn boundary_round_trips_agree_between_row_and_batch(
        base_ix in 0usize..4,
        off in -3i64..4,
        size_ix in 0usize..3,
    ) {
        let base: i64 = [1 << 53, -(1 << 53), 1 << 62, -(1 << 62)][base_ix];
        let pivot = base + off;
        let ids = [pivot, pivot - 1, pivot + 1, 0, 7];
        let batch_size = [1usize, 3, 1024][size_ix];
        let row = ids_db(config_with_batch(BatchConfig::disabled()), &ids);
        let batch = ids_db(
            config_with_batch(BatchConfig::with_size(batch_size)),
            &ids,
        );

        let lit = format!("{:.1}", pivot as f64);
        for sql in [
            format!("SELECT id FROM t WHERE id = {lit}"),
            format!("SELECT id FROM t WHERE id >= {lit}"),
            format!("SELECT id FROM t WHERE id < {lit}"),
            format!("SELECT COUNT(*), MIN(id), MAX(id), SUM(id), AVG(id) FROM t WHERE id <> 7"),
        ] {
            // Outcomes must agree even when they are errors (SUM over
            // several values near ±2^62 legitimately overflows INTEGER).
            let render = |db: &Database| -> Result<Vec<Vec<String>>, String> {
                db.execute(&sql)
                    .map(|rs| {
                        rs.rows
                            .iter()
                            .map(|r| r.iter().map(|v| v.to_string()).collect())
                            .collect()
                    })
                    .map_err(|e| e.to_string())
            };
            prop_assert_eq!(render(&row), render(&batch), "{}", sql);
        }

        // Exact-integer probe semantics: the DOUBLE literal matches a row
        // iff that row's integer is exactly the literal's value. Only the
        // hash-probe path promises this (a scan compares through f64
        // rounding), so assert it only when the plan indexes.
        let probe_sql = format!("SELECT id FROM t WHERE id = {lit}");
        if !row.explain(&probe_sql).unwrap().contains("IndexLookup") {
            return Ok(());
        }
        let expected: Vec<i64> = ids
            .iter()
            .copied()
            .filter(|i| (pivot as f64).fract() == 0.0 && pivot as f64 == *i as f64 && {
                // the literal's exact integer, when in range
                let d = pivot as f64;
                d >= -9_223_372_036_854_775_808.0
                    && d < 9_223_372_036_854_775_808.0
                    && d as i64 == *i
            })
            .collect();
        let mut got = ids_for(&row, &probe_sql);
        got.sort_unstable();
        let mut expected = expected;
        expected.sort_unstable();
        prop_assert_eq!(got, expected, "{}", probe_sql);
    }
}
