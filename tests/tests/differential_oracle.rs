//! Cross-engine differential oracle for the sealed-CSR topology layout.
//!
//! Every workload — a seeded graph (chain / clique / power-law / random)
//! plus a random DML interleaving — is executed on three independent
//! systems and their answers are compared:
//!
//! * a GRFusion engine with `CsrConfig::sealed()` (seal at
//!   materialization, delta overlay under DML, automatic re-seal),
//! * a GRFusion engine with `CsrConfig::adjacency_only()` (the layout
//!   that existed before sealing; never compacts),
//! * the `SqlGraphSystem` baseline (graph-in-tables + join-chain SQL),
//!   loaded from the final table state.
//!
//! The two engine lanes must be *byte-identical* on full DFS/BFS path
//! enumerations and shortest-path probes, at both `workers = 1` and
//! `workers = 4` — the physical layout and the scheduling must both be
//! invisible. The SQLGraph lane pins down reachability booleans from the
//! outside, so a bug shared by both engine lanes (they share the
//! maintenance code) still gets caught.
//!
//! On mismatch a greedy minimizer shrinks the workload (drop DML ops,
//! then edges, then vertexes) while the failure persists, and the panic
//! message prints the minimal graph + DML script for replay. A proptest
//! variant feeds the same checker so proptest's own shrinking covers
//! shapes the seeded families miss.

use grfusion::{BatchConfig, CsrConfig, Database, EngineConfig, EpochConfig, ParallelConfig, Value};
use grfusion_baselines::{GraphSystem, SqlGraphSystem};
use grfusion_datasets::{Dataset, DatasetKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

/// One DML operation with raw parameters; resolved against the live id
/// counters when the script is rendered, so a shrunk workload stays
/// replayable (statements that no longer apply fail on *both* engines,
/// which the oracle accepts as agreement).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Op {
    AddVertex,
    AddEdge(u32, u32),
    DeleteEdge(u32),
    DeleteVertex(u32),
    /// Retargets edge `id % next_e` to vertex `b % next_v` — the overlay
    /// workhorse: an in-place relink touches both endpoints' adjacency.
    RelinkEdge(u32, u32),
}

#[derive(Clone)]
struct Workload {
    name: String,
    n: usize,
    directed: bool,
    edges: Vec<(u32, u32)>,
    ops: Vec<Op>,
}

impl Workload {
    /// Render the DML interleaving as concrete SQL, mirroring the id
    /// arithmetic of `property.rs`'s maintenance fuzzer.
    fn script(&self) -> Vec<String> {
        let mut next_v = self.n as i64;
        let mut next_e = self.edges.len() as i64;
        let mut out = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            out.push(match *op {
                Op::AddVertex => {
                    next_v += 1;
                    format!("INSERT INTO v VALUES ({})", next_v - 1)
                }
                Op::AddEdge(a, b) => {
                    let (a, b) = (a as i64 % next_v, b as i64 % next_v);
                    next_e += 1;
                    format!("INSERT INTO e VALUES ({}, {a}, {b}, 1.5)", next_e - 1)
                }
                Op::DeleteEdge(x) => {
                    format!("DELETE FROM e WHERE id = {}", x as i64 % next_e.max(1))
                }
                Op::DeleteVertex(x) => {
                    format!("DELETE FROM v WHERE id = {}", x as i64 % next_v)
                }
                Op::RelinkEdge(x, b) => format!(
                    "UPDATE e SET b = {} WHERE id = {}",
                    b as i64 % next_v,
                    x as i64 % next_e.max(1)
                ),
            });
        }
        out
    }

    /// Pretty-print for failure reports: the graph plus the replay script.
    fn render(&self) -> String {
        let mut s = format!(
            "workload {} ({} vertexes, {}, {} edges)\n  edges: {:?}\n  script:\n",
            self.name,
            self.n,
            if self.directed { "directed" } else { "undirected" },
            self.edges.len(),
            self.edges
        );
        for stmt in self.script() {
            s.push_str("    ");
            s.push_str(&stmt);
            s.push('\n');
        }
        s
    }
}

fn gen_ops(rng: &mut StdRng, count: usize) -> Vec<Op> {
    (0..count)
        .map(|_| match rng.gen_range(0..6u32) {
            0 => Op::AddVertex,
            1 | 2 => Op::AddEdge(rng.gen_range(0..64), rng.gen_range(0..64)),
            3 => Op::DeleteEdge(rng.gen_range(0..64)),
            4 => Op::DeleteVertex(rng.gen_range(0..64)),
            _ => Op::RelinkEdge(rng.gen_range(0..64), rng.gen_range(0..64)),
        })
        .collect()
}

/// The seeded workload family: seed selects the graph shape (chain,
/// clique, power-law, uniform random) and drives every random choice, so
/// a failing seed replays exactly.
fn gen_workload(seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(0x5EA1_0000 ^ seed);
    let directed = rng.gen::<bool>();
    let (shape, n, mut edges): (&str, usize, Vec<(u32, u32)>) = match seed % 4 {
        0 => {
            let n = rng.gen_range(4..10usize);
            ("chain", n, (0..n as u32 - 1).map(|i| (i, i + 1)).collect())
        }
        1 => {
            let n = rng.gen_range(3..6usize);
            let mut e = Vec::new();
            for i in 0..n as u32 {
                for j in (i + 1)..n as u32 {
                    e.push((i, j));
                }
            }
            ("clique", n, e)
        }
        2 => {
            // Preferential attachment: each new vertex links to an
            // endpoint of a uniformly chosen existing edge, so
            // high-degree vertexes keep winning (power-law-ish hubs).
            let n = rng.gen_range(5..10usize);
            let mut e: Vec<(u32, u32)> = vec![(0, 1)];
            for v in 2..n as u32 {
                let (a, b) = e[rng.gen_range(0..e.len())];
                let hub = if rng.gen::<bool>() { a } else { b };
                e.push((v, hub));
            }
            for _ in 0..rng.gen_range(0..3usize) {
                let (a, b) = e[rng.gen_range(0..e.len())];
                let hub = if rng.gen::<bool>() { a } else { b };
                e.push((rng.gen_range(0..n as u32), hub));
            }
            ("power-law", n, e)
        }
        _ => {
            let n = rng.gen_range(2..10usize);
            let m = rng.gen_range(0..2 * n);
            let e = (0..m)
                .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
                .collect();
            ("random", n, e)
        }
    };
    edges.truncate(24);
    let op_count = rng.gen_range(0..16usize);
    let ops = gen_ops(&mut rng, op_count);
    Workload {
        name: format!("seed-{seed}/{shape}"),
        n,
        directed,
        edges,
        ops,
    }
}

// ---------------------------------------------------------------------------
// The three lanes
// ---------------------------------------------------------------------------

fn build_engine(csr: CsrConfig, w: &Workload) -> Database {
    build_engine_with(csr, w, EpochConfig::disabled())
}

fn build_engine_with(csr: CsrConfig, w: &Workload, epochs: EpochConfig) -> Database {
    // Batching off explicitly (not from the environment): these lanes are
    // the row-at-a-time reference the batch lane is compared against.
    build_engine_cfg(
        EngineConfig {
            csr,
            parallel: ParallelConfig::serial(),
            epochs,
            batch: BatchConfig::disabled(),
            ..Default::default()
        },
        w,
    )
}

/// The batch lane: sealed CSR like the reference, but the relational spine
/// runs batch-at-a-time.
fn build_engine_batched(w: &Workload) -> Database {
    build_engine_cfg(
        EngineConfig {
            csr: CsrConfig::sealed(),
            parallel: ParallelConfig::serial(),
            epochs: EpochConfig::disabled(),
            batch: BatchConfig::enabled(),
            ..Default::default()
        },
        w,
    )
}

fn build_engine_cfg(cfg: EngineConfig, w: &Workload) -> Database {
    let db = Database::with_config(cfg);
    db.execute("CREATE TABLE v (id INTEGER PRIMARY KEY)").unwrap();
    db.execute("CREATE TABLE e (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, w DOUBLE)")
        .unwrap();
    let vrows: Vec<Vec<Value>> = (0..w.n as i64).map(|i| vec![Value::Integer(i)]).collect();
    db.bulk_insert("v", vrows).unwrap();
    let erows: Vec<Vec<Value>> = w
        .edges
        .iter()
        .enumerate()
        .map(|(i, (a, b))| {
            vec![
                Value::Integer(i as i64),
                Value::Integer(*a as i64),
                Value::Integer(*b as i64),
                Value::Double(1.0 + (i % 7) as f64),
            ]
        })
        .collect();
    db.bulk_insert("e", erows).unwrap();
    db.execute(&format!(
        "CREATE {} GRAPH VIEW g VERTEXES(ID = id) FROM v \
         EDGES(ID = id, FROM = a, TO = b, w = w) FROM e",
        if w.directed { "DIRECTED" } else { "UNDIRECTED" }
    ))
    .unwrap();
    db
}

/// The final table state as a `Dataset`, for loading the SQLGraph lane.
fn dataset_of(db: &Database, directed: bool) -> Dataset {
    let vertices = db
        .execute("SELECT id FROM v")
        .unwrap()
        .rows
        .iter()
        .map(|r| (r[0].as_integer().unwrap(), Vec::new()))
        .collect();
    let edges = db
        .execute("SELECT id, a, b FROM e")
        .unwrap()
        .rows
        .iter()
        .map(|r| {
            (
                r[0].as_integer().unwrap(),
                r[1].as_integer().unwrap(),
                r[2].as_integer().unwrap(),
                Vec::new(),
            )
        })
        .collect();
    Dataset {
        kind: DatasetKind::Roads, // label only; the oracle graphs are synthetic
        directed,
        vertex_schema: Vec::new(),
        edge_schema: Vec::new(),
        vertices,
        edges,
    }
}

fn set_parallel(db: &Database, workers: usize, morsel_size: usize) {
    let mut cfg = db.config();
    cfg.parallel = ParallelConfig {
        workers,
        morsel_size,
    };
    db.set_config(cfg);
}

fn rows_exact(db: &Database, sql: &str) -> Result<Vec<Vec<String>>, String> {
    let rs = db.execute(sql).map_err(|e| format!("{sql}: {e}"))?;
    Ok(rs
        .rows
        .iter()
        .map(|r| r.iter().map(|v| v.to_string()).collect())
        .collect())
}

// ---------------------------------------------------------------------------
// The checker
// ---------------------------------------------------------------------------

/// Run one workload through all three lanes. `Err` carries a
/// human-readable mismatch description (the minimizer re-runs this).
fn check(w: &Workload) -> Result<(), String> {
    let sealed = build_engine(CsrConfig::sealed(), w);
    let plain = build_engine(CsrConfig::adjacency_only(), w);
    let batch = build_engine_batched(w);
    if sealed.graph_stats("g").unwrap().sealed_bytes == 0 {
        return Err("sealed lane did not seal at materialization".into());
    }

    // DML interleaving: each statement must succeed on every lane with the
    // same row count, or fail on every lane.
    for stmt in w.script() {
        let a = sealed.execute(&stmt).map(|r| r.rows_affected);
        let b = plain.execute(&stmt).map(|r| r.rows_affected);
        let c = batch.execute(&stmt).map(|r| r.rows_affected);
        match (&a, &b, &c) {
            (Ok(x), Ok(y), Ok(z)) if x == y && y == z => {}
            (Err(_), Err(_), Err(_)) => {}
            _ => {
                return Err(format!(
                    "DML divergence on `{stmt}`: sealed {a:?} vs plain {b:?} vs batch {c:?}"
                ))
            }
        }
    }

    // Logical state: tables + maintained topology must dump identically.
    let (sd, pd) = (sealed.state_dump().unwrap(), plain.state_dump().unwrap());
    if sd != pd {
        return Err(format!("state_dump divergence:\n--- sealed\n{sd}\n--- plain\n{pd}"));
    }
    let bd = batch.state_dump().unwrap();
    if bd != sd {
        return Err(format!("state_dump divergence:\n--- sealed\n{sd}\n--- batch\n{bd}"));
    }

    // Batch lane: relational answers over the final state must be
    // byte-identical to the row reference — these plans are all
    // batch-native (scan/filter/join/aggregate), so this is the spine the
    // batch executor actually rewires.
    let relational = [
        "SELECT id FROM v WHERE id >= 1",
        "SELECT id, a, b, w FROM e WHERE a <> b AND w > 1.0",
        "SELECT COUNT(*), MIN(a), MAX(b), SUM(w), AVG(w) FROM e",
        "SELECT a, COUNT(*) FROM e GROUP BY a",
        "SELECT e.id, v.id FROM e JOIN v ON e.a = v.id",
    ];
    for sql in relational {
        let want = rows_exact(&sealed, sql)?;
        let got = rows_exact(&batch, sql)?;
        if got != want {
            return Err(format!(
                "batch lane diverges on `{sql}`:\n  got {got:?}\n  want {want:?}"
            ));
        }
    }

    // Full path enumerations and shortest-path probes, byte-compared
    // across layout × worker-count. Emission order is part of the
    // contract (morsel-parallel scans promise serial-equivalent order).
    let queries = [
        "SELECT PS.PathString, PS.Length FROM g.Paths PS HINT(DFS) \
         WHERE PS.Length >= 1 AND PS.Length <= 3",
        "SELECT PS.PathString, PS.Length FROM g.Paths PS HINT(BFS) \
         WHERE PS.Length >= 1 AND PS.Length <= 3",
        "SELECT PS.PathString, PS.Cost FROM g.Paths PS HINT(SHORTESTPATH(w)) \
         WHERE PS.StartVertex.Id = 0 AND PS.EndVertex.Id = 1",
    ];
    for sql in queries {
        let reference = rows_exact(&sealed, sql)?;
        for (lane, db) in [("sealed", &sealed), ("plain", &plain), ("batch", &batch)] {
            for workers in [1usize, 4] {
                set_parallel(db, workers, 2);
                let got = rows_exact(db, sql)?;
                set_parallel(db, 1, 1024);
                if got != reference {
                    return Err(format!(
                        "{lane}@workers={workers} diverges on `{sql}`:\n  got {got:?}\n  want {reference:?}"
                    ));
                }
            }
        }
    }

    // Outside lane: SQLGraph join-chain reachability over the final state.
    // Walks subsume simple paths, so booleans must agree exactly.
    let ds = dataset_of(&plain, w.directed);
    let sqlgraph = SqlGraphSystem::load(&ds).map_err(|e| format!("sqlgraph load: {e}"))?;
    let ids: Vec<i64> = ds.vertices.iter().map(|(id, _)| *id).collect();
    if ids.is_empty() {
        return Ok(());
    }
    let mut rng = StdRng::seed_from_u64(0xD1FF ^ w.n as u64 ^ (w.edges.len() as u64) << 32);
    for _ in 0..12 {
        let s = ids[rng.gen_range(0..ids.len())];
        let t = ids[rng.gen_range(0..ids.len())];
        let hops = rng.gen_range(1..=4usize);
        let baseline = sqlgraph
            .reachable(s, t, hops, None)
            .map_err(|e| format!("sqlgraph reachable: {e}"))?;
        let engine = if s == t {
            true // both systems treat a vertex as trivially reaching itself
        } else {
            !rows_exact(
                &sealed,
                &format!(
                    "SELECT PS.StartVertex.Id FROM g.Paths PS HINT(BFS) \
                     WHERE PS.StartVertex.Id = {s} AND PS.EndVertex.Id = {t} \
                     AND PS.Length <= {hops} LIMIT 1"
                ),
            )?
            .is_empty()
        };
        if engine != baseline {
            return Err(format!(
                "reachability divergence {s}→{t} within {hops} hops: \
                 engine {engine} vs sqlgraph {baseline}"
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Greedy minimizer
// ---------------------------------------------------------------------------

/// Shrink a failing workload: repeatedly drop one DML op, then one edge,
/// then one trailing vertex, keeping any removal that still fails, until
/// no single removal reproduces. Quadratic, but failing workloads are
/// already small.
fn minimize(w: Workload) -> (Workload, String) {
    minimize_with(w, check)
}

fn minimize_with(
    mut w: Workload,
    check: impl Fn(&Workload) -> Result<(), String>,
) -> (Workload, String) {
    let mut err = check(&w).expect_err("minimize called on a passing workload");
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < w.ops.len() {
            let mut cand = w.clone();
            cand.ops.remove(i);
            if let Err(e) = check(&cand) {
                w = cand;
                err = e;
                shrunk = true;
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < w.edges.len() {
            let mut cand = w.clone();
            cand.edges.remove(i);
            if let Err(e) = check(&cand) {
                w = cand;
                err = e;
                shrunk = true;
            } else {
                i += 1;
            }
        }
        while w.n > 2 && w.edges.iter().all(|&(a, b)| ((w.n - 1) as u32) > a.max(b)) {
            let mut cand = w.clone();
            cand.n -= 1;
            if let Err(e) = check(&cand) {
                w = cand;
                err = e;
                shrunk = true;
            } else {
                break;
            }
        }
        if !shrunk {
            return (w, err);
        }
    }
}

/// The minimizer itself, exercised against a synthetic failure predicate
/// (a real engine divergence would only cover this path on the day the
/// oracle fires): it must strip everything not implicated.
#[test]
fn minimizer_reaches_a_local_minimum()
{
    let w = Workload {
        name: "minimizer-probe".into(),
        n: 8,
        directed: true,
        edges: vec![(0, 1), (1, 2), (2, 3)],
        ops: vec![
            Op::AddVertex,
            Op::RelinkEdge(3, 5),
            Op::DeleteEdge(1),
            Op::RelinkEdge(7, 1),
        ],
    };
    let predicate = |w: &Workload| -> Result<(), String> {
        let relinks = w.ops.iter().filter(|o| matches!(o, Op::RelinkEdge(..))).count();
        if relinks >= 1 && w.edges.len() >= 2 {
            Err("synthetic".into())
        } else {
            Ok(())
        }
    };
    assert!(predicate(&w).is_err());
    let (min, err) = minimize_with(w, predicate);
    assert_eq!(err, "synthetic");
    // 1-minimal: one relink, two edges, and the unused tail vertexes
    // stripped down to the highest surviving endpoint.
    assert_eq!(min.edges, vec![(1, 2), (2, 3)], "{}", min.render());
    assert_eq!(min.ops, vec![Op::RelinkEdge(7, 1)]);
    assert_eq!(min.n, 4);
}

fn run_seed(seed: u64) {
    let w = gen_workload(seed);
    if check(&w).is_err() {
        let (min, err) = minimize(w);
        panic!("differential oracle failed (minimized):\n{}\n{err}", min.render());
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

/// The headline oracle: 200 seeded workloads, ~50 per graph family.
#[test]
fn differential_oracle_200_seeded_workloads() {
    for seed in 0..200u64 {
        run_seed(seed);
    }
}

/// A denser DML mix over the overlay-heavy shapes (relinks dominate after
/// a chain seals with almost no slack), biased past the re-seal
/// threshold so sealed → delta → re-seal cycles happen mid-workload.
#[test]
fn differential_oracle_reseal_churn() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xC0_FFEE ^ seed);
        let n = rng.gen_range(4..8usize);
        let mut w = Workload {
            name: format!("churn-{seed}"),
            n,
            directed: seed % 2 == 0,
            edges: (0..n as u32 - 1).map(|i| (i, i + 1)).collect(),
            ops: Vec::new(),
        };
        w.ops = (0..24)
            .map(|_| match rng.gen_range(0..3u32) {
                0 => Op::RelinkEdge(rng.gen_range(0..64), rng.gen_range(0..64)),
                1 => Op::AddEdge(rng.gen_range(0..64), rng.gen_range(0..64)),
                _ => Op::DeleteEdge(rng.gen_range(0..64)),
            })
            .collect();
        if check(&w).is_err() {
            let (min, err) = minimize(w);
            panic!("churn oracle failed (minimized):\n{}\n{err}", min.render());
        }
    }
}

// Free-shape variant: proptest generates graph + op stream directly and
// its shrinker minimizes structurally (complementing the greedy
// minimizer, which only deletes).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn differential_oracle_arbitrary_workloads(
        n in 2usize..9,
        edges in proptest::collection::vec((0u32..9, 0u32..9), 0..16),
        directed in any::<bool>(),
        raw_ops in proptest::collection::vec((0u32..6, 0u32..64, 0u32..64), 0..14)
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let ops = raw_ops
            .into_iter()
            .map(|(k, x, y)| match k {
                0 => Op::AddVertex,
                1 | 2 => Op::AddEdge(x, y),
                3 => Op::DeleteEdge(x),
                4 => Op::DeleteVertex(x),
                _ => Op::RelinkEdge(x, y),
            })
            .collect();
        let w = Workload {
            name: "proptest".into(),
            n,
            directed,
            edges,
            ops,
        };
        if let Err(e) = check(&w) {
            prop_assert!(false, "{}\n{e}", w.render());
        }
    }
}

// ---------------------------------------------------------------------------
// Concurrent lane: epoch-published snapshot isolation
// ---------------------------------------------------------------------------

/// The three oracle queries, shared by the serial and concurrent lanes.
const ORACLE_QUERIES: [&str; 3] = [
    "SELECT PS.PathString, PS.Length FROM g.Paths PS HINT(DFS) \
     WHERE PS.Length >= 1 AND PS.Length <= 3",
    "SELECT PS.PathString, PS.Length FROM g.Paths PS HINT(BFS) \
     WHERE PS.Length >= 1 AND PS.Length <= 3",
    "SELECT PS.PathString, PS.Cost FROM g.Paths PS HINT(SHORTESTPATH(w)) \
     WHERE PS.StartVertex.Id = 0 AND PS.EndVertex.Id = 1",
];

/// Per-prefix serial reference: the three query answers plus the full
/// state dump after the first `prefix` successful script statements.
struct PrefixRef {
    rows: [Vec<Vec<String>>; 3],
    dump: String,
}

fn capture_reference(db: &Database) -> Result<PrefixRef, String> {
    Ok(PrefixRef {
        rows: [
            rows_exact(db, ORACLE_QUERIES[0])?,
            rows_exact(db, ORACLE_QUERIES[1])?,
            rows_exact(db, ORACLE_QUERIES[2])?,
        ],
        dump: db.state_dump().map_err(|e| format!("reference dump: {e}"))?,
    })
}

/// Run one workload with epoch publication on: a single writer replays the
/// DML script while `readers` threads hammer full path enumerations. Every
/// read must be byte-identical to a serial run against exactly the epoch
/// it pinned (identified via the `epoch` annotation in query metrics), and
/// every observed state dump must equal some committed script prefix.
///
/// Failure strings name the `(script-prefix, query)` pair so the minimizer
/// output pinpoints the diverging snapshot.
fn check_concurrent(w: &Workload, readers: usize) -> Result<(), String> {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    let live = build_engine_with(CsrConfig::sealed(), w, EpochConfig::enabled());
    let reference = build_engine(CsrConfig::sealed(), w);

    // prefix 0 = the state right after setup, before any script DML.
    let expected: Mutex<Vec<PrefixRef>> = Mutex::new(vec![capture_reference(&reference)?]);
    let mut epoch_prefix: HashMap<u64, usize> = HashMap::new();
    epoch_prefix.insert(
        live.current_epoch().ok_or("no epoch published after setup")?,
        0,
    );
    let epoch_prefix = Mutex::new(epoch_prefix);
    let failure: Mutex<Option<String>> = Mutex::new(None);
    let done = AtomicBool::new(false);

    let fail = |msg: String| {
        let mut f = failure.lock().unwrap();
        if f.is_none() {
            *f = Some(msg);
        }
    };
    let resolve_prefix = |epoch: u64| -> Result<usize, ()> {
        loop {
            if let Some(p) = epoch_prefix.lock().unwrap().get(&epoch) {
                return Ok(*p);
            }
            if done.load(Ordering::Acquire) {
                // All mappings are recorded before `done`; an unmapped
                // epoch here means the writer already bailed.
                return Err(());
            }
            std::thread::yield_now();
        }
    };

    std::thread::scope(|scope| {
        for r in 0..readers {
            let (live, expected, failure, done) = (&live, &expected, &failure, &done);
            scope.spawn(move || {
                let mut iters = 0usize;
                // Keep reading until the writer finishes, and always do at
                // least two full passes so short scripts still get
                // concurrent coverage.
                while !done.load(Ordering::Acquire) || iters < 2 {
                    if failure.lock().unwrap().is_some() {
                        return;
                    }
                    for (qi, sql) in ORACLE_QUERIES.iter().enumerate() {
                        let rs = match live.execute_with_metrics(sql) {
                            Ok(rs) => rs,
                            Err(e) => return fail(format!("reader {r}: `{sql}`: {e}")),
                        };
                        let Some(epoch) = rs.metrics.as_ref().and_then(|m| m.epoch) else {
                            return fail(format!(
                                "reader {r}: `{sql}` ran without an epoch pin"
                            ));
                        };
                        let Ok(prefix) = resolve_prefix(epoch) else { return };
                        let got: Vec<Vec<String>> = rs
                            .rows
                            .iter()
                            .map(|row| row.iter().map(|v| v.to_string()).collect())
                            .collect();
                        let want = expected.lock().unwrap()[prefix].rows[qi].clone();
                        if got != want {
                            return fail(format!(
                                "reader {r}: script-prefix {prefix}, query `{sql}`: \
                                 epoch {epoch} read diverges from serial reference\n  \
                                 got {got:?}\n  want {want:?}"
                            ));
                        }
                    }
                    // The whole-database snapshot must also be some prefix.
                    if let Some((epoch, dump)) = live.snapshot_dump() {
                        let Ok(prefix) = resolve_prefix(epoch) else { return };
                        let want = expected.lock().unwrap()[prefix].dump.clone();
                        if dump != want {
                            return fail(format!(
                                "reader {r}: script-prefix {prefix}, query \
                                 `state_dump`: epoch {epoch} dump diverges\n\
                                 --- got\n{dump}\n--- want\n{want}"
                            ));
                        }
                    }
                    iters += 1;
                }
            });
        }

        // The writer: replay the script statement by statement, extending
        // the serial reference and the epoch → prefix map on each commit.
        let mut prefix = 0usize;
        for stmt in w.script() {
            if failure.lock().unwrap().is_some() {
                break;
            }
            let a = live.execute(&stmt).map(|rs| rs.rows_affected);
            let b = reference.execute(&stmt).map(|rs| rs.rows_affected);
            match (&a, &b) {
                (Ok(x), Ok(y)) if x == y => {
                    prefix += 1;
                    match capture_reference(&reference) {
                        Ok(snap) => expected.lock().unwrap().push(snap),
                        Err(e) => {
                            fail(format!("script-prefix {prefix}: {e}"));
                            break;
                        }
                    }
                    match live.current_epoch() {
                        Some(ep) => {
                            epoch_prefix.lock().unwrap().insert(ep, prefix);
                        }
                        None => {
                            fail(format!("script-prefix {prefix}: no epoch after commit"));
                            break;
                        }
                    }
                }
                (Err(_), Err(_)) => {} // agreement: neither lane publishes
                _ => {
                    fail(format!(
                        "script-prefix {prefix}: DML divergence on `{stmt}`: \
                         live {a:?} vs reference {b:?}"
                    ));
                    break;
                }
            }
        }
        done.store(true, Ordering::Release);
    });

    if let Some(e) = failure.into_inner().unwrap() {
        return Err(e);
    }

    // Every reader has joined, so no pin outlives the scope: superseded
    // epochs must all have been reclaimed by their last `Arc` drop.
    let (live_epochs, retained) = live.epoch_stats();
    if live_epochs > 1 || retained > 0 {
        return Err(format!(
            "epoch leak after readers stopped: {live_epochs} live, {retained} bytes retained"
        ));
    }
    Ok(())
}

/// The concurrent headline oracle: the same 200 seeded workloads, read by
/// 4 concurrent reader threads while the writer replays the script. On
/// failure the greedy minimizer re-runs the *concurrent* checker and the
/// panic names the failing (script-prefix, query) pair.
#[test]
fn concurrent_oracle_200_seeded_workloads() {
    for seed in 0..200u64 {
        let w = gen_workload(seed);
        if check_concurrent(&w, 4).is_err() {
            let (min, err) = minimize_with(w, |w| check_concurrent(w, 4));
            panic!(
                "concurrent epoch oracle failed (minimized):\n{}\n{err}",
                min.render()
            );
        }
    }
}

/// Reclamation under load: after the writer finishes and readers stop, no
/// superseded epoch may stay resident (spot-checked on a few seeds; the
/// dedicated lifecycle tests live in `concurrency.rs`).
#[test]
fn concurrent_oracle_reclaims_epochs() {
    for seed in [0u64, 7, 42] {
        let w = gen_workload(seed);
        check_concurrent(&w, 2).unwrap();
    }
}

// ---------------------------------------------------------------------------
// Optimizer lane: cost-based plans vs the rule-based reference
// ---------------------------------------------------------------------------

/// Queries the cost-based optimizer is allowed to re-plan (order-free
/// aggregates over anchored path scans — the traversal-vs-iterated-join,
/// BFS/DFS/targeted-BFS, pushdown, join-swap, and row-pipeline decision
/// surfaces) plus relational joins for the build-side swap. Every answer
/// must be byte-identical to the rule-based engine's.
const OPTIMIZER_QUERIES: [&str; 5] = [
    "SELECT COUNT(*) FROM g.Paths PS \
     WHERE PS.StartVertex.Id = 0 AND PS.Length = 2",
    "SELECT COUNT(*), MIN(PS.Length), MAX(PS.Length) FROM g.Paths PS \
     WHERE PS.StartVertex.Id = 1 AND PS.Length >= 1 AND PS.Length <= 3",
    "SELECT COUNT(*) FROM g.Paths PS \
     WHERE PS.StartVertex.Id = 0 AND PS.EndVertex.Id = 2 AND PS.Length = 2",
    "SELECT COUNT(*) FROM e JOIN v ON e.b = v.id",
    "SELECT PS.EndVertex.Id FROM g.Paths PS \
     WHERE PS.StartVertex.Id = 0 AND PS.Length <= 2 LIMIT 3",
];

/// Build one optimizer-lane engine: sealed CSR, batch pipeline on (so the
/// cost model's row-pipeline preference actually ablates something), and a
/// hash index on the edge table's FROM column (so the iterated-join
/// rewrite can fire and must then stay correct while DML churns the index
/// and the topology).
fn build_engine_optimizer(w: &Workload, cost_based: bool) -> Database {
    let mut cfg = EngineConfig {
        csr: CsrConfig::sealed(),
        parallel: ParallelConfig::serial(),
        epochs: EpochConfig::disabled(),
        batch: BatchConfig::enabled(),
        ..Default::default()
    };
    cfg.optimizer.cost_based = cost_based;
    let db = build_engine_cfg(cfg, w);
    db.execute("CREATE INDEX ix_ea ON e (a)").unwrap();
    db
}

/// The fourth oracle lane: a cost-based engine against the rule-based
/// reference over the same workload. DML must agree statement by
/// statement, the final state dumps must be byte-identical, and every
/// oracle query — the order-sensitive HINT enumerations (which the
/// optimizer must leave alone) and the re-plannable aggregates — must
/// return byte-identical rows at `workers = 1` and `workers = 4`.
///
/// Divergence reports embed both lanes' EXPLAIN text so the minimized
/// failure names the *chosen plan*, not just the rows.
fn check_optimizer(w: &Workload) -> Result<(), String> {
    let reference = build_engine_optimizer(w, false);
    let optimized = build_engine_optimizer(w, true);

    for stmt in w.script() {
        let a = reference.execute(&stmt).map(|r| r.rows_affected);
        let b = optimized.execute(&stmt).map(|r| r.rows_affected);
        match (&a, &b) {
            (Ok(x), Ok(y)) if x == y => {}
            (Err(_), Err(_)) => {}
            _ => {
                return Err(format!(
                    "DML divergence on `{stmt}`: rule-based {a:?} vs cost-based {b:?}"
                ))
            }
        }
    }

    let (rd, od) = (
        reference.state_dump().unwrap(),
        optimized.state_dump().unwrap(),
    );
    if rd != od {
        return Err(format!(
            "state_dump divergence:\n--- rule-based\n{rd}\n--- cost-based\n{od}"
        ));
    }

    let plans = |sql: &str| -> String {
        format!(
            "  rule-based plan:\n{}\n  cost-based plan:\n{}",
            reference.explain(sql).unwrap_or_else(|e| e.to_string()),
            optimized.explain(sql).unwrap_or_else(|e| e.to_string()),
        )
    };
    for sql in ORACLE_QUERIES.iter().chain(OPTIMIZER_QUERIES.iter()) {
        let want = rows_exact(&reference, sql)?;
        for workers in [1usize, 4] {
            set_parallel(&optimized, workers, 2);
            let got = rows_exact(&optimized, sql)?;
            set_parallel(&optimized, 1, 1024);
            if got != want {
                return Err(format!(
                    "cost-based lane @workers={workers} diverges on `{sql}`:\n  \
                     got {got:?}\n  want {want:?}\n{}",
                    plans(sql)
                ));
            }
        }
    }
    Ok(())
}

/// The optimizer headline oracle: the same 200 seeded workloads, replayed
/// through the cost-based lane. On failure the greedy minimizer re-runs
/// the optimizer checker, so the panic prints the minimal graph, the DML
/// script, the diverging query, and both chosen plans.
#[test]
fn optimizer_oracle_200_seeded_workloads() {
    for seed in 0..200u64 {
        let w = gen_workload(seed);
        if check_optimizer(&w).is_err() {
            let (min, err) = minimize_with(w, check_optimizer);
            panic!(
                "optimizer oracle failed (minimized):\n{}\n{err}",
                min.render()
            );
        }
    }
}
