//! Analyzer battery: the static QEP verifier's two promises, exercised
//! from the public `Database` surface.
//!
//! * **Positive**: every query of the fig7–fig10 / metrics-battery
//!   families is accepted, executes with zero runtime type errors, and
//!   every emitted row matches the statically inferred result schema —
//!   with the `CheckedOp` contract shim forced on, serially and at
//!   `workers = 4`.
//! * **Negative**: ill-typed queries are rejected *at plan time* with an
//!   `Error::Analysis` carrying the 1-based `line:col` of the offending
//!   token.

use grfusion::{Database, ParallelConfig};
use grfusion_common::Error;

/// Force the contract shim on for this test binary regardless of build
/// profile (it already defaults to on under `debug_assertions`).
fn shim_on() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| std::env::set_var("GRFUSION_CHECK_CONTRACTS", "1"));
}

/// Diamond graph (1->2, 1->3, 2->4, 3->4, 4->5, 5->6) with a VARCHAR
/// vertex attribute and a DOUBLE edge weight, plus a plain relational
/// table `t` with a NULL to keep nullability honest.
fn fixture_db() -> Database {
    shim_on();
    let db = Database::new();
    db.execute("CREATE TABLE v (id INTEGER PRIMARY KEY, name VARCHAR)")
        .unwrap();
    db.execute("CREATE TABLE e (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, w DOUBLE)")
        .unwrap();
    for (id, name) in [(1, "a"), (2, "b"), (3, "c"), (4, "d"), (5, "e"), (6, "f")] {
        db.execute(&format!("INSERT INTO v VALUES ({id}, '{name}')"))
            .unwrap();
    }
    for (id, a, b, w) in [
        (10, 1, 2, 1.0),
        (11, 1, 3, 4.0),
        (12, 2, 4, 2.0),
        (13, 3, 4, 0.5),
        (14, 4, 5, 1.5),
        (15, 5, 6, 3.0),
    ] {
        db.execute(&format!("INSERT INTO e VALUES ({id}, {a}, {b}, {w})"))
            .unwrap();
    }
    db.execute(
        "CREATE DIRECTED GRAPH VIEW g VERTEXES(ID = id, name = name) FROM v \
         EDGES(ID = id, FROM = a, TO = b, w = w) FROM e",
    )
    .unwrap();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER, s VARCHAR, d DOUBLE)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 7, 'p', 0.5)").unwrap();
    db.execute("INSERT INTO t VALUES (2, NULL, 'q', 1.5)").unwrap();
    db.execute("INSERT INTO t VALUES (3, -3, 'r', 2.5)").unwrap();
    db
}

fn set_parallel(db: &Database, workers: usize, morsel_size: usize) {
    let mut cfg = db.config();
    cfg.parallel = ParallelConfig {
        workers,
        morsel_size,
    };
    db.set_config(cfg);
}

/// The fig7–fig10 / metrics-battery query families: reachability,
/// shortest path, windowed enumeration (with pushed predicates and
/// attribute projection), vertex/edge scans, relational mixes, joins,
/// and aggregation.
const POSITIVE: &[&str] = &[
    // fig7: bounded reachability.
    "SELECT PS.Length FROM g.Paths PS WHERE PS.StartVertex.Id = 1 \
     AND PS.EndVertex.Id = 6 AND PS.Length <= 10 LIMIT 1",
    // fig8: shortest path with an edge-weight cost attribute.
    "SELECT PS.PathString, PS.Cost FROM g.Paths PS HINT(SHORTESTPATH(w)) \
     WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 5 AND PS.Length <= 4",
    // fig9/10: windowed enumeration down both traversal hints.
    "SELECT PS.PathString, PS.Length FROM g.Paths PS HINT(DFS) \
     WHERE PS.Length >= 1 AND PS.Length <= 3",
    "SELECT PS.PathString FROM g.Paths PS HINT(BFS) \
     WHERE PS.StartVertex.Id = 1 AND PS.Length >= 1 AND PS.Length <= 3",
    // Pushed traversal predicate over the exposed edge attribute.
    "SELECT PS.PathString FROM g.Paths PS \
     WHERE PS.Edges[0..*].w < 5.0 AND PS.Length >= 1 AND PS.Length <= 3",
    // Vertex attribute projected through the path (nullable VARCHAR).
    "SELECT PS.EndVertex.name, PS.Length FROM g.Paths PS \
     WHERE PS.StartVertex.Id = 1 AND PS.Length >= 1 AND PS.Length <= 2",
    // Graph element scans with the synthesized degree columns.
    "SELECT V.id, V.name, V.fanout FROM g.Vertexes V WHERE V.fanout > 0",
    "SELECT E.id, E.w FROM g.Edges E WHERE E.w < 5.0 ORDER BY E.w",
    // Aggregation over paths and over edge attributes.
    "SELECT COUNT(PS) FROM g.Paths PS WHERE PS.StartVertex.Id = 1 AND PS.Length <= 3",
    "SELECT PS.Length, COUNT(PS) FROM g.Paths PS \
     WHERE PS.Length >= 1 AND PS.Length <= 3 GROUP BY PS.Length ORDER BY PS.Length",
    "SELECT SUM(E.w), AVG(E.w), MIN(E.w), MAX(E.w) FROM g.Edges E",
    // Relational-only: arithmetic, BETWEEN, NULL-bearing column.
    "SELECT t.x + 1, t.s FROM t WHERE t.x BETWEEN -10 AND 10 ORDER BY t.x LIMIT 5",
    "SELECT DISTINCT PS.Length FROM g.Paths PS WHERE PS.Length <= 2",
    // Cross-model join: base table driving a path scan.
    "SELECT v.name, PS.Length FROM v, g.Paths PS \
     WHERE PS.StartVertex.Id = v.id AND PS.Length = 1",
];

/// Every row of every result must match the advertised schema: exact
/// arity and per-column admissibility.
fn assert_rows_match_schema(sql: &str, db: &Database) {
    let rs = db
        .execute(sql)
        .unwrap_or_else(|e| panic!("analyzer rejected or execution failed\n  sql: {sql}\n  err: {e}"));
    for (r, row) in rs.rows.iter().enumerate() {
        assert_eq!(
            row.len(),
            rs.schema.len(),
            "row {r} arity != schema arity for {sql}"
        );
        for (i, (v, col)) in row.iter().zip(rs.schema.columns()).enumerate() {
            assert!(
                col.data_type.admits(v),
                "row {r} col {i} (`{}` {}) got {v:?} for {sql}",
                col.name,
                col.data_type
            );
        }
    }
}

#[test]
fn positive_battery_serial() {
    let db = fixture_db();
    for sql in POSITIVE {
        assert_rows_match_schema(sql, &db);
    }
}

#[test]
fn positive_battery_parallel() {
    let db = fixture_db();
    set_parallel(&db, 4, 2);
    for sql in POSITIVE {
        assert_rows_match_schema(sql, &db);
    }
}

/// Every accepted query's EXPLAIN carries an inferred schema on every
/// plan line.
#[test]
fn positive_battery_explains_with_schemas() {
    let db = fixture_db();
    for sql in POSITIVE {
        let text = db.explain(sql).unwrap();
        for line in text.lines() {
            assert!(
                line.contains(" :: ("),
                "EXPLAIN line lacks an inferred schema: {line}\n  sql: {sql}"
            );
        }
    }
}

/// Ill-typed statements and the exact diagnostic (with 1-based source
/// span) the analyzer must reject them with at plan time.
const NEGATIVE: &[(&str, &str)] = &[
    (
        "SELECT nope FROM t",
        "unknown column `nope` at 1:8",
    ),
    (
        "SELECT t.nope FROM t",
        "unknown column `nope` on binding `t` at 1:10",
    ),
    (
        "SELECT x FROM t WHERE s > 1",
        "cannot compare VARCHAR with INTEGER at 1:23",
    ),
    (
        "SELECT x FROM t WHERE x",
        "WHERE predicate must be BOOLEAN, got INTEGER at 1:23",
    ),
    (
        "SELECT x + s FROM t",
        "arithmetic requires numeric operands, got VARCHAR at 1:12",
    ),
    (
        "SELECT -s FROM t",
        "unary minus requires a numeric operand, got VARCHAR at 1:9",
    ),
    (
        "SELECT NOT x FROM t",
        "NOT requires a BOOLEAN operand, got INTEGER at 1:12",
    ),
    (
        "SELECT x FROM t WHERE x AND 1 < 2",
        "AND requires BOOLEAN operands, got INTEGER at 1:23",
    ),
    (
        "SELECT SUM(s) FROM t",
        "SUM() requires a numeric argument, got VARCHAR at 1:12",
    ),
    (
        "SELECT AVG(s) FROM t",
        "AVG() requires a numeric argument, got VARCHAR at 1:12",
    ),
    (
        "SELECT FROBNICATE(x) FROM t",
        "unknown function `FROBNICATE` at 1:19",
    ),
    (
        "SELECT MIN(PS) FROM g.Paths PS WHERE PS.Length <= 1",
        "MIN cannot aggregate PATH values at 1:12",
    ),
    (
        "SELECT PS.Nope FROM g.Paths PS WHERE PS.Length <= 1",
        "unknown path property `Nope` on `PS` at 1:11",
    ),
    (
        "SELECT PS.EndVertex.nope FROM g.Paths PS WHERE PS.Length <= 1",
        "graph view `g` has no vertex attribute `nope` at 1:21",
    ),
    (
        "SELECT PS.Edges[0..*].nope FROM g.Paths PS WHERE PS.Length <= 1",
        "graph view `g` has no edge attribute `nope` at 1:23",
    ),
    (
        "SELECT PS FROM g.Paths PS WHERE PS > 3",
        "cannot compare PATH with INTEGER at 1:33",
    ),
    (
        "SELECT x FROM t WHERE x IN (1, s)",
        "cannot compare INTEGER with VARCHAR at 1:32",
    ),
    (
        "SELECT x FROM t WHERE x BETWEEN 1 AND s",
        "cannot compare INTEGER with VARCHAR at 1:39",
    ),
    (
        "SELECT V.id FROM g.Vertexes V WHERE V.name < 3",
        "cannot compare VARCHAR with INTEGER at 1:37",
    ),
    (
        "SELECT PS.Length FROM g.Paths PS WHERE PS.PathString > PS.Cost",
        "cannot compare VARCHAR with DOUBLE at 1:40",
    ),
    (
        "SELECT x, COUNT(*) FROM t GROUP BY x HAVING x",
        "HAVING predicate must be BOOLEAN, got INTEGER at 1:45",
    ),
    (
        "INSERT INTO t VALUES (99, 'x', 's', 1.5)",
        "cannot insert VARCHAR into column `x` (INTEGER)",
    ),
    (
        "UPDATE t SET x = 'abc'",
        "cannot assign VARCHAR to column `x` (INTEGER)",
    ),
    (
        "DELETE FROM t WHERE x + 1",
        "WHERE predicate must be BOOLEAN, got INTEGER at 1:21",
    ),
];

#[test]
fn negative_battery_rejects_at_plan_time() {
    let db = fixture_db();
    let rows_before = db.table_len("t").unwrap();
    for (sql, want) in NEGATIVE {
        match db.execute(sql) {
            Err(Error::Analysis(msg)) => assert!(
                msg.contains(want),
                "wrong diagnostic for {sql}\n  want substring: {want}\n  got: {msg}"
            ),
            Err(other) => panic!("{sql} rejected with non-analysis error: {other}"),
            Ok(_) => panic!("ill-typed statement accepted: {sql}"),
        }
    }
    // Rejected DML must not have touched the table.
    assert_eq!(db.table_len("t").unwrap(), rows_before);
}

/// The analyzer runs on *prepared* statements too — no bypass route.
#[test]
fn prepare_rejects_ill_typed_queries() {
    let db = fixture_db();
    assert!(matches!(
        db.prepare("SELECT x FROM t WHERE s > 1"),
        Err(Error::Analysis(_))
    ));
    assert!(matches!(
        db.explain("SELECT PS.Nope FROM g.Paths PS WHERE PS.Length <= 1"),
        Err(Error::Analysis(_))
    ));
}
