//! Seeded-scheduler interleaving tests for the epoch publication hot path:
//! the `Arc` swap in `EpochHub::install` and the pin/unpin accounting that
//! drives reclamation.
//!
//! The first test is a deterministic model check: a seeded scheduler
//! interleaves publish / pin / unpin / verify steps on one thread and
//! cross-checks the engine's `(live epochs, retained bytes)` against a
//! shadow model after every step — any divergence replays exactly from
//! the seed. The second test is a threaded stress run (real `Arc` races)
//! whose end state must still reclaim down to the single current epoch.
//! Std-only by design: determinism comes from the seeded schedule, not
//! from instrumented locks.

use std::collections::BTreeMap;

use grfusion::{
    CsrConfig, Database, EngineConfig, EpochConfig, EpochSnapshot, ParallelConfig, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small chain graph with epoch publication on.
fn tiny_db() -> Database {
    let db = Database::with_config(EngineConfig {
        csr: CsrConfig::sealed(),
        parallel: ParallelConfig::serial(),
        epochs: EpochConfig::enabled(),
        ..Default::default()
    });
    db.execute("CREATE TABLE v (id INTEGER PRIMARY KEY)").unwrap();
    db.execute("CREATE TABLE e (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, w DOUBLE)")
        .unwrap();
    let vrows: Vec<Vec<Value>> = (0..20i64).map(|i| vec![Value::Integer(i)]).collect();
    db.bulk_insert("v", vrows).unwrap();
    let erows: Vec<Vec<Value>> = (0..19i64)
        .map(|i| {
            vec![
                Value::Integer(i),
                Value::Integer(i),
                Value::Integer(i + 1),
                Value::Double(1.0),
            ]
        })
        .collect();
    db.bulk_insert("e", erows).unwrap();
    db.execute(
        "CREATE DIRECTED GRAPH VIEW g VERTEXES(ID = id) FROM v \
         EDGES(ID = id, FROM = a, TO = b, w = w) FROM e",
    )
    .unwrap();
    db
}

/// Deterministic seeded schedule over publish / pin / unpin / verify,
/// shadow-modelled: after every step, the engine's live-epoch count and
/// retained bytes must equal what the set of held pins implies.
#[test]
fn seeded_interleavings_preserve_pin_accounting() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0xE90C_0000 ^ seed);
        let db = tiny_db();
        // Held pins with the epoch number and dump captured at pin time.
        let mut held: Vec<(EpochSnapshot, u64, String)> = Vec::new();
        let mut next_id = 1000i64;
        let mut current = db.current_epoch().expect("epoch published after setup");
        for step in 0..120 {
            match rng.gen_range(0..4u32) {
                0 => {
                    // Writer publishes: every committed statement swaps in
                    // a new epoch with a strictly larger number.
                    db.execute(&format!("INSERT INTO v VALUES ({next_id})")).unwrap();
                    next_id += 1;
                    let now = db.current_epoch().unwrap();
                    assert!(now > current, "seed {seed} step {step}: epoch went backwards");
                    current = now;
                }
                1 => {
                    // Reader pins: always lands on the current epoch.
                    let snap = db.pin_snapshot().expect("pin with publication on");
                    assert_eq!(snap.number(), current, "seed {seed} step {step}");
                    let dump = snap.state_dump();
                    held.push((snap, current, dump));
                }
                2 => {
                    // Reader unpins (a seeded victim).
                    if !held.is_empty() {
                        let victim = rng.gen_range(0..held.len());
                        held.remove(victim);
                    }
                }
                _ => {
                    // Verify: every held pin still dumps exactly what it
                    // dumped at pin time, however many swaps happened.
                    for (snap, number, dump) in &held {
                        assert_eq!(
                            &snap.state_dump(),
                            dump,
                            "seed {seed} step {step}: epoch {number} dump changed"
                        );
                    }
                }
            }
            // Shadow model: live = distinct pinned epochs plus the current
            // one; retained = bytes of distinct pinned non-current epochs.
            let mut distinct: BTreeMap<u64, usize> = BTreeMap::new();
            for (snap, number, _) in &held {
                distinct.insert(*number, snap.bytes());
            }
            let live = distinct.len() + usize::from(!distinct.contains_key(&current));
            let retained: usize = distinct
                .iter()
                .filter(|(n, _)| **n != current)
                .map(|(_, b)| *b)
                .sum();
            assert_eq!(
                db.epoch_stats(),
                (live, retained),
                "seed {seed} step {step}: accounting diverged from the model"
            );
        }
        drop(held);
        assert_eq!(db.epoch_stats(), (1, 0), "seed {seed}: end-state leak");
    }
}

/// Real-thread stress over the same path: four pin/unpin threads race one
/// writer through genuine `Arc` swaps. Each thread checks its own pins
/// stay immutable; afterwards everything must reclaim.
#[test]
fn threaded_pin_unpin_stress_reclaims_cleanly() {
    let db = std::sync::Arc::new(tiny_db());
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let db = db.clone();
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xACE ^ t);
                for _ in 0..200 {
                    let snap = db.pin_snapshot().expect("pin under stress");
                    let before = snap.state_dump();
                    if rng.gen::<bool>() {
                        std::thread::yield_now();
                    }
                    assert_eq!(snap.state_dump(), before, "pinned epoch mutated");
                }
            });
        }
        let db = db.clone();
        scope.spawn(move || {
            for i in 0..100i64 {
                db.execute(&format!("INSERT INTO v VALUES ({})", 5000 + i)).unwrap();
            }
        });
    });
    assert_eq!(db.epoch_stats(), (1, 0), "stress run leaked epochs");
    // And the engine is still healthy: the chain traverses end to end.
    let rs = db
        .execute(
            "SELECT PS.Length FROM g.Paths PS WHERE PS.StartVertex.Id = 0 \
             AND PS.EndVertex.Id = 19 AND PS.Length <= 30 LIMIT 1",
        )
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Integer(19));
}
