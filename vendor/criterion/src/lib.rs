//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the bench sources compiling and producing useful wall-clock numbers
//! without the real statistical machinery: each benchmark is warmed up once,
//! then timed over an adaptive iteration count aimed at a small per-bench
//! time budget, and the mean ns/iter is printed. `cargo test --benches` (or
//! passing `--test`) switches to a single-iteration smoke run, which is what
//! CI uses to keep the bench targets honest.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-bench measurement budget in quick (default) mode.
const TIME_BUDGET: Duration = Duration::from_millis(300);
const MAX_ITERS: u64 = 1_000;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    test_mode: bool,
    /// (iterations, elapsed) recorded by the last `iter*` call.
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    fn new(test_mode: bool) -> Self {
        Bencher {
            test_mode,
            measured: None,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.measured = Some((1, Duration::ZERO));
            return;
        }
        // Warm-up + calibration run.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TIME_BUDGET.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = Some((iters, start.elapsed()));
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.test_mode {
            let input = setup();
            black_box(routine(input));
            self.measured = Some((1, Duration::ZERO));
            return;
        }
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TIME_BUDGET.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
        }
        self.measured = Some((1 + iters, total + once));
    }
}

fn report(name: &str, measured: Option<(u64, Duration)>, test_mode: bool) {
    match measured {
        Some((iters, elapsed)) if !test_mode => {
            let per = elapsed.as_nanos() / iters.max(1) as u128;
            println!("bench: {name:<56} {per:>12} ns/iter (n={iters})");
        }
        Some(_) => println!("bench: {name:<56} ok (smoke)"),
        None => println!("bench: {name:<56} (no measurement)"),
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` / `cargo bench -- --test` pass `--test`;
        // CRITERION_TEST_MODE=1 forces the smoke path for CI scripts.
        let test_mode = std::env::args().any(|a| a == "--test")
            || std::env::var("CRITERION_TEST_MODE").map_or(false, |v| v == "1");
        Criterion { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        mut f: F,
    ) -> &mut Criterion {
        let mut b = Bencher::new(self.test_mode);
        f(&mut b);
        report(id, b.measured, self.test_mode);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.test_mode);
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), b.measured, self.test_mode);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.test_mode);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.measured, self.test_mode);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_measurement() {
        let mut b = Bencher::new(true);
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert_eq!(n, 1);
        assert!(b.measured.is_some());

        let mut b = Bencher::new(false);
        b.iter_batched(|| 2u64, |x| x * 2, BatchSize::SmallInput);
        assert!(b.measured.unwrap().0 >= 1);
    }
}
