//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset used by the Titan-style baseline codec: `BytesMut`
//! as a growable big-endian encode buffer, `Bytes` as an immutable ordered
//! byte string (usable as a `BTreeMap` key for range scans), plus the `Buf`
//! and `BufMut` traits for decoding/encoding. All multi-byte integers use
//! network byte order, matching the real crate's `put_*`/`get_*` defaults.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Immutable byte string. Ordered lexicographically so it can key a
/// `BTreeMap` and support prefix range scans.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:?}", &self.0)
    }
}

/// Growable byte buffer for encoding.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn clear(&mut self) {
        self.0.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:?}", &self.0)
    }
}

/// Read cursor over a byte slice; all integer reads are big-endian.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor; all integer writes are big-endian.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16(0x0102);
        b.put_u32(0x03040506);
        b.put_i64(-9);
        b.put_f64(2.5);
        b.put_slice(b"xy");
        let frozen = b.freeze();
        let mut r = &frozen[..];
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0x03040506);
        assert_eq!(r.get_i64(), -9);
        assert_eq!(r.get_f64(), 2.5);
        assert_eq!(r.remaining(), 2);
        r.advance(1);
        assert_eq!(r, b"y");
    }

    #[test]
    fn bytes_order_is_lexicographic() {
        let a = Bytes::from(vec![1, 2]);
        let b = Bytes::from(vec![1, 2, 0]);
        let c = Bytes::from(vec![1, 3]);
        assert!(a < b && b < c);
    }
}
