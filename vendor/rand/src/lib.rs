//! Offline stand-in for the `rand` crate.
//!
//! The dataset generators only need a seedable, deterministic, reasonably
//! well-mixed PRNG — statistical perfection is irrelevant, but determinism
//! per seed is load-bearing (`generators_are_deterministic` asserts it).
//! The core is xoshiro256++ seeded via splitmix64, the same construction the
//! real `rand 0.8` uses for `SmallRng` on 64-bit targets.
//!
//! Supported surface: `rngs::{StdRng, SmallRng}`, `SeedableRng::seed_from_u64`,
//! and the `Rng` extension methods `gen::<T>()`, `gen_range(range)`,
//! `gen_bool(p)`.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution: uniform over the full
/// domain for integers/bool, uniform in `[0, 1)` for floats.
pub trait SampleStandard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform range sampling. The single blanket `SampleRange` impl
/// below (matching the real crate's structure) is what lets integer-literal
/// ranges unify with the type demanded by the call site.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// xoshiro256++ core shared by `StdRng` and `SmallRng`.
#[derive(Clone, Debug)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256PlusPlus { s }
    }
}

pub mod rngs {
    pub type StdRng = super::Xoshiro256PlusPlus;
    pub type SmallRng = super::Xoshiro256PlusPlus;
}

pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bits_look_mixed() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ones = 0u32;
        for _ in 0..64 {
            ones += rng.gen::<u64>().count_ones();
        }
        // 4096 bits total; a sane generator lands near 2048.
        assert!((1800..2300).contains(&ones), "ones = {ones}");
    }
}
