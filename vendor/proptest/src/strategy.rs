//! Value-generation strategies and combinators.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no value tree / shrinking: `pick` draws a
/// single value directly.
pub trait Strategy {
    type Value: Debug;

    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            reason: reason.into(),
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe projection of `Strategy`, used behind `BoxedStrategy`.
trait DynStrategy<T> {
    fn pick_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn pick_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.pick(rng)
    }
}

pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        self.0.pick_dyn(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        Union(branches)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].pick(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn pick(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.pick(rng))
    }
}

pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn pick(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.pick(rng)).pick(rng)
    }
}

pub struct Filter<S, F> {
    base: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn pick(&self, rng: &mut TestRng) -> S::Value {
        // Local retry instead of whole-case rejection keeps the runner simple.
        for _ in 0..1000 {
            let v = self.base.pick(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter retry budget exhausted: {}", self.reason);
    }
}

// ---- primitive strategies --------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Full-domain generation (`any::<T>()`).
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite doubles across a wide magnitude range, sign-symmetric.
        let mag = rng.f64_unit();
        let scale = 10f64.powi(rng.below(13) as i32 - 6);
        let sign = if rng.bool() { 1.0 } else { -1.0 };
        sign * mag * scale
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        printable_char(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---- tuples ----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.pick(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---- string patterns -------------------------------------------------------

fn printable_char(rng: &mut TestRng) -> char {
    // Mostly ASCII graphic/space, with occasional multi-byte code points to
    // stress UTF-8 handling the way `\PC` does in the real crate.
    match rng.below(10) {
        0 => {
            const EXOTIC: &[char] = &[
                'é', 'ß', 'λ', 'Ж', '中', '文', '→', '√', '"', '\'', '`', '𝛼', '🦀',
            ];
            EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
        }
        _ => (0x20 + rng.below(0x5f) as u32) as u8 as char,
    }
}

/// String-literal strategies: a small regex-ish subset. Supports an optional
/// trailing `{m}` / `{m,n}` repetition applied to a base char class:
/// `\PC` (any printable), `\d`, `[a-z]`-style ranges; anything else falls
/// back to alphanumeric characters.
impl Strategy for &str {
    type Value = String;

    fn pick(&self, rng: &mut TestRng) -> String {
        let (base, lo, hi) = parse_repeat(self);
        let len = if hi > lo {
            lo + rng.below((hi - lo + 1) as u64) as usize
        } else {
            lo
        };
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            out.push(class_char(base, rng));
        }
        out
    }
}

fn parse_repeat(pattern: &str) -> (&str, usize, usize) {
    if let Some(open) = pattern.rfind('{') {
        if pattern.ends_with('}') {
            let body = &pattern[open + 1..pattern.len() - 1];
            let (lo, hi) = match body.split_once(',') {
                Some((a, b)) => (a.trim().parse().ok(), b.trim().parse().ok()),
                None => {
                    let n = body.trim().parse().ok();
                    (n, n)
                }
            };
            if let (Some(lo), Some(hi)) = (lo, hi) {
                return (&pattern[..open], lo, hi);
            }
        }
    }
    (pattern, 1, 8)
}

fn class_char(class: &str, rng: &mut TestRng) -> char {
    match class {
        "\\PC" | "\\pC" | "." => printable_char(rng),
        "\\d" => (b'0' + rng.below(10) as u8) as char,
        "\\w" => {
            const W: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
            W[rng.below(W.len() as u64) as usize] as char
        }
        c if c.starts_with('[') && c.ends_with(']') => {
            // Expand simple `[a-z0-9_]` classes.
            let inner: Vec<char> = c[1..c.len() - 1].chars().collect();
            let mut pool = Vec::new();
            let mut i = 0;
            while i < inner.len() {
                if i + 2 < inner.len() && inner[i + 1] == '-' {
                    let (a, b) = (inner[i] as u32, inner[i + 2] as u32);
                    for cp in a..=b {
                        if let Some(ch) = char::from_u32(cp) {
                            pool.push(ch);
                        }
                    }
                    i += 3;
                } else {
                    pool.push(inner[i]);
                    i += 1;
                }
            }
            if pool.is_empty() {
                'a'
            } else {
                pool[rng.below(pool.len() as u64) as usize]
            }
        }
        _ => {
            const AN: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
            AN[rng.below(AN.len() as u64) as usize] as char
        }
    }
}
