//! Test-runner types: config, case errors, and the deterministic RNG.

use std::fmt;

/// Per-test configuration; only `cases` is interpreted.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Inputs did not satisfy a precondition (`prop_assume!`); retried.
    Reject(String),
    /// An assertion failed; aborts the whole test.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generator RNG (xoshiro256++ seeded via splitmix64 from a
/// hash of the test path, optionally perturbed by `PROPTEST_SEED`).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Seed derived from the test's module path + name (FNV-1a), so each
    /// test gets an independent but reproducible stream.
    pub fn for_test(test_path: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = extra.trim().parse::<u64>() {
                h ^= n.rotate_left(17);
            }
        }
        TestRng::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}
