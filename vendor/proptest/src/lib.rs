//! Offline stand-in for the `proptest` crate.
//!
//! The registry is unreachable in this environment, so the workspace vendors
//! a self-contained property-testing harness with the same public shape the
//! test suites use: the `proptest!` macro (with `#![proptest_config(..)]`),
//! `prop_assert*`/`prop_assume!`/`prop_oneof!`, `Strategy` combinators
//! (`prop_map`, `prop_flat_map`, `prop_filter`, `boxed`), `Just`, `any`,
//! ranges and tuples as strategies, `collection::vec`, and string-literal
//! regex-ish strategies (`"\\PC{0,80}"`).
//!
//! Differences from the real crate, deliberate and safe for these suites:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   formatted into the message instead of a minimized counterexample.
//! * **Deterministic seeding.** Each test derives its RNG seed from the test
//!   path, so runs are reproducible; set `PROPTEST_SEED=<u64>` to perturb
//!   every test's stream at once.

pub mod strategy;

pub mod collection;

pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, BoxedStrategy, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub use strategy::{any, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError};

/// Entry point: declares `#[test]` functions whose arguments are drawn from
/// strategies. Mirrors the real macro's grammar for the forms used here.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __passed: u32 = 0;
                let mut __rejected: u32 = 0;
                while __passed < __config.cases {
                    let __vals = ( $( $crate::strategy::Strategy::pick(&($strat), &mut __rng), )+ );
                    let __desc = format!("{:#?}", __vals);
                    let ( $($pat,)+ ) = __vals;
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __passed += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(__why),
                        ) => {
                            __rejected += 1;
                            if __rejected > 1 << 16 {
                                panic!(
                                    "proptest {}: too many rejected cases (last: {})",
                                    stringify!($name),
                                    __why
                                );
                            }
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!(
                                "proptest case failed: {}\n  minimal reproduction is not \
                                 available (vendored harness does not shrink)\n  inputs: {}",
                                __msg, __desc
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a proptest body; failure aborts the case with
/// the generated inputs in the panic message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({}:{}): {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` ({}:{})\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                __l
            )));
        }
    }};
}

/// Discard the current case (does not count against `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat), )+
        ])
    };
}
