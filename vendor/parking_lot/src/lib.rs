//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crate registry, so the workspace
//! vendors a minimal, std-backed implementation of exactly the API surface the
//! engine uses: `Mutex`/`RwLock` with non-poisoning guard accessors. Guards are
//! type aliases for the `std::sync` guards, so lifetimes and auto-traits match
//! the real crate for our usage. Poisoning is papered over the same way
//! `parking_lot` avoids it: a panicked-while-held lock simply hands out the
//! inner data again.

use std::fmt;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion primitive (never poisons).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Reader-writer lock (never poisons).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
