//! Analyzer self-tests against the committed fixtures in
//! `xtask/fixtures/<pass>/{clean,violation}/`: every pass must stay silent
//! on its clean snippet and produce the exact `file:line` diagnostic on
//! its violating one. This pins the finding format — downstream tooling
//! (and humans grepping CI logs) parse these lines.

use std::path::PathBuf;

use xtask::model::SourceModel;
use xtask::passes::{registry, Pass};
use xtask::repo_root;

fn pass_named(name: &str) -> Box<dyn Pass> {
    registry()
        .into_iter()
        .find(|p| p.name() == name)
        .unwrap_or_else(|| panic!("pass `{name}` not registered"))
}

fn fixture_model(pass: &str, kind: &str, file: &str) -> SourceModel {
    let root = repo_root();
    let rel = PathBuf::from(format!("xtask/fixtures/{pass}/{kind}/{file}"));
    SourceModel::from_paths(&root, &[rel]).expect("fixture file readable")
}

fn findings(pass: &str, kind: &str, file: &str) -> Vec<String> {
    pass_named(pass)
        .run(&fixture_model(pass, kind, file))
        .iter()
        .map(|f| f.render())
        .collect()
}

#[test]
fn panic_fixture_pair() {
    assert_eq!(findings("panic", "clean", "lib.rs"), Vec::<String>::new());
    assert_eq!(
        findings("panic", "violation", "lib.rs"),
        vec!["xtask/fixtures/panic/violation/lib.rs:3: panic site `.unwrap()`"]
    );
}

#[test]
fn lock_order_fixture_pair() {
    assert_eq!(findings("lock-order", "clean", "lib.rs"), Vec::<String>::new());
    assert_eq!(
        findings("lock-order", "violation", "lib.rs"),
        vec![
            "xtask/fixtures/lock-order/violation/lib.rs:5: lock-order violation in fn \
             `republish`: acquires `DbInner` (rank 0) while holding `EpochHub.current` (rank 3); \
             documented order is DbInner -> EpochHub.shared -> EpochHub.registry -> \
             EpochHub.current -> topology"
        ]
    );
}

#[test]
fn shim_stack_fixture_pair() {
    assert_eq!(findings("shim-stack", "clean", "exec.rs"), Vec::<String>::new());
    assert_eq!(
        findings("shim-stack", "violation", "exec.rs"),
        vec![
            "xtask/fixtures/shim-stack/violation/exec.rs:2: `fn build` never constructs \
             `CheckedOp` — the exec.rs chain skips a shim layer"
        ]
    );
}

#[test]
fn lossy_cast_fixture_pair() {
    assert_eq!(findings("lossy-cast", "clean", "lib.rs"), Vec::<String>::new());
    assert_eq!(
        findings("lossy-cast", "violation", "lib.rs"),
        vec![
            "xtask/fixtures/lossy-cast/violation/lib.rs:3: numeric cast `as u32` — convert to \
             `try_from` or audit with `// cast-ok: <reason>`"
        ]
    );
}

#[test]
fn hot_loop_alloc_fixture_pair() {
    assert_eq!(findings("hot-loop-alloc", "clean", "lib.rs"), Vec::<String>::new());
    assert_eq!(
        findings("hot-loop-alloc", "violation", "lib.rs"),
        vec![
            "xtask/fixtures/hot-loop-alloc/violation/lib.rs:5: allocation `to_string` in hot \
             loop — hoist it out or audit with `// alloc-ok: <reason>`"
        ]
    );
}

/// Every registered pass has a fixture pair on disk — adding a sixth pass
/// without fixtures fails here, not in review.
#[test]
fn every_pass_has_fixtures() {
    let root = repo_root();
    for pass in registry() {
        for kind in ["clean", "violation"] {
            let dir = root.join("xtask/fixtures").join(pass.name()).join(kind);
            let populated = std::fs::read_dir(&dir)
                .map(|mut d| d.next().is_some())
                .unwrap_or(false);
            assert!(populated, "missing fixture dir {}", dir.display());
        }
    }
}
