//! Fixture: per-iteration allocation in a next() loop — must be flagged.
impl Scan {
    fn next(&mut self) -> Option<Row> {
        while let Some(row) = self.input.next() {
            let key = row.key.to_string();
            self.keys.push(key);
        }
        None
    }
}
