//! Fixture: hot loop with hoisted/audited allocations — pass clean.
impl Scan {
    fn next(&mut self) -> Option<Row> {
        while let Some(row) = self.input.next() {
            let out = row.clone(); // alloc-ok: Op contract returns owned rows
            return Some(out);
        }
        None
    }
}
