//! Fixture: takes `DbInner` while holding `EpochHub.current` — inverted.
impl Hub {
    fn republish(&self) {
        let cur = self.current.lock();
        let inner = self.inner.lock();
        let _ = (cur, inner);
    }
}
