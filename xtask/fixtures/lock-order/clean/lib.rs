//! Fixture: acquisitions in documented rank order — `lock-order` clean.
impl Hub {
    fn publish(&self) {
        let mut inner = self.inner.lock();
        let mut reg = self.registry.lock();
        *self.current.lock() = None;
        let _ = (&mut inner, &mut reg);
    }
}
