//! Fixture: no panic sites — the `panic` pass must report nothing.
pub fn read_len(path: &str) -> Option<usize> {
    let data = std::fs::read(path).ok()?;
    Some(data.len())
}
