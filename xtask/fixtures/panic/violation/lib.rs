//! Fixture: one `.unwrap()` the `panic` pass must flag on line 3.
pub fn read_len(path: &str) -> usize {
    let data = std::fs::read(path).unwrap();
    data.len()
}
