//! Fixture: lossless conversion plus an audited cast — `lossy-cast` clean.
pub fn widen(len: u32) -> u64 {
    u64::from(len)
}
pub fn index(len: u32) -> usize {
    len as usize // cast-ok: u32 -> usize is lossless on every supported target
}
