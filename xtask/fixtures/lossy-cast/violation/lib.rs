//! Fixture: unaudited truncating cast the `lossy-cast` pass must flag.
pub fn truncate(len: u64) -> u32 {
    len as u32
}
