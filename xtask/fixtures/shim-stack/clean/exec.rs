//! Fixture: canonical row-mode shim chain — `shim-stack` clean.
fn build(op: BoxOp) -> BoxOp {
    let op = Box::new(FaultOp { inner: op });
    let op = Box::new(CheckedOp { inner: op });
    let op = Box::new(GovernedOp { inner: op });
    Box::new(MeteredOp { inner: op })
}
