//! Fixture: builder skips `CheckedOp` — the chain drops a shim layer.
fn build(op: BoxOp) -> BoxOp {
    let op = Box::new(FaultOp { inner: op });
    let op = Box::new(GovernedOp { inner: op });
    Box::new(MeteredOp { inner: op })
}
