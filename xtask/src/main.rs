use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = xtask::repo_root();
    match args.first().map(String::as_str) {
        Some("lint") => {
            if args.iter().any(|a| a == "--update") {
                match xtask::update_baseline(&root) {
                    Ok(()) => {
                        let census = xtask::census(&root).expect("census");
                        println!("wrote {}:", xtask::BASELINE);
                        print!("{}", xtask::render(&census));
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("failed to update baseline: {e}");
                        ExitCode::FAILURE
                    }
                }
            } else {
                match xtask::check(&root) {
                    Ok(()) => {
                        println!("panic-census lint: ok");
                        ExitCode::SUCCESS
                    }
                    Err(report) => {
                        eprintln!("{report}");
                        ExitCode::FAILURE
                    }
                }
            }
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [--update]");
            ExitCode::FAILURE
        }
    }
}
