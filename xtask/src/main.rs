//! CLI for grfusion-analyze.
//!
//! ```text
//! cargo run -p xtask -- analyze                  # all passes, check gates
//! cargo run -p xtask -- analyze lossy-cast       # one pass
//! cargo run -p xtask -- analyze --update         # regenerate ratchet baselines
//! cargo run -p xtask -- analyze --list           # list passes
//! cargo run -p xtask -- lint [--update]          # back-compat alias
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rest = match args.split_first() {
        Some((c, r)) if c == "analyze" || c == "lint" => r,
        _ => {
            eprintln!("usage: cargo run -p xtask -- analyze [pass...] [--update | --list]");
            return ExitCode::FAILURE;
        }
    };
    let mut update = false;
    let mut list = false;
    let mut names = Vec::new();
    for a in rest {
        match a.as_str() {
            "--update" => update = true,
            "--list" => list = true,
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`");
                return ExitCode::FAILURE;
            }
            name => names.push(name.to_string()),
        }
    }
    if list {
        for p in xtask::passes::registry() {
            let gate = match p.baseline_file() {
                Some(rel) => format!("ratchet ({rel})"),
                None => "zero tolerance".to_string(),
            };
            println!("{:<16} {:<42} {}", p.name(), gate, p.description());
        }
        return ExitCode::SUCCESS;
    }
    let root = xtask::repo_root();
    match xtask::analyze(&root, &names, update).and_then(|r| xtask::render_reports(&r)) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(report) => {
            eprint!("{report}");
            ExitCode::FAILURE
        }
    }
}
