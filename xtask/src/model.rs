//! Shared source model: the file walker plus the per-file raw/stripped
//! text every pass scans. Loading and stripping happen once; all passes
//! reuse the same [`SourceModel`].

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::strip::strip_code;

/// One Rust source file, with raw text (for audit-marker comments and
/// diagnostics) and stripped text (for pattern scanning — same byte
/// offsets, comments/strings blanked).
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path with `/` separators (stable across platforms —
    /// this is the ratchet key and the diagnostic prefix).
    pub rel: String,
    /// Crate directory name under `crates/` (e.g. `core`), or the first
    /// path segment for files outside `crates/` (e.g. fixture sets).
    pub krate: String,
    pub raw: String,
    pub code: String,
}

impl SourceFile {
    pub fn from_source(rel: String, krate: String, raw: String) -> SourceFile {
        let code = strip_code(&raw);
        SourceFile {
            rel,
            krate,
            raw,
            code,
        }
    }

    /// 1-based line number of a byte offset into `code`/`raw`.
    pub fn line_of(&self, offset: usize) -> usize {
        self.raw.as_bytes()[..offset.min(self.raw.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
            + 1
    }

    /// Raw text of a 1-based line (empty if out of range) — used to check
    /// audit-marker comments, which stripping removes by design.
    pub fn raw_line(&self, line: usize) -> &str {
        self.raw.lines().nth(line.saturating_sub(1)).unwrap_or("")
    }
}

/// The loaded source tree all passes analyze.
#[derive(Debug)]
pub struct SourceModel {
    pub files: Vec<SourceFile>,
}

impl SourceModel {
    /// Load every engine crate source file (`crates/*/src/**/*.rs`),
    /// sorted by path for deterministic reports.
    pub fn load(repo_root: &Path) -> io::Result<SourceModel> {
        let mut paths = Vec::new();
        let crates_dir = repo_root.join("crates");
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rust_files(&src, &mut paths)?;
            }
        }
        paths.sort();
        Self::from_paths(repo_root, &paths)
    }

    /// Load an explicit file list (fixture self-tests), paths relative to
    /// (or under) `root`.
    pub fn from_paths(root: &Path, paths: &[PathBuf]) -> io::Result<SourceModel> {
        let mut files = Vec::new();
        for p in paths {
            let abs = if p.is_absolute() {
                p.clone()
            } else {
                root.join(p)
            };
            let raw = fs::read_to_string(&abs)?;
            let rel = abs
                .strip_prefix(root)
                .unwrap_or(&abs)
                .to_string_lossy()
                .replace('\\', "/");
            let krate = crate_of(&rel);
            files.push(SourceFile::from_source(rel, krate, raw));
        }
        Ok(SourceModel { files })
    }
}

fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        (Some(first), _) => first.to_string(),
        _ => String::new(),
    }
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Token-level helpers shared by passes
// ---------------------------------------------------------------------------

pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Is `code[at..at + pat.len()]` the pattern as a standalone word
/// (not embedded in a longer identifier)?
pub fn is_word_at(code: &str, at: usize, pat: &str) -> bool {
    let b = code.as_bytes();
    if at > 0 && is_ident_byte(b[at - 1]) {
        return false;
    }
    let end = at + pat.len();
    end <= b.len() && &code[at..end] == pat && (end == b.len() || !is_ident_byte(b[end]))
}

/// All offsets where `pat` occurs as a standalone word.
pub fn word_offsets<'a>(code: &'a str, pat: &'a str) -> impl Iterator<Item = usize> + 'a {
    let mut from = 0;
    std::iter::from_fn(move || {
        while let Some(i) = code[from..].find(pat) {
            let at = from + i;
            from = at + pat.len();
            if is_word_at(code, at, pat) {
                return Some(at);
            }
        }
        None
    })
}

/// The identifier ending immediately before `end` (skipping trailing
/// whitespace), with its start offset.
pub fn ident_before(code: &str, end: usize) -> Option<(usize, &str)> {
    let b = code.as_bytes();
    let mut j = end;
    while j > 0 && (b[j - 1] == b' ' || b[j - 1] == b'\n' || b[j - 1] == b'\r' || b[j - 1] == b'\t')
    {
        j -= 1;
    }
    let stop = j;
    while j > 0 && is_ident_byte(b[j - 1]) {
        j -= 1;
    }
    if j == stop {
        None
    } else {
        Some((j, &code[j..stop]))
    }
}

/// First non-whitespace byte at or after `from`, with its offset.
pub fn next_nonspace(code: &str, from: usize) -> Option<(usize, u8)> {
    code.as_bytes()[from..]
        .iter()
        .enumerate()
        .find(|(_, b)| !b.is_ascii_whitespace())
        .map(|(i, &b)| (from + i, b))
}

/// A function item found by the heuristic scanner.
#[derive(Debug)]
pub struct FnSpan {
    pub name: String,
    /// Offset of the `fn` keyword.
    pub fn_offset: usize,
    /// Signature span: from `fn` to the byte before the body `{`.
    pub sig: std::ops::Range<usize>,
    /// Body span, *inside* the braces.
    pub body: std::ops::Range<usize>,
}

/// Heuristically enumerate function items (free functions and methods) in
/// stripped source: `fn <name> … ( … ) … { body }`. Trait-method
/// declarations without a body (`fn f();`) are skipped. Nested functions
/// are reported as their own spans (and also lie inside their parent's
/// body span).
pub fn functions(code: &str) -> Vec<FnSpan> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    for at in word_offsets(code, "fn").collect::<Vec<_>>() {
        // Name follows the keyword.
        let Some((name_start, _)) = next_nonspace(code, at + 2) else {
            continue;
        };
        let mut j = name_start;
        while j < b.len() && is_ident_byte(b[j]) {
            j += 1;
        }
        if j == name_start {
            continue; // `fn(` pointer type, not an item
        }
        let name = code[name_start..j].to_string();
        // Find the body `{` or a `;` (body-less trait method): scan past
        // generics/params/return type. Parens and angle brackets may nest;
        // the first top-level `{` or `;` ends the signature.
        let mut depth_paren = 0i32;
        let mut k = j;
        let (body_open, terminated) = loop {
            if k >= b.len() {
                break (k, false);
            }
            match b[k] {
                b'(' | b'[' => depth_paren += 1,
                b')' | b']' => depth_paren -= 1,
                b'{' if depth_paren == 0 => break (k, true),
                b';' if depth_paren == 0 => break (k, false),
                _ => {}
            }
            k += 1;
        };
        if !terminated {
            continue;
        }
        let Some(body_close) = matching_brace(code, body_open) else {
            continue;
        };
        out.push(FnSpan {
            name,
            fn_offset: at,
            sig: at..body_open,
            body: body_open + 1..body_close,
        });
    }
    out
}

/// Offset of the `}` matching the `{` at `open` (stripped source, so
/// braces inside strings/comments are already gone).
pub fn matching_brace(code: &str, open: usize) -> Option<usize> {
    let b = code.as_bytes();
    debug_assert_eq!(b[open], b'{');
    let mut depth = 0i32;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Loop-body spans (inside the braces) within `range` of stripped source:
/// `loop { … }`, `while … { … }`, `for … { … }`.
pub fn loop_bodies(code: &str, range: std::ops::Range<usize>) -> Vec<std::ops::Range<usize>> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    for kw in ["loop", "while", "for"] {
        for at in word_offsets(code, kw) {
            if !range.contains(&at) {
                continue;
            }
            // The loop body is the first `{` after the keyword at zero
            // paren/bracket depth (loop headers cannot contain bare struct
            // literals, so this is the body brace).
            let mut depth = 0i32;
            let mut k = at + kw.len();
            let open = loop {
                if k >= b.len() || k >= range.end {
                    break None;
                }
                match b[k] {
                    b'(' | b'[' => depth += 1,
                    b')' | b']' => depth -= 1,
                    b'{' if depth == 0 => break Some(k),
                    b';' if depth == 0 => break None, // `for` in a doc path etc.
                    _ => {}
                }
                k += 1;
            };
            let Some(open) = open else { continue };
            if let Some(close) = matching_brace(code, open) {
                out.push(open + 1..close.min(range.end));
            }
        }
    }
    out.sort_by_key(|r| r.start);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_functions_and_bodies() {
        let src = "impl Foo {\n    fn next(&mut self) -> Result<Option<Row>> {\n        let x = 1;\n    }\n    fn other();\n}\nfn free<F: Fn(u8) -> u8>(f: F) { f(1); }\n";
        let f = SourceFile::from_source("t.rs".into(), "t".into(), src.into());
        let fns = functions(&f.code);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["next", "free"]);
        assert!(src[fns[0].body.clone()].contains("let x = 1;"));
        assert!(src[fns[1].body.clone()].contains("f(1);"));
    }

    #[test]
    fn loop_bodies_found() {
        let src = "fn next(&mut self) { while let Some(x) = it.next() { push(x); } for i in 0..n { g(i); } loop { break; } }";
        let fns = functions(src);
        let loops = loop_bodies(src, fns[0].body.clone());
        assert_eq!(loops.len(), 3);
        assert!(src[loops[0].clone()].contains("push(x);"));
    }

    #[test]
    fn word_matching_is_boundary_aware() {
        let src = "info(); fn f() {} for_each(); for x {}";
        assert_eq!(word_offsets(src, "fn").count(), 1);
        assert_eq!(word_offsets(src, "for").count(), 1);
    }

    #[test]
    fn line_numbers() {
        let f = SourceFile::from_source("t.rs".into(), "t".into(), "a\nb\nc".into());
        assert_eq!(f.line_of(0), 1);
        assert_eq!(f.line_of(2), 2);
        assert_eq!(f.line_of(4), 3);
        assert_eq!(f.raw_line(2), "b");
    }
}
