//! Pass 2: shim-stack conformance (zero-tolerance).
//!
//! Every physical operator the executor hands out must pass through the
//! canonical shim stack, wrapped innermost-out in one place:
//!
//! * row mode, `fn build` in `exec.rs`:
//!   `FaultOp -> CheckedOp -> GovernedOp -> MeteredOp`
//! * batch mode, `fn build_batch` in `batch.rs`:
//!   `CheckedBatchOp -> GovernedBatchOp -> MeteredBatchOp`
//!   (no fault shim — batching deactivates under fault plans)
//!
//! Two rules: (a) a shim struct may only be *constructed* inside its
//! canonical builder function — an operator built anywhere else has
//! skipped the stack; (b) inside the builder, every shim of the chain must
//! be constructed, in canonical order, so a refactor cannot silently drop
//! or reorder a layer. Construction is `ShimName {` (declarations and
//! impls carry generics between name and brace and don't match; `struct`
//! headers are excluded explicitly).

use crate::findings::Finding;
use crate::model::{functions, ident_before, next_nonspace, SourceModel};
use crate::passes::Pass;

struct ChainSpec {
    /// Applies to files whose path ends with this suffix.
    file_suffix: &'static str,
    builder_fn: &'static str,
    shims: &'static [&'static str],
}

const CHAINS: &[ChainSpec] = &[
    ChainSpec {
        file_suffix: "exec.rs",
        builder_fn: "build",
        shims: &["FaultOp", "CheckedOp", "GovernedOp", "MeteredOp"],
    },
    ChainSpec {
        file_suffix: "batch.rs",
        builder_fn: "build_batch",
        shims: &["CheckedBatchOp", "GovernedBatchOp", "MeteredBatchOp"],
    },
];

pub struct ShimStack;

impl Pass for ShimStack {
    fn name(&self) -> &'static str {
        "shim-stack"
    }

    fn description(&self) -> &'static str {
        "operator constructions wrap in the canonical Fault->Checked->Governed->Metered shim order"
    }

    fn run(&self, model: &SourceModel) -> Vec<Finding> {
        let mut out = Vec::new();
        for file in &model.files {
            let spec = CHAINS.iter().find(|c| file.rel.ends_with(c.file_suffix));
            let fns = functions(&file.code);
            let builder = spec.and_then(|s| {
                fns.iter()
                    .find(|f| f.name == s.builder_fn)
                    .map(|f| f.body.clone())
            });

            // Rule (a): constructions of *any* known shim outside its
            // canonical builder.
            for chain in CHAINS {
                for shim in chain.shims {
                    for at in construction_sites(&file.code, shim) {
                        let in_builder = file.rel.ends_with(chain.file_suffix)
                            && builder.as_ref().is_some_and(|b| b.contains(&at));
                        if !in_builder {
                            out.push(Finding {
                                file: file.rel.clone(),
                                line: file.line_of(at),
                                key: file.rel.clone(),
                                message: format!(
                                    "`{shim}` constructed outside canonical `fn {}` in {} — operators must take the full shim stack",
                                    chain.builder_fn, chain.file_suffix
                                ),
                            });
                        }
                    }
                }
            }

            // Rule (b): the builder constructs the whole chain, in order.
            if let (Some(spec), Some(body)) = (spec, builder) {
                let mut last: Option<(usize, &str)> = None;
                for shim in spec.shims {
                    let first = construction_sites(&file.code, shim)
                        .into_iter()
                        .find(|at| body.contains(at));
                    let Some(at) = first else {
                        out.push(Finding {
                            file: file.rel.clone(),
                            line: file.line_of(body.start),
                            key: file.rel.clone(),
                            message: format!(
                                "`fn {}` never constructs `{shim}` — the {} chain skips a shim layer",
                                spec.builder_fn, spec.file_suffix
                            ),
                        });
                        continue;
                    };
                    if let Some((prev_at, prev)) = last {
                        if at < prev_at {
                            out.push(Finding {
                                file: file.rel.clone(),
                                line: file.line_of(at),
                                key: file.rel.clone(),
                                message: format!(
                                    "`{shim}` wraps before `{prev}` in `fn {}` — canonical order is {}",
                                    spec.builder_fn,
                                    spec.shims.join(" -> ")
                                ),
                            });
                        }
                    }
                    last = Some((at, shim));
                }
            } else if let Some(spec) = spec {
                if CHAINS
                    .iter()
                    .any(|c| c.shims.iter().any(|s| !construction_sites(&file.code, s).is_empty()))
                    || file.rel.starts_with("crates/core/")
                {
                    out.push(Finding {
                        file: file.rel.clone(),
                        line: 1,
                        key: file.rel.clone(),
                        message: format!(
                            "{} has no `fn {}` — canonical shim builder missing",
                            spec.file_suffix, spec.builder_fn
                        ),
                    });
                }
            }
        }
        out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        out
    }
}

/// Offsets of `shim` occurrences that are struct-literal constructions:
/// the word followed (after whitespace) by `{`, and not a `struct` header.
fn construction_sites(code: &str, shim: &str) -> Vec<usize> {
    const NON_CONSTRUCTION: &[&str] = &["struct", "impl", "for", "enum", "union", "trait", "mod"];
    crate::model::word_offsets(code, shim)
        .filter(|&at| {
            matches!(next_nonspace(code, at + shim.len()), Some((_, b'{')))
                && !ident_before(code, at)
                    .is_some_and(|(_, w)| NON_CONSTRUCTION.contains(&w))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SourceFile, SourceModel};

    fn scan(rel: &str, src: &str) -> Vec<Finding> {
        let model = SourceModel {
            files: vec![SourceFile::from_source(rel.into(), "t".into(), src.into())],
        };
        ShimStack.run(&model)
    }

    const GOOD: &str = "struct FaultOp<'e> { a: u8 }\nfn build(op: Op) -> Op {\n    let op = Box::new(FaultOp { a: 1 });\n    let op = Box::new(CheckedOp { a: 1 });\n    let op = Box::new(GovernedOp { a: 1 });\n    Box::new(MeteredOp { inner: op })\n}\n";

    #[test]
    fn canonical_chain_is_clean() {
        assert!(scan("crates/core/src/exec.rs", GOOD).is_empty());
    }

    #[test]
    fn skipped_shim_is_flagged() {
        let src = GOOD.replace("    let op = Box::new(CheckedOp { a: 1 });\n", "");
        let found = scan("crates/core/src/exec.rs", &src);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("never constructs `CheckedOp`"));
    }

    #[test]
    fn out_of_order_wrap_is_flagged() {
        let src = "fn build(op: Op) -> Op {\n    let op = Box::new(FaultOp { a: 1 });\n    let op = Box::new(GovernedOp { a: 1 });\n    let op = Box::new(CheckedOp { a: 1 });\n    Box::new(MeteredOp { inner: op })\n}\n";
        let found = scan("crates/core/src/exec.rs", src);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("`GovernedOp` wraps before `CheckedOp`"));
    }

    #[test]
    fn construction_outside_builder_is_flagged() {
        let src = "fn sneak(op: Op) -> Op { Box::new(MeteredBatchOp { inner: op }) }\n";
        let found = scan("crates/core/src/planner.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 1);
        assert!(found[0].message.contains("outside canonical `fn build_batch`"));
    }

    #[test]
    fn declarations_and_impls_dont_count() {
        let src = "struct FaultOp { a: u8 }\nimpl FaultOp { fn f() {} }\nfn elsewhere() { let x: Option<FaultOp> = None; }\n";
        assert!(scan("crates/sql/src/parser.rs", src).is_empty());
    }
}
