//! Pass 3: lossy-cast census (per-file ratchet).
//!
//! Every `as <numeric-primitive>` cast is a potential silent truncation,
//! sign flip, or precision loss — the class of bug that produced PR 7's
//! 2^63 saturation fixes at the SQL<->graph boundary. The pass counts every
//! numeric `as` cast per file and ratchets the counts. Sites that have
//! been audited carry an inline allowlist marker on the same line:
//!
//! ```text
//! let slot = idx as u32; // cast-ok: idx < u32::MAX enforced at insert
//! ```
//!
//! Marked sites are exempt (the marker is a comment, so it is checked
//! against the *raw* line — stripping removes it from the scanned text).
//! Prefer `try_from` with a typed error wherever overflow is reachable;
//! the marker is for sites with a local range proof.

use crate::findings::Finding;
use crate::model::{is_ident_byte, next_nonspace, word_offsets, SourceModel};
use crate::passes::Pass;

const NUMERIC: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

pub const MARKER: &str = "cast-ok:";

pub struct LossyCast;

impl Pass for LossyCast {
    fn name(&self) -> &'static str {
        "lossy-cast"
    }

    fn description(&self) -> &'static str {
        "per-file ratchet of numeric `as` casts (allowlist: `// cast-ok: reason`)"
    }

    fn run(&self, model: &SourceModel) -> Vec<Finding> {
        let mut out = Vec::new();
        for file in &model.files {
            for at in word_offsets(&file.code, "as") {
                let Some((ty_at, b)) = next_nonspace(&file.code, at + 2) else {
                    continue;
                };
                if !is_ident_byte(b) {
                    continue; // `as *const u8`, `as &str`, …
                }
                let bytes = file.code.as_bytes();
                let mut j = ty_at;
                while j < bytes.len() && is_ident_byte(bytes[j]) {
                    j += 1;
                }
                let ty = &file.code[ty_at..j];
                if !NUMERIC.contains(&ty) {
                    continue;
                }
                let line = file.line_of(at);
                if file.raw_line(line).contains(MARKER) {
                    continue;
                }
                out.push(Finding {
                    file: file.rel.clone(),
                    line,
                    key: file.rel.clone(),
                    message: format!(
                        "numeric cast `as {ty}` — convert to `try_from` or audit with `// {MARKER} <reason>`"
                    ),
                });
            }
        }
        out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SourceFile, SourceModel};

    fn scan(src: &str) -> Vec<Finding> {
        let model = SourceModel {
            files: vec![SourceFile::from_source(
                "crates/t/src/lib.rs".into(),
                "t".into(),
                src.into(),
            )],
        };
        LossyCast.run(&model)
    }

    #[test]
    fn numeric_casts_counted() {
        let found = scan("fn f(x: u64) -> u32 {\n    let a = x as u32;\n    let b = x as f64;\n    a\n}\n");
        assert_eq!(found.len(), 2);
        assert_eq!((found[0].line, found[1].line), (2, 3));
        assert!(found[0].message.contains("`as u32`"));
    }

    #[test]
    fn marker_and_non_numeric_exempt() {
        let found = scan(
            "fn f(x: u64, p: &T) {\n    let a = x as u32; // cast-ok: x bounded by schema arity\n    let q = p as *const T;\n    use std::io::Read as _;\n    let t = <T as Clone>::clone(p);\n}\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn casts_in_strings_and_comments_ignored() {
        let found = scan("fn f() {\n    // x as u32 would truncate\n    let s = \"as u64\";\n}\n");
        assert!(found.is_empty());
    }
}
