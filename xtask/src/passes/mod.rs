//! The pass registry. Each pass scans the shared [`SourceModel`] and emits
//! [`Finding`]s; ratcheted passes name a baseline file under
//! `xtask/baselines/`, zero-tolerance passes return `None` and any finding
//! fails outright.

pub mod hot_loop_alloc;
pub mod lock_order;
pub mod lossy_cast;
pub mod panic;
pub mod shim_stack;

use crate::findings::Finding;
use crate::model::SourceModel;

pub trait Pass {
    /// CLI name (`analyze <name>`) and baseline stem.
    fn name(&self) -> &'static str;
    fn description(&self) -> &'static str;
    /// Repo-relative baseline path, or `None` for zero-tolerance passes.
    fn baseline_file(&self) -> Option<&'static str> {
        Some(match self.name() {
            "panic" => "xtask/baselines/panic.txt",
            "lossy-cast" => "xtask/baselines/lossy-cast.txt",
            "hot-loop-alloc" => "xtask/baselines/hot-loop-alloc.txt",
            _ => return None,
        })
    }
    fn run(&self, model: &SourceModel) -> Vec<Finding>;
}

/// All passes, in the order `analyze` runs them.
pub fn registry() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(panic::PanicCensus),
        Box::new(lock_order::LockOrder),
        Box::new(shim_stack::ShimStack),
        Box::new(lossy_cast::LossyCast),
        Box::new(hot_loop_alloc::HotLoopAlloc),
    ]
}
