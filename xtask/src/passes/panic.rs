//! Pass 0: the panic census, migrated from the original single-purpose
//! lint. Counts `.unwrap()`, `.expect(`, `panic!`, and `unreachable!` sites
//! per crate on stripped source (the old scanner's hand-rolled `//`
//! heuristic miscounted sites in strings and block comments; the shared
//! tokenizer fixes both, so baseline counts shifted once at migration).

use crate::findings::Finding;
use crate::model::SourceModel;
use crate::passes::Pass;

/// Panic-y patterns, with substrings whose matches are *not* panics.
const PATTERNS: &[&str] = &[".unwrap()", ".expect(", "panic!", "unreachable!"];
const EXCLUDE: &[&str] = &["self.expect("];

pub struct PanicCensus;

impl Pass for PanicCensus {
    fn name(&self) -> &'static str {
        "panic"
    }

    fn description(&self) -> &'static str {
        "per-crate ratchet of unwrap/expect/panic!/unreachable! sites"
    }

    fn run(&self, model: &SourceModel) -> Vec<Finding> {
        let mut out = Vec::new();
        for file in &model.files {
            for pat in PATTERNS {
                let mut from = 0;
                while let Some(i) = file.code[from..].find(pat) {
                    let at = from + i;
                    from = at + pat.len();
                    if EXCLUDE
                        .iter()
                        .any(|ex| excluded_at(&file.code, at, pat, ex))
                    {
                        continue;
                    }
                    out.push(Finding {
                        file: file.rel.clone(),
                        line: file.line_of(at),
                        key: file.krate.clone(),
                        message: format!("panic site `{}`", pat.trim_end_matches('(')),
                    });
                }
            }
        }
        out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        out
    }
}

/// Is the match at `at` actually part of an excluded longer pattern (e.g.
/// `.expect(` inside `self.expect(` — the parser's token-cursor method)?
fn excluded_at(code: &str, at: usize, pat: &str, ex: &str) -> bool {
    let Some(sub) = ex.find(pat) else {
        return false;
    };
    at >= sub && code[at - sub..].starts_with(ex)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn scan(src: &str) -> Vec<Finding> {
        let model = SourceModel {
            files: vec![SourceFile::from_source(
                "crates/t/src/lib.rs".into(),
                "t".into(),
                src.into(),
            )],
        };
        PanicCensus.run(&model)
    }

    #[test]
    fn counts_code_not_prose() {
        let found = scan(
            "fn f() {\n    // x.unwrap() in a comment\n    let s = \"panic!\";\n    y.unwrap();\n    self.expect(Token::Comma);\n    z.expect(\"msg\");\n}\n",
        );
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].line, 4);
        assert_eq!(found[1].line, 6);
    }
}
