//! Pass 4: hot-loop allocation census (per-file ratchet).
//!
//! Volcano `next()` methods and the graph traversal kernels are the
//! engine's innermost loops; an allocation per iteration there dominates
//! wall-clock long before anything else does (PR 7's batch mode exists
//! precisely to amortize per-row costs). The pass flags allocating calls
//! inside loop bodies of:
//!
//! * any `fn next` / `fn next_batch` body, in every crate (the volcano
//!   and batch operator surfaces), and
//! * *every* function in the traversal kernels
//!   (`crates/graph/src/traverse.rs`, `crates/graph/src/dijkstra.rs`).
//!
//! Deliberate allocations (building the output value itself, amortized
//! reservations) carry `// alloc-ok: reason` on the same line and are
//! exempt. Everything else ratchets per file.

use std::collections::BTreeSet;

use crate::findings::Finding;
use crate::model::{functions, loop_bodies, SourceModel};
use crate::passes::Pass;

/// Allocating call patterns (matched in stripped code).
const ALLOC: &[&str] = &[
    "Vec::new(",
    "String::new(",
    "vec![",
    "Box::new(",
    "format!(",
    ".to_string(",
    ".to_vec(",
    ".to_owned(",
    ".clone(",
];

/// Files where *every* function body is considered hot.
const HOT_FILES: &[&str] = &["crates/graph/src/traverse.rs", "crates/graph/src/dijkstra.rs"];

const HOT_FNS: &[&str] = &["next", "next_batch"];

pub const MARKER: &str = "alloc-ok:";

pub struct HotLoopAlloc;

impl Pass for HotLoopAlloc {
    fn name(&self) -> &'static str {
        "hot-loop-alloc"
    }

    fn description(&self) -> &'static str {
        "per-file ratchet of allocations inside next()-loop bodies and traversal kernels"
    }

    fn run(&self, model: &SourceModel) -> Vec<Finding> {
        let mut out = Vec::new();
        for file in &model.files {
            let whole_file_hot = HOT_FILES.iter().any(|h| file.rel.ends_with(h));
            // Collect hot loop-body ranges, dedup sites by offset (nested
            // loops overlap).
            let mut sites: BTreeSet<(usize, &'static str)> = BTreeSet::new();
            for f in functions(&file.code) {
                if !(whole_file_hot || HOT_FNS.contains(&f.name.as_str())) {
                    continue;
                }
                for body in loop_bodies(&file.code, f.body.clone()) {
                    for pat in ALLOC {
                        let mut from = body.start;
                        while let Some(i) = file.code[from..body.end].find(pat) {
                            let at = from + i;
                            from = at + pat.len();
                            sites.insert((at, pat));
                        }
                    }
                }
            }
            for (at, pat) in sites {
                let line = file.line_of(at);
                if file.raw_line(line).contains(MARKER) {
                    continue;
                }
                out.push(Finding {
                    file: file.rel.clone(),
                    line,
                    key: file.rel.clone(),
                    message: format!(
                        "allocation `{}` in hot loop — hoist it out or audit with `// {MARKER} <reason>`",
                        pat.trim_start_matches('.').trim_end_matches(['(', '['])
                    ),
                });
            }
        }
        out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SourceFile, SourceModel};

    fn scan(rel: &str, src: &str) -> Vec<Finding> {
        let model = SourceModel {
            files: vec![SourceFile::from_source(rel.into(), "t".into(), src.into())],
        };
        HotLoopAlloc.run(&model)
    }

    #[test]
    fn alloc_in_next_loop_flagged() {
        let src = "fn next(&mut self) -> Option<Row> {\n    while let Some(r) = self.child.next() {\n        let key = r.key.to_string();\n        if key.is_empty() { continue; }\n    }\n    None\n}\n";
        let found = scan("crates/core/src/exec.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
        assert!(found[0].message.contains("`to_string`"));
    }

    #[test]
    fn cold_functions_and_markers_exempt() {
        let src = "fn open(&mut self) {\n    for t in &self.tables { self.names.push(t.clone()); }\n}\nfn next(&mut self) -> Option<Row> {\n    loop {\n        let row = self.buf.clone(); // alloc-ok: handing the row out\n        return Some(row);\n    }\n}\n";
        assert!(scan("crates/core/src/exec.rs", src).is_empty());
    }

    #[test]
    fn traversal_kernels_hot_everywhere() {
        let src = "fn expand(&mut self) {\n    for v in frontier {\n        self.paths.push(v.path.to_vec());\n    }\n}\n";
        let found = scan("crates/graph/src/traverse.rs", src);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("`to_vec`"));
    }

    #[test]
    fn alloc_outside_loop_in_next_ok() {
        let src = "fn next(&mut self) -> Option<Row> {\n    let out = Vec::new();\n    while go() { step(); }\n    Some(out)\n}\n";
        assert!(scan("crates/core/src/exec.rs", src).is_empty());
    }
}
