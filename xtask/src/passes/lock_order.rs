//! Pass 1: static lock-order conformance (zero-tolerance).
//!
//! The engine's documented discipline (see `crates/core/src/db.rs` and
//! DESIGN.md): `Database.inner` — the big `DbInner` mutex — is the
//! *outermost* lock; the `EpochHub` mutexes (`shared`, `registry`,
//! `current`) are leaves taken while `DbInner` is held on the publish
//! path; per-view topology rwlocks nest innermost. Readers pin epochs via
//! `hub.current` alone and never touch `DbInner`. Ranks therefore ascend
//! inward:
//!
//! | rank | lock                | receiver ident |
//! |------|---------------------|----------------|
//! | 0    | `DbInner`           | `inner`        |
//! | 1    | `EpochHub.shared`   | `shared`       |
//! | 2    | `EpochHub.registry` | `registry`     |
//! | 3    | `EpochHub.current`  | `current`      |
//! | 4    | topology rwlock     | `topology`     |
//!
//! Within each function we replay acquisitions in source order: a
//! `let g = <chain>.lock();` binding holds its lock until its block closes
//! or `drop(g)`; any other `.lock()`/`.read()`/`.write()` call is a
//! transient acquisition checked but not recorded. A parameter typed
//! `&DbInner`/`&mut DbInner` means rank 0 is held on entry (the caller
//! passed the guard's interior). Acquiring a rank ≤ any held rank is a
//! violation — that shape inverts the documented order somewhere, or
//! re-locks the same class (instant deadlock under std mutexes).
//!
//! This is intra-function and heuristic by design; the runtime
//! [`LockOrderGuard`](../../../crates/core/src/lockorder.rs) cross-validates
//! the same ranks under the whole test suite in debug builds.

use crate::findings::Finding;
use crate::model::{functions, ident_before, next_nonspace, SourceFile, SourceModel};
use crate::passes::Pass;

/// Receiver ident → (rank, class name). Idents not listed are locks
/// outside the documented order (table handles, caches) and are ignored.
const CLASSES: &[(&str, u8, &str)] = &[
    ("inner", 0, "DbInner"),
    ("shared", 1, "EpochHub.shared"),
    ("registry", 2, "EpochHub.registry"),
    ("current", 3, "EpochHub.current"),
    ("topology", 4, "topology rwlock"),
    // grfusion-server's tenant admission registry: a strict leaf, never
    // held across a call into the engine.
    ("tenants", 5, "TenantRegistry"),
];

fn classify(ident: &str) -> Option<(u8, &'static str)> {
    CLASSES
        .iter()
        .find(|(name, _, _)| *name == ident)
        .map(|&(_, rank, class)| (rank, class))
}

pub struct LockOrder;

impl Pass for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "DbInner-outside / EpochHub-leaf acquisition-order conformance (zero tolerance)"
    }

    fn run(&self, model: &SourceModel) -> Vec<Finding> {
        let mut out = Vec::new();
        for file in &model.files {
            for f in functions(&file.code) {
                analyze_fn(file, &f, &mut out);
            }
        }
        out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        out
    }
}

/// One acquisition or release event, ordered by source offset.
enum Event {
    /// (rank, class, binding name if the guard stays live, site offset)
    Acquire(u8, &'static str, Option<String>, usize),
    /// `drop(<ident>)`
    Drop(String),
}

struct HeldLock {
    rank: u8,
    class: &'static str,
    name: Option<String>,
    depth: i32,
}

fn analyze_fn(file: &SourceFile, f: &crate::model::FnSpan, out: &mut Vec<Finding>) {
    let code = &file.code;
    let mut events: Vec<(usize, Event)> = Vec::new();

    // Lock sites: `.lock(` / `.read(` / `.write(` whose receiver ident is a
    // classified lock field.
    for method in [".lock(", ".read(", ".write("] {
        let mut from = f.body.start;
        while let Some(i) = code[from..f.body.end].find(method) {
            let at = from + i;
            from = at + method.len();
            let Some((_, recv)) = ident_before(code, at) else {
                continue;
            };
            let Some((rank, class)) = classify(recv) else {
                continue;
            };
            let open = at + method.len() - 1;
            let Some(close) = matching_paren(code, open) else {
                continue;
            };
            // Guard stays live iff the statement is `let <name> = … .lock();`
            let name = match next_nonspace(code, close + 1) {
                Some((_, b';')) => let_binding_name(code, at),
                _ => None,
            };
            events.push((at, Event::Acquire(rank, class, name, at)));
        }
    }

    // Explicit guard releases: `drop(<ident>)`.
    for at in crate::model::word_offsets(&code[..f.body.end], "drop").collect::<Vec<_>>() {
        if at < f.body.start {
            continue;
        }
        let Some((p, b'(')) = next_nonspace(code, at + 4) else {
            continue;
        };
        let Some((start, b)) = next_nonspace(code, p + 1) else {
            continue;
        };
        if !crate::model::is_ident_byte(b) {
            continue;
        }
        let bytes = code.as_bytes();
        let mut j = start;
        while j < f.body.end && crate::model::is_ident_byte(bytes[j]) {
            j += 1;
        }
        if matches!(next_nonspace(code, j), Some((_, b')'))) {
            events.push((at, Event::Drop(code[start..j].to_string())));
        }
    }

    events.sort_by_key(|(at, _)| *at);

    // Parameters typed `&DbInner` / `&mut DbInner` mean the caller already
    // holds rank 0.
    let mut held: Vec<HeldLock> = Vec::new();
    if crate::model::word_offsets(&code[f.sig.clone()], "DbInner").next().is_some() {
        held.push(HeldLock {
            rank: 0,
            class: "DbInner",
            name: None,
            depth: -1, // never popped: live for the whole function
        });
    }

    // Replay the body linearly, interleaving brace tracking with events.
    let bytes = code.as_bytes();
    let mut depth = 0i32;
    let mut ev = events.iter().peekable();
    for i in f.body.clone() {
        while let Some((at, event)) = ev.peek() {
            if *at > i {
                break;
            }
            match event {
                Event::Acquire(rank, class, name, site) => {
                    if let Some(worst) = held.iter().filter(|h| h.rank >= *rank).max_by_key(|h| h.rank)
                    {
                        out.push(Finding {
                            file: file.rel.clone(),
                            line: file.line_of(*site),
                            key: file.rel.clone(),
                            message: format!(
                                "lock-order violation in fn `{}`: acquires `{}` (rank {}) while holding `{}` (rank {}); documented order is DbInner -> EpochHub.shared -> EpochHub.registry -> EpochHub.current -> topology",
                                f.name, class, rank, worst.class, worst.rank
                            ),
                        });
                    }
                    if let Some(name) = name {
                        held.push(HeldLock {
                            rank: *rank,
                            class,
                            name: Some(name.clone()),
                            depth,
                        });
                    }
                }
                Event::Drop(ident) => {
                    if let Some(pos) = held
                        .iter()
                        .rposition(|h| h.name.as_deref() == Some(ident.as_str()))
                    {
                        held.remove(pos);
                    }
                }
            }
            ev.next();
        }
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                held.retain(|h| h.depth < depth);
                depth -= 1;
            }
            _ => {}
        }
    }
}

/// If the statement containing the chain ending at `chain_at` is a `let`
/// binding, return the bound name. Scans back to the nearest statement
/// boundary (`;`, `{`, `}`) and reads forward: `let [mut] <name> =`.
fn let_binding_name(code: &str, chain_at: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut j = chain_at;
    while j > 0 && !matches!(bytes[j - 1], b';' | b'{' | b'}') {
        j -= 1;
    }
    let (at, _) = next_nonspace(code, j)?;
    if !crate::model::is_word_at(code, at, "let") {
        return None;
    }
    let (mut k, _) = next_nonspace(code, at + 3)?;
    if crate::model::is_word_at(code, k, "mut") {
        k = next_nonspace(code, k + 3)?.0;
    }
    let start = k;
    while k < bytes.len() && crate::model::is_ident_byte(bytes[k]) {
        k += 1;
    }
    (k > start).then(|| code[start..k].to_string())
}

/// Offset of the `)` matching the `(` at `open`.
fn matching_paren(code: &str, open: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut depth = 0i32;
    for (i, &c) in bytes.iter().enumerate().skip(open) {
        match c {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn scan(src: &str) -> Vec<Finding> {
        let model = SourceModel {
            files: vec![SourceFile::from_source(
                "crates/t/src/lib.rs".into(),
                "t".into(),
                src.into(),
            )],
        };
        LockOrder.run(&model)
    }

    #[test]
    fn conforming_order_is_clean() {
        let src = "fn publish(&self) {\n    let mut inner = self.inner.lock();\n    let mut reg = self.registry.lock();\n    *self.current.lock() = None;\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn inverted_order_is_flagged() {
        let src = "fn bad(&self) {\n    let cur = self.current.lock();\n    let mut inner = self.inner.lock();\n}\n";
        let found = scan(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
        assert!(found[0].message.contains("`DbInner` (rank 0)"));
        assert!(found[0].message.contains("`EpochHub.current` (rank 3)"));
    }

    #[test]
    fn scope_exit_and_drop_release() {
        // Block scope releases `reg`; drop releases `inner`.
        let src = "fn ok(&self) {\n    {\n        let reg = self.registry.lock();\n    }\n    let s = self.shared.lock();\n    drop(s);\n    let inner = self.inner.lock();\n    drop(inner);\n    let s2 = self.shared.lock();\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn same_class_recursion_is_flagged() {
        let src = "fn twice(&self) {\n    let a = self.inner.lock();\n    let b = self.inner.lock();\n}\n";
        let found = scan(src);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("rank 0) while holding `DbInner`"));
    }

    #[test]
    fn dbinner_param_implies_held() {
        let src = "fn publish_epoch(hub: &EpochHub, inner: &mut DbInner) {\n    let mut reg = hub.registry.lock();\n}\nfn bad_helper(inner: &mut DbInner, db: &Database) {\n    let g = db.inner.lock();\n}\n";
        let found = scan(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 5);
        assert!(found[0].message.contains("fn `bad_helper`"));
    }

    #[test]
    fn transient_acquisitions_checked_not_held() {
        let src = "fn peek(&self) -> u64 {\n    self.current.lock().number;\n    let inner = self.inner.lock();\n    0\n}\n";
        assert!(scan(src).is_empty());
    }
}
