//! Comment- and string-stripping tokenizer shared by every analysis pass.
//!
//! Every pass scans *code*, not prose: a doc comment that mentions
//! `unwrap()`, a diagnostic string containing `panic!`, or a `"// as i64"`
//! literal must never count as a finding. [`strip_code`] blanks comment and
//! string-literal interiors with spaces while preserving byte offsets and
//! newlines exactly, so a pass can match patterns in the stripped text and
//! report line numbers computed from the very same offsets.

/// Blank comments and string/char literals out of Rust source.
///
/// The output has the same byte length as the input; every byte inside a
/// comment, string literal, raw string, byte string, or char literal is
/// replaced by a space (newlines are kept so line numbers survive).
/// Handles: `//` line comments, nested `/* */` block comments, `"…"` with
/// escapes, `r"…"`/`r#"…"#` (any `#` depth), `b"…"`/`br#"…"#`, and char
/// literals — distinguished from lifetimes (`'a`, `'static`, `<'e>`)
/// without type information.
pub fn strip_code(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let n = b.len();
    let mut i = 0;
    // Blank b[from..to] except newlines/carriage returns.
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for slot in &mut out[from..to] {
            if *slot != b'\n' && *slot != b'\r' {
                *slot = b' ';
            }
        }
    };
    while i < n {
        match b[i] {
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let start = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                blank(&mut out, start, i);
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < n {
                    match b[i] {
                        b'\\' => i = (i + 2).min(n),
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                // Keep the delimiting quotes visible so `"…"` still reads
                // as "a literal was here" to passes that care.
                blank(&mut out, start + 1, i.saturating_sub(1).max(start + 1));
            }
            b'r' | b'b' if is_raw_or_byte_literal(b, i) => {
                let (open_end, close_start, end) = raw_literal_span(b, i);
                blank(&mut out, open_end, close_start);
                let _ = end;
                i = end;
            }
            b'\'' => {
                // Char literal vs lifetime. A char literal is `'x'` or an
                // escape `'\…'`; a lifetime is `'ident` with no closing
                // quote right after one scalar.
                if i + 1 < n && b[i + 1] == b'\\' {
                    let start = i;
                    i += 2; // consume `'\`
                    while i < n && b[i] != b'\'' {
                        i += 1;
                    }
                    i = (i + 1).min(n);
                    blank(&mut out, start + 1, i.saturating_sub(1).max(start + 1));
                } else if i + 2 < n && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                    blank(&mut out, i + 1, i + 2);
                    i += 3;
                } else {
                    // Lifetime (or stray quote): leave as-is.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    // Safety of from_utf8: every replaced byte became ASCII space; every
    // kept byte is unchanged, and multi-byte sequences are only ever kept
    // or blanked whole-region, so the result is valid UTF-8 only if any
    // partially-blanked multibyte text was inside a literal — which is
    // blanked entirely. Use lossy conversion to be robust regardless.
    String::from_utf8(out).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}

/// Does `b[i..]` start a raw/byte string literal (`r"`, `r#`, `b"`, `br"`,
/// `br#`)? Requires the previous byte to not be an identifier character so
/// `attr"x"`-like identifiers ending in `r`/`b` don't false-positive.
fn is_raw_or_byte_literal(b: &[u8], i: usize) -> bool {
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        while j < b.len() && b[j] == b'#' {
            j += 1;
        }
        return j < b.len() && b[j] == b'"';
    }
    // Plain byte string `b"…"` (no `r`).
    j < b.len() && b[j] == b'"' && b[i] == b'b'
}

/// Span of the raw/byte literal starting at `i`: returns
/// `(content_start, content_end, literal_end)`.
fn raw_literal_span(b: &[u8], i: usize) -> (usize, usize, usize) {
    let n = b.len();
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    let raw = j < n && b[j] == b'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0;
    while j < n && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < n && b[j] == b'"');
    j += 1; // past the opening quote
    let content_start = j;
    if raw {
        // Scan for `"` followed by `hashes` hash marks.
        while j < n {
            if b[j] == b'"' {
                let mut k = j + 1;
                let mut seen = 0;
                while k < n && b[k] == b'#' && seen < hashes {
                    k += 1;
                    seen += 1;
                }
                if seen == hashes {
                    return (content_start, j, k);
                }
            }
            j += 1;
        }
        (content_start, n, n)
    } else {
        // Plain byte string: escapes apply.
        while j < n {
            match b[j] {
                b'\\' => j = (j + 2).min(n),
                b'"' => return (content_start, j, j + 1),
                _ => j += 1,
            }
        }
        (content_start, n, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_length_and_lines() {
        let src = "let x = 1; // unwrap()\nlet y = \"panic!\";\n";
        let out = strip_code(src);
        assert_eq!(out.len(), src.len());
        assert_eq!(out.matches('\n').count(), src.matches('\n').count());
        assert!(!out.contains("unwrap"));
        assert!(!out.contains("panic"));
        assert!(out.contains("let x = 1;"));
    }

    #[test]
    fn nested_block_comments() {
        let out = strip_code("a /* x /* y */ z */ b.unwrap()");
        assert!(!out.contains('x'));
        assert!(!out.contains('z'));
        assert!(out.contains("b.unwrap()"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let out = strip_code(r####"let s = r#"panic! "quoted" as i64"#; x.lock()"####);
        assert!(!out.contains("panic"));
        assert!(!out.contains("as i64"));
        assert!(out.contains("x.lock()"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let out = strip_code("fn f<'e>(c: char) -> bool { c == 'x' || c == '\\n' }");
        assert!(out.contains("<'e>"));
        assert!(!out.contains("'x'"));
        let out = strip_code("let s: &'static str = \"as u32\";");
        assert!(out.contains("&'static str"));
        assert!(!out.contains("as u32"));
    }

    #[test]
    fn byte_strings() {
        let out = strip_code(r##"let b = b"panic!"; let r = br#"unwrap()"#; y()"##);
        assert!(!out.contains("panic"));
        assert!(!out.contains("unwrap"));
        assert!(out.contains("y()"));
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let out = strip_code(r#"let s = "a \" panic! \" b"; f.unwrap()"#);
        assert!(!out.contains("panic"));
        assert!(out.contains("f.unwrap()"));
    }
}
