//! The shared baseline format and ratchet engine.
//!
//! Every ratcheted pass stores one file under `xtask/baselines/<pass>.txt`:
//! comment lines starting with `#`, then `key count` pairs (key = crate
//! name or repo-relative file path, pass-defined). The ratchet rule is the
//! same everywhere: a key may **shrink or disappear** freely, but growing
//! past its baselined count (or appearing with no baseline entry) fails —
//! new code must not add sites. Deliberate moves go through
//! `cargo run -p xtask -- analyze <pass> --update`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::findings::Finding;

/// Parsed baseline: key → allowed count.
pub type Baseline = BTreeMap<String, usize>;

/// Parse a baseline file. Unknown lines are an error so corruption is loud.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(key), Some(count), None) = (it.next(), it.next(), it.next()) else {
            return Err(format!("malformed baseline line: `{line}`"));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("malformed baseline count: `{line}`"))?;
        out.insert(key.to_string(), count);
    }
    Ok(out)
}

/// Render counts in the baseline file format.
pub fn render(pass: &str, header: &str, counts: &BTreeMap<String, usize>) -> String {
    let mut out = format!(
        "# grfusion-analyze `{pass}` baseline — {header}\n\
         # Regenerate after burning down sites: cargo run -p xtask -- analyze {pass} --update\n",
    );
    for (key, count) in counts {
        let _ = writeln!(out, "{key} {count}");
    }
    out
}

/// Load a pass's baseline, treating a missing file as empty (all keys
/// allowed zero) so zero-tolerance passes need no file at all.
pub fn load(repo_root: &Path, rel_path: &str) -> Result<Baseline, String> {
    let path = repo_root.join(rel_path);
    match fs::read_to_string(&path) {
        Ok(text) => parse(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Baseline::new()),
        Err(e) => Err(format!("cannot read baseline {}: {e}", path.display())),
    }
}

/// One ratchet violation: a key above its allowance, with the offending
/// sites for the report.
#[derive(Debug)]
pub struct Violation {
    pub key: String,
    pub current: usize,
    pub allowed: usize,
    pub sites: Vec<Finding>,
}

/// Apply the ratchet: compare per-key counts against the baseline and
/// collect violations (with their per-site findings, sorted by location).
pub fn ratchet(findings: &[Finding], baseline: &Baseline) -> Vec<Violation> {
    let counts = crate::findings::counts_by_key(findings);
    let mut out = Vec::new();
    for (key, &current) in &counts {
        let allowed = baseline.get(key).copied().unwrap_or(0);
        if current > allowed {
            let mut sites: Vec<Finding> = findings
                .iter()
                .filter(|f| &f.key == key)
                .cloned()
                .collect();
            sites.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
            out.push(Violation {
                key: key.clone(),
                current,
                allowed,
                sites,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(key: &str, line: usize) -> Finding {
        Finding {
            file: format!("{key}"),
            line,
            key: key.to_string(),
            message: "m".into(),
        }
    }

    #[test]
    fn roundtrip() {
        let mut counts = BTreeMap::new();
        counts.insert("crates/core/src/db.rs".to_string(), 3usize);
        counts.insert("core".to_string(), 41usize);
        let parsed = parse(&render("panic", "test", &counts)).unwrap();
        assert_eq!(parsed, counts);
    }

    #[test]
    fn malformed_rejected() {
        assert!(parse("core").is_err());
        assert!(parse("core many").is_err());
        assert!(parse("core 1 2").is_err());
        assert!(parse("# comment\n\ncore 1").is_ok());
    }

    #[test]
    fn ratchet_semantics() {
        let findings = vec![f("a", 1), f("a", 2), f("b", 1)];
        let mut base = Baseline::new();
        base.insert("a".into(), 2);
        base.insert("b".into(), 5);
        base.insert("gone".into(), 7); // shrunk to zero: fine
        assert!(ratchet(&findings, &base).is_empty());

        base.insert("a".into(), 1);
        let v = ratchet(&findings, &base);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].current, v[0].allowed), (2, 1));
        assert_eq!(v[0].sites.len(), 2);

        // Unknown key ⇒ allowed 0.
        let v = ratchet(&[f("new", 3)], &Baseline::new());
        assert_eq!((v[0].current, v[0].allowed), (1usize, 0usize).into());
    }
}
