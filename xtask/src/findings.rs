//! The one finding type every pass emits, plus per-key aggregation for the
//! ratchet.

use std::collections::BTreeMap;

/// One analysis finding at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative file path (`/` separators).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Ratchet key the finding aggregates under: the crate name for the
    /// panic census, the file path for per-file ratchets. Zero-tolerance
    /// passes still key their findings (for grouping in reports).
    pub key: String,
    /// Human-readable diagnostic (no location prefix — the framework adds
    /// `file:line:`).
    pub message: String,
}

impl Finding {
    pub fn render(&self) -> String {
        format!("{}:{}: {}", self.file, self.line, self.message)
    }
}

/// Aggregate findings into deterministic per-key counts.
pub fn counts_by_key(findings: &[Finding]) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for f in findings {
        *out.entry(f.key.clone()).or_insert(0) += 1;
    }
    out
}
