//! grfusion-analyze: the repo's std-only multi-pass static analysis
//! framework (`cargo run -p xtask -- analyze [pass...]`).
//!
//! Grown out of the original single-purpose panic census (PR 3), this is
//! now a shared source model — file walker, comment/string-stripping
//! tokenizer, function/loop scanners — plus one baseline format and
//! ratchet engine that every pass reuses. Five passes ship today:
//!
//! | pass             | gate             | what it checks                             |
//! |------------------|------------------|--------------------------------------------|
//! | `panic`          | per-crate ratchet | unwrap/expect/panic!/unreachable! sites   |
//! | `lock-order`     | zero tolerance   | DbInner-outside / EpochHub-leaf nesting    |
//! | `shim-stack`     | zero tolerance   | canonical operator shim wrap order         |
//! | `lossy-cast`     | per-file ratchet | numeric `as` casts (`// cast-ok:` audits)  |
//! | `hot-loop-alloc` | per-file ratchet | allocations in next()/traversal loops      |
//!
//! Ratchet semantics: counts may shrink freely; growth (or a new key)
//! fails the gate with per-site `file:line` diagnostics. Deliberate moves
//! regenerate baselines with `analyze --update`. The whole suite runs
//! tier-1 via `tests/tests/lint_gate.rs`.

pub mod baseline;
pub mod findings;
pub mod model;
pub mod passes;
pub mod strip;

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use model::SourceModel;
use passes::Pass;

/// Repository root, assuming xtask lives at `<root>/xtask`.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask has a parent dir")
        .to_path_buf()
}

/// Outcome of one pass against its gate.
pub struct PassReport {
    pub name: &'static str,
    pub sites: usize,
    /// Rendered failure lines; empty means the gate passed.
    pub failures: Vec<String>,
    /// Set when `--update` rewrote the baseline.
    pub updated: Option<String>,
}

/// Resolve pass names (empty = all) against the registry.
fn select(names: &[String]) -> Result<Vec<Box<dyn Pass>>, String> {
    let all = passes::registry();
    if names.is_empty() {
        return Ok(all);
    }
    let mut picked = Vec::new();
    for n in names {
        let Some(p) = passes::registry().into_iter().find(|p| p.name() == n) else {
            let known: Vec<&str> = all.iter().map(|p| p.name()).collect();
            return Err(format!("unknown pass `{n}` (known: {})", known.join(", ")));
        };
        picked.push(p);
    }
    Ok(picked)
}

/// Cap per-violation site listings so a fresh pass on a big tree stays
/// readable; the counts line always carries the true totals.
const MAX_SITES_SHOWN: usize = 25;

/// Run the selected passes over the engine crates. `update` rewrites
/// ratchet baselines instead of checking them.
pub fn analyze(root: &Path, names: &[String], update: bool) -> Result<Vec<PassReport>, String> {
    let model = SourceModel::load(root).map_err(|e| format!("loading sources: {e}"))?;
    let selected = select(names)?;
    let mut reports = Vec::new();
    for pass in &selected {
        reports.push(run_pass(root, pass.as_ref(), &model, update)?);
    }
    Ok(reports)
}

/// Run one pass against an explicit model (the fixture self-tests use
/// this with `SourceModel::from_paths`).
pub fn run_pass(
    root: &Path,
    pass: &dyn Pass,
    model: &SourceModel,
    update: bool,
) -> Result<PassReport, String> {
    let found = pass.run(model);
    let mut report = PassReport {
        name: pass.name(),
        sites: found.len(),
        failures: Vec::new(),
        updated: None,
    };
    match pass.baseline_file() {
        Some(rel) => {
            if update {
                let counts = findings::counts_by_key(&found);
                let text = baseline::render(pass.name(), pass.description(), &counts);
                let path = root.join(rel);
                if let Some(dir) = path.parent() {
                    fs::create_dir_all(dir)
                        .map_err(|e| format!("creating {}: {e}", dir.display()))?;
                }
                fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
                report.updated = Some(rel.to_string());
            } else {
                let bl = baseline::load(root, rel)?;
                for v in baseline::ratchet(&found, &bl) {
                    let mut msg = format!(
                        "{}: `{}` has {} sites, baseline allows {} — fix the new sites or run `analyze {} --update`",
                        pass.name(),
                        v.key,
                        v.current,
                        v.allowed,
                        pass.name()
                    );
                    for site in v.sites.iter().take(MAX_SITES_SHOWN) {
                        let _ = write!(msg, "\n    {}", site.render());
                    }
                    if v.sites.len() > MAX_SITES_SHOWN {
                        let _ = write!(msg, "\n    … and {} more", v.sites.len() - MAX_SITES_SHOWN);
                    }
                    report.failures.push(msg);
                }
            }
        }
        None => {
            // Zero-tolerance: every finding is a failure (nothing to update).
            for f in &found {
                report.failures.push(format!("{}: {}", pass.name(), f.render()));
            }
        }
    }
    Ok(report)
}

/// Render reports for the CLI / test gate; `Err` carries the full failure
/// text when any gate failed.
pub fn render_reports(reports: &[PassReport]) -> Result<String, String> {
    let mut ok = String::new();
    let mut bad = String::new();
    for r in reports {
        match (&r.updated, r.failures.is_empty()) {
            (Some(rel), _) => {
                let _ = writeln!(ok, "pass {:<14} {} sites -> updated {}", r.name, r.sites, rel);
            }
            (None, true) => {
                let _ = writeln!(ok, "pass {:<14} {} sites, gate OK", r.name, r.sites);
            }
            (None, false) => {
                let _ = writeln!(
                    ok,
                    "pass {:<14} {} sites, GATE FAILED ({} violations)",
                    r.name,
                    r.sites,
                    r.failures.len()
                );
                for f in &r.failures {
                    let _ = writeln!(bad, "{f}");
                }
            }
        }
    }
    if bad.is_empty() {
        Ok(ok)
    } else {
        Err(format!("{ok}\n{bad}"))
    }
}

/// Tier-1 entry point used by `tests/tests/lint_gate.rs`: run every pass
/// against the committed baselines, failing with full diagnostics.
pub fn check(root: &Path) -> Result<(), String> {
    render_reports(&analyze(root, &[], false)?).map(|_| ())
}
