//! Repo-local developer tasks (`cargo run -p xtask -- <task>`), std-only —
//! the build environment has no registry access.
//!
//! The one task so far is the **panic-census lint**: a source census of
//! `unwrap()` / `expect(` / `panic!` / `unreachable!` per engine crate,
//! checked against a committed baseline (`xtask/lint-baseline.txt`). The
//! gate fails if any crate's count *grows* — new engine code must handle
//! its errors — while shrinking counts only require refreshing the
//! baseline (`-- lint --update`), keeping it a ratchet.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The file name of the committed census baseline, relative to the repo
/// root.
pub const BASELINE: &str = "xtask/lint-baseline.txt";

/// Source patterns the census counts. `.expect(` is counted as the
/// method-call form so the parser's own Result-returning `self.expect(..)`
/// helper is not a false positive.
const PATTERNS: [&str; 4] = [".unwrap()", ".expect(", "panic!", "unreachable!"];

/// Call forms that merely *look* like a counted pattern.
const EXCLUDE: [&str; 1] = ["self.expect("];

/// Census one crate: total pattern occurrences across its `src/` tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrateCensus {
    /// Directory name under `crates/` (e.g. `core`).
    pub name: String,
    pub count: usize,
}

/// Count pattern occurrences in one source line, ignoring `//` comments
/// (doc text routinely *mentions* `unwrap()`; the census is about code).
fn count_line(line: &str) -> usize {
    let code = match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    };
    let hits: usize = PATTERNS.iter().map(|p| code.matches(p).count()).sum();
    let false_hits: usize = EXCLUDE.iter().map(|p| code.matches(p).count()).sum();
    hits - false_hits
}

fn census_file(path: &Path) -> io::Result<usize> {
    let text = fs::read_to_string(path)?;
    Ok(text.lines().map(count_line).sum())
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Census every engine crate (`crates/*/src/**/*.rs`). Deterministic
/// order (BTreeMap by crate name) so baseline files diff cleanly.
pub fn census(repo_root: &Path) -> io::Result<Vec<CrateCensus>> {
    let mut per_crate = BTreeMap::new();
    let crates_dir = repo_root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        let src = entry.path().join("src");
        if !src.is_dir() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        let mut files = Vec::new();
        rust_files(&src, &mut files)?;
        files.sort();
        let mut count = 0;
        for f in &files {
            count += census_file(f)?;
        }
        per_crate.insert(name, count);
    }
    Ok(per_crate
        .into_iter()
        .map(|(name, count)| CrateCensus { name, count })
        .collect())
}

/// Render a census in the baseline file format.
pub fn render(census: &[CrateCensus]) -> String {
    let mut out = String::from(
        "# grfusion panic census baseline (unwrap()/expect(/panic!/unreachable! per crate)\n\
         # Regenerate after burning down call sites: cargo run -p xtask -- lint --update\n",
    );
    for c in census {
        let _ = writeln!(out, "{} {}", c.name, c.count);
    }
    out
}

/// Parse a baseline file. Unknown lines are an error so corruption is
/// loud.
pub fn parse_baseline(text: &str) -> Result<Vec<CrateCensus>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(name), Some(count), None) = (it.next(), it.next(), it.next()) else {
            return Err(format!("malformed baseline line: `{line}`"));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("malformed baseline count: `{line}`"))?;
        out.push(CrateCensus {
            name: name.to_string(),
            count,
        });
    }
    Ok(out)
}

/// Run the lint: census the tree and compare against the committed
/// baseline. Returns the human-readable failure report on violation.
pub fn check(repo_root: &Path) -> Result<(), String> {
    let current = census(repo_root).map_err(|e| format!("census failed: {e}"))?;
    let baseline_path = repo_root.join(BASELINE);
    let text = fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "missing baseline {} ({e}); create it with: cargo run -p xtask -- lint --update",
            baseline_path.display()
        )
    })?;
    let baseline = parse_baseline(&text)?;
    let base: BTreeMap<&str, usize> = baseline
        .iter()
        .map(|c| (c.name.as_str(), c.count))
        .collect();

    let mut failures = Vec::new();
    for c in &current {
        match base.get(c.name.as_str()) {
            None => failures.push(format!(
                "crate `{}` is not in the baseline (current census: {})",
                c.name, c.count
            )),
            Some(&allowed) if c.count > allowed => failures.push(format!(
                "crate `{}` grew its panic census: {} > baseline {}",
                c.name, c.count, allowed
            )),
            Some(_) => {}
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "panic-census lint failed:\n  {}\n(handle the error instead, or — only for \
             genuinely unreachable states — refresh with: cargo run -p xtask -- lint --update)",
            failures.join("\n  ")
        ))
    }
}

/// Rewrite the baseline from the current census.
pub fn update_baseline(repo_root: &Path) -> io::Result<()> {
    let current = census(repo_root)?;
    fs::write(repo_root.join(BASELINE), render(&current))
}

/// Locate the repo root from this crate's manifest directory.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits one level below the repo root")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_ignore_comments() {
        assert_eq!(count_line("x.unwrap(); // unwrap() here too"), 1);
        assert_eq!(count_line("// all comment: panic!(\"no\")"), 0);
        assert_eq!(count_line("a.expect(\"b\"); panic!(\"c\")"), 2);
    }

    #[test]
    fn baseline_roundtrip() {
        let census = vec![
            CrateCensus { name: "common".into(), count: 3 },
            CrateCensus { name: "core".into(), count: 41 },
        ];
        let parsed = parse_baseline(&render(&census)).unwrap();
        assert_eq!(parsed, census);
    }

    #[test]
    fn malformed_baseline_is_rejected() {
        assert!(parse_baseline("core").is_err());
        assert!(parse_baseline("core many").is_err());
        assert!(parse_baseline("core 1 2").is_err());
    }
}
