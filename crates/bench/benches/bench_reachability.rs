//! Criterion mirror of Figure 7: unconstrained reachability vs. result
//! path length, GRFusion vs. SQLGraph vs. the two native graph stores.
//!
//! Uses one representative dataset (coauthor/DBLP) at a fixed scale; the
//! harness binary sweeps all four datasets and the full length range.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grfusion_baselines::{GrFusionSystem, GraphSystem, NeoDb, SqlGraphSystem, TitanDb};
use grfusion_datasets::{coauthor, pairs_at_distance, Adjacency};

fn bench_reachability(c: &mut Criterion) {
    let ds = coauthor(2_000, 42);
    let adj = Adjacency::build(&ds);
    let grf = GrFusionSystem::load(&ds).expect("load grfusion");
    let sqg = SqlGraphSystem::load(&ds).expect("load sqlgraph");
    let neo = NeoDb::load(&ds);
    let titan = TitanDb::load(&ds);
    let systems: Vec<&dyn GraphSystem> = vec![&grf, &sqg, &neo, &titan];

    let mut group = c.benchmark_group("fig7_reachability_dblp");
    group.sample_size(10);
    for len in [2usize, 4, 6] {
        let pairs = pairs_at_distance(&ds, &adj, len as u32, 5, 42);
        if pairs.is_empty() {
            continue;
        }
        for sys in &systems {
            group.bench_with_input(
                BenchmarkId::new(sys.name(), len),
                &pairs,
                |b, pairs| {
                    b.iter(|| {
                        for (s, t) in pairs {
                            sys.reachable(*s, *t, len, None).expect("reachable");
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_reachability);
criterion_main!(benches);
