//! Criterion mirror of the graph-view build-cost experiment (Table 3):
//! `CREATE GRAPH VIEW` materialization time per dataset.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use grfusion::EngineConfig;
use grfusion_baselines::GrFusionSystem;
use grfusion_datasets::{coauthor, follower, protein, roads};

fn bench_graph_view_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_graph_view_build");
    group.sample_size(10);
    for ds in [
        roads(2_000, 42),
        protein(2_000, 43),
        coauthor(2_000, 44),
        follower(2_000, 45),
    ] {
        let ddl = GrFusionSystem::graph_view_ddl(&ds);
        group.bench_with_input(
            BenchmarkId::new("create_graph_view", ds.kind.label()),
            &ds,
            |b, ds| {
                b.iter_batched(
                    || GrFusionSystem::prepare_tables(ds, EngineConfig::default()).expect("load"),
                    |db| db.execute(&ddl).expect("materialize"),
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_graph_view_build);
criterion_main!(benches);
