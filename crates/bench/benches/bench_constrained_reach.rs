//! Criterion mirror of Figure 8: reachability with edge predicates under
//! varying sub-graph selectivity (5%–50%).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grfusion_baselines::{GrFusionSystem, GraphSystem, NeoDb, SqlGraphSystem, TitanDb};
use grfusion_datasets::{pairs_at_distance, protein, Adjacency};

fn bench_constrained(c: &mut Criterion) {
    let ds = protein(2_000, 43);
    let grf = GrFusionSystem::load(&ds).expect("load grfusion");
    let sqg = SqlGraphSystem::load(&ds).expect("load sqlgraph");
    let neo = NeoDb::load(&ds);
    let titan = TitanDb::load(&ds);
    let systems: Vec<&dyn GraphSystem> = vec![&grf, &sqg, &neo, &titan];

    let mut group = c.benchmark_group("fig8_constrained_reachability_protein");
    group.sample_size(10);
    let hop_len = 4usize;
    for sel in [10i64, 30, 50] {
        let sub = ds.filter_edges_sel_lt(sel);
        let sub_adj = Adjacency::build(&sub);
        let pairs = pairs_at_distance(&sub, &sub_adj, hop_len as u32, 5, 42);
        if pairs.is_empty() {
            continue;
        }
        for sys in &systems {
            group.bench_with_input(BenchmarkId::new(sys.name(), sel), &pairs, |b, pairs| {
                b.iter(|| {
                    for (s, t) in pairs {
                        sys.reachable(*s, *t, hop_len, Some(sel)).expect("reachable");
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_constrained);
criterion_main!(benches);
