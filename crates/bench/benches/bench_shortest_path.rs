//! Criterion mirror of Figure 9: single-pair shortest paths — GRFusion's
//! SPScan vs. Grail's iterative relational computation vs. the native
//! graph stores' Dijkstra.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grfusion_baselines::{GrFusionSystem, GrailSystem, GraphSystem, NeoDb, TitanDb};
use grfusion_datasets::{random_connected_pairs, roads, Adjacency};

fn bench_shortest_path(c: &mut Criterion) {
    let ds = roads(2_500, 44);
    let adj = Adjacency::build(&ds);
    let grf = GrFusionSystem::load(&ds).expect("load grfusion");
    let grail = GrailSystem::load(&ds).expect("load grail");
    let neo = NeoDb::load(&ds);
    let titan = TitanDb::load(&ds);
    let systems: Vec<&dyn GraphSystem> = vec![&grf, &grail, &neo, &titan];

    let pairs = random_connected_pairs(&ds, &adj, 6, 5, 42);
    let mut group = c.benchmark_group("fig9_shortest_path_roads");
    group.sample_size(10);
    for sys in &systems {
        group.bench_with_input(BenchmarkId::new(sys.name(), "d<=6"), &pairs, |b, pairs| {
            b.iter(|| {
                for (s, t) in pairs {
                    sys.shortest_path_cost(*s, *t, None).expect("sp");
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shortest_path);
criterion_main!(benches);
