//! Morsel-driven parallel PathScan scaling: deep multi-seed traversal on
//! the follower graph at 1/2/4/8 workers.
//!
//! The headline workload (`deep_traversal`) is the one the parallel
//! executor exists for — a standalone `PathScan` whose seed set is every
//! vertex (the paper's Listing-4-style sub-graph pattern queries) with a
//! pushed edge predicate, so each morsel does heavy independent CPU work
//! (tuple-pointer dereferences + predicate evaluation per examined edge)
//! over the shared read-only topology while emitting comparatively few
//! rows. Two non-scaling workloads ride along to document the limits:
//!
//! * `materialize_all` — unfiltered enumeration that emits millions of
//!   paths; the parallel scan must materialize them all while serial
//!   execution streams-and-drops, so this is memory-bound and worker
//!   counts cannot help (this is precisely why `workers = 1` is the
//!   engine default rather than `workers = ncpu`).
//! * `anchored_scan` — one seed = one morsel, so the executor falls back
//!   to the serial streaming probe; worker counts are a no-op by design.
//!
//! Speedup is bounded by physical cores: on a single-core host every
//! worker count times the same serial schedule plus dispatch overhead, so
//! this bench doubles as an overhead regression check there.
//!
//! Run: `cargo bench -p grfusion-bench --bench bench_parallel_scaling`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grfusion::ParallelConfig;
use grfusion_baselines::GrFusionSystem;
use grfusion_datasets::follower;

fn bench_parallel_scaling(c: &mut Criterion) {
    let ds = follower(1_500, 42);
    let sys = GrFusionSystem::load(&ds).expect("load grfusion");
    let db = sys.db();

    // Deep multi-seed traversal with a pushed edge predicate: the workers
    // examine every out-edge (dereferencing tuple pointers to evaluate
    // `sel < 20`) but only ~20% survive each hop, so traversal work
    // dominates row materialization.
    let deep = "SELECT COUNT(P) FROM g.Paths P \
                WHERE P.Edges[0..*].sel < 20 AND P.Length >= 1 AND P.Length <= 4";
    // Unfiltered enumeration: emits every bounded path — memory-bound.
    let materialize = "SELECT COUNT(P) FROM g.Paths P WHERE P.Length >= 1 AND P.Length <= 2";
    let set_workers = |workers: usize| {
        let mut cfg = db.config();
        cfg.parallel = ParallelConfig {
            workers,
            morsel_size: 32,
        };
        db.set_config(cfg);
    };

    // Sanity: worker counts must not change any answer (the serial
    // equivalence the test suite enforces), checked up front so a broken
    // merge fails the bench loudly instead of timing garbage.
    set_workers(1);
    let reference: Vec<_> = [deep, materialize]
        .iter()
        .map(|sql| db.execute(sql).expect("serial run").rows)
        .collect();
    for w in [2usize, 4, 8] {
        set_workers(w);
        for (i, sql) in [deep, materialize].iter().enumerate() {
            assert_eq!(
                db.execute(sql).expect("parallel run").rows,
                reference[i],
                "parallel answer diverged at {w} workers for: {sql}"
            );
        }
    }

    let mut group = c.benchmark_group("parallel_scaling_follower");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        set_workers(workers);
        group.bench_with_input(
            BenchmarkId::new("deep_traversal", workers),
            &workers,
            |b, _| {
                b.iter(|| db.execute(deep).expect("deep traversal"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("materialize_all", workers),
            &workers,
            |b, _| {
                b.iter(|| db.execute(materialize).expect("materialize all"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("anchored_scan", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    db.execute(
                        "SELECT COUNT(P) FROM g.Paths P \
                         WHERE P.StartVertex.Id = 0 AND P.Length >= 1 AND P.Length <= 4",
                    )
                    .expect("anchored scan")
                });
            },
        );
    }
    group.finish();
    set_workers(1);
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
