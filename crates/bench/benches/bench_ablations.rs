//! Criterion ablations of the §6 design choices: predicate pushdown,
//! path-length inference, lazy path scans, and BFS/DFS selection — each
//! flag flipped on the same workload, results identical by construction
//! (the engine always applies residual predicates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grfusion::{EngineConfig, OptimizerFlags, TraversalChoice};
use grfusion_baselines::{GrFusionSystem, GraphSystem};
use grfusion_datasets::{pairs_at_distance, protein, Adjacency};

fn cfg(optimizer: OptimizerFlags) -> EngineConfig {
    EngineConfig {
        optimizer,
        ..Default::default()
    }
}

fn bench_ablations(c: &mut Criterion) {
    let ds = protein(1_500, 46);
    let sel = 30i64;
    let sub = ds.filter_edges_sel_lt(sel);
    let sub_adj = Adjacency::build(&sub);
    let pairs = pairs_at_distance(&sub, &sub_adj, 4, 5, 42);
    assert!(!pairs.is_empty(), "workload generation failed");

    let variants: Vec<(&str, OptimizerFlags)> = vec![
        ("baseline", OptimizerFlags::default()),
        (
            "no-pushdown",
            OptimizerFlags {
                predicate_pushdown: false,
                ..Default::default()
            },
        ),
        (
            "no-length-inference",
            OptimizerFlags {
                length_inference: false,
                default_max_path_len: 5,
                ..Default::default()
            },
        ),
        (
            "eager-paths",
            OptimizerFlags {
                lazy_path_scan: false,
                ..Default::default()
            },
        ),
        (
            "force-dfs",
            OptimizerFlags {
                traversal: TraversalChoice::Dfs,
                ..Default::default()
            },
        ),
        (
            "force-bfs",
            OptimizerFlags {
                traversal: TraversalChoice::Bfs,
                ..Default::default()
            },
        ),
    ];

    let mut group = c.benchmark_group("ablations_constrained_reachability");
    group.sample_size(10);
    for (label, flags) in variants {
        let sys = GrFusionSystem::load_with(&ds, cfg(flags)).expect("load");
        group.bench_with_input(BenchmarkId::new(label, "sel30_len4"), &pairs, |b, pairs| {
            b.iter(|| {
                for (s, t) in pairs {
                    sys.reachable(*s, *t, 4, Some(sel)).expect("reachable");
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
