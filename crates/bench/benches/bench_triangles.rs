//! Criterion mirror of Figure 10: triangle counting with edge predicates
//! under varying selectivity — GRFusion's closed-path scan vs. SQLGraph's
//! 3-way self-join vs. the graph stores' neighbourhood enumeration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grfusion_baselines::{GrFusionSystem, GraphSystem, NeoDb, SqlGraphSystem, TitanDb};
use grfusion_datasets::protein;

fn bench_triangles(c: &mut Criterion) {
    let ds = protein(1_000, 45);
    let grf = GrFusionSystem::load(&ds).expect("load grfusion");
    let sqg = SqlGraphSystem::load(&ds).expect("load sqlgraph");
    let neo = NeoDb::load(&ds);
    let titan = TitanDb::load(&ds);
    let systems: Vec<&dyn GraphSystem> = vec![&grf, &sqg, &neo, &titan];

    let mut group = c.benchmark_group("fig10_triangles_protein");
    group.sample_size(10);
    for sel in [10i64, 30, 50] {
        for sys in &systems {
            group.bench_with_input(BenchmarkId::new(sys.name(), sel), &sel, |b, &sel| {
                b.iter(|| sys.count_triangles(sel).expect("triangles"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_triangles);
criterion_main!(benches);
