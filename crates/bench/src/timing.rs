//! Timing utilities shared by the harness and the Criterion benches.

use std::time::{Duration, Instant};

use grfusion_common::{Error, Result};
#[cfg(test)]
use grfusion_common::ResourceKind;

/// Outcome of timing one query workload on one system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Timing {
    /// Average wall time per query.
    Avg(Duration),
    /// The system exceeded its resource budget — the paper's DNF rows
    /// (§7.2: SQLGraph beyond 4 joins on Twitter).
    DidNotFinish,
}

impl Timing {
    /// Microseconds, or `None` for DNF.
    pub fn micros(&self) -> Option<f64> {
        match self {
            Timing::Avg(d) => Some(d.as_secs_f64() * 1e6),
            Timing::DidNotFinish => None,
        }
    }

    /// Render for report tables.
    pub fn render(&self) -> String {
        match self {
            Timing::Avg(d) => format!("{:.1}", d.as_secs_f64() * 1e6),
            Timing::DidNotFinish => "DNF".to_string(),
        }
    }
}

/// Run `f` once per item of `items`, averaging wall time. The first item
/// is executed once untimed as a warm-up (plan preparation, cache
/// warming — VoltDB-style stored procedures pay compilation before the
/// measured workload too). A `ResourceExhausted` from any item turns the
/// whole series into [`Timing::DidNotFinish`]; other errors propagate.
pub fn time_per_item<T, F>(items: &[T], mut f: F) -> Result<Timing>
where
    F: FnMut(&T) -> Result<()>,
{
    if items.is_empty() {
        return Ok(Timing::Avg(Duration::ZERO));
    }
    match f(&items[0]) {
        Ok(()) => {}
        Err(Error::ResourceExhausted { .. }) => return Ok(Timing::DidNotFinish),
        Err(e) => return Err(e),
    }
    let start = Instant::now();
    for item in items {
        match f(item) {
            Ok(()) => {}
            Err(Error::ResourceExhausted { .. }) => return Ok(Timing::DidNotFinish),
            Err(e) => return Err(e),
        }
    }
    Ok(Timing::Avg(start.elapsed() / items.len() as u32))
}

/// Time a single closure.
pub fn time_once<F: FnOnce() -> Result<()>>(f: F) -> Result<Duration> {
    let start = Instant::now();
    f()?;
    Ok(start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_and_dnf() {
        let items = vec![1, 2, 3];
        let t = time_per_item(&items, |_| Ok(())).unwrap();
        assert!(matches!(t, Timing::Avg(_)));
        assert!(t.micros().is_some());

        let t = time_per_item(&items, |i| {
            if *i == 2 {
                Err(Error::resource(ResourceKind::Rows, 3, 2))
            } else {
                Ok(())
            }
        })
        .unwrap();
        assert_eq!(t, Timing::DidNotFinish);
        assert_eq!(t.render(), "DNF");
        assert!(t.micros().is_none());

        let e = time_per_item(&items, |_| Err(Error::execution("real failure")));
        assert!(e.is_err());
    }

    #[test]
    fn empty_items_zero() {
        let t = time_per_item::<i32, _>(&[], |_| Ok(())).unwrap();
        assert_eq!(t, Timing::Avg(Duration::ZERO));
    }
}
