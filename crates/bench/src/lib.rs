//! Benchmark harness for the GRFusion reproduction.
//!
//! One module per experiment of EDBT 2018 §7 (see DESIGN.md's experiment
//! index). The harness binary (`cargo run -p grfusion-bench --release --bin
//! harness -- <experiment>`) prints the same rows/series the paper reports;
//! the Criterion benches under `benches/` mirror the experiments with
//! statistical rigor on fixed representative points.
//!
//! Absolute numbers are not expected to match the paper (its testbed was a
//! 32-core Xeon running VoltDB); the *shape* — who wins, how cost grows
//! with path length and selectivity, where SQLGraph stops finishing — is
//! the reproduction target (see EXPERIMENTS.md).

pub mod experiments;
pub mod loadgen;
pub mod timing;

pub use experiments::{ExperimentScale, Measurement};
