//! Open-loop multi-tenant load harness for the network front-end.
//!
//! *Open-loop* means arrival times are fixed in advance: each tenant's
//! requests fire at their scheduled instants whether or not earlier
//! requests have completed, and latency is measured **from the scheduled
//! arrival**, not from the moment a sender thread got around to writing
//! the request. That makes queueing delay visible and avoids coordinated
//! omission — the classic closed-loop artifact where a slow server throttles
//! its own load generator and the percentiles come out flattering.
//!
//! Retryable errors (`Overloaded`, `ShuttingDown`, `Unavailable`) are
//! retried with capped exponential backoff, honouring the server's
//! `retry_after_ms` hint as the base; fatal errors (deadline expiry,
//! protocol) are terminal for that request. Per-run counters distinguish
//! acked, shed, retried, failed (served but errored), and dropped
//! (retry budget exhausted).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use grfusion_common::Error;
use grfusion_server::Client;

/// One open-loop run's shape.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Number of tenants, each with its own arrival schedule and quota
    /// bucket on the server.
    pub tenants: usize,
    /// Requests per tenant (the schedule length).
    pub requests_per_tenant: usize,
    /// Offered arrival rate per tenant, requests/second. The aggregate
    /// offered load is `tenants * offered_qps`.
    pub offered_qps: f64,
    /// Sender threads per tenant: the dispatch parallelism that lets the
    /// open loop keep firing while earlier requests are still in flight.
    pub senders_per_tenant: usize,
    /// Fraction of requests that are reads; the rest are idempotent
    /// absolute-value UPDATEs on tenant-owned rows.
    pub read_fraction: f64,
    /// Client deadline per request in ms (0 = none).
    pub deadline_ms: u64,
    /// Maximum retry attempts for retryable errors before the request is
    /// counted as dropped.
    pub max_attempts: u32,
    pub seed: u64,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            tenants: 4,
            requests_per_tenant: 50,
            offered_qps: 50.0,
            senders_per_tenant: 4,
            read_fraction: 0.8,
            deadline_ms: 0,
            max_attempts: 6,
            seed: 42,
        }
    }
}

/// Aggregate counters and latency percentiles for one run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Aggregate offered rate (tenants x per-tenant qps).
    pub offered_qps: f64,
    /// Acked requests per second of wall-clock run time.
    pub achieved_qps: f64,
    pub acked: u64,
    /// Admission sheds observed (each carried `Overloaded`).
    pub shed: u64,
    /// Total retry attempts across all requests.
    pub retries: u64,
    /// Requests served with a fatal (non-retryable) error, e.g. deadline.
    pub failed: u64,
    /// Requests abandoned after the retry budget.
    pub dropped: u64,
    /// Latency percentiles over acked requests, microseconds, measured
    /// from the scheduled arrival (queueing delay included).
    pub p50_us: u64,
    pub p99_us: u64,
    pub p999_us: u64,
}

/// Builds the per-request SQL for a tenant. Reads count short paths from a
/// seeded vertex; writes are absolute-value UPDATEs on the tenant's own
/// edge stripe, so any at-least-once retry converges.
pub struct QueryMix {
    pub n_vertices: i64,
    pub n_edges: i64,
    pub read_len: usize,
}

impl QueryMix {
    fn statement(&self, spec: &LoadSpec, tenant: usize, k: usize, rng: &mut u64) -> String {
        let read = (lcg(rng) % 1000) as f64 / 1000.0 < spec.read_fraction;
        if read || self.n_edges == 0 {
            let v = lcg(rng) as i64 % self.n_vertices.max(1);
            format!(
                "SELECT COUNT(P) FROM g.Paths P WHERE P.StartVertex.Id = {v} \
                 AND P.Length >= 1 AND P.Length <= {}",
                self.read_len
            )
        } else {
            // Edge stripe: tenant t owns edge ids congruent to t mod tenants.
            let stripe = self.n_edges / spec.tenants.max(1) as i64;
            let eid = (tenant as i64) * stripe + (lcg(rng) as i64 % stripe.max(1));
            format!("UPDATE se SET w = {}.5 WHERE id = {eid}", k % 97)
        }
    }
}

/// Deterministic split-mix style generator — the harness is seeded, so two
/// runs offer byte-identical workloads.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

struct Counters {
    acked: AtomicU64,
    shed: AtomicU64,
    retries: AtomicU64,
    failed: AtomicU64,
    dropped: AtomicU64,
}

/// Run one open-loop load against a server at `addr`. Blocks until every
/// scheduled request is acked, failed, or dropped.
pub fn run_open_loop(addr: std::net::SocketAddr, spec: &LoadSpec, mix: &QueryMix) -> LoadReport {
    let counters = Arc::new(Counters {
        acked: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        retries: AtomicU64::new(0),
        failed: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
    });
    let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let spacing = Duration::from_secs_f64(1.0 / spec.offered_qps.max(0.001));
    let start = Instant::now() + Duration::from_millis(20);

    let mut threads = Vec::new();
    for tenant in 0..spec.tenants {
        // One schedule cursor per tenant, shared by its sender threads.
        let cursor = Arc::new(AtomicUsize::new(0));
        for sender in 0..spec.senders_per_tenant {
            let cursor = cursor.clone();
            let counters = counters.clone();
            let latencies = latencies.clone();
            let spec = spec.clone();
            let mix = QueryMix {
                n_vertices: mix.n_vertices,
                n_edges: mix.n_edges,
                read_len: mix.read_len,
            };
            threads.push(thread::spawn(move || {
                let tenant_name = format!("tenant-{tenant}");
                let mut client: Option<Client> = None;
                let mut rng = spec
                    .seed
                    .wrapping_add((tenant as u64) << 32)
                    .wrapping_add(sender as u64);
                loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    if k >= spec.requests_per_tenant {
                        return;
                    }
                    let scheduled = start + spacing.mul_f64(k as f64);
                    let now = Instant::now();
                    if scheduled > now {
                        thread::sleep(scheduled - now);
                    }
                    let stmt = mix.statement(&spec, tenant, k, &mut rng);
                    let mut attempt = 0u32;
                    loop {
                        let c = match client.as_mut() {
                            Some(c) => c,
                            None => match Client::connect(addr, &tenant_name) {
                                Ok(c) => {
                                    client = Some(c);
                                    client.as_mut().unwrap()
                                }
                                Err(_) => {
                                    attempt += 1;
                                    if attempt >= spec.max_attempts {
                                        counters.dropped.fetch_add(1, Ordering::Relaxed);
                                        break;
                                    }
                                    counters.retries.fetch_add(1, Ordering::Relaxed);
                                    thread::sleep(backoff(attempt, 2));
                                    continue;
                                }
                            },
                        };
                        match c.query_with_deadline(&stmt, spec.deadline_ms) {
                            Ok(_) => {
                                counters.acked.fetch_add(1, Ordering::Relaxed);
                                let us = scheduled.elapsed().as_micros().min(u64::MAX as u128);
                                latencies.lock().unwrap().push(us as u64);
                                break;
                            }
                            Err(e) if e.is_retryable() => {
                                if let Error::Overloaded { .. } = e {
                                    counters.shed.fetch_add(1, Ordering::Relaxed);
                                }
                                if let Error::Unavailable(_) = e {
                                    client = None; // torn connection: rebuild
                                }
                                attempt += 1;
                                if attempt >= spec.max_attempts {
                                    counters.dropped.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                counters.retries.fetch_add(1, Ordering::Relaxed);
                                let base = match e {
                                    Error::Overloaded { retry_after_ms } => retry_after_ms.max(1),
                                    _ => 2,
                                };
                                thread::sleep(backoff(attempt, base));
                            }
                            Err(_) => {
                                // Fatal (deadline, protocol): served, failed,
                                // not retried.
                                counters.failed.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                }
            }));
        }
    }
    for t in threads {
        t.join().expect("sender thread panicked");
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);

    let mut lat = latencies.lock().unwrap().clone();
    lat.sort_unstable();
    let pct = |p: f64| -> u64 {
        if lat.is_empty() {
            return 0;
        }
        let idx = ((lat.len() - 1) as f64 * p).round() as usize;
        lat[idx.min(lat.len() - 1)]
    };
    let acked = counters.acked.load(Ordering::Relaxed);
    LoadReport {
        offered_qps: spec.offered_qps * spec.tenants as f64,
        achieved_qps: acked as f64 / elapsed,
        acked,
        shed: counters.shed.load(Ordering::Relaxed),
        retries: counters.retries.load(Ordering::Relaxed),
        failed: counters.failed.load(Ordering::Relaxed),
        dropped: counters.dropped.load(Ordering::Relaxed),
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        p999_us: pct(0.999),
    }
}

/// Capped exponential backoff: `base * 2^(attempt-1)`, capped at 200 ms.
fn backoff(attempt: u32, base_ms: u64) -> Duration {
    let ms = base_ms.saturating_mul(1u64 << (attempt - 1).min(7));
    Duration::from_millis(ms.min(200))
}
