//! The benchmark harness: regenerates every table and figure of the
//! paper's evaluation (EDBT 2018 §7).
//!
//! ```text
//! cargo run -p grfusion-bench --release --bin harness -- all
//! cargo run -p grfusion-bench --release --bin harness -- fig7 --vertices 10000 --queries 25
//! ```
//!
//! Output is TSV: `experiment  dataset  system  x  value` (value in µs for
//! timings, or DNF when a system exceeded its resource budget — the
//! paper's did-not-finish points).

use std::process::ExitCode;

use grfusion_bench::experiments::{self, ExperimentScale, Measurement};

fn usage() -> ! {
    eprintln!(
        "usage: harness <experiment> [--vertices N] [--queries N] [--workers N] [--deadline-ms N] [--paper-like] [--metrics]\n\
         experiments: table2 | fig7 | fig8 | fig9 | fig10 | table3 | csr | batch | optimizer | concurrent |\n\
         \u{20}            serve | ablate-pushdown | ablate-leninfer | ablate-lazy | ablate-traversal |\n\
         \u{20}            metrics | all\n\
         --workers N runs GRFusion's graph operators with N morsel worker\n\
         threads (default 1 = serial; answers are identical either way)\n\
         --deadline-ms N arms the per-query resource governor: any query\n\
         exceeding the wall-clock deadline aborts cleanly (reported as DNF)\n\
         --metrics additionally dumps per-operator EXPLAIN ANALYZE counters\n\
         (rows, next calls, vertexes visited, edges expanded, tuple derefs)\n\
         for one representative query per family, as TSV rows with\n\
         experiment = metrics"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let exp = args[0].clone();
    let mut scale = ExperimentScale::small();
    let mut with_metrics = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--paper-like" => {
                scale = ExperimentScale::paper_like();
                i += 1;
            }
            "--vertices" => {
                scale.vertices = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--queries" => {
                scale.queries = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--seed" => {
                scale.seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--workers" => {
                let workers: usize = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                // Engine construction reads GRFUSION_WORKERS through
                // `EngineConfig::default()`, so setting it before any
                // system loads routes every GRFusion query through the
                // morsel pool without plumbing a flag into each experiment.
                std::env::set_var("GRFUSION_WORKERS", workers.to_string());
                i += 2;
            }
            "--deadline-ms" => {
                let ms: u64 = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                // Same route as --workers: EngineConfig::default() reads
                // GRFUSION_DEADLINE_MS, so every engine the experiments
                // construct gets the deadline without extra plumbing.
                std::env::set_var("GRFUSION_DEADLINE_MS", ms.to_string());
                i += 2;
            }
            "--metrics" => {
                with_metrics = true;
                i += 1;
            }
            _ => usage(),
        }
    }

    let run = |name: &str, scale: &ExperimentScale| -> grfusion_common::Result<Vec<Measurement>> {
        match name {
            "table2" => experiments::table2(scale),
            "fig7" => experiments::fig7(scale),
            "fig8" => experiments::fig8(scale),
            "fig9" => experiments::fig9(scale),
            "fig10" => experiments::fig10(scale),
            "table3" => experiments::table3(scale),
            "csr" => experiments::csr(scale),
            "batch" => experiments::batch(scale),
            "optimizer" => experiments::optimizer(scale),
            "concurrent" => experiments::concurrent(scale),
            "serve" => experiments::serve(scale),
            "ablate-pushdown" => experiments::ablate_pushdown(scale),
            "ablate-leninfer" => experiments::ablate_leninfer(scale),
            "ablate-lazy" => experiments::ablate_lazy(scale),
            "ablate-traversal" => experiments::ablate_traversal(scale),
            "metrics" => experiments::metrics(scale),
            other => {
                eprintln!("unknown experiment `{other}`");
                usage();
            }
        }
    };

    let experiments_to_run: Vec<&str> = if exp == "all" {
        vec![
            "table2",
            "table3",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "csr",
            "batch",
            "optimizer",
            "concurrent",
            "serve",
            "ablate-pushdown",
            "ablate-leninfer",
            "ablate-lazy",
            "ablate-traversal",
        ]
    } else {
        vec![exp.as_str()]
    };
    let mut experiments_to_run = experiments_to_run;
    if with_metrics && !experiments_to_run.contains(&"metrics") {
        experiments_to_run.push("metrics");
    }

    println!("experiment\tdataset\tsystem\tx\tvalue");
    for name in experiments_to_run {
        eprintln!("[harness] running {name} (vertices={}, queries={})", scale.vertices, scale.queries);
        match run(name, &scale) {
            Ok(rows) => {
                for r in rows {
                    println!("{}", r.line());
                }
            }
            Err(e) => {
                eprintln!("[harness] {name} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
