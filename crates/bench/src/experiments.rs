//! Experiment implementations — one per table/figure of EDBT 2018 §7.
//!
//! Every experiment returns its rows as [`Measurement`]s (so tests can
//! assert on shapes) and the harness binary prints them. Workloads are
//! seeded and deterministic.

use grfusion::{CsrConfig, EngineConfig, EpochConfig, OptimizerFlags, TraversalChoice};
use grfusion_baselines::{
    GrFusionSystem, GrailSystem, GraphSystem, NeoDb, SqlGraphSystem, TitanDb,
};
use grfusion_common::{Error, Result};
use grfusion_datasets::{
    coauthor, follower, pairs_at_distance, protein, random_connected_pairs, roads, Adjacency,
    Dataset,
};

use crate::timing::{time_once, time_per_item};

/// Scale knobs. `small()` finishes a full `harness all` run in minutes on
/// a laptop; `paper_like()` stretches toward the paper's regimes (minutes
/// to hours).
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    /// Vertices per generated dataset.
    pub vertices: usize,
    /// Queries averaged per measured point.
    pub queries: usize,
    /// Reachability result path lengths (paper: 2..=20).
    pub reach_lengths: Vec<usize>,
    /// Sub-graph selectivities in percent (paper: 5..=50).
    pub selectivities: Vec<i64>,
    /// SQLGraph intermediate-result budget (reproduces the paper's DNFs).
    pub sqlgraph_budget: u64,
    pub seed: u64,
}

impl ExperimentScale {
    pub fn small() -> Self {
        ExperimentScale {
            vertices: 2_000,
            queries: 10,
            reach_lengths: vec![2, 4, 6, 8, 12, 16, 20],
            selectivities: vec![5, 10, 20, 30, 40, 50],
            sqlgraph_budget: 2_000_000,
            seed: 42,
        }
    }

    pub fn paper_like() -> Self {
        ExperimentScale {
            vertices: 50_000,
            queries: 50,
            reach_lengths: (2..=20).step_by(2).collect(),
            selectivities: vec![5, 10, 20, 30, 40, 50],
            sqlgraph_budget: 20_000_000,
            seed: 42,
        }
    }

    /// The four paper datasets at this scale.
    pub fn datasets(&self) -> Vec<Dataset> {
        vec![
            roads(self.vertices, self.seed),
            protein(self.vertices, self.seed + 1),
            coauthor(self.vertices, self.seed + 2),
            follower(self.vertices, self.seed + 3),
        ]
    }
}

/// One reported cell.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub experiment: &'static str,
    pub dataset: String,
    pub system: String,
    /// The x-axis / parameter (path length, selectivity, metric name).
    pub x: String,
    /// Rendered value (µs, count, bytes, or DNF).
    pub value: String,
}

impl Measurement {
    pub fn line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}",
            self.experiment, self.dataset, self.system, self.x, self.value
        )
    }
}

fn m(
    experiment: &'static str,
    dataset: &str,
    system: &str,
    x: impl ToString,
    value: impl ToString,
) -> Measurement {
    Measurement {
        experiment,
        dataset: dataset.to_string(),
        system: system.to_string(),
        x: x.to_string(),
        value: value.to_string(),
    }
}

/// The GRFusion configuration §7.1 prescribes for the reachability
/// experiments: breadth-first scan, predicates NOT pushed ahead of the
/// path scan (isolating the graph-view effect).
fn fig7_grfusion_config() -> EngineConfig {
    EngineConfig {
        optimizer: OptimizerFlags {
            traversal: TraversalChoice::Bfs,
            predicate_pushdown: false,
            ..Default::default()
        },
        ..Default::default()
    }
}

// ---------------------------------------------------------------------------
// Table 2 — dataset properties
// ---------------------------------------------------------------------------

pub fn table2(scale: &ExperimentScale) -> Result<Vec<Measurement>> {
    let mut out = Vec::new();
    for ds in scale.datasets() {
        let name = ds.kind.label();
        out.push(m("table2", name, "-", "vertices", ds.vertex_count()));
        out.push(m("table2", name, "-", "edges", ds.edge_count()));
        out.push(m(
            "table2",
            name,
            "-",
            "directed",
            if ds.directed { "yes" } else { "no" },
        ));
        out.push(m(
            "table2",
            name,
            "-",
            "avg_degree",
            format!("{:.2}", ds.avg_degree()),
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Figure 7 — unconstrained reachability vs. result path length
// ---------------------------------------------------------------------------

pub fn fig7(scale: &ExperimentScale) -> Result<Vec<Measurement>> {
    let mut out = Vec::new();
    for ds in scale.datasets() {
        let name = ds.kind.label();
        let adj = Adjacency::build(&ds);
        let grf = GrFusionSystem::load_with(&ds, fig7_grfusion_config())?;
        let sqg = SqlGraphSystem::load_with_budget(&ds, Some(scale.sqlgraph_budget))?;
        let neo = NeoDb::load(&ds);
        let titan = TitanDb::load(&ds);
        let systems: Vec<&dyn GraphSystem> = vec![&grf, &sqg, &neo, &titan];
        for &len in &scale.reach_lengths {
            let pairs = pairs_at_distance(&ds, &adj, len as u32, scale.queries, scale.seed);
            if pairs.is_empty() {
                continue; // graph has no pairs at this distance
            }
            for sys in &systems {
                let t = time_per_item(&pairs, |(s, tgt)| {
                    sys.reachable(*s, *tgt, len, None).map(drop)
                })?;
                out.push(m("fig7", name, sys.name(), len, t.render()));
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Figure 8 — constrained reachability vs. sub-graph selectivity
// ---------------------------------------------------------------------------

pub fn fig8(scale: &ExperimentScale) -> Result<Vec<Measurement>> {
    let hop_len = 4usize;
    let mut out = Vec::new();
    for ds in scale.datasets() {
        let name = ds.kind.label();
        let grf = GrFusionSystem::load(&ds)?;
        let sqg = SqlGraphSystem::load_with_budget(&ds, Some(scale.sqlgraph_budget))?;
        let neo = NeoDb::load(&ds);
        let titan = TitanDb::load(&ds);
        let systems: Vec<&dyn GraphSystem> = vec![&grf, &sqg, &neo, &titan];
        for &sel in &scale.selectivities {
            // Query pairs connected within the selected sub-graph.
            let sub = ds.filter_edges_sel_lt(sel);
            let sub_adj = Adjacency::build(&sub);
            let pairs =
                pairs_at_distance(&sub, &sub_adj, hop_len as u32, scale.queries, scale.seed);
            if pairs.is_empty() {
                continue;
            }
            for sys in &systems {
                let t = time_per_item(&pairs, |(s, tgt)| {
                    sys.reachable(*s, *tgt, hop_len, Some(sel)).map(drop)
                })?;
                out.push(m("fig8", name, sys.name(), sel, t.render()));
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Figure 9 — shortest paths (vs. Grail and the graph stores)
// ---------------------------------------------------------------------------

pub fn fig9(scale: &ExperimentScale) -> Result<Vec<Measurement>> {
    let mut out = Vec::new();
    for ds in scale.datasets() {
        let name = ds.kind.label();
        let grf = GrFusionSystem::load(&ds)?;
        let grail = GrailSystem::load(&ds)?;
        let neo = NeoDb::load(&ds);
        let titan = TitanDb::load(&ds);
        let systems: Vec<&dyn GraphSystem> = vec![&grf, &grail, &neo, &titan];
        for &sel in &scale.selectivities {
            let sub = ds.filter_edges_sel_lt(sel);
            let sub_adj = Adjacency::build(&sub);
            let pairs = random_connected_pairs(&sub, &sub_adj, 6, scale.queries, scale.seed);
            if pairs.is_empty() {
                continue;
            }
            for sys in &systems {
                let t = time_per_item(&pairs, |(s, tgt)| {
                    sys.shortest_path_cost(*s, *tgt, Some(sel)).map(drop)
                })?;
                out.push(m("fig9", name, sys.name(), sel, t.render()));
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Figure 10 — triangle counting vs. edge-predicate selectivity
// ---------------------------------------------------------------------------

pub fn fig10(scale: &ExperimentScale) -> Result<Vec<Measurement>> {
    let mut out = Vec::new();
    for ds in scale.datasets() {
        let name = ds.kind.label();
        let grf = GrFusionSystem::load(&ds)?;
        let sqg = SqlGraphSystem::load_with_budget(&ds, Some(scale.sqlgraph_budget))?;
        let neo = NeoDb::load(&ds);
        let titan = TitanDb::load(&ds);
        let systems: Vec<&dyn GraphSystem> = vec![&grf, &sqg, &neo, &titan];
        for &sel in &scale.selectivities {
            // Sanity: every system must report the same triangle count.
            let mut counts = Vec::new();
            for sys in &systems {
                let one = [()];
                let t = time_per_item(&one, |_| {
                    sys.count_triangles(sel).map(|c| counts.push(c))
                })?;
                out.push(m("fig10", name, sys.name(), sel, t.render()));
            }
            counts.dedup();
            if counts.len() > 1 {
                return Err(grfusion_common::Error::execution(format!(
                    "triangle-count disagreement on {name} at sel {sel}: {counts:?}"
                )));
            }
            if let Some(c) = counts.first() {
                out.push(m("fig10", name, "count", sel, c));
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Table 3 — graph-view build cost (time + topology memory)
// ---------------------------------------------------------------------------

pub fn table3(scale: &ExperimentScale) -> Result<Vec<Measurement>> {
    let mut out = Vec::new();
    for ds in scale.datasets() {
        let name = ds.kind.label();
        let db = GrFusionSystem::prepare_tables(&ds, EngineConfig::default())?;
        let ddl = GrFusionSystem::graph_view_ddl(&ds);
        let d = time_once(|| db.execute(&ddl).map(drop))?;
        let stats = db.graph_stats("g")?;
        out.push(m(
            "table3",
            name,
            "grfusion",
            "build_ms",
            format!("{:.2}", d.as_secs_f64() * 1e3),
        ));
        out.push(m("table3", name, "grfusion", "topology_bytes", stats.memory_bytes));
        out.push(m(
            "table3",
            name,
            "grfusion",
            "bytes_per_edge",
            format!(
                "{:.1}",
                stats.memory_bytes as f64 / stats.edge_count.max(1) as f64
            ),
        ));
        out.push(m(
            "table3",
            name,
            "grfusion",
            "avg_fan_out",
            format!("{:.2}", stats.avg_fan_out),
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Ablations (§6 design choices)
// ---------------------------------------------------------------------------

fn flags_config(optimizer: OptimizerFlags) -> EngineConfig {
    EngineConfig {
        optimizer,
        ..EngineConfig::default()
    }
}

/// §6.2 predicate pushdown on/off, fig8-style constrained reachability.
pub fn ablate_pushdown(scale: &ExperimentScale) -> Result<Vec<Measurement>> {
    let ds = protein(scale.vertices, scale.seed + 1);
    let hop_len = 4usize;
    let mut out = Vec::new();
    for (label, pushdown) in [("pushdown=on", true), ("pushdown=off", false)] {
        let grf = GrFusionSystem::load_with(
            &ds,
            flags_config(OptimizerFlags {
                predicate_pushdown: pushdown,
                ..Default::default()
            }),
        )?;
        for &sel in &scale.selectivities {
            let sub = ds.filter_edges_sel_lt(sel);
            let sub_adj = Adjacency::build(&sub);
            let pairs =
                pairs_at_distance(&sub, &sub_adj, hop_len as u32, scale.queries, scale.seed);
            if pairs.is_empty() {
                continue;
            }
            let t = time_per_item(&pairs, |(s, tgt)| {
                grf.reachable(*s, *tgt, hop_len, Some(sel)).map(drop)
            })?;
            out.push(m("ablate-pushdown", ds.kind.label(), label, sel, t.render()));
        }
    }
    Ok(out)
}

/// §6.1 length inference on/off, fixed-length path query.
pub fn ablate_leninfer(scale: &ExperimentScale) -> Result<Vec<Measurement>> {
    let ds = coauthor(scale.vertices, scale.seed + 2);
    let adj = Adjacency::build(&ds);
    let mut out = Vec::new();
    for (label, inference) in [("inference=on", true), ("inference=off", false)] {
        let grf = GrFusionSystem::load_with(
            &ds,
            flags_config(OptimizerFlags {
                length_inference: inference,
                default_max_path_len: 5,
                ..Default::default()
            }),
        )?;
        for len in [2usize, 3] {
            let pairs = pairs_at_distance(&ds, &adj, len as u32, scale.queries, scale.seed);
            if pairs.is_empty() {
                continue;
            }
            let t = time_per_item(&pairs, |(s, _)| {
                // Friends-of-friends shape: exact-length paths from s.
                let sql = format!(
                    "SELECT COUNT(P) FROM g.Paths P \
                     WHERE P.StartVertex.Id = {s} AND P.Length = {len}"
                );
                grf.db().execute(&sql).map(drop)
            })?;
            out.push(m("ablate-leninfer", ds.kind.label(), label, len, t.render()));
        }
    }
    Ok(out)
}

/// §5.1.2 lazy vs. eager path scans: `LIMIT 1` over exact-length paths
/// (a query shape the reachability fast-path cannot absorb, so the scan
/// really enumerates — lazily or eagerly).
pub fn ablate_lazy(scale: &ExperimentScale) -> Result<Vec<Measurement>> {
    let ds = follower(scale.vertices, scale.seed + 3);
    let adj = Adjacency::build(&ds);
    let mut out = Vec::new();
    for (label, lazy) in [("lazy=on", true), ("lazy=off", false)] {
        let grf = GrFusionSystem::load_with(
            &ds,
            flags_config(OptimizerFlags {
                lazy_path_scan: lazy,
                ..Default::default()
            }),
        )?;
        for len in [3usize, 4] {
            let pairs = pairs_at_distance(&ds, &adj, len as u32, scale.queries, scale.seed);
            if pairs.is_empty() {
                continue;
            }
            let t = time_per_item(&pairs, |(s, _)| {
                let sql = format!(
                    "SELECT PS.PathString FROM g.Paths PS \
                     WHERE PS.StartVertex.Id = {s} AND PS.Length = {len} LIMIT 1"
                );
                grf.db().execute(&sql).map(drop)
            })?;
            out.push(m("ablate-lazy", ds.kind.label(), label, len, t.render()));
        }
    }
    Ok(out)
}

/// §6.3 BFS vs. DFS across structural regimes (long-diameter roads vs.
/// high-fan-out follower graph).
pub fn ablate_traversal(scale: &ExperimentScale) -> Result<Vec<Measurement>> {
    let mut out = Vec::new();
    for ds in [roads(scale.vertices, scale.seed), follower(scale.vertices, scale.seed + 3)] {
        let adj = Adjacency::build(&ds);
        for (label, choice) in [
            ("dfs", TraversalChoice::Dfs),
            ("bfs", TraversalChoice::Bfs),
            ("auto", TraversalChoice::Auto),
        ] {
            let grf = GrFusionSystem::load_with(
                &ds,
                flags_config(OptimizerFlags {
                    traversal: choice,
                    ..Default::default()
                }),
            )?;
            for len in [4usize, 8] {
                let pairs = pairs_at_distance(&ds, &adj, len as u32, scale.queries, scale.seed);
                if pairs.is_empty() {
                    continue;
                }
                let t = time_per_item(&pairs, |(s, tgt)| {
                    grf.reachable(*s, *tgt, len, None).map(drop)
                })?;
                out.push(m(
                    "ablate-traversal",
                    ds.kind.label(),
                    label,
                    len,
                    t.render(),
                ));
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// CSR layout experiment — sealed snapshots vs. pointer-linked adjacency
// ---------------------------------------------------------------------------

/// Deep traversals on the sealed-CSR layout vs. the never-sealed
/// adjacency layout (`layout=csr` / `layout=adjacency`), plus the sealed
/// footprint in bytes. Targeted reachability probes at the deep fig7
/// regimes (long frontier walks on the road grid, hub fan-out on the
/// follower graph). Expected shape: csr ≤ adjacency — frontier expansion
/// streams two contiguous u32 arrays instead of chasing per-vertex heap
/// allocations (the gap narrows on a 1-core/low-cache container, but the
/// sealed lane should not lose).
pub fn csr(scale: &ExperimentScale) -> Result<Vec<Measurement>> {
    // Lanes alternate within each measured point and each lane reports
    // its best of `ROUNDS` passes: machine-load drift hits both layouts
    // alike and the minimum discards scheduler spikes, which at µs scale
    // otherwise dwarf the layout effect.
    const ROUNDS: usize = 9;
    let mut out = Vec::new();
    for ds in [
        roads(scale.vertices, scale.seed),
        follower(scale.vertices, scale.seed + 3),
    ] {
        let adj = Adjacency::build(&ds);
        let lanes = [
            ("layout=csr", CsrConfig::sealed()),
            ("layout=adjacency", CsrConfig::adjacency_only()),
        ];
        let systems: Vec<(&str, GrFusionSystem)> = lanes
            .into_iter()
            .map(|(label, layout)| {
                GrFusionSystem::load_with(
                    &ds,
                    EngineConfig {
                        csr: layout,
                        ..EngineConfig::default()
                    },
                )
                .map(|grf| (label, grf))
            })
            .collect::<Result<_>>()?;
        for (label, grf) in &systems {
            let stats = grf.db().graph_stats("g")?;
            out.push(m(
                "csr",
                ds.kind.label(),
                label,
                "sealed-bytes",
                stats.sealed_bytes,
            ));
        }

        let point = |x: String,
                         pairs: &[(i64, i64)],
                         run: &dyn Fn(&GrFusionSystem, i64, i64) -> Result<()>|
         -> Result<Vec<Measurement>> {
            let mut best = vec![f64::INFINITY; systems.len()];
            for round in 0..ROUNDS {
                // Alternate lane order round to round so warm-up and load
                // drift don't systematically favor whichever runs second.
                let mut order: Vec<usize> = (0..systems.len()).collect();
                if round % 2 == 1 {
                    order.reverse();
                }
                for i in order {
                    let (_, grf) = &systems[i];
                    let t = time_per_item(pairs, |(s, tgt)| run(grf, *s, *tgt))?;
                    if let Some(us) = t.micros() {
                        best[i] = best[i].min(us);
                    }
                }
            }
            Ok(systems
                .iter()
                .zip(&best)
                .map(|((label, _), us)| {
                    m("csr", ds.kind.label(), label, &x, format!("{us:.1}"))
                })
                .collect())
        };

        // Deep targeted-BFS probes only: frontier expansion is the code
        // path the sealed arrays accelerate. Full path *enumerations* are
        // dominated by per-path allocation and show no stable layout
        // signal (verified while building this experiment), so they would
        // only add noise to the sealed-vs-unsealed comparison.
        for &len in &[6usize, 10] {
            let pairs = pairs_at_distance(&ds, &adj, len as u32, scale.queries, scale.seed);
            if pairs.is_empty() {
                continue;
            }
            out.extend(point(
                format!("reach-{len}"),
                &pairs,
                &move |grf, s, tgt| grf.reachable(s, tgt, len, None).map(drop),
            )?);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Batch execution experiment — vectorized relational spine vs. row-at-a-time
// ---------------------------------------------------------------------------

/// Scan/filter, index-join, and grouped-aggregation probes on the
/// row-at-a-time executor (`exec=row`) vs. the batch bridge
/// (`exec=batch`), over a synthetic relational workload of
/// `10 × scale.vertices` fact rows (20k at the default small scale).
/// Both lanes must return identical answers — any divergence is an
/// error, not a measurement. Expected shape: batch ≤ row on the scan and
/// join probes — per-`next()` virtual dispatch and shim bookkeeping
/// amortize over 1024-row batches (the gap narrows on a 1-core
/// container, but the batch lane should not lose).
pub fn batch(scale: &ExperimentScale) -> Result<Vec<Measurement>> {
    use grfusion::{BatchConfig, Database, ParallelConfig, Value};
    // Same drift discipline as the csr experiment: lanes alternate within
    // each point and report their best of ROUNDS passes.
    const ROUNDS: usize = 9;
    let fact_rows = scale.vertices.max(100) * 10;
    let dim_rows = (fact_rows / 20).max(1);
    let ds_label = format!("rel-{fact_rows}");

    // Deterministic xorshift64* so both lanes load identical tables.
    let mut state = scale.seed | 1;
    let mut next_u64 = move || -> u64 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };

    let lanes = [
        ("exec=row", BatchConfig::disabled()),
        ("exec=batch", BatchConfig::enabled()),
    ];
    let mut fact: Vec<Vec<Value>> = Vec::with_capacity(fact_rows);
    for id in 0..fact_rows as i64 {
        let r = next_u64();
        fact.push(vec![
            Value::Integer(id),
            Value::Integer(id % 64),
            Value::Integer((r % dim_rows as u64) as i64),
            Value::Double((r % 1000) as f64 / 10.0),
        ]);
    }
    let dim: Vec<Vec<Value>> = (0..dim_rows as i64)
        .map(|id| vec![Value::Integer(id), Value::Integer(id % 7)])
        .collect();
    let systems: Vec<(&str, Database)> = lanes
        .into_iter()
        .map(|(label, batch)| -> Result<(&str, Database)> {
            let db = Database::with_config(EngineConfig {
                batch,
                parallel: ParallelConfig::serial(),
                ..EngineConfig::default()
            });
            db.execute(
                "CREATE TABLE fact (id INTEGER PRIMARY KEY, grp INTEGER, \
                 dim_id INTEGER, val DOUBLE)",
            )?;
            db.execute("CREATE TABLE dim (id INTEGER PRIMARY KEY, tag INTEGER)")?;
            db.bulk_insert("fact", fact.clone())?;
            db.bulk_insert("dim", dim.clone())?;
            Ok((label, db))
        })
        .collect::<Result<_>>()?;

    let probes = [
        (
            "scan",
            "SELECT id, val FROM fact WHERE val < 50.0 AND grp < 48".to_string(),
        ),
        (
            "join",
            "SELECT fact.id, dim.tag FROM fact JOIN dim ON fact.dim_id = dim.id".to_string(),
        ),
        (
            "aggregate",
            "SELECT grp, COUNT(*), SUM(val), AVG(val), MIN(val), MAX(val) \
             FROM fact GROUP BY grp"
                .to_string(),
        ),
    ];

    let mut out = Vec::new();
    let reps: Vec<usize> = (0..scale.queries.max(1)).collect();
    for (x, sql) in &probes {
        // Correctness gate before timing: the lanes must agree exactly.
        let expect = systems[0].1.execute(sql)?.rows;
        for (label, db) in &systems[1..] {
            if db.execute(sql)?.rows != expect {
                return Err(Error::execution(format!(
                    "batch experiment: {label} diverges from {} on {x}",
                    systems[0].0
                )));
            }
        }
        out.push(m("batch", &ds_label, "count", x, expect.len()));

        let mut best = vec![f64::INFINITY; systems.len()];
        for round in 0..ROUNDS {
            let mut order: Vec<usize> = (0..systems.len()).collect();
            if round % 2 == 1 {
                order.reverse();
            }
            for i in order {
                let t = time_per_item(&reps, |_| systems[i].1.execute(sql).map(drop))?;
                if let Some(us) = t.micros() {
                    best[i] = best[i].min(us);
                }
            }
        }
        for ((label, _), us) in systems.iter().zip(&best) {
            out.push(m("batch", &ds_label, label, x, format!("{us:.1}")));
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Cost-based optimizer experiment — traversal vs iterated join by fan-out
// ---------------------------------------------------------------------------

/// Fig-7-family anchored path counting on regular directed graphs at
/// branching factors 2 / 8 / 32, with the cost-based optimizer off (the
/// rule-based traversal plan, always) and on (free to re-plan the count
/// as an iterated index join over the edge table once the fan-out makes
/// the traversal's frontier more expensive than `k` hash probes per
/// path). Both lanes carry a hash index on the edge FROM column, so the
/// *only* difference is the plan choice. Lanes alternate within each
/// point and report their best of ROUNDS passes; every point is
/// correctness-gated (identical counts on every anchor) before any
/// timing, and the plan the optimizer actually chose is reported as its
/// own row so the crossover is visible in the TSV, not inferred.
pub fn optimizer(scale: &ExperimentScale) -> Result<Vec<Measurement>> {
    use grfusion::{Database, ParallelConfig, Value};
    const ROUNDS: usize = 9;
    let n = scale.vertices.clamp(256, 4096);
    let anchors: Vec<usize> = (0..scale.queries.max(3)).map(|i| (i * 97) % n).collect();
    let mut out = Vec::new();

    for &branch in &[2usize, 8, 32] {
        let ds_label = format!("regular-{n}-b{branch}");
        // Deterministic xorshift64*: every vertex gets exactly `branch`
        // distinct non-self out-neighbours, identical across lanes.
        let mut state = (scale.seed | 1) ^ branch as u64; // cast-ok: small constant
        let mut next_u64 = move || -> u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut erows: Vec<Vec<Value>> = Vec::with_capacity(n * branch);
        for v in 0..n {
            let mut targets = std::collections::HashSet::new();
            while targets.len() < branch {
                let t = (next_u64() % n as u64) as usize; // cast-ok: bounded by n <= 4096
                if t != v {
                    targets.insert(t);
                }
            }
            let mut targets: Vec<usize> = targets.into_iter().collect();
            targets.sort_unstable();
            for t in targets {
                let id = erows.len() as i64; // cast-ok: edge count well below i64::MAX
                erows.push(vec![
                    Value::Integer(id),
                    Value::Integer(v as i64), // cast-ok: vertex id <= 4096
                    Value::Integer(t as i64), // cast-ok: vertex id <= 4096
                    Value::Double(1.0),
                ]);
            }
        }
        let vrows: Vec<Vec<Value>> = (0..n as i64) // cast-ok: n <= 4096
            .map(|i| vec![Value::Integer(i)])
            .collect();

        let mut lanes: Vec<(&str, Database)> = Vec::new();
        for (label, cost_based) in [("optimizer=off", false), ("optimizer=on", true)] {
            let mut cfg = EngineConfig {
                parallel: ParallelConfig::serial(),
                ..EngineConfig::default()
            };
            cfg.optimizer.cost_based = cost_based;
            let db = Database::with_config(cfg);
            db.execute("CREATE TABLE v (id INTEGER PRIMARY KEY)")?;
            db.execute(
                "CREATE TABLE e (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, w DOUBLE)",
            )?;
            db.bulk_insert("v", vrows.clone())?;
            db.bulk_insert("e", erows.clone())?;
            db.execute("CREATE INDEX ix_ea ON e (a)")?;
            db.execute(
                "CREATE DIRECTED GRAPH VIEW g VERTEXES(ID = id) FROM v \
                 EDGES(ID = id, FROM = a, TO = b, w = w) FROM e",
            )?;
            lanes.push((label, db));
        }

        let sqls: Vec<String> = anchors
            .iter()
            .map(|s| {
                format!(
                    "SELECT COUNT(*) FROM g.Paths PS \
                     WHERE PS.StartVertex.Id = {s} AND PS.Length = 2"
                )
            })
            .collect();

        // Correctness gate before timing: identical counts on every anchor.
        for sql in &sqls {
            let want = lanes[0].1.execute(sql)?.rows;
            let got = lanes[1].1.execute(sql)?.rows;
            if got != want {
                return Err(Error::execution(format!(
                    "optimizer experiment: lanes diverge at b={branch} on `{sql}`: \
                     {got:?} vs {want:?}"
                )));
            }
        }

        // Which plan did the cost model pick? (The crossover row.)
        let plan = lanes[1].1.explain(&sqls[0])?;
        let chosen = if plan.contains("IndexJoin") {
            "iterated-join"
        } else {
            "traversal"
        };
        out.push(m("optimizer", &ds_label, "plan", branch, chosen));

        // Time through prepared statements (the engine's stored-procedure
        // model): plan choice is paid once at prepare, so the measured
        // number compares the *plans*, not repeated planning overhead.
        let prepped: Vec<Vec<grfusion::PreparedQuery>> = lanes
            .iter()
            .map(|(_, db)| sqls.iter().map(|sql| db.prepare(sql)).collect())
            .collect::<Result<_>>()?;
        let mut best = vec![f64::INFINITY; lanes.len()];
        for round in 0..ROUNDS {
            let mut order: Vec<usize> = (0..lanes.len()).collect();
            if round % 2 == 1 {
                order.reverse();
            }
            for i in order {
                let t = time_per_item(&prepped[i], |q| {
                    lanes[i].1.execute_prepared(q, &[]).map(drop)
                })?;
                if let Some(us) = t.micros() {
                    best[i] = best[i].min(us);
                }
            }
        }
        for ((label, _), us) in lanes.iter().zip(&best) {
            out.push(m("optimizer", &ds_label, label, branch, format!("{us:.1}")));
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Concurrent-reader experiment — epoch snapshots vs. the writer's lock
// ---------------------------------------------------------------------------

/// Reader latency under a live writer, at 1/2/4/8 reader threads, with
/// epoch publication on (`epochs=on`: readers pin an immutable snapshot
/// and never touch the writer's mutex) and off (`epochs=off`: every read
/// serializes behind the single writer). The writer relinks road edges in
/// a tight loop the whole time; its committed-statement count is reported
/// alongside so the lanes' reader numbers are comparable under similar
/// write pressure. Expected shape: `epochs=on` holds roughly flat µs/read
/// as readers scale, `epochs=off` degrades once readers contend with the
/// writer for the engine lock.
pub fn concurrent(scale: &ExperimentScale) -> Result<Vec<Measurement>> {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::time::Instant;

    const READS_PER_THREAD: usize = 256;
    let mut out = Vec::new();
    let ds = roads(scale.vertices, scale.seed);
    let adj = Adjacency::build(&ds);
    let len = 6usize;
    let pairs = pairs_at_distance(&ds, &adj, len as u32, scale.queries.max(4), scale.seed);
    if pairs.is_empty() {
        return Ok(out);
    }
    let n_vertices = ds.vertices.len() as i64;
    let n_edges = ds.edges.len() as i64;

    let lanes = [
        ("epochs=on", EpochConfig::enabled()),
        ("epochs=off", EpochConfig::disabled()),
    ];
    for (label, epochs) in lanes {
        for readers in [1usize, 2, 4, 8] {
            // Fresh engine per point: the writer mutates the graph, and a
            // clean load keeps every point's starting topology identical.
            let grf = GrFusionSystem::load_with(
                &ds,
                EngineConfig {
                    csr: CsrConfig::sealed(),
                    epochs,
                    ..EngineConfig::default()
                },
            )?;
            let stop = AtomicBool::new(false);
            let writes = AtomicU64::new(0);
            let mut micros_per_read = vec![0f64; readers];
            std::thread::scope(|scope| {
                // The live writer: relink one edge per statement, cycling
                // targets so the overlay keeps churning (and re-sealing).
                let writer = scope.spawn(|| {
                    let db = grf.db();
                    let mut k = 0i64;
                    while !stop.load(Ordering::Acquire) {
                        let stmt = format!(
                            "UPDATE e_src SET dst = {} WHERE id = {}",
                            (k * 31 + 7) % n_vertices,
                            k % n_edges
                        );
                        if db.execute(&stmt).is_ok() {
                            writes.fetch_add(1, Ordering::Relaxed);
                        }
                        k += 1;
                    }
                });
                let handles: Vec<_> = (0..readers)
                    .map(|r| {
                        let (grf, pairs) = (&grf, &pairs);
                        scope.spawn(move || {
                            let start = Instant::now();
                            for i in 0..READS_PER_THREAD {
                                let (s, t) = pairs[(r + i) % pairs.len()];
                                let _ = grf.reachable(s, t, len, None);
                            }
                            start.elapsed().as_secs_f64() * 1e6 / READS_PER_THREAD as f64
                        })
                    })
                    .collect();
                for (r, h) in handles.into_iter().enumerate() {
                    micros_per_read[r] = h.join().expect("reader panicked");
                }
                stop.store(true, Ordering::Release);
                writer.join().expect("writer panicked");
            });
            let mean = micros_per_read.iter().sum::<f64>() / readers as f64;
            out.push(m(
                "concurrent",
                ds.kind.label(),
                label,
                format!("readers={readers}"),
                format!("{mean:.1}"),
            ));
            out.push(m(
                "concurrent",
                ds.kind.label(),
                label,
                format!("writer-stmts@readers={readers}"),
                writes.load(Ordering::Relaxed),
            ));
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE dump (`--metrics`) — per-operator runtime counters
// ---------------------------------------------------------------------------

/// Run one representative GRFusion query per §7 family under metrics
/// collection and report every operator's runtime counters as TSV rows
/// (`x = family/operator:counter`). Counter values (rows, next calls,
/// vertexes visited, edges expanded, tuple dereferences) are exact and
/// deterministic for a fixed scale/seed; only `time_us` varies run to run.
pub fn metrics(scale: &ExperimentScale) -> Result<Vec<Measurement>> {
    let mut out = Vec::new();
    for ds in scale.datasets() {
        let name = ds.kind.label();
        let adj = Adjacency::build(&ds);
        let grf = GrFusionSystem::load(&ds)?;
        let pair = pairs_at_distance(&ds, &adj, 4, 1, scale.seed)
            .first()
            .copied()
            .or_else(|| {
                random_connected_pairs(&ds, &adj, 4, 1, scale.seed)
                    .first()
                    .copied()
            });
        let Some((s, t)) = pair else { continue };
        let sel = scale.selectivities.last().copied().unwrap_or(50);
        let families: [(&str, String); 4] = [
            (
                "fig7",
                format!(
                    "SELECT PS.Length FROM g.Paths PS WHERE PS.StartVertex.Id = {s} \
                     AND PS.EndVertex.Id = {t} AND PS.Length <= 4 LIMIT 1"
                ),
            ),
            (
                "fig8",
                format!(
                    "SELECT PS.Length FROM g.Paths PS WHERE PS.StartVertex.Id = {s} \
                     AND PS.EndVertex.Id = {t} AND PS.Length <= 4 \
                     AND PS.Edges[0..*].sel < {sel} LIMIT 1"
                ),
            ),
            (
                "fig9",
                format!(
                    "SELECT PS.Cost FROM g.Paths PS HINT(SHORTESTPATH(weight)) \
                     WHERE PS.StartVertex.Id = {s} AND PS.EndVertex.Id = {t} LIMIT 1"
                ),
            ),
            (
                "fig10",
                format!(
                    "SELECT COUNT(P) FROM g.Paths P WHERE P.Length = 3 \
                     AND P.Edges[0..*].sel < {sel} \
                     AND P.Edges[2].EndVertex = P.Edges[0].StartVertex"
                ),
            ),
        ];
        for (family, sql) in &families {
            let rs = grf.db().execute_with_metrics(sql)?;
            let qm = rs
                .metrics
                .ok_or_else(|| Error::execution("metrics collection returned nothing"))?;
            for (i, n) in qm.nodes.iter().enumerate() {
                let op = format!("{family}/{i}.{}", n.label);
                out.push(m("metrics", name, "grfusion", format!("{op}:rows"), n.rows));
                out.push(m(
                    "metrics",
                    name,
                    "grfusion",
                    format!("{op}:nexts"),
                    n.next_calls,
                ));
                out.push(m(
                    "metrics",
                    name,
                    "grfusion",
                    format!("{op}:time_us"),
                    n.time_ns / 1_000,
                ));
                if let Some(g) = n.graph {
                    out.push(m(
                        "metrics",
                        name,
                        "grfusion",
                        format!("{op}:vertices"),
                        g.vertices_visited,
                    ));
                    out.push(m(
                        "metrics",
                        name,
                        "grfusion",
                        format!("{op}:edges"),
                        g.edges_expanded,
                    ));
                    out.push(m(
                        "metrics",
                        name,
                        "grfusion",
                        format!("{op}:derefs"),
                        g.tuple_derefs,
                    ));
                }
            }
            for w in &qm.workers {
                let wk = format!("{family}/worker{}", w.worker);
                out.push(m("metrics", name, "grfusion", format!("{wk}:morsels"), w.morsels));
                out.push(m("metrics", name, "grfusion", format!("{wk}:paths"), w.paths));
                out.push(m(
                    "metrics",
                    name,
                    "grfusion",
                    format!("{wk}:edges"),
                    w.counters.edges_expanded,
                ));
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// serve — open-loop multi-tenant load through the network front-end
// ---------------------------------------------------------------------------

/// Stands up the `crates/server` front-end over a roads graph and drives it
/// with the open-loop harness at two operating points:
///
/// * `open-loop@moderate` — offered load under capacity with the default
///   generous quotas; sheds should be rare and percentiles reflect service
///   time plus light queueing.
/// * `open-loop@overload` — offered load far above a deliberately tight
///   quota (1 concurrent query per tenant, 1 global slot). Admission
///   control must *shed* the excess with typed retryable `Overloaded`
///   rather than buffer it; the interesting rows are `shed`, `dropped`,
///   and how far `achieved_qps` sits below `offered_qps`.
///
/// Latencies are measured from the scheduled arrival (queueing included,
/// no coordinated omission), so the overload percentiles honestly document
/// the cost of running past saturation.
pub fn serve(scale: &ExperimentScale) -> Result<Vec<Measurement>> {
    use crate::loadgen::{run_open_loop, LoadReport, LoadSpec, QueryMix};
    use grfusion::{Database, FaultPlan};
    use grfusion_common::Value;
    use grfusion_server::{Server, ServerConfig, TenantQuota};
    use std::sync::Arc;

    let ds = roads(scale.vertices.min(2_000), scale.seed);
    let name = ds.kind.label();

    let build_db = || -> Result<Arc<Database>> {
        let db = Database::new();
        db.execute("CREATE TABLE sv (id INTEGER PRIMARY KEY)")?;
        db.execute(
            "CREATE TABLE se (id INTEGER PRIMARY KEY, src INTEGER, dst INTEGER, w DOUBLE)",
        )?;
        let vrows: Vec<Vec<Value>> = ds
            .vertices
            .iter()
            .map(|(id, _)| vec![Value::Integer(*id)])
            .collect();
        db.bulk_insert("sv", vrows)?;
        // Re-key edges densely so the harness's tenant stripes cover the
        // whole id space.
        let erows: Vec<Vec<Value>> = ds
            .edges
            .iter()
            .enumerate()
            .map(|(i, (_, from, to, _))| {
                vec![
                    Value::Integer(i as i64),
                    Value::Integer(*from),
                    Value::Integer(*to),
                    Value::Double(1.0),
                ]
            })
            .collect();
        db.bulk_insert("se", erows)?;
        db.execute(&format!(
            "CREATE {} GRAPH VIEW g VERTEXES(ID = id) FROM sv \
             EDGES(ID = id, FROM = src, TO = dst, w = w) FROM se",
            if ds.directed { "DIRECTED" } else { "UNDIRECTED" }
        ))?;
        Ok(Arc::new(db))
    };
    let mix = QueryMix {
        n_vertices: ds.vertex_count() as i64,
        n_edges: ds.edge_count() as i64,
        read_len: 3,
    };

    let mut out = Vec::new();
    let mut emit = |system: &str, r: &LoadReport| {
        out.push(m("serve", name, system, "offered_qps", format!("{:.1}", r.offered_qps)));
        out.push(m("serve", name, system, "achieved_qps", format!("{:.1}", r.achieved_qps)));
        out.push(m("serve", name, system, "acked", r.acked));
        out.push(m("serve", name, system, "shed", r.shed));
        out.push(m("serve", name, system, "retries", r.retries));
        out.push(m("serve", name, system, "failed", r.failed));
        out.push(m("serve", name, system, "dropped", r.dropped));
        out.push(m("serve", name, system, "p50_us", r.p50_us));
        out.push(m("serve", name, system, "p99_us", r.p99_us));
        out.push(m("serve", name, system, "p999_us", r.p999_us));
    };

    // Moderate: under capacity, default quotas. Faults are pinned off so a
    // stray GRFUSION_FAULTS in the environment can't skew the numbers.
    let no_faults = Some(FaultPlan {
        seed: 0,
        rules: Vec::new(),
    });
    {
        let handle = Server::start(
            build_db()?,
            ServerConfig {
                workers: 2,
                retry_after_ms: 5,
                faults: no_faults.clone(),
                ..ServerConfig::default()
            },
        )?;
        let spec = LoadSpec {
            tenants: 4,
            requests_per_tenant: scale.queries.max(1) * 5,
            offered_qps: 40.0,
            deadline_ms: 0,
            seed: scale.seed,
            ..LoadSpec::default()
        };
        let report = run_open_loop(handle.addr(), &spec, &mix);
        emit("open-loop@moderate", &report);
        handle.shutdown();
    }

    // Overload: the same mix offered at 5x the rate into a 1-slot server.
    {
        let handle = Server::start(
            build_db()?,
            ServerConfig {
                workers: 1,
                quota: TenantQuota {
                    max_concurrent: 1,
                    max_queued_bytes: 4 * 1024,
                },
                global_in_flight: 1,
                retry_after_ms: 5,
                faults: no_faults,
                ..ServerConfig::default()
            },
        )?;
        let spec = LoadSpec {
            tenants: 4,
            requests_per_tenant: scale.queries.max(1) * 5,
            offered_qps: 200.0,
            deadline_ms: 100,
            max_attempts: 4,
            seed: scale.seed,
            ..LoadSpec::default()
        };
        let report = run_open_loop(handle.addr(), &spec, &mix);
        emit("open-loop@overload", &report);
        handle.shutdown();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            vertices: 200,
            queries: 3,
            reach_lengths: vec![2, 4],
            selectivities: vec![30, 60],
            sqlgraph_budget: 500_000,
            seed: 7,
        }
    }

    #[test]
    fn table2_reports_all_datasets() {
        let rows = table2(&tiny()).unwrap();
        assert_eq!(rows.len(), 16); // 4 datasets × 4 metrics
        assert!(rows.iter().any(|r| r.dataset.contains("Tiger")));
    }

    #[test]
    fn fig7_produces_series_for_every_system() {
        let mut scale = tiny();
        scale.reach_lengths = vec![2];
        let rows = fig7(&scale).unwrap();
        for sys in ["grfusion", "sqlgraph", "neo4j-like", "titan-like"] {
            assert!(
                rows.iter().any(|r| r.system == sys),
                "missing series for {sys}"
            );
        }
    }

    #[test]
    fn fig10_systems_agree_on_counts() {
        let mut scale = tiny();
        scale.vertices = 120;
        // fig10 returns Err on any cross-system disagreement.
        let rows = fig10(&scale).unwrap();
        assert!(rows.iter().any(|r| r.system == "count"));
    }

    #[test]
    fn table3_reports_build_cost() {
        let rows = table3(&tiny()).unwrap();
        assert!(rows.iter().any(|r| r.x == "build_ms"));
        assert!(rows.iter().any(|r| r.x == "topology_bytes"));
    }

    #[test]
    fn metrics_dump_has_nonzero_traversal_counters() {
        let mut scale = tiny();
        scale.vertices = 150;
        let rows = metrics(&scale).unwrap();
        assert!(!rows.is_empty());
        // Every family produced an annotated PathScan with real work.
        for family in ["fig7", "fig8", "fig9", "fig10"] {
            let visited: u64 = rows
                .iter()
                .filter(|r| {
                    r.x.starts_with(family)
                        && (r.x.ends_with(":vertices") || r.x.ends_with(":edges"))
                })
                .map(|r| r.value.parse::<u64>().unwrap())
                .sum();
            assert!(visited > 0, "{family}: zero traversal counters");
        }
        // fig8's pushed selectivity predicate dereferences edge tuples.
        assert!(rows.iter().any(|r| {
            r.x.starts_with("fig8") && r.x.ends_with(":derefs") && r.value != "0"
        }));
    }

    #[test]
    fn ablations_run() {
        let mut scale = tiny();
        scale.vertices = 150;
        assert!(!ablate_pushdown(&scale).unwrap().is_empty());
        assert!(!ablate_lazy(&scale).unwrap().is_empty());
    }

    #[test]
    fn csr_reports_both_layouts() {
        let mut scale = tiny();
        scale.vertices = 150;
        let rows = csr(&scale).unwrap();
        // The sealed lane carries a real footprint; the adjacency lane
        // reports zero (it never compacts). Timing rows exist for both
        // layouts on the same x points (values are wall-clock and not
        // asserted here — EXPERIMENTS.md records the expected shape).
        let bytes = |sys: &str| -> u64 {
            rows.iter()
                .find(|r| r.system == sys && r.x == "sealed-bytes")
                .unwrap()
                .value
                .parse()
                .unwrap()
        };
        assert!(bytes("layout=csr") > 0);
        assert_eq!(bytes("layout=adjacency"), 0);
        for x in ["reach-6", "reach-10"] {
            for sys in ["layout=csr", "layout=adjacency"] {
                assert!(
                    rows.iter().any(|r| r.system == sys && r.x == x),
                    "missing {sys} row for {x}"
                );
            }
        }
    }

    #[test]
    fn optimizer_reports_both_lanes_and_a_crossover() {
        let mut scale = tiny();
        scale.vertices = 256;
        // optimizer() errors on any on/off divergence, so reaching here
        // already certifies byte-agreement; assert the reporting shape
        // and the plan crossover: traversal at branching 2, iterated
        // join once the fan-out clears the cost crossover.
        let rows = optimizer(&scale).unwrap();
        let plan_at = |b: usize| -> &str {
            &rows
                .iter()
                .find(|r| r.system == "plan" && r.x == b.to_string())
                .unwrap_or_else(|| panic!("missing plan row for b={b}"))
                .value
        };
        assert_eq!(plan_at(2), "traversal");
        assert_eq!(plan_at(8), "iterated-join");
        assert_eq!(plan_at(32), "iterated-join");
        for b in [2usize, 8, 32] {
            for sys in ["optimizer=off", "optimizer=on"] {
                let val = &rows
                    .iter()
                    .find(|r| r.system == sys && r.x == b.to_string())
                    .unwrap_or_else(|| panic!("missing {sys} row for b={b}"))
                    .value;
                assert!(val.parse::<f64>().unwrap() > 0.0, "{sys}/b={b}: {val}");
            }
        }
    }

    #[test]
    fn batch_reports_both_lanes_and_agreeing_counts() {
        let mut scale = tiny();
        scale.vertices = 100; // 1k fact rows — enough for shape, fast
        let rows = batch(&scale).unwrap();
        // batch() errors on any row/batch divergence, so reaching here
        // already certifies agreement; assert the reporting shape.
        for x in ["scan", "join", "aggregate"] {
            let count: usize = rows
                .iter()
                .find(|r| r.system == "count" && r.x == x)
                .unwrap()
                .value
                .parse()
                .unwrap();
            assert!(count > 0, "{x}: empty probe result");
            for sys in ["exec=row", "exec=batch"] {
                let val = &rows
                    .iter()
                    .find(|r| r.system == sys && r.x == x)
                    .unwrap_or_else(|| panic!("missing {sys} row for {x}"))
                    .value;
                assert!(val.parse::<f64>().unwrap() > 0.0, "{sys}/{x}: {val}");
            }
        }
    }
}
