//! Property tests for the wire codec: encode/decode roundtrips over
//! arbitrary frames, and hostile-input properties — truncations and byte
//! flips must produce typed protocol errors, never panics or unbounded
//! allocations.

use proptest::prelude::*;

use grfusion_common::{Error, ResourceKind, Value};
use grfusion_server::wire::{decode_payload, encode_frame, read_frame};
use grfusion_server::Frame;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Integer),
        any::<f64>().prop_map(Value::Double),
        any::<bool>().prop_map(Value::Boolean),
        "\\PC{0,20}".prop_map(|s| Value::text(s)),
    ]
}

fn arb_error() -> impl Strategy<Value = Error> {
    prop_oneof![
        "\\PC{0,30}".prop_map(Error::Parse),
        "\\PC{0,30}".prop_map(Error::Execution),
        "\\PC{0,30}".prop_map(Error::Constraint),
        "\\PC{0,30}".prop_map(Error::Protocol),
        "\\PC{0,30}".prop_map(Error::Unavailable),
        (0u64..1 << 40, 0u64..1 << 40).prop_map(|(spent, limit)| Error::ResourceExhausted {
            kind: ResourceKind::Deadline,
            spent,
            limit,
        }),
        (0u64..1 << 40, 0u64..1 << 40).prop_map(|(spent, limit)| Error::ResourceExhausted {
            kind: ResourceKind::Cancelled,
            spent,
            limit,
        }),
        (0u64..10_000).prop_map(|retry_after_ms| Error::Overloaded { retry_after_ms }),
        Just(Error::ShuttingDown),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    let rows = proptest::collection::vec(proptest::collection::vec(arb_value(), 0..5), 0..5);
    prop_oneof![
        "[a-zA-Z0-9_-]{1,64}".prop_map(|tenant| Frame::Hello { tenant }),
        Just(Frame::HelloAck),
        Just(Frame::Shutdown),
        (any::<u64>(), any::<u64>(), "\\PC{0,60}").prop_map(|(id, deadline_ms, sql)| {
            Frame::Query {
                id,
                deadline_ms,
                sql,
            }
        }),
        (any::<u64>(), arb_error()).prop_map(|(id, error)| Frame::Err { id, error }),
        (
            any::<u64>(),
            proptest::collection::vec("\\PC{0,12}", 0..5),
            rows,
            any::<u64>()
        )
            .prop_map(|(id, columns, rows, rows_affected)| Frame::Rows {
                id,
                columns,
                rows,
                rows_affected,
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_roundtrips(frame in arb_frame()) {
        let bytes = encode_frame(&frame);
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        prop_assert_eq!(len, bytes.len() - 4);
        let decoded = decode_payload(&bytes[4..]).expect("valid frame must decode");
        prop_assert_eq!(decoded, frame);
        // And through the stream reader: same result, whole frame consumed.
        let mut cursor = &bytes[..];
        let streamed = read_frame(&mut cursor).expect("stream read").expect("one frame");
        prop_assert_eq!(streamed, decode_payload(&bytes[4..]).unwrap());
        prop_assert!(cursor.is_empty());
    }

    #[test]
    fn truncations_never_panic(frame in arb_frame(), cut in 0usize..1 << 16) {
        let bytes = encode_frame(&frame);
        let payload = &bytes[4..];
        let cut = cut % payload.len().max(1);
        // Every strict prefix either fails typed or — when a trailing cut
        // happens to land on a shorter valid encoding — decodes to some
        // frame; it must never panic, and a failure must be Protocol (the
        // fatal class), not a retryable transport error.
        match decode_payload(&payload[..cut]) {
            Ok(_) => {}
            Err(Error::Protocol(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
        }
    }

    #[test]
    fn byte_flips_never_panic(frame in arb_frame(), pos in 0usize..1 << 16, flip in 1u8..=255) {
        let bytes = encode_frame(&frame);
        let mut payload = bytes[4..].to_vec();
        let pos = pos % payload.len();
        payload[pos] ^= flip;
        // A corrupted payload decodes to some frame or fails typed; the
        // bounds-checked cursor guarantees it never panics or over-reads.
        match decode_payload(&payload) {
            Ok(_) | Err(Error::Protocol(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
        }
    }

    #[test]
    fn forged_length_prefixes_never_allocate_unbounded(len in 0u32..=u32::MAX, tag in 0u8..=255) {
        // A frame whose length prefix promises more than the cap is refused
        // before any allocation; under the cap, a torn body is Unavailable.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.push(tag);
        match read_frame(&mut &bytes[..]) {
            Ok(Some(_)) => prop_assert!(len == 1, "only a 1-byte body is complete here"),
            Ok(None) => prop_assert!(false, "header was present"),
            Err(Error::Protocol(_)) => prop_assert!(len == 0 || len as usize > grfusion_server::MAX_FRAME_BYTES || len == 1),
            Err(Error::Unavailable(_)) => prop_assert!(len > 1),
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
        }
    }
}
