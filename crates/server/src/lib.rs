//! Hardened network front-end for GRFusion.
//!
//! A std-only TCP server (no async runtime, no external crates — the
//! registry is offline) speaking a length-prefixed binary protocol over a
//! fixed worker pool, designed around the failure modes a serving layer
//! actually meets:
//!
//! * **Admission control** ([`tenant`]): every query passes per-tenant
//!   concurrency and queued-bytes quotas plus a global in-flight cap;
//!   saturation sheds immediately with a typed, retryable
//!   `Error::Overloaded { retry_after_ms }` instead of queueing without
//!   bound. Server memory stays flat no matter how hard one tenant pushes.
//! * **Deadline & cancel propagation** ([`server`]): a deadline in the
//!   `Query` frame header tightens the engine governor's budget; a client
//!   that disconnects mid-query trips a per-request cancel token so the
//!   engine stops at its next checkpoint. Graceful shutdown drains
//!   in-flight work under a deadline, then cancels the rest.
//! * **Hostile-input framing** ([`wire`]): length prefixes are capped
//!   before allocation, payloads decode through a bounds-checked cursor,
//!   and forged element counts are rejected against the bytes actually
//!   present — malformed frames are typed `Error::Protocol` values, never
//!   panics.
//! * **Connection-fault injection**: the `GRFUSION_FAULTS` sweep extends
//!   to `net.accept`, `net.read_frame`, `net.write_frame`,
//!   `net.slow_client`, and `net.disconnect` sites, deterministic and
//!   hit-counted like the engine's DML sites.
//!
//! The `grfusion-serve` binary wraps [`Server`] with CLI flags, strict
//! engine-environment validation, and SIGTERM-triggered graceful drain.

pub mod client;
pub mod server;
pub mod tenant;
pub mod wire;

pub use client::{Client, Response};
pub use server::{Server, ServerConfig, ServerHandle};
pub use tenant::{Permit, TenantQuota, TenantRegistry, TenantStats};
pub use wire::{Frame, MAX_FRAME_BYTES, MAX_TENANT_LEN};
