//! The hardened network front-end: acceptor, connection threads, and a
//! fixed worker pool over one shared [`Database`].
//!
//! Threading model (std-only, no async):
//!
//! * **Acceptor** — one thread polling a nonblocking `TcpListener`; every
//!   accepted socket gets its own connection thread.
//! * **Connection threads** — run the handshake (`Hello` → tenant
//!   validation → `HelloAck`), then a request loop: read a `Query` frame,
//!   pass admission control, submit the job to the worker pool, and wait
//!   for the result while *watching the socket* — a client that hangs up
//!   mid-query trips the per-request cancel token, so its work stops at
//!   the engine's next checkpoint instead of running to completion for
//!   nobody.
//! * **Workers** — a fixed pool of `cfg.workers` threads draining a shared
//!   job queue and calling [`Database::execute_script_with_request`]. The
//!   pool is the concurrency ceiling on the engine; admission control is
//!   the queue-depth ceiling in front of it.
//!
//! Shutdown is a drain state machine: set `draining` (new queries are
//! refused with [`Error::ShuttingDown`]), wait up to `drain_deadline_ms`
//! for in-flight queries to finish, then cancel whatever is left through
//! the database's cancel token and join the pool.
//!
//! Fault injection: the `GRFUSION_FAULTS` sweep extends to the network
//! layer with `net.*` sites (`net.accept`, `net.read_frame`,
//! `net.write_frame`, `net.slow_client`, `net.disconnect`), hit-counted
//! server-wide through the same deterministic [`FaultState`] machinery the
//! engine uses for DML sites.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use grfusion::{CancelToken, Database, FaultPlan, FaultState, RequestOptions, ResultSet};
use grfusion_common::{Error, Result};

use crate::tenant::{TenantQuota, TenantRegistry, TenantStats};
use crate::wire::{self, Frame};

/// Server tuning knobs. `Default` is sized for tests and small
/// deployments; `grfusion-serve` maps its CLI flags onto this.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (the bound address is
    /// reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker pool size: queries executing concurrently inside the engine.
    pub workers: usize,
    /// Per-tenant admission quotas.
    pub quota: TenantQuota,
    /// Global in-flight cap across all tenants; `0` derives `workers * 4`.
    pub global_in_flight: usize,
    /// `retry_after_ms` hint carried by admission sheds.
    pub retry_after_ms: u64,
    /// How long graceful shutdown waits for in-flight queries before
    /// cancelling them.
    pub drain_deadline_ms: u64,
    /// Poll cadence for disconnect detection and drain/idle checks.
    pub poll_ms: u64,
    /// Stall injected by the `net.slow_client` fault site.
    pub slow_client_ms: u64,
    /// Network fault plan. `None` reads `GRFUSION_FAULTS` from the
    /// environment (a malformed value is a startup error, same contract
    /// as the engine's DML sites).
    pub faults: Option<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            quota: TenantQuota::default(),
            global_in_flight: 0,
            retry_after_ms: 25,
            drain_deadline_ms: 2_000,
            poll_ms: 10,
            slow_client_ms: 50,
            faults: None,
        }
    }
}

/// One queued query: SQL plus the request scope it executes under and the
/// channel its result goes back on.
struct Job {
    sql: String,
    opts: RequestOptions,
    resp: mpsc::Sender<Result<ResultSet>>,
}

/// State shared by the acceptor, every connection thread, and the workers.
struct Shared {
    db: Arc<Database>,
    /// Database-wide cancel token, materialized before the first query so
    /// every served request watches it; the drain's last resort.
    db_cancel: CancelToken,
    registry: Arc<TenantRegistry>,
    faults: Option<Arc<FaultState>>,
    cfg: ServerConfig,
    /// Draining: new queries are refused with `ShuttingDown`.
    draining: AtomicBool,
    /// Stopped: acceptor exits; idle connection threads exit at the next
    /// frame boundary.
    stopped: AtomicBool,
    /// Set when a client sends a `Shutdown` frame; the embedding binary
    /// polls this and runs the drain.
    shutdown_requested: AtomicBool,
    /// Bounded job queue feeding the worker pool. `None` once the pool is
    /// being torn down.
    jobs: Mutex<Option<VecDeque<Job>>>,
    jobs_ready: Condvar,
}

impl Shared {
    /// Fire a network fault site; `true` means the planned fault landed on
    /// this hit and the caller should act it out.
    fn net_fault(&self, site: &str) -> bool {
        match &self.faults {
            Some(f) => f.hit(site).is_err(),
            None => false,
        }
    }

    fn submit(&self, job: Job) -> Result<()> {
        let mut q = self.jobs.lock().expect("job queue poisoned");
        match q.as_mut() {
            Some(queue) => {
                queue.push_back(job);
                self.jobs_ready.notify_one();
                Ok(())
            }
            None => Err(Error::ShuttingDown),
        }
    }

    /// Worker side: block for the next job; `None` means the pool is done.
    fn next_job(&self) -> Option<Job> {
        let mut q = self.jobs.lock().expect("job queue poisoned");
        loop {
            match q.as_mut() {
                Some(queue) => match queue.pop_front() {
                    Some(job) => return Some(job),
                    None => {
                        q = self
                            .jobs_ready
                            .wait_timeout(q, Duration::from_millis(50))
                            .expect("job queue poisoned")
                            .0;
                    }
                },
                None => return None,
            }
        }
    }
}

/// A running server. Dropping the handle performs a graceful shutdown.
pub struct Server;

impl Server {
    /// Bind, spawn the worker pool and acceptor, and return the handle.
    pub fn start(db: Arc<Database>, cfg: ServerConfig) -> Result<ServerHandle> {
        let faults = match &cfg.faults {
            Some(plan) => Some(Arc::new(FaultState::new(plan.clone()))),
            None => FaultPlan::from_env()?.map(|p| Arc::new(FaultState::new(p))),
        };
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| Error::unavailable(format!("bind {}: {e}", cfg.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::unavailable(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::unavailable(format!("set_nonblocking: {e}")))?;

        let workers = cfg.workers.max(1);
        let global = if cfg.global_in_flight == 0 {
            workers * 4
        } else {
            cfg.global_in_flight
        };
        let registry = Arc::new(TenantRegistry::new(cfg.quota, global, cfg.retry_after_ms));
        // Materialize the database-wide cancel token *before* serving: the
        // token is created lazily and only queries issued after it exists
        // watch it, so a drain must not be the first caller.
        let db_cancel = db.cancel_token();
        let shared = Arc::new(Shared {
            db: db.clone(),
            db_cancel,
            registry,
            faults,
            cfg,
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            jobs: Mutex::new(Some(VecDeque::new())),
            jobs_ready: Condvar::new(),
        });

        let mut pool = Vec::with_capacity(workers);
        for i in 0..workers {
            let s = shared.clone();
            let handle = thread::Builder::new()
                .name(format!("grfusion-worker-{i}"))
                .spawn(move || worker_loop(&s))
                .map_err(|e| Error::unavailable(format!("spawn worker: {e}")))?;
            pool.push(handle);
        }
        let acceptor = {
            let s = shared.clone();
            thread::Builder::new()
                .name("grfusion-acceptor".to_string())
                .spawn(move || acceptor_loop(listener, &s))
                .map_err(|e| Error::unavailable(format!("spawn acceptor: {e}")))?
        };

        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            pool,
        })
    }
}

/// Handle to a running server: address, stats, and graceful shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    pool: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Per-tenant admission counters.
    pub fn stats(&self) -> Vec<TenantStats> {
        self.shared.registry.stats()
    }

    /// True once a client has sent a `Shutdown` frame; the embedding
    /// binary polls this and calls [`ServerHandle::shutdown`].
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::Acquire)
    }

    /// Graceful shutdown: refuse new queries, drain in-flight work for up
    /// to `drain_deadline_ms`, cancel stragglers through the database's
    /// cancel token, then join the pool.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        self.shared.draining.store(true, Ordering::Release);
        let poll = Duration::from_millis(self.shared.cfg.poll_ms.max(1));
        let deadline = Instant::now() + Duration::from_millis(self.shared.cfg.drain_deadline_ms);
        while self.shared.registry.total_in_flight() > 0 && Instant::now() < deadline {
            thread::sleep(poll);
        }
        if self.shared.registry.total_in_flight() > 0 {
            // Drain deadline expired: in-flight queries abort at their next
            // checkpoint with a typed cancellation error.
            self.shared.db_cancel.cancel();
        }
        self.shared.stopped.store(true, Ordering::Release);
        // Closing the queue wakes the workers; they exit once it reads None.
        *self.shared.jobs.lock().expect("job queue poisoned") = None;
        self.shared.jobs_ready.notify_all();
        for w in self.pool.drain(..) {
            let _ = w.join();
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.next_job() {
        let result = shared.db.execute_script_with_request(&job.sql, &job.opts);
        // A dead receiver means the connection is gone; the result is
        // simply dropped (its effects are already committed or rolled
        // back — the engine's transaction boundary, not the socket, is
        // the unit of atomicity).
        let _ = job.resp.send(result);
    }
}

fn acceptor_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let poll = Duration::from_millis(shared.cfg.poll_ms.max(1));
    let mut conn_id: u64 = 0;
    loop {
        if shared.stopped.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.net_fault("net.accept") {
                    // Injected accept failure: drop the connection on the
                    // floor; the client sees EOF during handshake.
                    drop(stream);
                    continue;
                }
                conn_id += 1;
                let s = shared.clone();
                let _ = thread::Builder::new()
                    .name(format!("grfusion-conn-{conn_id}"))
                    .spawn(move || connection_loop(stream, &s));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(poll),
            Err(_) => thread::sleep(poll),
        }
    }
}

/// Read one frame, polling `stop` while idle at a frame boundary.
/// `Ok(None)` covers both clean client EOF and a stop signal observed
/// before any frame bytes arrived. A stop signal observed *mid-frame*
/// aborts with `Unavailable`: a draining server does not wait out a
/// half-sent frame.
fn read_frame_idle(stream: &mut TcpStream, stop: &dyn Fn() -> bool) -> Result<Option<Frame>> {
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match stream.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(Error::unavailable("connection closed inside frame header"))
                }
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop() {
                    return if filled == 0 {
                        Ok(None)
                    } else {
                        Err(Error::unavailable("server draining inside frame header"))
                    };
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(Error::unavailable(format!("read failed: {e}"))),
        }
    }
    let len = u32::from_le_bytes(header) as usize; // cast-ok: u32 always fits usize here
    if len == 0 {
        return Err(Error::protocol("zero-length frame"));
    }
    if len > wire::MAX_FRAME_BYTES {
        return Err(Error::protocol(format!(
            "frame length {len} exceeds cap {}",
            wire::MAX_FRAME_BYTES
        )));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match stream.read(&mut payload[filled..]) {
            Ok(0) => return Err(Error::unavailable("connection closed inside frame body")),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop() {
                    return Err(Error::unavailable("server draining inside frame body"));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(Error::unavailable(format!("read failed: {e}"))),
        }
    }
    wire::decode_payload(&payload).map(Some)
}

/// Write a response frame, acting out the `net.write_frame` fault: on a
/// planned hit only half the frame is written before the connection is
/// torn down, which the client surfaces as a retryable `Unavailable`.
fn write_response(stream: &mut TcpStream, frame: &Frame, shared: &Shared) -> Result<()> {
    if shared.net_fault("net.write_frame") {
        let bytes = wire::encode_frame(frame);
        let half = bytes.len() / 2;
        let _ = stream.write_all(&bytes[..half]);
        let _ = stream.flush();
        return Err(Error::unavailable("injected torn write"));
    }
    wire::write_frame(stream, frame)
}

fn connection_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let poll = Duration::from_millis(shared.cfg.poll_ms.max(1));
    if stream.set_read_timeout(Some(poll)).is_err() {
        return;
    }
    let stop = {
        let s = shared.clone();
        move || s.stopped.load(Ordering::Acquire)
    };

    // Handshake: exactly one Hello, answered with HelloAck. Tenant ids are
    // validated at decode; anything else on a fresh connection is a
    // protocol error.
    let tenant = match read_frame_idle(&mut stream, &stop) {
        Ok(Some(Frame::Hello { tenant })) => tenant,
        Ok(Some(_)) => {
            let _ = write_response(
                &mut stream,
                &Frame::Err {
                    id: 0,
                    error: Error::protocol("expected Hello as the first frame"),
                },
                shared,
            );
            return;
        }
        Ok(None) => return,
        Err(e) => {
            let _ = write_response(&mut stream, &Frame::Err { id: 0, error: e }, shared);
            return;
        }
    };
    if write_response(&mut stream, &Frame::HelloAck, shared).is_err() {
        return;
    }

    // Request loop.
    loop {
        if shared.net_fault("net.slow_client") {
            // A stalled client ties up only its own connection thread.
            thread::sleep(Duration::from_millis(shared.cfg.slow_client_ms));
        }
        let frame = match read_frame_idle(&mut stream, &stop) {
            Ok(Some(f)) => f,
            Ok(None) => return,
            Err(e) => {
                // Torn/malformed request: report if the socket still
                // works, then close — request framing is unrecoverable.
                let _ = write_response(&mut stream, &Frame::Err { id: 0, error: e }, shared);
                return;
            }
        };
        if shared.net_fault("net.read_frame") {
            // Injected torn read: the request is dropped on the floor and
            // the connection closed without a response.
            return;
        }
        let (id, deadline_ms, sql) = match frame {
            Frame::Query {
                id,
                deadline_ms,
                sql,
            } => (id, deadline_ms, sql),
            Frame::Shutdown => {
                shared.shutdown_requested.store(true, Ordering::Release);
                return;
            }
            _ => {
                let _ = write_response(
                    &mut stream,
                    &Frame::Err {
                        id: 0,
                        error: Error::protocol("expected Query or Shutdown"),
                    },
                    shared,
                );
                return;
            }
        };
        if shared.draining.load(Ordering::Acquire) {
            let _ = write_response(
                &mut stream,
                &Frame::Err {
                    id,
                    error: Error::ShuttingDown,
                },
                shared,
            );
            continue;
        }

        // Admission control: shed before the job can queue.
        let permit = match shared.registry.admit(&tenant, sql.len()) {
            Ok(p) => p,
            Err(e) => {
                if write_response(&mut stream, &Frame::Err { id, error: e }, shared).is_err() {
                    return;
                }
                continue;
            }
        };

        // Per-request cancel token: armed from generation zero so a
        // disconnect observed while the job is still queued is not lost.
        let token = CancelToken::default();
        let opts = RequestOptions {
            deadline_ms: (deadline_ms > 0).then_some(deadline_ms),
            cancel: Some(token.clone()),
        };
        let (resp_tx, resp_rx) = mpsc::channel();
        if let Err(e) = shared.submit(Job {
            sql,
            opts,
            resp: resp_tx,
        }) {
            drop(permit);
            let _ = write_response(&mut stream, &Frame::Err { id, error: e }, shared);
            continue;
        }

        let mut disconnected = false;
        if shared.net_fault("net.disconnect") {
            // Injected abrupt client death mid-query: cancel and close
            // without a response. The committed prefix stays committed;
            // the statement in flight aborts at its next checkpoint.
            token.cancel();
            disconnected = true;
        }

        // Wait for the worker, watching the socket: a zero-byte peek is
        // the client hanging up, which cancels the running query.
        let result = loop {
            match resp_rx.recv_timeout(poll) {
                Ok(r) => break r,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if disconnected {
                        continue;
                    }
                    let mut probe = [0u8; 1];
                    match stream.peek(&mut probe) {
                        Ok(0) => {
                            token.cancel();
                            disconnected = true;
                        }
                        Ok(_) => {}
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut => {}
                        Err(_) => {
                            token.cancel();
                            disconnected = true;
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break Err(Error::ShuttingDown),
            }
        };
        drop(permit);
        if disconnected {
            return;
        }
        let frame = match result {
            Ok(rs) => Frame::Rows {
                id,
                columns: rs
                    .schema
                    .columns()
                    .iter()
                    .map(|c| c.name.clone())
                    .collect(),
                rows: rs.rows,
                rows_affected: rs.rows_affected,
            },
            Err(error) => Frame::Err { id, error },
        };
        if write_response(&mut stream, &frame, shared).is_err() {
            return;
        }
    }
}
