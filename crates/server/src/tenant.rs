//! Per-tenant admission control.
//!
//! Every connection authenticates a tenant id at handshake; every query
//! then passes through [`TenantRegistry::admit`] before it may queue for a
//! worker. Admission enforces two per-tenant quotas — concurrent
//! in-flight queries and queued SQL bytes — plus a global in-flight cap
//! sized to the worker pool. When any of the three is saturated the
//! request is *shed* immediately with a typed, retryable
//! [`Error::Overloaded`] carrying a `retry_after_ms` hint, instead of
//! queueing unboundedly. Shedding at admission is the memory-flatness
//! guarantee: a saturating client holds at most `max_concurrent` slots
//! and `max_queued_bytes` of SQL in the server, no matter how fast it
//! submits.
//!
//! Locking: the registry's mutex is [`LockClass::TenantRegistry`], the
//! strict *leaf* of the engine's documented lock order. Admission
//! bookkeeping is take-lock/update/release — never held across a call
//! into the engine — and the runtime lock-order validator enforces
//! exactly that.

use std::collections::HashMap;
use std::sync::Arc;

use grfusion::lockorder::{LockClass, OrderedMutex};
use grfusion_common::{Error, Result};

/// Per-tenant admission quotas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum queries a tenant may have in flight (queued + executing).
    pub max_concurrent: usize,
    /// Maximum bytes of SQL a tenant may have queued or executing.
    pub max_queued_bytes: usize,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_concurrent: 4,
            max_queued_bytes: 1 << 20,
        }
    }
}

/// Live admission counters for one tenant.
#[derive(Debug, Default, Clone, Copy)]
struct TenantState {
    in_flight: usize,
    queued_bytes: usize,
    admitted: u64,
    shed: u64,
}

/// Counters snapshot for one tenant (monitoring / harness output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    pub tenant: String,
    pub in_flight: usize,
    pub queued_bytes: usize,
    pub admitted: u64,
    pub shed: u64,
}

/// The admission registry shared by every connection thread.
pub struct TenantRegistry {
    tenants: OrderedMutex<HashMap<String, TenantState>>,
    quota: TenantQuota,
    /// Global in-flight cap across all tenants, sized to the worker pool;
    /// the backstop that keeps the job queue bounded even with many
    /// tenants each inside their own quota.
    global_limit: usize,
    retry_after_ms: u64,
}

impl TenantRegistry {
    pub fn new(quota: TenantQuota, global_limit: usize, retry_after_ms: u64) -> TenantRegistry {
        TenantRegistry {
            tenants: OrderedMutex::new(LockClass::TenantRegistry, HashMap::new()),
            quota,
            global_limit: global_limit.max(1),
            retry_after_ms,
        }
    }

    /// Admit one query of `sql_bytes` for `tenant`, or shed with
    /// [`Error::Overloaded`]. On admission the returned [`Permit`] holds
    /// the slot; dropping it releases the slot (response written, client
    /// gone, or worker panicked — the RAII guard covers every exit path).
    pub fn admit(self: &Arc<Self>, tenant: &str, sql_bytes: usize) -> Result<Permit> {
        let mut tenants = self.tenants.lock();
        let global_in_flight: usize = tenants.values().map(|t| t.in_flight).sum();
        let st = tenants.entry(tenant.to_string()).or_default();
        let over_tenant = st.in_flight >= self.quota.max_concurrent
            || st.queued_bytes.saturating_add(sql_bytes) > self.quota.max_queued_bytes;
        let over_global = global_in_flight >= self.global_limit;
        if over_tenant || over_global {
            st.shed += 1;
            return Err(Error::overloaded(self.retry_after_ms));
        }
        st.in_flight += 1;
        st.queued_bytes += sql_bytes;
        st.admitted += 1;
        drop(tenants);
        Ok(Permit {
            registry: self.clone(),
            tenant: tenant.to_string(),
            sql_bytes,
        })
    }

    fn release(&self, tenant: &str, sql_bytes: usize) {
        let mut tenants = self.tenants.lock();
        if let Some(st) = tenants.get_mut(tenant) {
            st.in_flight = st.in_flight.saturating_sub(1);
            st.queued_bytes = st.queued_bytes.saturating_sub(sql_bytes);
        }
    }

    /// Per-tenant counter snapshot, sorted by tenant id.
    pub fn stats(&self) -> Vec<TenantStats> {
        let tenants = self.tenants.lock();
        let mut out: Vec<TenantStats> = tenants
            .iter()
            .map(|(name, st)| TenantStats {
                tenant: name.clone(),
                in_flight: st.in_flight,
                queued_bytes: st.queued_bytes,
                admitted: st.admitted,
                shed: st.shed,
            })
            .collect();
        out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }

    /// Total queries currently in flight (queued + executing).
    pub fn total_in_flight(&self) -> usize {
        self.tenants.lock().values().map(|t| t.in_flight).sum()
    }
}

/// RAII admission slot: holds one unit of the tenant's concurrency quota
/// and `sql_bytes` of its byte quota until dropped.
pub struct Permit {
    registry: Arc<TenantRegistry>,
    tenant: String,
    sql_bytes: usize,
}

impl std::fmt::Debug for Permit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Permit")
            .field("tenant", &self.tenant)
            .field("sql_bytes", &self.sql_bytes)
            .finish()
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.registry.release(&self.tenant, self.sql_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(max_concurrent: usize, max_bytes: usize, global: usize) -> Arc<TenantRegistry> {
        Arc::new(TenantRegistry::new(
            TenantQuota {
                max_concurrent,
                max_queued_bytes: max_bytes,
            },
            global,
            25,
        ))
    }

    #[test]
    fn concurrency_quota_sheds_then_recovers() {
        let r = registry(1, 1 << 20, 100);
        let p1 = r.admit("a", 10).unwrap();
        let err = r.admit("a", 10).unwrap_err();
        assert_eq!(err, Error::overloaded(25));
        assert!(err.is_retryable());
        // Another tenant is unaffected by a's saturation.
        let _pb = r.admit("b", 10).unwrap();
        drop(p1);
        let _p2 = r.admit("a", 10).unwrap();
        let stats = r.stats();
        let a = stats.iter().find(|s| s.tenant == "a").unwrap();
        assert_eq!(a.admitted, 2);
        assert_eq!(a.shed, 1);
    }

    #[test]
    fn byte_quota_sheds_big_queue() {
        let r = registry(10, 100, 100);
        let _p1 = r.admit("a", 60).unwrap();
        assert!(r.admit("a", 60).is_err());
        let _p2 = r.admit("a", 40).unwrap();
        assert!(r.admit("a", 1).is_err());
    }

    #[test]
    fn global_limit_backstops_many_tenants() {
        let r = registry(10, 1 << 20, 2);
        let _p1 = r.admit("a", 1).unwrap();
        let _p2 = r.admit("b", 1).unwrap();
        let err = r.admit("c", 1).unwrap_err();
        assert!(matches!(err, Error::Overloaded { .. }));
        assert_eq!(r.total_in_flight(), 2);
    }

    #[test]
    fn permit_drop_releases_on_every_path() {
        let r = registry(1, 100, 10);
        {
            let _p = r.admit("a", 50).unwrap();
            assert_eq!(r.total_in_flight(), 1);
        }
        assert_eq!(r.total_in_flight(), 0);
        assert_eq!(r.stats()[0].queued_bytes, 0);
    }
}
