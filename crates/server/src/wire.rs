//! Length-prefixed binary frame codec.
//!
//! Every frame on the wire is `[u32 LE payload length][payload]`; the
//! first payload byte is the frame tag, the rest is the tag-specific body.
//! The codec is written against hostile input end to end:
//!
//! * the length prefix is capped at [`MAX_FRAME_BYTES`] *before* any
//!   allocation — an adversarial prefix can never trigger an unbounded
//!   `Vec` reservation;
//! * decoding goes through a bounds-checked [`Cursor`], so truncated or
//!   torn payloads surface as typed [`Error::Protocol`] values, never a
//!   panic or an out-of-bounds read;
//! * element counts inside a payload (row counts, column counts) are
//!   sanity-checked against the bytes actually remaining, so a forged
//!   count cannot pre-reserve more memory than the frame itself ships.
//!
//! Transport failures (EOF mid-frame, reset) are [`Error::Unavailable`] —
//! retryable over a fresh connection — while malformed bytes are
//! [`Error::Protocol`] — fatal, since resending them cannot help. That
//! split is what the client's retry loop keys on.

use std::io::{Read, Write};

use grfusion_common::{Error, ResourceKind, Result, Value};

/// Hard cap on one frame's payload (length prefix bound), 16 MiB.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Maximum tenant-id length in bytes.
pub const MAX_TENANT_LEN: usize = 64;

// Frame tags. Client→server tags sit in the low range, server→client tags
// have the high bit set; an unknown tag is a protocol error.
const TAG_HELLO: u8 = 0x01;
const TAG_QUERY: u8 = 0x02;
const TAG_SHUTDOWN: u8 = 0x03;
const TAG_HELLO_ACK: u8 = 0x81;
const TAG_ROWS: u8 = 0x82;
const TAG_ERROR: u8 = 0x83;

// Value tags inside a Rows frame.
const VAL_NULL: u8 = 0;
const VAL_INTEGER: u8 = 1;
const VAL_DOUBLE: u8 = 2;
const VAL_BOOLEAN: u8 = 3;
const VAL_TEXT: u8 = 4;

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Connection handshake: the client authenticates a tenant id.
    Hello { tenant: String },
    /// Handshake accepted.
    HelloAck,
    /// One SQL request. `deadline_ms = 0` means no client deadline; a
    /// non-zero value rides into the engine's governor and tightens
    /// (never loosens) the configured deadline. `id` correlates the
    /// response frame.
    Query {
        id: u64,
        deadline_ms: u64,
        sql: String,
    },
    /// Successful result for `Query { id, .. }`.
    Rows {
        id: u64,
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
        rows_affected: u64,
    },
    /// Typed failure for `Query { id, .. }` (or `id = 0` for
    /// connection-level refusals such as admission sheds during
    /// handshake).
    Err { id: u64, error: Error },
    /// Client-initiated graceful server shutdown.
    Shutdown,
}

/// Validate a tenant id: nonempty, at most [`MAX_TENANT_LEN`] bytes, and
/// drawn from `[A-Za-z0-9_-]` (no lookalikes, no control bytes in logs).
pub fn validate_tenant(tenant: &str) -> Result<()> {
    if tenant.is_empty() {
        return Err(Error::protocol("empty tenant id"));
    }
    if tenant.len() > MAX_TENANT_LEN {
        return Err(Error::protocol(format!(
            "tenant id exceeds {MAX_TENANT_LEN} bytes"
        )));
    }
    if !tenant
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
    {
        return Err(Error::protocol(
            "tenant id must match [A-Za-z0-9_-]+".to_string(),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32); // cast-ok: frame size is capped at 16 MiB
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(VAL_NULL),
        Value::Integer(i) => {
            out.push(VAL_INTEGER);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Double(d) => {
            out.push(VAL_DOUBLE);
            out.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        Value::Boolean(b) => {
            out.push(VAL_BOOLEAN);
            out.push(*b as u8); // cast-ok: bool is exactly 0 or 1
        }
        Value::Text(s) => {
            out.push(VAL_TEXT);
            put_str(out, s);
        }
        // Paths serialize as their rendered string: the wire format is for
        // clients, and a client has no use for raw vertex/edge ids without
        // the topology they index into.
        Value::Path(_) => {
            out.push(VAL_TEXT);
            put_str(out, &v.to_string());
        }
    }
}

/// Encode an engine error for the wire. The typed payload keeps the
/// retryable-vs-fatal split machine-readable: `ResourceExhausted` carries
/// its kind/spent/limit, `Overloaded` carries `retry_after_ms`.
fn put_error(out: &mut Vec<u8>, e: &Error) {
    match e {
        Error::Parse(m) => {
            out.push(1);
            put_str(out, m);
        }
        Error::Analysis(m) => {
            out.push(2);
            put_str(out, m);
        }
        Error::Plan(m) => {
            out.push(3);
            put_str(out, m);
        }
        Error::Execution(m) => {
            out.push(4);
            put_str(out, m);
        }
        Error::Catalog(m) => {
            out.push(5);
            put_str(out, m);
        }
        Error::Constraint(m) => {
            out.push(6);
            put_str(out, m);
        }
        Error::Transaction(m) => {
            out.push(7);
            put_str(out, m);
        }
        Error::ResourceExhausted { kind, spent, limit } => {
            out.push(8);
            out.push(match kind {
                ResourceKind::Rows => 0,
                ResourceKind::Bytes => 1,
                ResourceKind::Deadline => 2,
                ResourceKind::Cancelled => 3,
            });
            put_u64(out, *spent);
            put_u64(out, *limit);
        }
        Error::Overloaded { retry_after_ms } => {
            out.push(9);
            put_u64(out, *retry_after_ms);
        }
        Error::ShuttingDown => out.push(10),
        Error::Protocol(m) => {
            out.push(11);
            put_str(out, m);
        }
        Error::Unavailable(m) => {
            out.push(12);
            put_str(out, m);
        }
    }
}

/// Encode a frame (length prefix included).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut payload = Vec::new();
    match frame {
        Frame::Hello { tenant } => {
            payload.push(TAG_HELLO);
            put_str(&mut payload, tenant);
        }
        Frame::HelloAck => payload.push(TAG_HELLO_ACK),
        Frame::Query {
            id,
            deadline_ms,
            sql,
        } => {
            payload.push(TAG_QUERY);
            put_u64(&mut payload, *id);
            put_u64(&mut payload, *deadline_ms);
            put_str(&mut payload, sql);
        }
        Frame::Rows {
            id,
            columns,
            rows,
            rows_affected,
        } => {
            payload.push(TAG_ROWS);
            put_u64(&mut payload, *id);
            put_u64(&mut payload, *rows_affected);
            put_u32(&mut payload, columns.len() as u32); // cast-ok: capped by frame size
            for c in columns {
                put_str(&mut payload, c);
            }
            put_u32(&mut payload, rows.len() as u32); // cast-ok: capped by frame size
            for row in rows {
                put_u32(&mut payload, row.len() as u32); // cast-ok: capped by frame size
                for v in row {
                    put_value(&mut payload, v);
                }
            }
        }
        Frame::Err { id, error } => {
            payload.push(TAG_ERROR);
            put_u64(&mut payload, *id);
            put_error(&mut payload, error);
        }
        Frame::Shutdown => payload.push(TAG_SHUTDOWN),
    }
    let mut out = Vec::with_capacity(4 + payload.len());
    put_u32(&mut out, payload.len() as u32); // cast-ok: encoder never exceeds MAX_FRAME_BYTES
    out.extend_from_slice(&payload);
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked read cursor over one frame's payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if n > self.remaining() {
            return Err(Error::protocol(format!(
                "truncated frame: needed {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64) // cast-ok: two's-complement round-trip of encoder's i64 -> u64
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize; // cast-ok: u32 always fits usize here
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::protocol("string is not valid UTF-8"))
    }

    /// A forged element count cannot exceed what the payload can possibly
    /// hold: every element costs at least `min_elem_bytes` on the wire.
    fn checked_count(&self, count: u32, min_elem_bytes: usize) -> Result<usize> {
        let count = count as usize; // cast-ok: u32 always fits usize here
        if count.saturating_mul(min_elem_bytes) > self.remaining() {
            return Err(Error::protocol(format!(
                "element count {count} exceeds frame capacity ({} bytes remain)",
                self.remaining()
            )));
        }
        Ok(count)
    }

    fn done(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(Error::protocol(format!(
                "{} trailing bytes after frame body",
                self.remaining()
            )));
        }
        Ok(())
    }
}

fn get_value(c: &mut Cursor<'_>) -> Result<Value> {
    match c.u8()? {
        VAL_NULL => Ok(Value::Null),
        VAL_INTEGER => Ok(Value::Integer(c.i64()?)),
        VAL_DOUBLE => Ok(Value::Double(f64::from_bits(c.u64()?))),
        VAL_BOOLEAN => match c.u8()? {
            0 => Ok(Value::Boolean(false)),
            1 => Ok(Value::Boolean(true)),
            b => Err(Error::protocol(format!("invalid boolean byte {b:#x}"))),
        },
        VAL_TEXT => Ok(Value::text(c.string()?)),
        t => Err(Error::protocol(format!("unknown value tag {t:#x}"))),
    }
}

fn get_error(c: &mut Cursor<'_>) -> Result<Error> {
    Ok(match c.u8()? {
        1 => Error::Parse(c.string()?),
        2 => Error::Analysis(c.string()?),
        3 => Error::Plan(c.string()?),
        4 => Error::Execution(c.string()?),
        5 => Error::Catalog(c.string()?),
        6 => Error::Constraint(c.string()?),
        7 => Error::Transaction(c.string()?),
        8 => {
            let kind = match c.u8()? {
                0 => ResourceKind::Rows,
                1 => ResourceKind::Bytes,
                2 => ResourceKind::Deadline,
                3 => ResourceKind::Cancelled,
                k => return Err(Error::protocol(format!("unknown resource kind {k:#x}"))),
            };
            let spent = c.u64()?;
            let limit = c.u64()?;
            Error::ResourceExhausted { kind, spent, limit }
        }
        9 => Error::Overloaded {
            retry_after_ms: c.u64()?,
        },
        10 => Error::ShuttingDown,
        11 => Error::Protocol(c.string()?),
        12 => Error::Unavailable(c.string()?),
        t => return Err(Error::protocol(format!("unknown error tag {t:#x}"))),
    })
}

/// Decode one payload (the bytes after the length prefix) into a frame.
pub fn decode_payload(payload: &[u8]) -> Result<Frame> {
    let mut c = Cursor::new(payload);
    let frame = match c.u8()? {
        TAG_HELLO => {
            let tenant = c.string()?;
            validate_tenant(&tenant)?;
            Frame::Hello { tenant }
        }
        TAG_HELLO_ACK => Frame::HelloAck,
        TAG_QUERY => Frame::Query {
            id: c.u64()?,
            deadline_ms: c.u64()?,
            sql: c.string()?,
        },
        TAG_ROWS => {
            let id = c.u64()?;
            let rows_affected = c.u64()?;
            let raw_cols = c.u32()?;
            let ncols = c.checked_count(raw_cols, 4)?;
            let mut columns = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                columns.push(c.string()?);
            }
            let raw_rows = c.u32()?;
            let nrows = c.checked_count(raw_rows, 4)?;
            let mut rows = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                let raw_vals = c.u32()?;
                let nvals = c.checked_count(raw_vals, 1)?;
                let mut row = Vec::with_capacity(nvals);
                for _ in 0..nvals {
                    row.push(get_value(&mut c)?);
                }
                rows.push(row);
            }
            Frame::Rows {
                id,
                columns,
                rows,
                rows_affected,
            }
        }
        TAG_ERROR => Frame::Err {
            id: c.u64()?,
            error: get_error(&mut c)?,
        },
        TAG_SHUTDOWN => Frame::Shutdown,
        t => return Err(Error::protocol(format!("unknown frame tag {t:#x}"))),
    };
    c.done()?;
    Ok(frame)
}

// ---------------------------------------------------------------------------
// Blocking stream I/O
// ---------------------------------------------------------------------------

/// Read one frame from a blocking stream. `Ok(None)` is a clean EOF at a
/// frame boundary (the peer hung up between requests); EOF *inside* a
/// frame is a torn frame — `Error::Unavailable`, since the bytes that did
/// arrive say nothing about what the peer meant.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>> {
    let mut len_buf = [0u8; 4];
    match read_exact_or_eof(r, &mut len_buf)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Torn => {
            return Err(Error::unavailable("connection closed inside frame header"))
        }
        ReadOutcome::Full => {}
    }
    let len = u32::from_le_bytes(len_buf) as usize; // cast-ok: u32 always fits usize here
    if len == 0 {
        return Err(Error::protocol("zero-length frame"));
    }
    if len > MAX_FRAME_BYTES {
        return Err(Error::protocol(format!(
            "frame length {len} exceeds cap {MAX_FRAME_BYTES}"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| Error::unavailable(format!("connection closed inside frame body: {e}")))?;
    decode_payload(&payload).map(Some)
}

enum ReadOutcome {
    Full,
    Eof,
    Torn,
}

/// Fill `buf`, distinguishing clean EOF before the first byte from EOF in
/// the middle.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Torn
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(Error::unavailable(format!("read failed: {e}"))),
        }
    }
    Ok(ReadOutcome::Full)
}

/// Write one frame to a blocking stream.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<()> {
    let bytes = encode_frame(frame);
    w.write_all(&bytes)
        .and_then(|_| w.flush())
        .map_err(|e| Error::unavailable(format!("write failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: &Frame) {
        let bytes = encode_frame(f);
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize; // cast-ok: test
        assert_eq!(len, bytes.len() - 4);
        let decoded = decode_payload(&bytes[4..]).unwrap();
        assert_eq!(&decoded, f);
    }

    #[test]
    fn frame_roundtrips() {
        roundtrip(&Frame::Hello {
            tenant: "tenant-1".into(),
        });
        roundtrip(&Frame::HelloAck);
        roundtrip(&Frame::Query {
            id: 7,
            deadline_ms: 250,
            sql: "SELECT 1".into(),
        });
        roundtrip(&Frame::Rows {
            id: 7,
            columns: vec!["a".into(), "b".into()],
            rows: vec![
                vec![Value::Integer(1), Value::text("x")],
                vec![Value::Null, Value::Boolean(true)],
                vec![Value::Double(2.5), Value::Integer(-9)],
            ],
            rows_affected: 0,
        });
        roundtrip(&Frame::Err {
            id: 9,
            error: Error::resource(ResourceKind::Deadline, 120, 100),
        });
        roundtrip(&Frame::Err {
            id: 0,
            error: Error::overloaded(25),
        });
        roundtrip(&Frame::Shutdown);
    }

    #[test]
    fn tenant_validation() {
        assert!(validate_tenant("t1").is_ok());
        assert!(validate_tenant("Tenant_A-2").is_ok());
        assert!(validate_tenant("").is_err());
        assert!(validate_tenant("has space").is_err());
        assert!(validate_tenant("sneaky\n").is_err());
        assert!(validate_tenant(&"x".repeat(MAX_TENANT_LEN)).is_ok());
        assert!(validate_tenant(&"x".repeat(MAX_TENANT_LEN + 1)).is_err());
    }

    #[test]
    fn truncated_and_oversized_frames_are_typed_errors() {
        // Truncated payload: every prefix of a valid frame must fail with
        // Protocol, not panic.
        let full = encode_frame(&Frame::Query {
            id: 1,
            deadline_ms: 0,
            sql: "SELECT 1".into(),
        });
        for cut in 1..full.len() - 4 {
            let err = decode_payload(&full[4..4 + cut]).unwrap_err();
            assert!(matches!(err, Error::Protocol(_)), "cut={cut}: {err:?}");
        }
        // Oversized length prefix refuses before allocating.
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(u32::MAX).to_le_bytes());
        oversized.push(TAG_HELLO);
        let err = read_frame(&mut &oversized[..]).unwrap_err();
        assert!(matches!(err, Error::Protocol(_)), "{err:?}");
        // Forged row count larger than the frame can hold.
        let mut forged = vec![TAG_ROWS];
        forged.extend_from_slice(&7u64.to_le_bytes());
        forged.extend_from_slice(&0u64.to_le_bytes());
        forged.extend_from_slice(&0u32.to_le_bytes()); // 0 columns
        forged.extend_from_slice(&(1_000_000u32).to_le_bytes()); // forged rows
        let err = decode_payload(&forged).unwrap_err();
        assert!(matches!(err, Error::Protocol(_)), "{err:?}");
    }

    #[test]
    fn eof_positions_split_unavailable_from_clean() {
        // Clean EOF at a frame boundary.
        assert!(read_frame(&mut &[][..]).unwrap().is_none());
        // EOF inside the header.
        let err = read_frame(&mut &[1u8, 0][..]).unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)), "{err:?}");
        // EOF inside the body.
        let full = encode_frame(&Frame::Hello {
            tenant: "t1".into(),
        });
        let err = read_frame(&mut &full[..full.len() - 1]).unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)), "{err:?}");
    }

    #[test]
    fn garbage_tenant_ids_refused_at_decode() {
        let mut payload = vec![TAG_HELLO];
        put_str(&mut payload, "no spaces allowed");
        let err = decode_payload(&payload).unwrap_err();
        assert!(matches!(err, Error::Protocol(_)), "{err:?}");
        let mut payload = vec![TAG_HELLO];
        put_str(&mut payload, "");
        assert!(decode_payload(&payload).is_err());
    }
}
