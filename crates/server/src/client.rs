//! Minimal blocking client for the GRFusion wire protocol.
//!
//! One connection serves one tenant: [`Client::connect`] runs the
//! `Hello`/`HelloAck` handshake, then [`Client::query`] issues one request
//! at a time. Transport failures surface as retryable
//! [`Error::Unavailable`]; typed engine and admission errors come back
//! exactly as the server raised them, so a caller's retry loop can key on
//! [`Error::is_retryable`] alone.

use std::net::TcpStream;

use grfusion_common::{Error, Result, Value};

use crate::wire::{self, Frame};

/// A blocking, single-tenant protocol client.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

/// One successful query result.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
    pub rows_affected: u64,
}

impl Response {
    /// First value of the first row (scalar-query convenience).
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }
}

impl Client {
    /// Connect and authenticate `tenant`. Connection refusal and handshake
    /// EOF are `Unavailable` (retryable); a typed refusal from the server
    /// (bad tenant id, shedding) comes back as the server's error.
    pub fn connect(addr: impl std::net::ToSocketAddrs, tenant: &str) -> Result<Client> {
        let mut stream = TcpStream::connect(addr)
            .map_err(|e| Error::unavailable(format!("connect failed: {e}")))?;
        let _ = stream.set_nodelay(true);
        wire::write_frame(
            &mut stream,
            &Frame::Hello {
                tenant: tenant.to_string(),
            },
        )?;
        match wire::read_frame(&mut stream)? {
            Some(Frame::HelloAck) => Ok(Client { stream, next_id: 1 }),
            Some(Frame::Err { error, .. }) => Err(error),
            Some(_) => Err(Error::protocol("unexpected frame during handshake")),
            None => Err(Error::unavailable("connection closed during handshake")),
        }
    }

    /// Run one statement (or `;`-separated script) with no client deadline.
    pub fn query(&mut self, sql: &str) -> Result<Response> {
        self.query_with_deadline(sql, 0)
    }

    /// Run one statement under a client-side deadline (milliseconds;
    /// `0` = none). The deadline rides the frame header into the engine's
    /// governor, where it can only tighten the configured deadline.
    pub fn query_with_deadline(&mut self, sql: &str, deadline_ms: u64) -> Result<Response> {
        let id = self.next_id;
        self.next_id += 1;
        wire::write_frame(
            &mut self.stream,
            &Frame::Query {
                id,
                deadline_ms,
                sql: sql.to_string(),
            },
        )?;
        match wire::read_frame(&mut self.stream)? {
            Some(Frame::Rows {
                id: rid,
                columns,
                rows,
                rows_affected,
            }) => {
                if rid != id {
                    return Err(Error::protocol(format!(
                        "response id {rid} does not match request id {id}"
                    )));
                }
                Ok(Response {
                    columns,
                    rows,
                    rows_affected,
                })
            }
            Some(Frame::Err { error, .. }) => Err(error),
            Some(_) => Err(Error::protocol("unexpected response frame")),
            None => Err(Error::unavailable("connection closed awaiting response")),
        }
    }

    /// Ask the server to begin a graceful drain. The server closes the
    /// connection on receipt; the request itself cannot fail once written.
    pub fn shutdown_server(mut self) -> Result<()> {
        wire::write_frame(&mut self.stream, &Frame::Shutdown)
    }
}
