//! `grfusion-serve`: stand-alone GRFusion server binary.
//!
//! Serves one in-memory database over the length-prefixed binary protocol
//! with per-tenant admission control. Engine knobs come from the
//! environment (`GRFUSION_WORKERS`, `GRFUSION_BATCH`, ...) under *strict*
//! validation — a malformed value is a startup error with the variable
//! name and offending value, never a silent fallback. SIGTERM/SIGINT and
//! a client `Shutdown` frame both trigger the graceful drain.
//!
//! ```text
//! grfusion-serve [--addr HOST:PORT] [--workers N] [--max-concurrent N]
//!                [--max-queued-bytes N] [--global-in-flight N]
//!                [--drain-ms N] [--init FILE]
//! ```

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use grfusion::{Database, EngineConfig};
use grfusion_server::{Server, ServerConfig, TenantQuota};

/// Set by the SIGTERM/SIGINT handler; the main loop polls it.
static STOP: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::STOP;
    use std::sync::atomic::Ordering;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single atomic store.
        STOP.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal as *const () as usize); // cast-ok: handler address for signal(2)
            signal(SIGTERM, on_signal as *const () as usize); // cast-ok: handler address for signal(2)
        }
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
}

const USAGE: &str = "grfusion-serve: serve an in-memory GRFusion database over TCP

USAGE:
    grfusion-serve [OPTIONS]

OPTIONS:
    --addr HOST:PORT        bind address (default 127.0.0.1:7432; port 0 = ephemeral)
    --workers N             worker pool size (default 2)
    --max-concurrent N      per-tenant concurrent-query quota (default 4)
    --max-queued-bytes N    per-tenant queued-SQL-bytes quota (default 1048576)
    --global-in-flight N    global in-flight cap (default workers*4)
    --drain-ms N            graceful-drain deadline in ms (default 2000)
    --init FILE             execute a SQL script before accepting connections
    --help                  print this help

Engine knobs (GRFUSION_WORKERS, GRFUSION_BATCH, GRFUSION_CSR_RESEAL,
GRFUSION_DEADLINE_MS, GRFUSION_MEMORY_BUDGET, GRFUSION_EPOCHS,
GRFUSION_FAULTS) are read from the environment under strict validation.";

struct Args {
    cfg: ServerConfig,
    init: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7432".to_string(),
        ..ServerConfig::default()
    };
    let mut init = None;
    let mut quota = TenantQuota::default();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            argv.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--addr" => cfg.addr = value("--addr")?,
            "--workers" => {
                cfg.workers = parse_num(&value("--workers")?, "--workers")?;
            }
            "--max-concurrent" => {
                quota.max_concurrent = parse_num(&value("--max-concurrent")?, "--max-concurrent")?;
            }
            "--max-queued-bytes" => {
                quota.max_queued_bytes =
                    parse_num(&value("--max-queued-bytes")?, "--max-queued-bytes")?;
            }
            "--global-in-flight" => {
                cfg.global_in_flight =
                    parse_num(&value("--global-in-flight")?, "--global-in-flight")?;
            }
            "--drain-ms" => {
                cfg.drain_deadline_ms = parse_num(&value("--drain-ms")?, "--drain-ms")?;
            }
            "--init" => init = Some(value("--init")?),
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
        i += 1;
    }
    cfg.quota = quota;
    Ok(Args { cfg, init })
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("{flag}: invalid value `{s}`"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    // Strict engine-env validation: refuse to start on a malformed knob
    // instead of serving traffic with silently-degraded configuration.
    let engine_cfg = match EngineConfig::from_env_checked() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("grfusion-serve: {e}");
            return ExitCode::from(2);
        }
    };
    let db = Arc::new(Database::with_config(engine_cfg));

    if let Some(path) = &args.init {
        let script = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("grfusion-serve: --init {path}: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = db.execute_script(&script) {
            eprintln!("grfusion-serve: --init {path}: {e}");
            return ExitCode::from(2);
        }
    }

    sig::install();
    let handle = match Server::start(db, args.cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("grfusion-serve: {e}");
            return ExitCode::from(1);
        }
    };
    println!("grfusion-serve: listening on {}", handle.addr());

    while !STOP.load(Ordering::SeqCst) && !handle.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("grfusion-serve: draining");
    let stats = handle.stats();
    handle.shutdown();
    for t in stats {
        println!(
            "grfusion-serve: tenant {} admitted={} shed={}",
            t.tenant, t.admitted, t.shed
        );
    }
    ExitCode::SUCCESS
}
