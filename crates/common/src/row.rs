//! Rows: the unit of data flow through query pipelines.

use crate::value::Value;

/// A row is a flat vector of values. Both relational operators and graph
/// operators produce and consume `Row`s — this shared currency is how
/// GRFusion's cross-data-model pipelines avoid the relational/graph
/// impedance mismatch (EDBT 2018 §5.3).
pub type Row = Vec<Value>;

/// Render a row as a tab-separated line (used by result sets and examples).
pub fn format_row(row: &Row) -> String {
    let mut out = String::new();
    for (i, v) in row.iter().enumerate() {
        if i > 0 {
            out.push('\t');
        }
        out.push_str(&v.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_tab_separated() {
        let row: Row = vec![Value::Integer(1), Value::text("a"), Value::Null];
        assert_eq!(format_row(&row), "1\ta\tNULL");
    }

    #[test]
    fn empty_row_formats_empty() {
        assert_eq!(format_row(&vec![]), "");
    }
}
