//! SQL values and their comparison / arithmetic semantics.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::path::PathData;

/// A single SQL value.
///
/// `Text` uses `Arc<str>` so that projecting a string column is a pointer
/// copy — rows flow through many operators in a volcano pipeline and string
/// cloning would dominate otherwise. `Path` carries the graph-operator
/// payload (see [`PathData`]); it is what lets a path travel through joins,
/// filters, and projections as an ordinary column ("Path extends Tuple",
/// EDBT 2018 §5.2).
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Integer(i64),
    Double(f64),
    Boolean(bool),
    Text(Arc<str>),
    Path(Arc<PathData>),
}

impl Value {
    /// SQL NULL check.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Build a text value.
    pub fn text(s: impl AsRef<str>) -> Value {
        Value::Text(Arc::from(s.as_ref()))
    }

    /// Coerce to `i64`, if the value is numeric. In-range doubles truncate
    /// toward zero; NaN, infinities, and doubles outside `i64`'s range are
    /// rejected instead of silently saturating (`as` would pin
    /// `9223372036854775808.0` to `i64::MAX`). The exclusive upper bound is
    /// 2^63 because `i64::MAX as f64` rounds *up* to 2^63, which is itself
    /// one past the largest representable i64; the lower bound `-(2^63)` is
    /// exact in f64 and valid.
    pub fn as_integer(&self) -> Result<i64> {
        const I64_MIN_F: f64 = -9_223_372_036_854_775_808.0; // -(2^63), exact
        const I64_BOUND_F: f64 = 9_223_372_036_854_775_808.0; // 2^63, exclusive
        match self {
            Value::Integer(i) => Ok(*i),
            Value::Double(d) if d.is_finite() && *d >= I64_MIN_F && *d < I64_BOUND_F => {
                Ok(*d as i64) // cast-ok: guarded to [-(2^63), 2^63) by the match arm
            }
            Value::Double(d) => Err(Error::execution(format!(
                "DOUBLE {d} is outside INTEGER range"
            ))),
            Value::Boolean(b) => Ok(*b as i64), // cast-ok: bool -> i64 is 0/1
            other => Err(Error::execution(format!("cannot read {other} as INTEGER"))),
        }
    }

    /// Coerce to `f64`, if the value is numeric.
    pub fn as_double(&self) -> Result<f64> {
        match self {
            Value::Integer(i) => Ok(*i as f64), // cast-ok: SQL INTEGER->DOUBLE coercion; rounds above 2^53 by design
            Value::Double(d) => Ok(*d),
            other => Err(Error::execution(format!("cannot read {other} as DOUBLE"))),
        }
    }

    /// Coerce to `bool` (SQL booleans only; no implicit int→bool).
    pub fn as_boolean(&self) -> Result<bool> {
        match self {
            Value::Boolean(b) => Ok(*b),
            other => Err(Error::execution(format!("cannot read {other} as BOOLEAN"))),
        }
    }

    /// Borrow the text payload.
    pub fn as_text(&self) -> Result<&str> {
        match self {
            Value::Text(s) => Ok(s),
            other => Err(Error::execution(format!("cannot read {other} as VARCHAR"))),
        }
    }

    /// Borrow the path payload.
    pub fn as_path(&self) -> Result<&Arc<PathData>> {
        match self {
            Value::Path(p) => Ok(p),
            other => Err(Error::execution(format!("cannot read {other} as PATH"))),
        }
    }

    /// Truthiness under SQL three-valued logic collapsed to two values:
    /// NULL counts as false (predicates reject rows they cannot prove).
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Boolean(true))
    }

    /// SQL comparison. Returns `None` when either side is NULL or the types
    /// are incomparable — predicate evaluation maps `None` to "not
    /// satisfied", mirroring SQL's UNKNOWN.
    ///
    /// Integers and doubles compare numerically across types. Doubles use
    /// total ordering with NaN greater than everything (so sorting is
    /// well-defined) but NaN != NaN for equality purposes is *not*
    /// preserved — an engine-internal simplification documented here.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Integer(a), Integer(b)) => Some(a.cmp(b)),
            (Integer(a), Double(b)) => Some(total_f64(*a as f64, *b)), // cast-ok: SQL mixed-type compare coerces to DOUBLE
            (Double(a), Integer(b)) => Some(total_f64(*a, *b as f64)), // cast-ok: SQL mixed-type compare coerces to DOUBLE
            (Double(a), Double(b)) => Some(total_f64(*a, *b)),
            (Boolean(a), Boolean(b)) => Some(a.cmp(b)),
            (Text(a), Text(b)) => Some(a.as_ref().cmp(b.as_ref())),
            _ => None,
        }
    }

    /// SQL equality: `None` (UNKNOWN) when either side is NULL.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Binary arithmetic with numeric type promotion (INT op INT → INT,
    /// anything involving DOUBLE → DOUBLE). NULL propagates.
    pub fn arith(&self, op: ArithOp, other: &Value) -> Result<Value> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => Ok(Null),
            (Integer(a), Integer(b)) => op.apply_i64(*a, *b),
            _ => {
                let a = self.as_double()?;
                let b = other.as_double()?;
                op.apply_f64(a, b)
            }
        }
    }

    /// Hashable key form for hash joins / group-by. Distinct from `Eq`
    /// because doubles are keyed by bit pattern and NULL gets its own key.
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Integer(i) => GroupKey::Integer(*i),
            Value::Double(d) => {
                // Normalize so 1.0 groups with integer-valued doubles and
                // -0.0 groups with 0.0.
                let d = if *d == 0.0 { 0.0 } else { *d };
                GroupKey::Double(d.to_bits())
            }
            Value::Boolean(b) => GroupKey::Boolean(*b),
            Value::Text(s) => GroupKey::Text(s.clone()),
            Value::Path(p) => GroupKey::Path(p.edges.clone()),
        }
    }
}

/// Total order for f64 used internally by comparisons and sorts.
fn total_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or_else(|| {
        // NaN sorts greater than any number; two NaNs are equal.
        match (a.is_nan(), b.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => unreachable!(),
        }
    })
}

/// PartialEq for Value follows `sql_eq` where defined, and falls back to
/// structural identity for NULL (NULL == NULL here, unlike SQL) so that
/// `Value` can be used in tests and collections. Predicate evaluation must
/// go through [`Value::sql_eq`].
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Path(a), Value::Path(b)) => a == b,
            _ => self.sql_eq(other).unwrap_or(false),
        }
    }
}

/// Arithmetic operators supported by the expression evaluator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl ArithOp {
    fn apply_i64(self, a: i64, b: i64) -> Result<Value> {
        let overflow = || Error::execution("integer overflow");
        Ok(match self {
            ArithOp::Add => Value::Integer(a.checked_add(b).ok_or_else(overflow)?),
            ArithOp::Sub => Value::Integer(a.checked_sub(b).ok_or_else(overflow)?),
            ArithOp::Mul => Value::Integer(a.checked_mul(b).ok_or_else(overflow)?),
            ArithOp::Div => {
                if b == 0 {
                    return Err(Error::execution("division by zero"));
                }
                Value::Integer(a / b)
            }
            ArithOp::Mod => {
                if b == 0 {
                    return Err(Error::execution("division by zero"));
                }
                Value::Integer(a % b)
            }
        })
    }

    fn apply_f64(self, a: f64, b: f64) -> Result<Value> {
        Ok(match self {
            ArithOp::Add => Value::Double(a + b),
            ArithOp::Sub => Value::Double(a - b),
            ArithOp::Mul => Value::Double(a * b),
            ArithOp::Div => {
                if b == 0.0 {
                    return Err(Error::execution("division by zero"));
                }
                Value::Double(a / b)
            }
            ArithOp::Mod => {
                if b == 0.0 {
                    return Err(Error::execution("division by zero"));
                }
                Value::Double(a % b)
            }
        })
    }
}

/// Hash/group key form of a value (see [`Value::group_key`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    Null,
    Integer(i64),
    Double(u64),
    Boolean(bool),
    Text(Arc<str>),
    Path(Vec<i64>),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Boolean(b) => write!(f, "{}", if *b { "true" } else { "false" }),
            Value::Text(s) => write!(f, "{s}"),
            Value::Path(p) => write!(f, "{p}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Integer(v as i64) // cast-ok: i32 -> i64 widening is lossless
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression (pre-fix: `d <= i64::MAX as f64` admitted 2^63, which
    /// `as i64` saturated onto `i64::MAX`): DOUBLE→INTEGER reads accept
    /// exactly the finite doubles inside [-(2^63), 2^63) and reject the
    /// rest instead of wrapping or saturating.
    #[test]
    fn as_integer_double_boundaries() {
        const P53: f64 = 9_007_199_254_740_992.0; // 2^53: f64 still exact
        const P63: f64 = 9_223_372_036_854_775_808.0; // 2^63 = i64::MAX as f64
        assert_eq!(Value::Double(P53).as_integer().unwrap(), 1 << 53);
        assert_eq!(Value::Double(-P53).as_integer().unwrap(), -(1 << 53));
        // -(2^63) is exactly i64::MIN; 2^63 is one past i64::MAX.
        assert_eq!(Value::Double(-P63).as_integer().unwrap(), i64::MIN);
        assert!(Value::Double(P63).as_integer().is_err());
        // Largest double strictly below 2^63 is still in range.
        assert_eq!(
            Value::Double(9_223_372_036_854_774_784.0).as_integer().unwrap(),
            9_223_372_036_854_774_784
        );
        // Next double below -(2^63) is out of range, as are non-finites.
        assert!(Value::Double(-9_223_372_036_854_777_856.0).as_integer().is_err());
        assert!(Value::Double(f64::NAN).as_integer().is_err());
        assert!(Value::Double(f64::INFINITY).as_integer().is_err());
        assert!(Value::Double(f64::NEG_INFINITY).as_integer().is_err());
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Integer(1)), None);
        assert_eq!(Value::Integer(1).sql_cmp(&Value::Null), None);
        assert!(!Value::Null.is_truthy());
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(
            Value::Integer(2).sql_cmp(&Value::Double(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Double(1.5).sql_cmp(&Value::Integer(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn text_comparison_is_lexicographic() {
        assert_eq!(
            Value::text("abc").sql_cmp(&Value::text("abd")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incomparable_types_are_unknown() {
        assert_eq!(Value::text("1").sql_cmp(&Value::Integer(1)), None);
        assert_eq!(Value::Boolean(true).sql_cmp(&Value::Integer(1)), None);
    }

    #[test]
    fn arithmetic_promotion() {
        let v = Value::Integer(3)
            .arith(ArithOp::Add, &Value::Integer(4))
            .unwrap();
        assert_eq!(v, Value::Integer(7));
        let v = Value::Integer(3)
            .arith(ArithOp::Mul, &Value::Double(0.5))
            .unwrap();
        assert_eq!(v, Value::Double(1.5));
    }

    #[test]
    fn arithmetic_null_propagates() {
        let v = Value::Null.arith(ArithOp::Add, &Value::Integer(1)).unwrap();
        assert!(v.is_null());
    }

    #[test]
    fn division_by_zero_errors() {
        assert!(Value::Integer(1)
            .arith(ArithOp::Div, &Value::Integer(0))
            .is_err());
        assert!(Value::Double(1.0)
            .arith(ArithOp::Mod, &Value::Double(0.0))
            .is_err());
    }

    #[test]
    fn integer_overflow_detected() {
        assert!(Value::Integer(i64::MAX)
            .arith(ArithOp::Add, &Value::Integer(1))
            .is_err());
    }

    #[test]
    fn group_key_unifies_zero_signs() {
        assert_eq!(Value::Double(0.0).group_key(), Value::Double(-0.0).group_key());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Integer(-5).to_string(), "-5");
        assert_eq!(Value::text("hi").to_string(), "hi");
        assert_eq!(Value::Boolean(true).to_string(), "true");
    }

    #[test]
    fn nan_total_order_for_sorting() {
        assert_eq!(
            Value::Double(f64::NAN).sql_cmp(&Value::Double(1.0)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Double(f64::NAN).sql_cmp(&Value::Double(f64::NAN)),
            Some(Ordering::Equal)
        );
    }
}
