//! The path payload attached to rows produced by `PathScan`.

use std::fmt;

use crate::ids::{EdgeId, VertexId};

/// A simple path through a graph view.
///
/// `PathData` is the engine-internal form of the paper's `Path` data type
/// (EDBT 2018 §5.2): an ordered list of edges plus the vertex sequence they
/// visit. It deliberately stores only *identifiers* — attribute access
/// (`PS.Edges[0..*].StartDate`, path aggregates, ...) dereferences the graph
/// view's tuple pointers at evaluation time, so a path costs
/// `O(length)` ids no matter how wide the vertex/edge tuples are.
#[derive(Debug, Clone, PartialEq)]
pub struct PathData {
    /// Name of the graph view the path was traversed from.
    pub graph_view: String,
    /// Vertex ids in visit order; `vertexes.len() == edges.len() + 1`.
    pub vertexes: Vec<VertexId>,
    /// Edge ids in traversal order.
    pub edges: Vec<EdgeId>,
    /// Accumulated cost when produced by `SPScan` (sum of the hinted cost
    /// attribute); `0.0` for DFS/BFS paths.
    pub cost: f64,
}

impl PathData {
    /// A zero-length path anchored at `start` (used as traversal seed).
    pub fn seed(graph_view: impl Into<String>, start: VertexId) -> Self {
        PathData {
            graph_view: graph_view.into(),
            vertexes: vec![start],
            edges: Vec::new(),
            cost: 0.0,
        }
    }

    /// Number of edges in the path (`PS.Length`).
    #[inline]
    pub fn length(&self) -> usize {
        self.edges.len()
    }

    /// `PS.StartVertex` id.
    #[inline]
    pub fn start_vertex(&self) -> VertexId {
        self.vertexes[0]
    }

    /// `PS.EndVertex` id.
    #[inline]
    pub fn end_vertex(&self) -> VertexId {
        *self.vertexes.last().expect("path has at least one vertex")
    }

    /// Whether `v` already appears on the path (simple-path check).
    #[inline]
    pub fn visits(&self, v: VertexId) -> bool {
        self.vertexes.contains(&v)
    }

    /// Extend by one hop, returning the child path.
    pub fn extend(&self, edge: EdgeId, to: VertexId, edge_cost: f64) -> PathData {
        let mut vertexes = Vec::with_capacity(self.vertexes.len() + 1);
        vertexes.extend_from_slice(&self.vertexes);
        vertexes.push(to);
        let mut edges = Vec::with_capacity(self.edges.len() + 1);
        edges.extend_from_slice(&self.edges);
        edges.push(edge);
        PathData {
            graph_view: self.graph_view.clone(),
            vertexes,
            edges,
            cost: self.cost + edge_cost,
        }
    }

    /// `PS.PathString`: human-readable vertex chain, e.g. `1->5->9`.
    pub fn path_string(&self) -> String {
        let mut s = String::new();
        for (i, v) in self.vertexes.iter().enumerate() {
            if i > 0 {
                s.push_str("->");
            }
            s.push_str(&v.to_string());
        }
        s
    }
}

impl fmt::Display for PathData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.path_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_has_length_zero() {
        let p = PathData::seed("g", 7);
        assert_eq!(p.length(), 0);
        assert_eq!(p.start_vertex(), 7);
        assert_eq!(p.end_vertex(), 7);
        assert_eq!(p.path_string(), "7");
    }

    #[test]
    fn extend_builds_simple_paths() {
        let p = PathData::seed("g", 1).extend(100, 2, 1.5).extend(101, 3, 2.5);
        assert_eq!(p.length(), 2);
        assert_eq!(p.start_vertex(), 1);
        assert_eq!(p.end_vertex(), 3);
        assert_eq!(p.edges, vec![100, 101]);
        assert!((p.cost - 4.0).abs() < 1e-12);
        assert!(p.visits(2));
        assert!(!p.visits(9));
        assert_eq!(p.path_string(), "1->2->3");
    }

    #[test]
    fn extend_does_not_mutate_parent() {
        let p = PathData::seed("g", 1);
        let _c = p.extend(1, 2, 0.0);
        assert_eq!(p.length(), 0);
    }
}
