//! Shared primitives for the GRFusion reproduction.
//!
//! This crate defines the vocabulary that every other crate in the workspace
//! speaks: SQL [`Value`]s and their comparison/arithmetic semantics,
//! [`DataType`]s, relational [`Schema`]s, [`Row`]s, stable [`RowId`]s into
//! the row store, the [`PathData`] payload that graph operators attach to
//! result rows, and the workspace-wide [`Error`] type.
//!
//! GRFusion's central trick (EDBT 2018, §5.2) is that vertexes, edges, and
//! paths are *extended tuples*: a graph operator emits ordinary rows whose
//! schema extends the entity's relational schema, so relational operators
//! can consume graph-operator output without conversion. Keeping `PathData`
//! here (rather than in the graph crate) lets a plain [`Value`] carry a path
//! through a relational pipeline.

pub mod error;
pub mod ids;
pub mod path;
pub mod row;
pub mod schema;
pub mod value;

pub use error::{Error, ResourceKind, Result};
pub use ids::{EdgeId, RowId, VertexId};
pub use path::PathData;
pub use row::Row;
pub use schema::{Column, DataType, Schema};
pub use value::Value;
