//! Relational schemas.

use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::value::Value;

/// SQL data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Integer,
    Double,
    Boolean,
    Varchar,
    /// The cross-model path type (EDBT 2018 §5.2). Only graph operators
    /// produce it; relational operators pass it through.
    Path,
}

impl DataType {
    /// Whether `value` is storable in a column of this type (NULL always is).
    pub fn admits(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (DataType::Integer, Value::Integer(_))
                | (DataType::Double, Value::Double(_))
                | (DataType::Double, Value::Integer(_))
                | (DataType::Boolean, Value::Boolean(_))
                | (DataType::Varchar, Value::Text(_))
                | (DataType::Path, Value::Path(_))
        )
    }

    /// Coerce `value` for storage in this type (int→double widening only).
    pub fn coerce(self, value: Value) -> Result<Value> {
        match (self, &value) {
            (DataType::Double, Value::Integer(i)) => Ok(Value::Double(*i as f64)),
            _ if self.admits(&value) => Ok(value),
            _ => Err(Error::execution(format!(
                "value {value} is not assignable to {self}"
            ))),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Integer => "INTEGER",
            DataType::Double => "DOUBLE",
            DataType::Boolean => "BOOLEAN",
            DataType::Varchar => "VARCHAR",
            DataType::Path => "PATH",
        };
        f.write_str(s)
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub data_type: DataType,
}

impl Column {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered list of columns. Shared via `Arc` so operators can hand
/// schemas around without copying.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema {
            columns: pairs
                .iter()
                .map(|(n, t)| Column::new(*n, *t))
                .collect(),
        }
    }

    pub fn shared(self) -> Arc<Schema> {
        Arc::new(self)
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Case-insensitive column lookup (SQL identifiers are case-insensitive
    /// in this engine; they are normalized to lowercase at parse time but
    /// user-facing APIs may pass any case).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Lookup that raises an analysis error on a miss.
    pub fn resolve(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| Error::analysis(format!("unknown column `{name}`")))
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Concatenate two schemas (for join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Append a column, returning its index.
    pub fn push(&mut self, column: Column) -> usize {
        self.columns.push(column);
        self.columns.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::from_pairs(&[
            ("id", DataType::Integer),
            ("name", DataType::Varchar),
            ("score", DataType::Double),
        ])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("ID"), Some(0));
        assert_eq!(s.index_of("Name"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert!(s.resolve("missing").is_err());
    }

    #[test]
    fn join_concatenates() {
        let s = sample();
        let t = Schema::from_pairs(&[("x", DataType::Boolean)]);
        let j = s.join(&t);
        assert_eq!(j.len(), 4);
        assert_eq!(j.column(3).name, "x");
    }

    #[test]
    fn admits_and_coerce() {
        assert!(DataType::Integer.admits(&Value::Integer(1)));
        assert!(DataType::Integer.admits(&Value::Null));
        assert!(!DataType::Integer.admits(&Value::text("x")));
        // int widens to double
        assert_eq!(
            DataType::Double.coerce(Value::Integer(2)).unwrap(),
            Value::Double(2.0)
        );
        assert!(DataType::Boolean.coerce(Value::Integer(1)).is_err());
    }
}
