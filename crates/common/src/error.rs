//! Workspace-wide error type.
//!
//! A single error enum keeps the `Result` plumbing between the SQL layer,
//! the storage layer, the graph layer, and the executor uniform. Variants
//! are grouped by the layer that raises them; all carry human-readable
//! context because the public API surfaces them directly to callers.

use std::fmt;

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// The error type shared by every GRFusion crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexer/parser failure with position information.
    Parse(String),
    /// Name resolution / semantic analysis failure (unknown table, column,
    /// graph view, ambiguous reference, arity mismatch, ...).
    Analysis(String),
    /// Planner or optimizer failure (unsupported construct, contradictory
    /// path-length constraints, ...).
    Plan(String),
    /// Runtime failure inside the executor (type mismatch discovered at
    /// evaluation time, division by zero, ...).
    Execution(String),
    /// Catalog violation: duplicate object, missing object.
    Catalog(String),
    /// Storage-level violation: unique constraint, referential integrity,
    /// dangling row id.
    Constraint(String),
    /// Transaction handling misuse (nested begin, commit without begin, ...).
    Transaction(String),
    /// A resource budget was exceeded: the row budget, the memory
    /// accountant, the wall-clock deadline, or an external cancellation.
    /// The benchmark harness uses this to reproduce the paper's "SQLGraph
    /// exceeds temp-memory at depth > 4 on Twitter" DNF rows (EDBT 2018
    /// §7.2); the resource governor raises it for deadline/memory/cancel
    /// aborts. `spent`/`limit` are in the `kind`'s unit (rows, bytes, or
    /// milliseconds; a cancellation has no limit and reports `limit: 0`).
    ResourceExhausted {
        kind: ResourceKind,
        spent: u64,
        limit: u64,
    },
    /// The server shed this request before executing it: a per-tenant
    /// quota or the global worker pool is saturated. Retryable by
    /// contract — the client should back off at least `retry_after_ms`
    /// before resubmitting. Shedding at admission (instead of queueing
    /// unboundedly) is what keeps server memory flat under overload.
    Overloaded { retry_after_ms: u64 },
    /// The server is draining for shutdown and refuses new work. The
    /// in-flight queries it already admitted still finish (until the
    /// drain deadline); retry against another server or later.
    ShuttingDown,
    /// The peer violated the wire protocol (torn/truncated frame,
    /// oversized length prefix, garbage tenant id, unknown frame type).
    /// Fatal: retrying the same bytes cannot succeed.
    Protocol(String),
    /// The transport failed mid-conversation (connection refused/reset,
    /// EOF inside a frame). The request's outcome is unknown; retryable
    /// over a fresh connection for idempotent work.
    Unavailable(String),
}

/// Which budget a [`Error::ResourceExhausted`] abort tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceKind {
    /// Intermediate-result row budget (`ExecLimits::max_intermediate_rows`).
    Rows,
    /// Memory accountant byte cap (path/sort/aggregation/join buffers).
    Bytes,
    /// Wall-clock query deadline, in milliseconds.
    Deadline,
    /// Cooperative cancellation through the query's cancel token.
    Cancelled,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResourceKind::Rows => "rows",
            ResourceKind::Bytes => "bytes",
            ResourceKind::Deadline => "deadline",
            ResourceKind::Cancelled => "cancelled",
        })
    }
}

impl Error {
    /// Shorthand constructors keep call sites terse.
    pub fn parse(msg: impl Into<String>) -> Self {
        Error::Parse(msg.into())
    }
    pub fn analysis(msg: impl Into<String>) -> Self {
        Error::Analysis(msg.into())
    }
    pub fn plan(msg: impl Into<String>) -> Self {
        Error::Plan(msg.into())
    }
    pub fn execution(msg: impl Into<String>) -> Self {
        Error::Execution(msg.into())
    }
    pub fn catalog(msg: impl Into<String>) -> Self {
        Error::Catalog(msg.into())
    }
    pub fn constraint(msg: impl Into<String>) -> Self {
        Error::Constraint(msg.into())
    }
    pub fn transaction(msg: impl Into<String>) -> Self {
        Error::Transaction(msg.into())
    }
    pub fn resource(kind: ResourceKind, spent: u64, limit: u64) -> Self {
        Error::ResourceExhausted { kind, spent, limit }
    }
    pub fn overloaded(retry_after_ms: u64) -> Self {
        Error::Overloaded { retry_after_ms }
    }
    pub fn protocol(msg: impl Into<String>) -> Self {
        Error::Protocol(msg.into())
    }
    pub fn unavailable(msg: impl Into<String>) -> Self {
        Error::Unavailable(msg.into())
    }

    /// The wire contract's retryable-vs-fatal split. Retryable errors are
    /// *about the server's current state*, not about the request: the same
    /// request can succeed later (after backoff) or elsewhere. Everything
    /// else — malformed SQL, constraint violations, exhausted per-query
    /// budgets, protocol violations — is deterministic for the request and
    /// retrying it verbatim is wasted load.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::Overloaded { .. } | Error::ShuttingDown | Error::Unavailable(_)
        )
    }

    /// Convert a worker-thread panic payload (as returned by
    /// `std::panic::catch_unwind` or `JoinHandle::join`) into a clean
    /// execution error, preserving the panic message when it is a string.
    /// Parallel graph operators use this so a bug in one morsel surfaces to
    /// the caller as a single `Err` instead of tearing down the process.
    pub fn from_panic(payload: Box<dyn std::any::Any + Send>) -> Self {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        Error::Execution(format!("worker thread panicked: {msg}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Analysis(m) => write!(f, "analysis error: {m}"),
            Error::Plan(m) => write!(f, "plan error: {m}"),
            Error::Execution(m) => write!(f, "execution error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Constraint(m) => write!(f, "constraint violation: {m}"),
            Error::Transaction(m) => write!(f, "transaction error: {m}"),
            Error::ResourceExhausted { kind, spent, limit } => match kind {
                ResourceKind::Deadline => write!(
                    f,
                    "resource exhausted: deadline of {limit}ms exceeded after {spent}ms"
                ),
                ResourceKind::Cancelled => {
                    write!(f, "resource exhausted: query cancelled after {spent}ms")
                }
                _ => write!(
                    f,
                    "resource exhausted: {kind} budget of {limit} exceeded (spent {spent})"
                ),
            },
            Error::Overloaded { retry_after_ms } => {
                write!(f, "overloaded: retry after {retry_after_ms}ms")
            }
            Error::ShuttingDown => f.write_str("shutting down: server is draining"),
            Error::Protocol(m) => write!(f, "protocol error: {m}"),
            Error::Unavailable(m) => write!(f, "unavailable: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = Error::parse("unexpected token `)` at 1:17");
        assert_eq!(e.to_string(), "parse error: unexpected token `)` at 1:17");
        let e = Error::resource(ResourceKind::Rows, 1001, 1000);
        assert_eq!(
            e.to_string(),
            "resource exhausted: rows budget of 1000 exceeded (spent 1001)"
        );
        let e = Error::resource(ResourceKind::Deadline, 250, 100);
        assert_eq!(
            e.to_string(),
            "resource exhausted: deadline of 100ms exceeded after 250ms"
        );
        let e = Error::resource(ResourceKind::Cancelled, 42, 0);
        assert!(e.to_string().contains("cancelled after 42ms"));
    }

    #[test]
    fn retryable_split_matches_wire_contract() {
        assert!(Error::overloaded(25).is_retryable());
        assert!(Error::ShuttingDown.is_retryable());
        assert!(Error::unavailable("connection reset").is_retryable());
        assert!(!Error::protocol("oversized frame").is_retryable());
        assert!(!Error::parse("x").is_retryable());
        assert!(!Error::constraint("dup").is_retryable());
        assert!(!Error::resource(ResourceKind::Deadline, 10, 5).is_retryable());
        assert!(!Error::resource(ResourceKind::Cancelled, 1, 0).is_retryable());
        assert_eq!(
            Error::overloaded(25).to_string(),
            "overloaded: retry after 25ms"
        );
        assert_eq!(
            Error::ShuttingDown.to_string(),
            "shutting down: server is draining"
        );
        assert!(Error::protocol("bad tenant").to_string().contains("bad tenant"));
        assert!(Error::unavailable("eof").to_string().starts_with("unavailable"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::catalog("x"), Error::catalog("x"));
        assert_ne!(Error::catalog("x"), Error::analysis("x"));
    }

    #[test]
    fn panic_payloads_become_execution_errors() {
        let p = std::panic::catch_unwind(|| panic!("morsel 3 exploded")).unwrap_err();
        let e = Error::from_panic(p);
        assert!(matches!(&e, Error::Execution(m) if m.contains("morsel 3 exploded")));

        let p = std::panic::catch_unwind(|| panic!("{} bad slots", 7)).unwrap_err();
        assert!(Error::from_panic(p).to_string().contains("7 bad slots"));

        let p = std::panic::catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert!(Error::from_panic(p).to_string().contains("non-string"));
    }
}
