//! Stable identifiers.
//!
//! `RowId` is the "main-memory tuple pointer" of the paper (§3.2): graph
//! topology nodes hold `RowId`s into the relational sources, and the row
//! store guarantees a `RowId` stays valid until the row is deleted, so
//! vertex→tuple navigation is O(1) and attribute updates never touch the
//! topology.
//!
//! `VertexId`/`EdgeId` are the *user-visible* identifiers that come from the
//! `ID = <column>` clauses of `CREATE GRAPH VIEW`; they index the topology's
//! hash maps for O(1) tuple→vertex navigation.

/// Stable handle to a row inside a [`Table`](../storage). Slot indexes are
/// never reused while the table is live, so a stale `RowId` is detectable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u64);

impl RowId {
    /// Slot index inside the owning table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// User-visible vertex identifier (value of the vertex `ID` column).
pub type VertexId = i64;

/// User-visible edge identifier (value of the edge `ID` column).
pub type EdgeId = i64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_id_roundtrip() {
        let r = RowId(42);
        assert_eq!(r.index(), 42);
        assert!(RowId(1) < RowId(2));
    }
}
