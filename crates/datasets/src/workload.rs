//! Query workload generation.
//!
//! The paper's reachability experiment (§7.2) generates, per path length
//! `l ∈ {2..20}`, random query pairs whose endpoints are connected at
//! hop-distance exactly `l`. [`pairs_at_distance`] reproduces that: run a
//! BFS from random sources and sample a vertex from the exact-depth
//! frontier.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generate::Dataset;

/// Compact adjacency over a dataset (slot-index based), used only for
/// workload generation — the systems under test build their own storage.
pub struct Adjacency {
    /// out[v] = neighbours reachable in one hop (respecting direction).
    out: Vec<Vec<u32>>,
}

/// Generator vertex ids are dense `0..n` slot indices by construction;
/// reject anything else loudly rather than index with a silent wrap.
fn slot(id: i64) -> usize {
    usize::try_from(id).expect("dataset vertex ids are dense non-negative slots")
}

impl Adjacency {
    pub fn build(ds: &Dataset) -> Adjacency {
        let n = ds.vertex_count();
        let mut out = vec![Vec::new(); n];
        for (_, from, to, _) in &ds.edges {
            let (f, t) = (slot(*from), slot(*to));
            out[f].push(t as u32); // cast-ok: dense generator ids < 2^32
            if !ds.directed && f != t {
                out[t].push(f as u32); // cast-ok: dense generator ids < 2^32
            }
        }
        Adjacency { out }
    }

    pub fn neighbours(&self, v: usize) -> &[u32] {
        &self.out[v]
    }

    /// BFS hop distances from `src` up to `max_depth`; `u32::MAX` =
    /// unreachable within the bound.
    pub fn bfs_depths(&self, src: usize, max_depth: u32) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.out.len()];
        dist[src] = 0;
        let mut q = VecDeque::new();
        q.push_back(src);
        while let Some(v) = q.pop_front() {
            let d = dist[v];
            if d >= max_depth {
                continue;
            }
            for &t in &self.out[v] {
                let t = t as usize; // cast-ok: u32 slot -> index widening
                if dist[t] == u32::MAX {
                    dist[t] = d + 1;
                    q.push_back(t);
                }
            }
        }
        dist
    }
}

/// Generate `count` (source, target) pairs whose BFS hop-distance is
/// exactly `distance`. Gives up on a source after the BFS shows no vertex
/// at that depth; returns fewer than `count` pairs only if the graph simply
/// has none (tiny graphs / extreme depths).
pub fn pairs_at_distance(
    ds: &Dataset,
    adj: &Adjacency,
    distance: u32,
    count: usize,
    seed: u64,
) -> Vec<(i64, i64)> {
    let mut rng = StdRng::seed_from_u64(seed ^ (distance as u64) << 32); // cast-ok: u32 -> u64 widening
    let n = ds.vertex_count();
    let mut pairs = Vec::with_capacity(count);
    let mut attempts = 0;
    while pairs.len() < count && attempts < count * 50 {
        attempts += 1;
        let src = rng.gen_range(0..n);
        let dist = adj.bfs_depths(src, distance);
        let at: Vec<usize> = dist
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == distance)
            .map(|(i, _)| i)
            .collect();
        if at.is_empty() {
            continue;
        }
        let tgt = at[rng.gen_range(0..at.len())];
        pairs.push((src as i64, tgt as i64)); // cast-ok: vertex indices are far below 2^63
    }
    pairs
}

/// Generate `count` random connected (source, target) pairs with any
/// positive hop distance ≤ `max_depth` (used by the shortest-path
/// workload).
pub fn random_connected_pairs(
    ds: &Dataset,
    adj: &Adjacency,
    max_depth: u32,
    count: usize,
    seed: u64,
) -> Vec<(i64, i64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = ds.vertex_count();
    let mut pairs = Vec::with_capacity(count);
    let mut attempts = 0;
    while pairs.len() < count && attempts < count * 50 {
        attempts += 1;
        let src = rng.gen_range(0..n);
        let dist = adj.bfs_depths(src, max_depth);
        let reachable: Vec<usize> = dist
            .iter()
            .enumerate()
            .filter(|(i, &d)| d != u32::MAX && d > 0 && *i != src)
            .map(|(i, _)| i)
            .collect();
        if reachable.is_empty() {
            continue;
        }
        let tgt = reachable[rng.gen_range(0..reachable.len())];
        pairs.push((src as i64, tgt as i64)); // cast-ok: vertex indices are far below 2^63
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{follower, roads};

    #[test]
    fn bfs_depths_on_grid() {
        let ds = roads(100, 1);
        let adj = Adjacency::build(&ds);
        let dist = adj.bfs_depths(0, 50);
        // neighbour of 0 is at depth 1
        if let Some(&n0) = adj.neighbours(0).first() {
            assert_eq!(dist[n0 as usize], 1); // cast-ok: test slot widening
        }
        assert_eq!(dist[0], 0);
    }

    #[test]
    fn pairs_are_at_exact_distance() {
        let ds = roads(400, 2);
        let adj = Adjacency::build(&ds);
        for d in [2u32, 5, 8] {
            let pairs = pairs_at_distance(&ds, &adj, d, 10, 99);
            assert!(!pairs.is_empty(), "no pairs at distance {d}");
            for (s, t) in pairs {
                let dist = adj.bfs_depths(s as usize, d + 2); // cast-ok: test ids are dense slots
                assert_eq!(dist[t as usize], d, "pair ({s},{t})"); // cast-ok: test ids are dense slots
            }
        }
    }

    #[test]
    fn directed_adjacency_respects_direction() {
        let ds = follower(200, 3);
        let adj = Adjacency::build(&ds);
        let total: usize = (0..ds.vertex_count()).map(|v| adj.neighbours(v).len()).sum();
        assert_eq!(total, ds.edge_count());
    }

    #[test]
    fn connected_pairs_are_connected() {
        let ds = follower(300, 5);
        let adj = Adjacency::build(&ds);
        let pairs = random_connected_pairs(&ds, &adj, 6, 10, 7);
        assert!(!pairs.is_empty());
        for (s, t) in pairs {
            let dist = adj.bfs_depths(s as usize, 6); // cast-ok: test ids are dense slots
            assert!(dist[t as usize] != u32::MAX && dist[t as usize] > 0); // cast-ok: test ids are dense slots
        }
    }

    #[test]
    fn deterministic_workloads() {
        let ds = roads(400, 2);
        let adj = Adjacency::build(&ds);
        let a = pairs_at_distance(&ds, &adj, 4, 5, 11);
        let b = pairs_at_distance(&ds, &adj, 4, 5, 11);
        assert_eq!(a, b);
    }
}
