//! CSV import for real datasets.
//!
//! The generators stand in for the paper's Tiger/String/DBLP/Twitter
//! graphs, but a user holding the real data (or any graph export) can load
//! it here: one CSV for vertexes (`id, attr...`), one for edges
//! (`id, from, to, attr...`), with a header row naming the attributes and
//! explicit attribute types. Minimal RFC-4180-style parsing (quoted
//! fields, escaped quotes) with no external dependency.

use grfusion_common::{DataType, Error, Result, Value};

use crate::generate::{Dataset, DatasetKind};

/// Split one CSV record into fields (handles `"quoted, fields"` and `""`
/// escapes).
fn split_record(line: &str) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() => in_quotes = true,
            '"' => {
                return Err(Error::parse(format!(
                    "stray quote in CSV record: {line}"
                )));
            }
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    if in_quotes {
        return Err(Error::parse(format!("unterminated quote in CSV record: {line}")));
    }
    fields.push(cur);
    Ok(fields)
}

/// Parse a field into a typed value. Empty fields become NULL.
fn parse_value(field: &str, ty: DataType) -> Result<Value> {
    let f = field.trim();
    if f.is_empty() {
        return Ok(Value::Null);
    }
    Ok(match ty {
        DataType::Integer => Value::Integer(
            f.parse::<i64>()
                .map_err(|_| Error::parse(format!("`{f}` is not an INTEGER")))?,
        ),
        DataType::Double => Value::Double(
            f.parse::<f64>()
                .map_err(|_| Error::parse(format!("`{f}` is not a DOUBLE")))?,
        ),
        DataType::Boolean => match f.to_ascii_lowercase().as_str() {
            "true" | "t" | "1" | "yes" => Value::Boolean(true),
            "false" | "f" | "0" | "no" => Value::Boolean(false),
            _ => return Err(Error::parse(format!("`{f}` is not a BOOLEAN"))),
        },
        DataType::Varchar => Value::text(f),
        DataType::Path => {
            return Err(Error::parse("PATH columns cannot be imported from CSV"));
        }
    })
}

fn parse_id(field: &str, what: &str) -> Result<i64> {
    field
        .trim()
        .parse::<i64>()
        .map_err(|_| Error::parse(format!("{what} id `{field}` is not an INTEGER")))
}

/// Build a [`Dataset`] from CSV text.
///
/// * `vertex_csv`: header `id,<attr>...`, one vertex per line;
/// * `edge_csv`: header `id,from,to,<attr>...`, one edge per line;
/// * `vertex_types` / `edge_types`: the types of the attribute columns
///   (everything after the fixed id/from/to columns), in header order.
///
/// Header names become the exposed attribute names of the graph view.
pub fn from_csv(
    kind: DatasetKind,
    directed: bool,
    vertex_csv: &str,
    edge_csv: &str,
    vertex_types: &[DataType],
    edge_types: &[DataType],
) -> Result<Dataset> {
    // ---- vertexes ----
    let mut vlines = vertex_csv.lines().filter(|l| !l.trim().is_empty());
    let vheader = split_record(
        vlines
            .next()
            .ok_or_else(|| Error::parse("vertex CSV is empty"))?,
    )?;
    if vheader.is_empty() || !vheader[0].trim().eq_ignore_ascii_case("id") {
        return Err(Error::parse("vertex CSV header must start with `id`"));
    }
    if vheader.len() - 1 != vertex_types.len() {
        return Err(Error::parse(format!(
            "vertex CSV has {} attribute columns but {} types were given",
            vheader.len() - 1,
            vertex_types.len()
        )));
    }
    let vertex_schema: Vec<(String, DataType)> = vheader[1..]
        .iter()
        .map(|h| h.trim().to_ascii_lowercase())
        .zip(vertex_types.iter().copied())
        .collect();
    let mut vertices = Vec::new();
    for line in vlines {
        let fields = split_record(line)?;
        if fields.len() != vheader.len() {
            return Err(Error::parse(format!(
                "vertex record has {} fields, expected {}: {line}",
                fields.len(),
                vheader.len()
            )));
        }
        let id = parse_id(&fields[0], "vertex")?;
        let attrs = fields[1..]
            .iter()
            .zip(vertex_types)
            .map(|(f, ty)| parse_value(f, *ty))
            .collect::<Result<Vec<_>>>()?;
        vertices.push((id, attrs));
    }

    // ---- edges ----
    let mut elines = edge_csv.lines().filter(|l| !l.trim().is_empty());
    let eheader = split_record(
        elines
            .next()
            .ok_or_else(|| Error::parse("edge CSV is empty"))?,
    )?;
    let fixed = ["id", "from", "to"];
    if eheader.len() < 3
        || !eheader
            .iter()
            .take(3)
            .zip(fixed)
            .all(|(h, f)| h.trim().eq_ignore_ascii_case(f))
    {
        return Err(Error::parse(
            "edge CSV header must start with `id,from,to`",
        ));
    }
    if eheader.len() - 3 != edge_types.len() {
        return Err(Error::parse(format!(
            "edge CSV has {} attribute columns but {} types were given",
            eheader.len() - 3,
            edge_types.len()
        )));
    }
    let edge_schema: Vec<(String, DataType)> = eheader[3..]
        .iter()
        .map(|h| h.trim().to_ascii_lowercase())
        .zip(edge_types.iter().copied())
        .collect();
    let mut edges = Vec::new();
    for line in elines {
        let fields = split_record(line)?;
        if fields.len() != eheader.len() {
            return Err(Error::parse(format!(
                "edge record has {} fields, expected {}: {line}",
                fields.len(),
                eheader.len()
            )));
        }
        let id = parse_id(&fields[0], "edge")?;
        let from = parse_id(&fields[1], "edge FROM")?;
        let to = parse_id(&fields[2], "edge TO")?;
        let attrs = fields[3..]
            .iter()
            .zip(edge_types)
            .map(|(f, ty)| parse_value(f, *ty))
            .collect::<Result<Vec<_>>>()?;
        edges.push((id, from, to, attrs));
    }

    Ok(Dataset {
        kind,
        directed,
        vertex_schema,
        edge_schema,
        vertices,
        edges,
    })
}

/// File-based convenience wrapper around [`from_csv`].
pub fn from_csv_files(
    kind: DatasetKind,
    directed: bool,
    vertex_path: &std::path::Path,
    edge_path: &std::path::Path,
    vertex_types: &[DataType],
    edge_types: &[DataType],
) -> Result<Dataset> {
    let v = std::fs::read_to_string(vertex_path)
        .map_err(|e| Error::parse(format!("cannot read {}: {e}", vertex_path.display())))?;
    let e = std::fs::read_to_string(edge_path)
        .map_err(|e2| Error::parse(format!("cannot read {}: {e2}", edge_path.display())))?;
    from_csv(kind, directed, &v, &e, vertex_types, edge_types)
}

#[cfg(test)]
mod tests {
    use super::*;

    const VCSV: &str = "id,name,score\n1,alpha,1.5\n2,\"beta, the second\",\n3,gamma,3.25\n";
    const ECSV: &str = "id,from,to,weight,sel,label\n10,1,2,2.5,42,A\n11,2,3,1.0,7,\"B\"\"B\"\n";

    fn load() -> Dataset {
        from_csv(
            DatasetKind::Roads,
            false,
            VCSV,
            ECSV,
            &[DataType::Varchar, DataType::Double],
            &[DataType::Double, DataType::Integer, DataType::Varchar],
        )
        .unwrap()
    }

    #[test]
    fn parses_vertices_edges_and_schemas() {
        let ds = load();
        assert_eq!(ds.vertex_count(), 3);
        assert_eq!(ds.edge_count(), 2);
        assert_eq!(
            ds.vertex_schema,
            vec![
                ("name".to_string(), DataType::Varchar),
                ("score".to_string(), DataType::Double)
            ]
        );
        assert_eq!(ds.vertices[1].1[0], Value::text("beta, the second"));
        assert!(ds.vertices[1].1[1].is_null()); // empty field → NULL
        assert_eq!(ds.edges[0], (
            10,
            1,
            2,
            vec![Value::Double(2.5), Value::Integer(42), Value::text("A")]
        ));
        // escaped quote inside quoted field
        assert_eq!(ds.edges[1].3[2], Value::text("B\"B"));
    }

    #[test]
    fn loaded_dataset_works_with_standard_helpers() {
        let ds = load();
        assert_eq!(ds.sel_attr_index(), 1);
        assert_eq!(ds.weight_attr_index(), 0);
        let sub = ds.filter_edges_sel_lt(10);
        assert_eq!(sub.edge_count(), 1);
    }

    #[test]
    fn header_and_arity_errors() {
        assert!(from_csv(DatasetKind::Roads, false, "", ECSV, &[], &[]).is_err());
        assert!(from_csv(
            DatasetKind::Roads,
            false,
            "name,id\n",
            ECSV,
            &[DataType::Varchar],
            &[]
        )
        .is_err());
        // wrong type count
        assert!(from_csv(DatasetKind::Roads, false, VCSV, ECSV, &[DataType::Varchar], &[]).is_err());
        // bad integer id
        assert!(from_csv(
            DatasetKind::Roads,
            false,
            "id,name\nxyz,a\n",
            "id,from,to\n",
            &[DataType::Varchar],
            &[]
        )
        .is_err());
        // field count mismatch
        assert!(from_csv(
            DatasetKind::Roads,
            false,
            "id,name\n1\n",
            "id,from,to\n",
            &[DataType::Varchar],
            &[]
        )
        .is_err());
    }

    #[test]
    fn quote_errors() {
        assert!(split_record("a,\"unterminated").is_err());
        assert!(split_record("a,b\"stray").is_err());
        assert_eq!(
            split_record("a,\"b,c\",d").unwrap(),
            vec!["a", "b,c", "d"]
        );
        assert_eq!(split_record("").unwrap(), vec![""]);
    }

    #[test]
    fn boolean_parsing() {
        let ds = from_csv(
            DatasetKind::Protein,
            true,
            "id,flag\n1,true\n2,0\n3,YES\n",
            "id,from,to\n10,1,2\n",
            &[DataType::Boolean],
            &[],
        )
        .unwrap();
        assert_eq!(ds.vertices[0].1[0], Value::Boolean(true));
        assert_eq!(ds.vertices[1].1[0], Value::Boolean(false));
        assert_eq!(ds.vertices[2].1[0], Value::Boolean(true));
    }
}
