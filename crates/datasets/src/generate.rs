//! Dataset generators.

use grfusion_common::{DataType, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Publish a dense generator index as an i64 vertex id — the one audited
/// usize→i64 site for all generators.
#[inline]
fn vid(v: usize) -> i64 {
    v as i64 // cast-ok: generator sizes are far below 2^63
}

/// Which paper dataset a generated graph stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    Roads,
    Protein,
    Coauthor,
    Follower,
}

impl DatasetKind {
    pub fn label(self) -> &'static str {
        match self {
            DatasetKind::Roads => "roads (Tiger)",
            DatasetKind::Protein => "protein (String)",
            DatasetKind::Coauthor => "coauthor (DBLP)",
            DatasetKind::Follower => "follower (Twitter)",
        }
    }
}

/// An engine-agnostic generated graph: schemas plus vertex/edge records.
/// Loaders turn this into GRFusion tables, SQLGraph adjacency tables, or
/// native-graph-store inserts.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub kind: DatasetKind,
    pub directed: bool,
    /// Vertex attributes beyond `id`.
    pub vertex_schema: Vec<(String, DataType)>,
    /// Edge attributes beyond `id`, `from`, `to`.
    pub edge_schema: Vec<(String, DataType)>,
    /// `(id, attrs)` — ids are dense `0..n`.
    pub vertices: Vec<(i64, Vec<Value>)>,
    /// `(id, from, to, attrs)`.
    pub edges: Vec<(i64, i64, i64, Vec<Value>)>,
}

impl Dataset {
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Average out-adjacency branching factor as traversals see it
    /// (undirected edges count twice).
    pub fn avg_degree(&self) -> f64 {
        if self.vertices.is_empty() {
            return 0.0;
        }
        let m = self.edges.len() as f64 * if self.directed { 1.0 } else { 2.0 }; // cast-ok: statistic
        m / self.vertices.len() as f64 // cast-ok: statistic
    }

    /// Index of the `sel` edge attribute in `edge_schema`.
    pub fn sel_attr_index(&self) -> usize {
        self.edge_schema
            .iter()
            .position(|(n, _)| n == "sel")
            .expect("all generators emit a sel attribute")
    }

    /// The sub-graph retaining only edges with `sel < k` — used by the
    /// selectivity experiments to generate query pairs that are connected
    /// *within the selected sub-graph* (EDBT 2018 §7.1's sub-graph
    /// selectivity control).
    pub fn filter_edges_sel_lt(&self, k: i64) -> Dataset {
        let sel = self.sel_attr_index();
        let mut out = self.clone();
        out.edges.retain(|(_, _, _, attrs)| {
            matches!(attrs[sel], Value::Integer(s) if s < k)
        });
        out
    }

    /// Index of the `weight` edge attribute.
    pub fn weight_attr_index(&self) -> usize {
        self.edge_schema
            .iter()
            .position(|(n, _)| n == "weight")
            .expect("all generators emit a weight attribute")
    }
}

/// The three standard edge attributes every generator emits, filled from
/// `rng`: `weight` (0.5..10.5), `sel` (0..100), `label` (A..E).
fn standard_edge_attrs(rng: &mut StdRng) -> Vec<Value> {
    let weight = 0.5 + rng.gen::<f64>() * 10.0;
    let sel = rng.gen_range(0..100i64);
    let label = ["A", "B", "C", "D", "E"][rng.gen_range(0..5)];
    vec![
        Value::Double(weight),
        Value::Integer(sel),
        Value::text(label),
    ]
}

fn standard_edge_schema() -> Vec<(String, DataType)> {
    vec![
        ("weight".into(), DataType::Double),
        ("sel".into(), DataType::Integer),
        ("label".into(), DataType::Varchar),
    ]
}

/// Tiger-style road network: a √n×√n grid with perturbations — ~8% of grid
/// edges removed (rivers/dead ends) and a sprinkle of diagonal shortcuts
/// (highways). Undirected, avg degree ≈ 3.5, diameter O(√n).
///
/// Vertex attrs: `name` (address string). Extra edge attr: `roadtype`.
pub fn roads(n_vertices: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = (n_vertices as f64).sqrt().ceil() as i64; // cast-ok: sqrt of a machine-size count
    let n = side * side;
    let mut vertices = Vec::with_capacity(n as usize); // cast-ok: n = side^2 >= 0, machine-sized
    for v in 0..n {
        vertices.push((v, vec![Value::text(format!("Address {v}"))]));
    }
    let mut edges = Vec::new();
    let mut eid = 0i64;
    let mut edge_schema = standard_edge_schema();
    edge_schema.push(("roadtype".into(), DataType::Varchar));
    for r in 0..side {
        for c in 0..side {
            let v = r * side + c;
            for (dr, dc) in [(0i64, 1i64), (1, 0)] {
                let (nr, nc) = (r + dr, c + dc);
                if nr >= side || nc >= side {
                    continue;
                }
                if rng.gen::<f64>() < 0.08 {
                    continue; // removed segment
                }
                let mut attrs = standard_edge_attrs(&mut rng);
                attrs.push(Value::text(if rng.gen::<f64>() < 0.1 {
                    "highway"
                } else {
                    "local"
                }));
                edges.push((eid, v, nr * side + nc, attrs));
                eid += 1;
            }
            // occasional diagonal shortcut
            if r + 1 < side && c + 1 < side && rng.gen::<f64>() < 0.03 {
                let mut attrs = standard_edge_attrs(&mut rng);
                attrs.push(Value::text("highway"));
                edges.push((eid, v, (r + 1) * side + c + 1, attrs));
                eid += 1;
            }
        }
    }
    Dataset {
        kind: DatasetKind::Roads,
        directed: false,
        vertex_schema: vec![("name".into(), DataType::Varchar)],
        edge_schema,
        vertices,
        edges,
    }
}

/// String-style protein-interaction network: planted communities with
/// dense intra-community wiring and sparse inter-community bridges.
/// Undirected, clustered, degree concentrated around 2·(intra+inter).
///
/// Vertex attrs: `name`. Extra edge attr: `itype` (interaction type, one of
/// `covalent`/`stable`/`weak`/`transient` — Listing 3's predicate domain).
pub fn protein(n_vertices: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let community_size = 25usize.max(n_vertices / 200);
    let mut vertices = Vec::with_capacity(n_vertices);
    for v in 0..vid(n_vertices) {
        vertices.push((v, vec![Value::text(format!("Protein {v}"))]));
    }
    let mut edges = Vec::new();
    let mut eid = 0i64;
    let mut edge_schema = standard_edge_schema();
    edge_schema.push(("itype".into(), DataType::Varchar));
    let itypes = ["covalent", "stable", "weak", "transient"];
    let mut seen = std::collections::HashSet::new();
    let mut push_edge = |rng: &mut StdRng, edges: &mut Vec<_>, eid: &mut i64, a: i64, b: i64| {
        if a == b || !seen.insert((a.min(b), a.max(b))) {
            return;
        }
        let mut attrs = standard_edge_attrs(rng);
        attrs.push(Value::text(itypes[rng.gen_range(0..itypes.len())]));
        edges.push((*eid, a, b, attrs));
        *eid += 1;
    };
    // Intra-community edges: each vertex links to ~4 community peers.
    for v in 0..n_vertices {
        let base = (v / community_size) * community_size;
        let span = community_size.min(n_vertices - base);
        for _ in 0..4 {
            let peer = base + rng.gen_range(0..span);
            if peer > v {
                push_edge(&mut rng, &mut edges, &mut eid, vid(v), vid(peer));
            }
        }
    }
    // Inter-community bridges: ~10% of vertices bridge to a random vertex.
    for v in 0..n_vertices {
        if rng.gen::<f64>() < 0.1 {
            let other = rng.gen_range(0..n_vertices);
            push_edge(&mut rng, &mut edges, &mut eid, vid(v), vid(other));
        }
    }
    Dataset {
        kind: DatasetKind::Protein,
        directed: false,
        vertex_schema: vec![("name".into(), DataType::Varchar)],
        edge_schema,
        vertices,
        edges,
    }
}

/// DBLP-style co-authorship network: papers are small cliques over authors
/// chosen by preferential attachment. Undirected, power-law-ish degrees,
/// high clustering.
///
/// Vertex attrs: `name`. Extra edge attr: `since` (year INTEGER).
pub fn coauthor(n_vertices: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vertices = Vec::with_capacity(n_vertices);
    for v in 0..vid(n_vertices) {
        vertices.push((v, vec![Value::text(format!("Author {v}"))]));
    }
    let mut edges = Vec::new();
    let mut eid = 0i64;
    let mut edge_schema = standard_edge_schema();
    edge_schema.push(("since".into(), DataType::Integer));
    // Preferential attachment pool: vertex appears once per incident edge.
    let mut pool: Vec<i64> = Vec::new();
    let n_papers = n_vertices; // ~1 paper per author on average
    let mut seen = std::collections::HashSet::new();
    for _ in 0..n_papers {
        let k = 2 + rng.gen_range(0..3); // 2–4 authors per paper
        let mut authors = Vec::with_capacity(k);
        for _ in 0..k {
            let a = if pool.is_empty() || rng.gen::<f64>() < 0.3 {
                vid(rng.gen_range(0..n_vertices))
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            if !authors.contains(&a) {
                authors.push(a);
            }
        }
        let year = 1990 + rng.gen_range(0..35i64);
        for i in 0..authors.len() {
            for j in i + 1..authors.len() {
                let (a, b) = (authors[i].min(authors[j]), authors[i].max(authors[j]));
                if !seen.insert((a, b)) {
                    continue;
                }
                let mut attrs = standard_edge_attrs(&mut rng);
                attrs.push(Value::Integer(year));
                edges.push((eid, a, b, attrs));
                eid += 1;
                pool.push(a);
                pool.push(b);
            }
        }
    }
    Dataset {
        kind: DatasetKind::Coauthor,
        directed: false,
        vertex_schema: vec![("name".into(), DataType::Varchar)],
        edge_schema,
        vertices,
        edges,
    }
}

/// Twitter-style follower graph: directed preferential attachment — each
/// new user follows ~m existing users, chosen by in-degree. Heavy-tailed
/// in-degree, small diameter.
///
/// Vertex attrs: `name`. Extra edge attr: `since` (year INTEGER).
pub fn follower(n_vertices: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = 6usize; // follows per user
    let mut vertices = Vec::with_capacity(n_vertices);
    for v in 0..vid(n_vertices) {
        vertices.push((v, vec![Value::text(format!("user{v}"))]));
    }
    let mut edges = Vec::new();
    let mut eid = 0i64;
    let mut edge_schema = standard_edge_schema();
    edge_schema.push(("since".into(), DataType::Integer));
    let mut pool: Vec<i64> = vec![0]; // in-degree-weighted target pool
    for v in 1..vid(n_vertices) {
        let follows = m.min(v as usize); // cast-ok: v in 1..n, fits usize
        // BTreeSet keeps iteration order deterministic for a given seed.
        let mut targets = std::collections::BTreeSet::new();
        for _ in 0..follows {
            let t = if rng.gen::<f64>() < 0.25 {
                rng.gen_range(0..v)
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            if t != v {
                targets.insert(t);
            }
        }
        for t in targets {
            let mut attrs = standard_edge_attrs(&mut rng);
            attrs.push(Value::Integer(2006 + rng.gen_range(0..19i64)));
            edges.push((eid, v, t, attrs));
            eid += 1;
            pool.push(t);
            // followers also gain a little visibility
            if rng.gen::<f64>() < 0.2 {
                pool.push(v);
            }
        }
    }
    Dataset {
        kind: DatasetKind::Follower,
        directed: true,
        vertex_schema: vec![("name".into(), DataType::Varchar)],
        edge_schema,
        vertices,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_basic(ds: &Dataset) {
        assert!(ds.vertex_count() > 0);
        assert!(ds.edge_count() > 0);
        let n = vid(ds.vertex_count());
        for (id, _) in &ds.vertices {
            assert!(*id >= 0 && *id < n);
        }
        for (_, from, to, attrs) in &ds.edges {
            assert!(*from >= 0 && *from < n, "dangling from");
            assert!(*to >= 0 && *to < n, "dangling to");
            assert_eq!(attrs.len(), ds.edge_schema.len());
        }
        // standard attrs present and well-typed
        let w = ds.weight_attr_index();
        let s = ds.sel_attr_index();
        for (_, _, _, attrs) in ds.edges.iter().take(100) {
            let weight = attrs[w].as_double().unwrap();
            assert!(weight > 0.0);
            let sel = attrs[s].as_integer().unwrap();
            assert!((0..100).contains(&sel));
        }
        // edge ids unique
        let mut ids: Vec<i64> = ds.edges.iter().map(|e| e.0).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), ds.edge_count());
    }

    #[test]
    fn all_generators_produce_valid_graphs() {
        check_basic(&roads(400, 1));
        check_basic(&protein(500, 2));
        check_basic(&coauthor(500, 3));
        check_basic(&follower(500, 4));
    }

    #[test]
    fn generators_are_deterministic() {
        let a = follower(300, 42);
        let b = follower(300, 42);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.edges[10].1, b.edges[10].1);
        let c = follower(300, 43);
        assert_ne!(
            a.edges.iter().map(|e| e.2).collect::<Vec<_>>(),
            c.edges.iter().map(|e| e.2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn regimes_differ_as_intended() {
        let roads = roads(900, 1);
        let follower = follower(900, 1);
        // Roads: undirected near-planar → tight degree; follower: directed
        // heavy-tailed.
        assert!(!roads.directed);
        assert!(follower.directed);
        assert!(roads.avg_degree() > 2.0 && roads.avg_degree() < 5.0);
        // heavy tail: max in-degree far above mean
        let mut indeg = vec![0usize; follower.vertex_count()];
        for (_, _, to, _) in &follower.edges {
            indeg[*to as usize] += 1; // cast-ok: generator ids are dense 0..n
        }
        let max = *indeg.iter().max().unwrap() as f64; // cast-ok: statistic
        let mean = follower.edge_count() as f64 / follower.vertex_count() as f64; // cast-ok: statistic
        assert!(max > 8.0 * mean, "max {max} mean {mean}");
    }

    #[test]
    fn protein_is_clustered() {
        let ds = protein(1000, 7);
        // most edges stay within a community (ids close together)
        let intra = ds
            .edges
            .iter()
            .filter(|(_, a, b, _)| (a - b).abs() < 60)
            .count();
        assert!(intra as f64 > 0.6 * ds.edge_count() as f64); // cast-ok: statistic
    }
}
