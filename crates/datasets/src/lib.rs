//! Synthetic datasets standing in for the paper's four evaluation graphs
//! (EDBT 2018 §7.1, Table 2).
//!
//! The originals (US Tiger road network, String protein interactions, DBLP
//! co-authorship, Twitter follower graph) are not redistributable here, so
//! each generator reproduces its dataset's *structural regime* — the
//! property that drives the relative behaviour of traversal-vs-join
//! evaluation:
//!
//! | generator | stands in for | regime |
//! |---|---|---|
//! | [`roads`] | Tiger | near-planar grid, degree ≈ 3–4, huge diameter, undirected |
//! | [`protein`] | String | clustered (planted communities), heavy clustering, undirected |
//! | [`coauthor`] | DBLP | preferential attachment + clique overlays, power-law-ish, undirected |
//! | [`follower`] | Twitter | directed preferential attachment, heavy-tailed in-degree |
//!
//! Every edge carries the harness's three standard attributes —
//! `weight DOUBLE` (positive, for shortest paths), `sel INTEGER`
//! (uniform 0..100, so `sel < K` is a K% selectivity predicate), and
//! `label VARCHAR` (small alphabet, for pattern queries) — plus
//! domain-specific attributes. All generators are deterministic for a
//! given seed and scale.

pub mod csv;
pub mod generate;
pub mod workload;

pub use csv::{from_csv, from_csv_files};
pub use generate::{coauthor, follower, protein, roads, Dataset, DatasetKind};
pub use workload::{pairs_at_distance, random_connected_pairs, Adjacency};
