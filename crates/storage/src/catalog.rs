//! The table catalog.

use std::collections::BTreeMap;
use std::sync::Arc;

use grfusion_common::{Error, Result};
use parking_lot::RwLock;

use crate::table::Table;

/// Shared handle to a table. Readers (executor operators, graph traversals
/// dereferencing tuple pointers) take read locks; the single-writer engine
/// takes write locks for DML. With H-Store-style serial execution there is
/// no lock contention — the lock exists for memory safety, matching the
/// paper's "low-overhead concurrency model" observation (§7.2).
pub type TableRef = Arc<RwLock<Table>>;

/// Named collection of tables. Names are case-insensitive (normalized to
/// lowercase).
#[derive(Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, TableRef>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a new table. Fails if the name is taken.
    pub fn create_table(&mut self, table: Table) -> Result<TableRef> {
        let key = table.name().to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(Error::catalog(format!(
                "table `{}` already exists",
                table.name()
            )));
        }
        let handle: TableRef = Arc::new(RwLock::new(table));
        self.tables.insert(key, handle.clone());
        Ok(handle)
    }

    /// Remove a table from the catalog.
    pub fn drop_table(&mut self, name: &str) -> Result<TableRef> {
        self.tables
            .remove(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::catalog(format!("table `{name}` does not exist")))
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<TableRef> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| Error::catalog(format!("table `{name}` does not exist")))
    }

    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Table names in deterministic (sorted) order.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grfusion_common::{DataType, Schema};

    #[test]
    fn create_lookup_drop() {
        let mut c = Catalog::new();
        let t = Table::new("Users", Schema::from_pairs(&[("id", DataType::Integer)]));
        c.create_table(t).unwrap();
        assert!(c.contains("users"));
        assert!(c.contains("USERS"));
        let h = c.table("uSeRs").unwrap();
        assert_eq!(h.read().name(), "Users");
        // duplicate
        let t2 = Table::new("USERS", Schema::default());
        assert!(c.create_table(t2).is_err());
        c.drop_table("users").unwrap();
        assert!(c.table("users").is_err());
        assert!(c.drop_table("users").is_err());
    }

    #[test]
    fn names_sorted() {
        let mut c = Catalog::new();
        c.create_table(Table::new("b", Schema::default())).unwrap();
        c.create_table(Table::new("a", Schema::default())).unwrap();
        assert_eq!(c.table_names(), vec!["a".to_string(), "b".to_string()]);
    }
}
