//! In-memory row store for the GRFusion reproduction.
//!
//! This crate is the storage substrate the paper assumes from VoltDB: an
//! in-memory row store with stable main-memory tuple pointers ([`RowId`]s),
//! hash and ordered secondary indexes, a catalog of named tables, and
//! undo-log primitives that the engine layer composes into serial
//! (H-Store-style single-writer) transactions.
//!
//! The crucial property for GRFusion is **tuple-pointer stability** (EDBT
//! 2018 §3.2): a graph view's topology holds `RowId`s into the vertex/edge
//! relational sources, and those ids must survive unrelated inserts,
//! deletes, and attribute updates. [`Table`] guarantees exactly that: a slot
//! is assigned once per row and never reused while the table lives.

pub mod catalog;
pub mod index;
pub mod stats;
pub mod table;
pub mod undo;

pub use catalog::{Catalog, TableRef};
pub use index::{Index, IndexKind, OrdKey};
pub use stats::TableStats;
pub use table::Table;
pub use undo::{UndoLog, UndoOp};

pub use grfusion_common::RowId;
