//! Undo logging for serial transactions.
//!
//! VoltDB/H-Store executes single-partition transactions serially, so
//! isolation is trivial; atomicity comes from an undo log that rolls the
//! partition back if a statement aborts mid-transaction. We mirror that:
//! every storage mutation appends an [`UndoOp`]; rollback replays them in
//! reverse. The engine layer extends the same log with graph-topology undo
//! actions so that graph-view maintenance (§3.3) is atomic with the
//! triggering DML.

use grfusion_common::{Result, Row, RowId};

use crate::catalog::Catalog;

/// One reversible storage action, keyed by table name.
#[derive(Debug, Clone)]
pub enum UndoOp {
    /// A row was inserted; undo deletes it.
    Insert { table: String, row: RowId },
    /// A row was deleted; undo restores the old contents into its slot.
    Delete {
        table: String,
        row: RowId,
        old: Row,
    },
    /// A row was updated; undo restores the old contents.
    Update {
        table: String,
        row: RowId,
        old: Row,
    },
}

/// Append-only log of reversible actions for one transaction.
#[derive(Debug, Default)]
pub struct UndoLog {
    ops: Vec<UndoOp>,
}

impl UndoLog {
    pub fn new() -> Self {
        UndoLog::default()
    }

    pub fn record(&mut self, op: UndoOp) {
        self.ops.push(op);
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of ops currently logged — used as a savepoint marker.
    pub fn savepoint(&self) -> usize {
        self.ops.len()
    }

    /// Roll back everything after `savepoint` (0 = whole transaction),
    /// applying ops newest-first against the catalog's tables.
    pub fn rollback_to(&mut self, catalog: &Catalog, savepoint: usize) -> Result<()> {
        while self.ops.len() > savepoint {
            let op = self.ops.pop().expect("len checked");
            match op {
                UndoOp::Insert { table, row } => {
                    catalog.table(&table)?.write().delete(row)?;
                }
                UndoOp::Delete { table, row, old } => {
                    catalog.table(&table)?.write().restore(row, old)?;
                }
                UndoOp::Update { table, row, old } => {
                    catalog.table(&table)?.write().update(row, old)?;
                }
            }
        }
        Ok(())
    }

    /// Commit: drop the log.
    pub fn clear(&mut self) {
        self.ops.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use grfusion_common::{DataType, Schema, Value};

    fn setup() -> (Catalog, RowId) {
        let mut c = Catalog::new();
        let t = Table::new(
            "t",
            Schema::from_pairs(&[("id", DataType::Integer), ("v", DataType::Varchar)]),
        );
        let h = c.create_table(t).unwrap();
        let r0 = h
            .write()
            .insert(vec![Value::Integer(0), Value::text("base")])
            .unwrap();
        (c, r0)
    }

    #[test]
    fn rollback_insert() {
        let (c, _r0) = setup();
        let mut log = UndoLog::new();
        let h = c.table("t").unwrap();
        let r = h
            .write()
            .insert(vec![Value::Integer(1), Value::text("x")])
            .unwrap();
        log.record(UndoOp::Insert {
            table: "t".into(),
            row: r,
        });
        log.rollback_to(&c, 0).unwrap();
        assert!(h.read().get(r).is_none());
        assert_eq!(h.read().len(), 1);
    }

    #[test]
    fn rollback_delete_and_update() {
        let (c, r0) = setup();
        let mut log = UndoLog::new();
        let h = c.table("t").unwrap();

        let old = h
            .write()
            .update(r0, vec![Value::Integer(0), Value::text("changed")])
            .unwrap();
        log.record(UndoOp::Update {
            table: "t".into(),
            row: r0,
            old,
        });
        let old = h.write().delete(r0).unwrap();
        log.record(UndoOp::Delete {
            table: "t".into(),
            row: r0,
            old,
        });

        log.rollback_to(&c, 0).unwrap();
        let t = h.read();
        assert_eq!(t.get(r0).unwrap()[1], Value::text("base"));
    }

    #[test]
    fn partial_rollback_to_savepoint() {
        let (c, _r0) = setup();
        let mut log = UndoLog::new();
        let h = c.table("t").unwrap();

        let r1 = h
            .write()
            .insert(vec![Value::Integer(1), Value::text("a")])
            .unwrap();
        log.record(UndoOp::Insert {
            table: "t".into(),
            row: r1,
        });
        let sp = log.savepoint();
        let r2 = h
            .write()
            .insert(vec![Value::Integer(2), Value::text("b")])
            .unwrap();
        log.record(UndoOp::Insert {
            table: "t".into(),
            row: r2,
        });

        log.rollback_to(&c, sp).unwrap();
        assert!(h.read().get(r1).is_some());
        assert!(h.read().get(r2).is_none());
        assert_eq!(log.len(), sp);
    }

    #[test]
    fn clear_commits() {
        let (_c, _r0) = setup();
        let mut log = UndoLog::new();
        log.record(UndoOp::Insert {
            table: "t".into(),
            row: RowId(0),
        });
        log.clear();
        assert!(log.is_empty());
    }
}
