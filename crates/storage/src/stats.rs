//! Lightweight table statistics used by the planner.

/// Snapshot of a table's size. The paper's optimizer (§6.3) additionally
/// keeps an *average fan-out* statistic per graph view; that lives in the
/// graph crate because it is a topology property, not a table property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableStats {
    /// Live rows.
    pub row_count: usize,
    /// Allocated slots (live + tombstoned). The gap indicates delete churn.
    pub slot_count: usize,
}

impl TableStats {
    /// Fraction of slots wasted by tombstones, in `[0, 1)`.
    pub fn tombstone_ratio(&self) -> f64 {
        if self.slot_count == 0 {
            0.0
        } else {
            (self.slot_count - self.row_count) as f64 / self.slot_count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tombstone_ratio() {
        let s = TableStats {
            row_count: 3,
            slot_count: 4,
        };
        assert!((s.tombstone_ratio() - 0.25).abs() < 1e-12);
        let empty = TableStats {
            row_count: 0,
            slot_count: 0,
        };
        assert_eq!(empty.tombstone_ratio(), 0.0);
    }
}
