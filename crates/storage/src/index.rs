//! Secondary indexes over tables.
//!
//! Two physical kinds mirror what VoltDB offers: hash indexes for point
//! lookups (`IndexScan` with an equality key, and the O(1) id→vertex hop
//! the paper relies on) and ordered indexes for range predicates.
//! Indexes are single-column; composite keys were not needed by any query
//! shape in the paper's evaluation.

use std::collections::{BTreeMap, HashMap};

use grfusion_common::value::GroupKey;
use grfusion_common::{Error, Result, RowId, Value};

/// Key type for ordered indexes: a total order over index-able values.
///
/// Doubles are mapped to a sign-corrected bit pattern so `u64` ordering
/// matches numeric ordering (the classic IEEE-754 trick), which keeps the
/// `BTreeMap` key `Ord` without custom comparators.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OrdKey {
    Null,
    Boolean(bool),
    Number(u64),
    Text(std::sync::Arc<str>),
}

impl OrdKey {
    /// Build an ordered key from a value. Integers and doubles share the
    /// `Number` arm so cross-type range scans behave numerically.
    pub fn from_value(v: &Value) -> Result<OrdKey> {
        Ok(match v {
            Value::Null => OrdKey::Null,
            Value::Boolean(b) => OrdKey::Boolean(*b),
            Value::Integer(i) => OrdKey::Number(f64_order_bits(*i as f64)),
            Value::Double(d) => OrdKey::Number(f64_order_bits(*d)),
            Value::Text(s) => OrdKey::Text(s.clone()),
            Value::Path(_) => {
                return Err(Error::execution("PATH values are not indexable"));
            }
        })
    }
}

/// Map an f64 to a u64 whose unsigned order equals the float's numeric
/// order (negative floats get their bits flipped; positives get the sign
/// bit set).
fn f64_order_bits(d: f64) -> u64 {
    let bits = d.to_bits();
    if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Physical index kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    Hash,
    Ordered,
}

/// A single-column secondary index.
///
/// `Clone` performs a deep copy of the entries; the table holds indexes
/// behind `Arc` and clones lazily (copy-on-write) so epoch snapshots share
/// index structures with the live table until the writer next mutates them.
#[derive(Debug, Clone)]
pub struct Index {
    name: String,
    column: usize,
    unique: bool,
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    Hash(HashMap<GroupKey, Vec<RowId>>),
    Ordered(BTreeMap<OrdKey, Vec<RowId>>),
}

impl Index {
    pub fn new(name: impl Into<String>, column: usize, unique: bool, kind: IndexKind) -> Self {
        Index {
            name: name.into(),
            column,
            unique,
            repr: match kind {
                IndexKind::Hash => Repr::Hash(HashMap::new()),
                IndexKind::Ordered => Repr::Ordered(BTreeMap::new()),
            },
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn column(&self) -> usize {
        self.column
    }

    pub fn unique(&self) -> bool {
        self.unique
    }

    pub fn kind(&self) -> IndexKind {
        match self.repr {
            Repr::Hash(_) => IndexKind::Hash,
            Repr::Ordered(_) => IndexKind::Ordered,
        }
    }

    /// Whether inserting `key` would violate uniqueness. NULLs never
    /// conflict (SQL unique semantics).
    pub fn would_conflict(&self, key: &Value) -> bool {
        if !self.unique || key.is_null() {
            return false;
        }
        !self.get(key).is_empty()
    }

    /// Insert an entry. The caller (the table) has already checked
    /// uniqueness; this re-checks defensively.
    pub fn insert(&mut self, key: &Value, row: RowId) -> Result<()> {
        if self.would_conflict(key) {
            return Err(Error::constraint(format!(
                "unique index `{}` already contains key {key}",
                self.name
            )));
        }
        match &mut self.repr {
            Repr::Hash(map) => map.entry(key.group_key()).or_default().push(row),
            Repr::Ordered(map) => map
                .entry(OrdKey::from_value(key)?)
                .or_default()
                .push(row),
        }
        Ok(())
    }

    /// Remove an entry (no-op if absent — removal during undo must be
    /// idempotent).
    pub fn remove(&mut self, key: &Value, row: RowId) {
        match &mut self.repr {
            Repr::Hash(map) => {
                let k = key.group_key();
                if let Some(v) = map.get_mut(&k) {
                    v.retain(|r| *r != row);
                    if v.is_empty() {
                        map.remove(&k);
                    }
                }
            }
            Repr::Ordered(map) => {
                if let Ok(k) = OrdKey::from_value(key) {
                    if let Some(v) = map.get_mut(&k) {
                        v.retain(|r| *r != row);
                        if v.is_empty() {
                            map.remove(&k);
                        }
                    }
                }
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &Value) -> Vec<RowId> {
        match &self.repr {
            Repr::Hash(map) => map.get(&key.group_key()).cloned().unwrap_or_default(),
            Repr::Ordered(map) => OrdKey::from_value(key)
                .ok()
                .and_then(|k| map.get(&k).cloned())
                .unwrap_or_default(),
        }
    }

    /// Range scan `[low, high]` with per-bound inclusivity. Only ordered
    /// indexes support ranges. `None` bounds are unbounded.
    pub fn range(
        &self,
        low: Option<(&Value, bool)>,
        high: Option<(&Value, bool)>,
    ) -> Result<Vec<RowId>> {
        let map = match &self.repr {
            Repr::Ordered(map) => map,
            Repr::Hash(_) => {
                return Err(Error::execution(format!(
                    "hash index `{}` does not support range scans",
                    self.name
                )));
            }
        };
        use std::ops::Bound;
        let lo = match low {
            None => Bound::Excluded(OrdKey::Null), // skip NULL keys entirely
            Some((v, true)) => Bound::Included(OrdKey::from_value(v)?),
            Some((v, false)) => Bound::Excluded(OrdKey::from_value(v)?),
        };
        let hi = match high {
            None => Bound::Unbounded,
            Some((v, true)) => Bound::Included(OrdKey::from_value(v)?),
            Some((v, false)) => Bound::Excluded(OrdKey::from_value(v)?),
        };
        let mut out = Vec::new();
        for (_, rows) in map.range((lo, hi)) {
            out.extend_from_slice(rows);
        }
        Ok(out)
    }

    /// Number of distinct keys (used by stats).
    pub fn distinct_keys(&self) -> usize {
        match &self.repr {
            Repr::Hash(map) => map.len(),
            Repr::Ordered(map) => map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_order_bits_is_monotonic() {
        let samples = [-1e300, -2.5, -0.0, 0.0, 1e-300, 1.0, 2.5, 1e300];
        for w in samples.windows(2) {
            assert!(
                f64_order_bits(w[0]) <= f64_order_bits(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn hash_index_point_lookup() {
        let mut ix = Index::new("i", 0, false, IndexKind::Hash);
        ix.insert(&Value::Integer(5), RowId(1)).unwrap();
        ix.insert(&Value::Integer(5), RowId(2)).unwrap();
        ix.insert(&Value::Integer(6), RowId(3)).unwrap();
        let mut got = ix.get(&Value::Integer(5));
        got.sort();
        assert_eq!(got, vec![RowId(1), RowId(2)]);
        assert!(ix.get(&Value::Integer(7)).is_empty());
    }

    #[test]
    fn unique_index_rejects_duplicates_but_not_nulls() {
        let mut ix = Index::new("u", 0, true, IndexKind::Hash);
        ix.insert(&Value::Integer(5), RowId(1)).unwrap();
        assert!(ix.insert(&Value::Integer(5), RowId(2)).is_err());
        // NULLs never conflict
        ix.insert(&Value::Null, RowId(3)).unwrap();
        ix.insert(&Value::Null, RowId(4)).unwrap();
    }

    #[test]
    fn remove_is_idempotent() {
        let mut ix = Index::new("i", 0, false, IndexKind::Hash);
        ix.insert(&Value::Integer(5), RowId(1)).unwrap();
        ix.remove(&Value::Integer(5), RowId(1));
        ix.remove(&Value::Integer(5), RowId(1));
        assert!(ix.get(&Value::Integer(5)).is_empty());
    }

    #[test]
    fn ordered_index_range_scan() {
        let mut ix = Index::new("o", 0, false, IndexKind::Ordered);
        for i in 0..10 {
            ix.insert(&Value::Integer(i), RowId(i as u64)).unwrap();
        }
        let got = ix
            .range(
                Some((&Value::Integer(3), true)),
                Some((&Value::Integer(6), false)),
            )
            .unwrap();
        assert_eq!(got, vec![RowId(3), RowId(4), RowId(5)]);
        // unbounded low skips nothing but NULLs
        ix.insert(&Value::Null, RowId(99)).unwrap();
        let all = ix.range(None, None).unwrap();
        assert_eq!(all.len(), 10); // NULL key excluded
    }

    #[test]
    fn ordered_range_mixes_ints_and_doubles() {
        let mut ix = Index::new("o", 0, false, IndexKind::Ordered);
        ix.insert(&Value::Integer(1), RowId(1)).unwrap();
        ix.insert(&Value::Double(1.5), RowId(2)).unwrap();
        ix.insert(&Value::Integer(2), RowId(3)).unwrap();
        let got = ix
            .range(
                Some((&Value::Double(0.5), true)),
                Some((&Value::Integer(2), true)),
            )
            .unwrap();
        assert_eq!(got, vec![RowId(1), RowId(2), RowId(3)]);
    }

    #[test]
    fn hash_index_rejects_range() {
        let ix = Index::new("i", 0, false, IndexKind::Hash);
        assert!(ix.range(None, None).is_err());
    }
}
