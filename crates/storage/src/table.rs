//! Slotted in-memory row store with stable row ids.

use std::sync::Arc;

use grfusion_common::{Error, Result, Row, RowId, Schema, Value};

use crate::index::{Index, IndexKind};
use crate::stats::TableStats;

/// Slots per copy-on-write chunk (power of two so slot→chunk resolution is
/// a shift and a mask on the hot tuple-pointer dereference path).
const CHUNK_BITS: usize = 8;
const CHUNK_SLOTS: usize = 1 << CHUNK_BITS;
const CHUNK_MASK: usize = CHUNK_SLOTS - 1;

/// A fixed-capacity run of row slots, shared between the live table and any
/// epoch snapshots via `Arc` and cloned lazily on first write after a
/// snapshot (`Arc::make_mut`).
#[derive(Debug, Clone)]
struct Chunk {
    slots: Vec<Option<Row>>,
}

/// An in-memory table.
///
/// Rows live in a slot vector; a slot is assigned exactly once, so a
/// [`RowId`] is a stable main-memory tuple pointer for the table's lifetime
/// (deletes tombstone the slot). This is the property GRFusion's graph
/// views build on: topology nodes keep `RowId`s into their relational
/// sources and dereference them in O(1) during traversal.
///
/// The slot vector is stored as fixed-size chunks behind `Arc`, and indexes
/// likewise, so [`Table::snapshot`] is O(chunks) reference bumps: epoch
/// publication clones the handle, and the single writer pays a one-chunk
/// copy on the first mutation of each shared chunk (copy-on-write).
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Arc<Schema>,
    chunks: Vec<Arc<Chunk>>,
    slot_len: usize,
    live: usize,
    indexes: Vec<Arc<Index>>,
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema: Arc::new(schema),
            chunks: Vec::new(),
            slot_len: 0,
            live: 0,
            indexes: Vec::new(),
        }
    }

    /// An immutable snapshot of the table sharing all row chunks and
    /// indexes with the live table: O(chunks) `Arc` clones, no row copies.
    /// Later DML on the live table copies only the chunks it touches.
    pub fn snapshot(&self) -> Table {
        self.clone()
    }

    /// Slot contents by raw slot number (`None` = never allocated).
    #[inline]
    fn slot(&self, i: usize) -> Option<&Option<Row>> {
        self.chunks.get(i >> CHUNK_BITS).and_then(|c| c.slots.get(i & CHUNK_MASK))
    }

    /// Mutable slot access; copies the owning chunk if it is shared with a
    /// snapshot.
    #[inline]
    fn slot_mut(&mut self, i: usize) -> Option<&mut Option<Row>> {
        self.chunks
            .get_mut(i >> CHUNK_BITS)
            .and_then(|c| Arc::make_mut(c).slots.get_mut(i & CHUNK_MASK))
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + tombstoned).
    pub fn slot_count(&self) -> usize {
        self.slot_len
    }

    // ---- index management -------------------------------------------------

    /// Create a secondary index on `column` and backfill it from existing
    /// rows. Fails (leaving the table unchanged) if a unique index would be
    /// violated by current data or the index name is taken.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        column: usize,
        unique: bool,
        kind: IndexKind,
    ) -> Result<()> {
        let name = name.into();
        if self.indexes.iter().any(|i| i.name() == name) {
            return Err(Error::catalog(format!("index `{name}` already exists")));
        }
        if column >= self.schema.len() {
            return Err(Error::analysis(format!(
                "index column {column} out of range for table `{}`",
                self.name
            )));
        }
        let mut ix = Index::new(name, column, unique, kind);
        for (slot, row) in self.scan() {
            ix.insert(&row[column], slot)?;
        }
        self.indexes.push(Arc::new(ix));
        Ok(())
    }

    pub fn indexes(&self) -> impl Iterator<Item = &Index> + '_ {
        self.indexes.iter().map(|ix| &**ix)
    }

    /// Find an index on `column`, preferring hash for point lookups.
    pub fn index_on(&self, column: usize, kind: Option<IndexKind>) -> Option<&Index> {
        self.indexes
            .iter()
            .map(|ix| &**ix)
            .find(|i| i.column() == column && kind.is_none_or(|k| i.kind() == k))
    }

    // ---- DML ---------------------------------------------------------------

    /// Insert a row, returning its stable id. Validates arity, types
    /// (with int→double widening), and unique indexes.
    pub fn insert(&mut self, row: Row) -> Result<RowId> {
        let row = self.check_row(row)?;
        let id = RowId(self.slot_len as u64);
        for ix in &self.indexes {
            if ix.would_conflict(&row[ix.column()]) {
                return Err(Error::constraint(format!(
                    "unique index `{}` on table `{}` violated by key {}",
                    ix.name(),
                    self.name,
                    row[ix.column()]
                )));
            }
        }
        for ix in &mut self.indexes {
            let c = ix.column();
            Arc::make_mut(ix).insert(&row[c], id)?;
        }
        if self.slot_len & CHUNK_MASK == 0 {
            self.chunks.push(Arc::new(Chunk {
                slots: Vec::with_capacity(CHUNK_SLOTS),
            }));
        }
        Arc::make_mut(self.chunks.last_mut().expect("chunk just ensured"))
            .slots
            .push(Some(row));
        self.slot_len += 1;
        self.live += 1;
        Ok(id)
    }

    /// Delete a row, returning its former contents (needed for undo).
    pub fn delete(&mut self, id: RowId) -> Result<Row> {
        match self.slot(id.index()) {
            None => {
                return Err(Error::execution(format!("row id {id:?} out of range")));
            }
            Some(None) => {
                return Err(Error::execution(format!("row id {id:?} already deleted")));
            }
            Some(Some(_)) => {}
        }
        let slot = self.slot_mut(id.index()).expect("slot checked above");
        let row = slot.take().expect("slot checked above");
        for ix in &mut self.indexes {
            let c = ix.column();
            Arc::make_mut(ix).remove(&row[c], id);
        }
        self.live -= 1;
        Ok(row)
    }

    /// Restore a previously deleted row into its original slot (undo of
    /// delete). The slot must be tombstoned.
    pub fn restore(&mut self, id: RowId, row: Row) -> Result<()> {
        match self.slot(id.index()) {
            None => {
                return Err(Error::execution(format!("row id {id:?} out of range")));
            }
            Some(Some(_)) => {
                return Err(Error::execution(format!("slot {id:?} is occupied")));
            }
            Some(None) => {}
        }
        for ix in &mut self.indexes {
            let c = ix.column();
            Arc::make_mut(ix).insert(&row[c], id)?;
        }
        *self.slot_mut(id.index()).expect("slot checked above") = Some(row);
        self.live += 1;
        Ok(())
    }

    /// Overwrite a row in place, returning the old contents. Index entries
    /// are moved for changed key columns.
    pub fn update(&mut self, id: RowId, new_row: Row) -> Result<Row> {
        let new_row = self.check_row(new_row)?;
        let old = self
            .get(id)
            .ok_or_else(|| Error::execution(format!("row id {id:?} not found")))?
            .clone();
        // Check unique conflicts first (excluding this row's own entry).
        for ix in &self.indexes {
            let c = ix.column();
            if old[c].sql_eq(&new_row[c]) != Some(true) && ix.would_conflict(&new_row[c]) {
                return Err(Error::constraint(format!(
                    "unique index `{}` on table `{}` violated by key {}",
                    ix.name(),
                    self.name,
                    new_row[c]
                )));
            }
        }
        // Move index entries all-or-nothing. The unique pre-check above can
        // disagree with an index's own insert-time validation (e.g. a key
        // type the index cannot hold), so an insert may still fail after
        // earlier indexes were already moved — undo every move and restore
        // the old keys before surfacing the error, leaving the indexes
        // consistent with the unchanged row store.
        let mut moved = 0;
        let mut failure = None;
        for (i, ix) in self.indexes.iter_mut().enumerate() {
            let ix = Arc::make_mut(ix);
            let c = ix.column();
            ix.remove(&old[c], id);
            if let Err(e) = ix.insert(&new_row[c], id) {
                failure = Some((i, e));
                break;
            }
            moved = i + 1;
        }
        if let Some((failed, e)) = failure {
            for (i, ix) in self.indexes.iter_mut().enumerate().take(failed + 1) {
                let ix = Arc::make_mut(ix);
                let c = ix.column();
                if i < moved {
                    ix.remove(&new_row[c], id);
                }
                // The old key was indexed before this call, so re-inserting
                // it cannot fail.
                ix.insert(&old[c], id)
                    .expect("restoring a previously indexed key");
            }
            return Err(e);
        }
        *self.slot_mut(id.index()).expect("row fetched above") = Some(new_row);
        Ok(old)
    }

    /// Fetch a row by id (None if deleted / out of range).
    #[inline]
    pub fn get(&self, id: RowId) -> Option<&Row> {
        self.slot(id.index()).and_then(|s| s.as_ref())
    }

    /// Read one column of one row — the hot path for traversal predicate
    /// evaluation through tuple pointers.
    #[inline]
    pub fn get_value(&self, id: RowId, column: usize) -> Option<&Value> {
        self.get(id).map(|r| &r[column])
    }

    /// Iterate live rows with their ids.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> + '_ {
        self.chunks
            .iter()
            .flat_map(|c| c.slots.iter())
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (RowId(i as u64), r)))
    }

    /// The raw slot chunks, in slot order (`None` = tombstoned or never
    /// written). This is the batch executor's scan surface: a block-at-a-
    /// time table scan walks each chunk's contiguous slot slice directly
    /// instead of pulling rows through a one-at-a-time iterator, so the
    /// inner fill loop is a plain slice traversal over the same
    /// `Arc<Chunk>` storage that epoch snapshots share.
    pub fn chunk_slices(&self) -> impl Iterator<Item = &[Option<Row>]> + '_ {
        self.chunks.iter().map(|c| c.slots.as_slice())
    }

    /// Current table statistics.
    pub fn stats(&self) -> TableStats {
        TableStats {
            row_count: self.live,
            slot_count: self.slot_len,
        }
    }

    /// Number of distinct values in `column`, if an index over it exists to
    /// answer in O(1). `None` means "unknown" — the cost model falls back to
    /// a fixed selectivity guess, it does NOT mean zero.
    pub fn column_ndv(&self, column: usize) -> Option<usize> {
        self.index_on(column, None).map(|ix| ix.distinct_keys())
    }

    /// Distinct-value estimates for every indexed column, for the cost
    /// catalog: `(column, ndv)` pairs, one per indexed column (first index
    /// wins when a column carries both a hash and an ordered index).
    pub fn column_ndvs(&self) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = Vec::new();
        for ix in self.indexes() {
            if !out.iter().any(|&(c, _)| c == ix.column()) {
                out.push((ix.column(), ix.distinct_keys()));
            }
        }
        out
    }

    /// Validate arity and column types, applying int→double widening.
    fn check_row(&self, mut row: Row) -> Result<Row> {
        if row.len() != self.schema.len() {
            return Err(Error::execution(format!(
                "table `{}` expects {} columns, got {}",
                self.name,
                self.schema.len(),
                row.len()
            )));
        }
        for (i, col) in self.schema.columns().iter().enumerate() {
            let v = std::mem::replace(&mut row[i], Value::Null);
            row[i] = col.data_type.coerce(v).map_err(|_| {
                Error::execution(format!(
                    "column `{}` of table `{}` has type {}, got incompatible value",
                    col.name, self.name, col.data_type
                ))
            })?;
        }
        Ok(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grfusion_common::DataType;

    fn users() -> Table {
        let mut t = Table::new(
            "users",
            Schema::from_pairs(&[
                ("id", DataType::Integer),
                ("name", DataType::Varchar),
                ("score", DataType::Double),
            ]),
        );
        t.create_index("pk", 0, true, IndexKind::Hash).unwrap();
        t
    }

    fn row(id: i64, name: &str, score: f64) -> Row {
        vec![Value::Integer(id), Value::text(name), Value::Double(score)]
    }

    #[test]
    fn insert_get_scan() {
        let mut t = users();
        let r1 = t.insert(row(1, "a", 0.5)).unwrap();
        let r2 = t.insert(row(2, "b", 1.5)).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(r1).unwrap()[1], Value::text("a"));
        assert_eq!(t.get_value(r2, 2), Some(&Value::Double(1.5)));
        let ids: Vec<_> = t.scan().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![r1, r2]);
    }

    #[test]
    fn row_ids_are_stable_across_deletes() {
        let mut t = users();
        let r1 = t.insert(row(1, "a", 0.0)).unwrap();
        let r2 = t.insert(row(2, "b", 0.0)).unwrap();
        t.delete(r1).unwrap();
        let r3 = t.insert(row(3, "c", 0.0)).unwrap();
        // Slot of r1 is NOT reused.
        assert_ne!(r3, r1);
        assert_eq!(t.get(r2).unwrap()[0], Value::Integer(2));
        assert!(t.get(r1).is_none());
        assert_eq!(t.len(), 2);
        assert_eq!(t.slot_count(), 3);
    }

    #[test]
    fn unique_index_enforced_on_insert_and_update() {
        let mut t = users();
        t.insert(row(1, "a", 0.0)).unwrap();
        let r2 = t.insert(row(2, "b", 0.0)).unwrap();
        assert!(t.insert(row(1, "dup", 0.0)).is_err());
        assert_eq!(t.len(), 2);
        // update colliding with existing pk
        assert!(t.update(r2, row(1, "b", 0.0)).is_err());
        // self-update with same key is fine
        t.update(r2, row(2, "b2", 9.0)).unwrap();
        assert_eq!(t.get(r2).unwrap()[1], Value::text("b2"));
    }

    #[test]
    fn failed_update_leaves_indexes_consistent() {
        // An ordered index cannot hold PATH keys, but `would_conflict`
        // passes them (non-unique index): the insert-time failure fires
        // after the hash index on column 0 was already moved. Regression:
        // the move must be all-or-nothing.
        let mut t = Table::new(
            "g",
            Schema::from_pairs(&[("k", DataType::Integer), ("p", DataType::Path)]),
        );
        t.create_index("by_k", 0, true, IndexKind::Hash).unwrap();
        let r1 = t
            .insert(vec![Value::Integer(1), Value::Null])
            .unwrap();
        t.create_index("by_p", 1, false, IndexKind::Ordered).unwrap();
        let path = Value::Path(std::sync::Arc::new(grfusion_common::PathData::seed("g", 7)));
        let err = t.update(r1, vec![Value::Integer(2), path]);
        assert!(err.is_err());
        // Row store unchanged…
        assert_eq!(t.get(r1).unwrap()[0], Value::Integer(1));
        assert!(t.get(r1).unwrap()[1].is_null());
        // …and the hash index still maps the OLD key to the row (before
        // the fix it had already moved to key 2).
        let by_k = t.index_on(0, Some(IndexKind::Hash)).unwrap();
        assert_eq!(by_k.get(&Value::Integer(1)), vec![r1]);
        assert!(by_k.get(&Value::Integer(2)).is_empty());
        // A follow-up valid update still works.
        t.update(r1, vec![Value::Integer(3), Value::Null]).unwrap();
        let by_k = t.index_on(0, Some(IndexKind::Hash)).unwrap();
        assert_eq!(by_k.get(&Value::Integer(3)), vec![r1]);
    }

    #[test]
    fn delete_restore_roundtrip() {
        let mut t = users();
        let r1 = t.insert(row(1, "a", 0.0)).unwrap();
        let old = t.delete(r1).unwrap();
        assert!(t.get(r1).is_none());
        t.restore(r1, old).unwrap();
        assert_eq!(t.get(r1).unwrap()[0], Value::Integer(1));
        // Index entries are restored too.
        let ix = t.index_on(0, None).unwrap();
        assert_eq!(ix.get(&Value::Integer(1)), vec![r1]);
    }

    #[test]
    fn restore_into_occupied_slot_fails() {
        let mut t = users();
        let r1 = t.insert(row(1, "a", 0.0)).unwrap();
        assert!(t.restore(r1, row(9, "z", 0.0)).is_err());
    }

    #[test]
    fn update_moves_index_entries() {
        let mut t = users();
        let r1 = t.insert(row(1, "a", 0.0)).unwrap();
        t.update(r1, row(5, "a", 0.0)).unwrap();
        let ix = t.index_on(0, None).unwrap();
        assert!(ix.get(&Value::Integer(1)).is_empty());
        assert_eq!(ix.get(&Value::Integer(5)), vec![r1]);
    }

    #[test]
    fn type_checking_with_widening() {
        let mut t = users();
        // integer into double column widens
        let r = t
            .insert(vec![Value::Integer(1), Value::text("a"), Value::Integer(3)])
            .unwrap();
        assert_eq!(t.get(r).unwrap()[2], Value::Double(3.0));
        // wrong arity
        assert!(t.insert(vec![Value::Integer(2)]).is_err());
        // wrong type
        assert!(t
            .insert(vec![Value::text("x"), Value::text("a"), Value::Null])
            .is_err());
    }

    #[test]
    fn create_index_backfills_and_validates() {
        let mut t = users();
        t.insert(row(1, "a", 1.0)).unwrap();
        t.insert(row(2, "a", 2.0)).unwrap();
        t.create_index("by_name", 1, false, IndexKind::Hash).unwrap();
        let ix = t.index_on(1, None).unwrap();
        assert_eq!(ix.get(&Value::text("a")).len(), 2);
        // unique index over duplicate data fails
        assert!(t
            .create_index("uniq_name", 1, true, IndexKind::Hash)
            .is_err());
        // duplicate index name fails
        assert!(t.create_index("by_name", 2, false, IndexKind::Hash).is_err());
    }

    #[test]
    fn snapshot_is_isolated_from_later_dml() {
        let mut t = users();
        let r1 = t.insert(row(1, "a", 1.0)).unwrap();
        let r2 = t.insert(row(2, "b", 2.0)).unwrap();
        let snap = t.snapshot();
        // Mutate the live table every way DML can.
        t.update(r1, row(1, "a2", 9.0)).unwrap();
        t.delete(r2).unwrap();
        let r3 = t.insert(row(3, "c", 3.0)).unwrap();
        // The snapshot still shows the original rows (and only them).
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.get(r1).unwrap()[1], Value::text("a"));
        assert_eq!(snap.get(r2).unwrap()[0], Value::Integer(2));
        assert!(snap.get(r3).is_none());
        // Snapshot indexes are frozen too.
        let ix = snap.index_on(0, None).unwrap();
        assert_eq!(ix.get(&Value::Integer(2)), vec![r2]);
        assert!(ix.get(&Value::Integer(3)).is_empty());
        // Live table moved on.
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(r1).unwrap()[1], Value::text("a2"));
        assert!(t.get(r2).is_none());
        let live_ix = t.index_on(0, None).unwrap();
        assert_eq!(live_ix.get(&Value::Integer(3)), vec![r3]);
    }

    #[test]
    fn snapshot_survives_chunk_boundary_growth() {
        let mut t = users();
        for i in 0..300 {
            t.insert(row(i, "n", i as f64)).unwrap();
        }
        let snap = t.snapshot();
        for i in 300..600 {
            t.insert(row(i, "n", i as f64)).unwrap();
        }
        assert_eq!(snap.len(), 300);
        assert_eq!(snap.slot_count(), 300);
        assert_eq!(t.len(), 600);
        assert_eq!(snap.scan().count(), 300);
        assert!(snap.get(RowId(299)).is_some());
        assert!(snap.get(RowId(300)).is_none());
    }

    #[test]
    fn chunk_slices_cover_every_slot_in_order() {
        let mut t = users();
        let mut ids = Vec::new();
        for i in 0..600 {
            ids.push(t.insert(row(i, "n", i as f64)).unwrap());
        }
        t.delete(ids[7]).unwrap();
        // Chunk slices are the batch scan surface: concatenated they must
        // equal the slot vector, with tombstones as None, in slot order.
        let slots: Vec<&Option<Row>> = t.chunk_slices().flatten().collect();
        assert_eq!(slots.len(), 600);
        assert!(slots[7].is_none());
        let live: Vec<i64> = slots
            .iter()
            .filter_map(|s| s.as_ref())
            .map(|r| r[0].as_integer().unwrap())
            .collect();
        let scanned: Vec<i64> = t.scan().map(|(_, r)| r[0].as_integer().unwrap()).collect();
        assert_eq!(live, scanned);
        // Chunks are fixed-size runs: every slice but the last is full.
        let lens: Vec<usize> = t.chunk_slices().map(|c| c.len()).collect();
        for l in &lens[..lens.len() - 1] {
            assert_eq!(*l, 256);
        }
    }

    #[test]
    fn ordered_index_supports_ranges_after_dml() {
        let mut t = users();
        t.create_index("by_score", 2, false, IndexKind::Ordered)
            .unwrap();
        let mut ids = Vec::new();
        for i in 0..10 {
            ids.push(t.insert(row(i, "n", i as f64)).unwrap());
        }
        t.delete(ids[5]).unwrap();
        let ix = t.index_on(2, Some(IndexKind::Ordered)).unwrap();
        let got = ix
            .range(
                Some((&Value::Double(4.0), true)),
                Some((&Value::Double(7.0), true)),
            )
            .unwrap();
        assert_eq!(got, vec![ids[4], ids[6], ids[7]]);
    }

    #[test]
    fn column_ndv_tracks_indexed_columns_through_dml() {
        let mut t = users();
        t.create_index("by_name", 1, false, IndexKind::Hash).unwrap();
        assert_eq!(t.column_ndv(1), Some(0));
        assert_eq!(t.column_ndv(2), None, "unindexed column has no estimate");
        let mut ids = Vec::new();
        for i in 0..10 {
            // Five rows per name: 2 distinct names.
            ids.push(t.insert(row(i, if i % 2 == 0 { "a" } else { "b" }, 0.0)).unwrap());
        }
        assert_eq!(t.column_ndv(1), Some(2));
        t.delete(ids[1]).unwrap();
        assert_eq!(t.column_ndv(1), Some(2), "other `b` rows keep the key live");
        for &id in &ids {
            let _ = t.delete(id);
        }
        assert_eq!(t.column_ndv(1), Some(0));
        let pairs = t.column_ndvs();
        assert!(pairs.iter().any(|&(c, _)| c == 1));
    }
}
