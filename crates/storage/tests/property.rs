//! Property tests for the row store: whatever random DML sequence runs,
//! the secondary indexes and the heap must agree exactly, row ids must
//! stay stable, and undo must restore the pre-transaction state.

use proptest::prelude::*;

use grfusion_common::{DataType, Schema, Value};
use grfusion_storage::{Catalog, IndexKind, Table, UndoLog, UndoOp};

#[derive(Debug, Clone)]
enum Op {
    Insert { key: i64, payload: i64 },
    Delete { pick: usize },
    Update { pick: usize, payload: i64 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0i64..40, any::<i64>()).prop_map(|(key, payload)| Op::Insert { key, payload }),
            (0usize..64).prop_map(|pick| Op::Delete { pick }),
            (0usize..64, any::<i64>()).prop_map(|(pick, payload)| Op::Update { pick, payload }),
        ],
        0..60,
    )
}

fn make_table() -> Table {
    let mut t = Table::new(
        "t",
        Schema::from_pairs(&[
            ("k", DataType::Integer),
            ("p", DataType::Integer),
        ]),
    );
    t.create_index("uk", 0, true, IndexKind::Hash).unwrap();
    t.create_index("by_p", 1, false, IndexKind::Ordered).unwrap();
    t
}

/// Reference model: (row id, key, payload) triples.
type Model = Vec<(grfusion_common::RowId, i64, i64)>;

fn check_consistency(t: &Table, model: &Model) {
    assert_eq!(t.len(), model.len());
    // Heap agrees with the model.
    for (rid, k, p) in model {
        let row = t.get(*rid).expect("live row");
        assert_eq!(row[0], Value::Integer(*k));
        assert_eq!(row[1], Value::Integer(*p));
    }
    // Unique index finds exactly the modeled row per key.
    let uk = t.index_on(0, Some(IndexKind::Hash)).unwrap();
    for (rid, k, _) in model {
        assert_eq!(uk.get(&Value::Integer(*k)), vec![*rid], "key {k}");
    }
    // Ordered index range over everything returns every live row.
    let by_p = t.index_on(1, Some(IndexKind::Ordered)).unwrap();
    let mut from_index = by_p.range(None, None).unwrap();
    from_index.sort();
    let mut expected: Vec<_> = model.iter().map(|(r, _, _)| *r).collect();
    expected.sort();
    assert_eq!(from_index, expected);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn indexes_and_heap_agree_under_random_dml(ops in arb_ops()) {
        let mut t = make_table();
        let mut model: Model = Vec::new();
        for op in ops {
            match op {
                Op::Insert { key, payload } => {
                    let dup = model.iter().any(|(_, k, _)| *k == key);
                    let r = t.insert(vec![Value::Integer(key), Value::Integer(payload)]);
                    if dup {
                        prop_assert!(r.is_err(), "duplicate key {} accepted", key);
                    } else {
                        model.push((r.unwrap(), key, payload));
                    }
                }
                Op::Delete { pick } => {
                    if model.is_empty() { continue; }
                    let i = pick % model.len();
                    let (rid, _, _) = model.remove(i);
                    t.delete(rid).unwrap();
                    prop_assert!(t.get(rid).is_none());
                }
                Op::Update { pick, payload } => {
                    if model.is_empty() { continue; }
                    let i = pick % model.len();
                    let (rid, k, _) = model[i];
                    t.update(rid, vec![Value::Integer(k), Value::Integer(payload)]).unwrap();
                    model[i] = (rid, k, payload);
                }
            }
            check_consistency(&t, &model);
        }
    }

    #[test]
    fn undo_log_round_trips_random_transactions(ops in arb_ops()) {
        let mut catalog = Catalog::new();
        catalog.create_table(make_table()).unwrap();
        let handle = catalog.table("t").unwrap();

        // Seed some committed rows.
        let mut live: Vec<(grfusion_common::RowId, i64)> = Vec::new();
        for k in 0..10 {
            let rid = handle
                .write()
                .insert(vec![Value::Integer(k), Value::Integer(k * 100)])
                .unwrap();
            live.push((rid, k));
        }
        let snapshot: Vec<(grfusion_common::RowId, Vec<Value>)> = handle
            .read()
            .scan()
            .map(|(r, row)| (r, row.clone()))
            .collect();

        // Run the ops inside an undo-logged transaction.
        let mut log = UndoLog::new();
        let mut txn_live = live.clone();
        for op in ops {
            match op {
                Op::Insert { key, payload } => {
                    let r = handle
                        .write()
                        .insert(vec![Value::Integer(key + 1000), Value::Integer(payload)]);
                    if let Ok(rid) = r {
                        log.record(UndoOp::Insert { table: "t".into(), row: rid });
                        txn_live.push((rid, key + 1000));
                    }
                }
                Op::Delete { pick } => {
                    if txn_live.is_empty() { continue; }
                    let i = pick % txn_live.len();
                    let (rid, _) = txn_live.remove(i);
                    let old = handle.write().delete(rid).unwrap();
                    log.record(UndoOp::Delete { table: "t".into(), row: rid, old });
                }
                Op::Update { pick, payload } => {
                    if txn_live.is_empty() { continue; }
                    let i = pick % txn_live.len();
                    let (rid, k) = txn_live[i];
                    let old = handle
                        .write()
                        .update(rid, vec![Value::Integer(k), Value::Integer(payload)])
                        .unwrap();
                    log.record(UndoOp::Update { table: "t".into(), row: rid, old });
                }
            }
        }

        // Roll everything back: the table must equal the snapshot exactly.
        log.rollback_to(&catalog, 0).unwrap();
        let after: Vec<(grfusion_common::RowId, Vec<Value>)> = handle
            .read()
            .scan()
            .map(|(r, row)| (r, row.clone()))
            .collect();
        prop_assert_eq!(snapshot, after);
    }
}
