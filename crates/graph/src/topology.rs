//! The materialized graph-view topology.

use std::collections::HashMap;

use grfusion_common::{EdgeId, Error, Result, RowId, VertexId};

/// Slot index of a vertex inside the topology's vertex arena.
pub type VertexSlot = u32;
/// Slot index of an edge inside the topology's edge arena.
pub type EdgeSlot = u32;

#[derive(Debug)]
struct VertexNode {
    id: VertexId,
    tuple: RowId,
    /// Outgoing edge slots. For undirected graphs every incident edge
    /// appears here (and `inc` stays empty).
    out: Vec<EdgeSlot>,
    /// Incoming edge slots (directed graphs only).
    inc: Vec<EdgeSlot>,
    alive: bool,
}

#[derive(Debug)]
struct EdgeNode {
    id: EdgeId,
    from: VertexSlot,
    to: VertexSlot,
    tuple: RowId,
    alive: bool,
}

/// Adjacency-list graph topology with tuple pointers (EDBT 2018 §3.2,
/// Figure 4).
///
/// The topology stores **no attributes** — only identifiers, adjacency, and
/// `RowId` tuple pointers into the vertex/edge relational sources. Both
/// navigation directions are O(1): `vertex_by_id` hashes a user-visible id
/// to its slot, and each slot holds the tuple pointer back to storage.
///
/// Slots are stable: deletion marks a node dead and unlinks adjacency, but
/// never shifts other slots, so in-flight traversal state stays valid
/// across the serial-execution boundary.
#[derive(Debug)]
pub struct GraphTopology {
    name: String,
    directed: bool,
    vertexes: Vec<VertexNode>,
    edges: Vec<EdgeNode>,
    vertex_by_id: HashMap<VertexId, VertexSlot>,
    edge_by_id: HashMap<EdgeId, EdgeSlot>,
    live_vertexes: usize,
    live_edges: usize,
    /// Total adjacency-list entries across live vertexes (the traversal
    /// branching mass), maintained incrementally for O(1) fan-out stats.
    adjacency_entries: usize,
}

impl GraphTopology {
    pub fn new(name: impl Into<String>, directed: bool) -> Self {
        GraphTopology {
            name: name.into(),
            directed,
            vertexes: Vec::new(),
            edges: Vec::new(),
            vertex_by_id: HashMap::new(),
            edge_by_id: HashMap::new(),
            live_vertexes: 0,
            live_edges: 0,
            adjacency_entries: 0,
        }
    }

    /// Pre-size the arenas when the source cardinalities are known (graph
    /// view construction does a single pass over the sources).
    pub fn with_capacity(
        name: impl Into<String>,
        directed: bool,
        vertexes: usize,
        edges: usize,
    ) -> Self {
        let mut g = GraphTopology::new(name, directed);
        g.vertexes.reserve(vertexes);
        g.edges.reserve(edges);
        g.vertex_by_id.reserve(vertexes);
        g.edge_by_id.reserve(edges);
        g
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn directed(&self) -> bool {
        self.directed
    }

    pub fn vertex_count(&self) -> usize {
        self.live_vertexes
    }

    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    // ---- construction / maintenance ---------------------------------------

    /// Add a vertex. Fails on duplicate user-visible id.
    pub fn add_vertex(&mut self, id: VertexId, tuple: RowId) -> Result<VertexSlot> {
        if self.vertex_by_id.contains_key(&id) {
            return Err(Error::constraint(format!(
                "graph view `{}` already has vertex {id}",
                self.name
            )));
        }
        let slot = self.vertexes.len() as VertexSlot;
        self.vertexes.push(VertexNode {
            id,
            tuple,
            out: Vec::new(),
            inc: Vec::new(),
            alive: true,
        });
        self.vertex_by_id.insert(id, slot);
        self.live_vertexes += 1;
        Ok(slot)
    }

    /// Add an edge between existing vertexes. Enforces the paper's §3.1
    /// constraint that edge endpoints are contained in the vertex set.
    pub fn add_edge(
        &mut self,
        id: EdgeId,
        from: VertexId,
        to: VertexId,
        tuple: RowId,
    ) -> Result<EdgeSlot> {
        if self.edge_by_id.contains_key(&id) {
            return Err(Error::constraint(format!(
                "graph view `{}` already has edge {id}",
                self.name
            )));
        }
        let from_slot = self.vertex_slot(from)?;
        let to_slot = self.vertex_slot(to)?;
        let slot = self.edges.len() as EdgeSlot;
        self.edges.push(EdgeNode {
            id,
            from: from_slot,
            to: to_slot,
            tuple,
            alive: true,
        });
        self.edge_by_id.insert(id, slot);
        self.vertexes[from_slot as usize].out.push(slot);
        self.adjacency_entries += 1;
        if self.directed {
            self.vertexes[to_slot as usize].inc.push(slot);
        } else if to_slot != from_slot {
            // Undirected: the edge is traversable from both endpoints.
            self.vertexes[to_slot as usize].out.push(slot);
            self.adjacency_entries += 1;
        }
        self.live_edges += 1;
        Ok(slot)
    }

    /// Remove an edge by user-visible id, returning its tuple pointer so
    /// the caller can undo / clean up relational state.
    pub fn remove_edge(&mut self, id: EdgeId) -> Result<RowId> {
        let slot = self
            .edge_by_id
            .remove(&id)
            .ok_or_else(|| Error::constraint(format!("edge {id} not in graph `{}`", self.name)))?;
        let (from, to, tuple) = {
            let e = &mut self.edges[slot as usize];
            e.alive = false;
            (e.from, e.to, e.tuple)
        };
        self.vertexes[from as usize].out.retain(|&s| s != slot);
        self.adjacency_entries -= 1;
        if self.directed {
            self.vertexes[to as usize].inc.retain(|&s| s != slot);
        } else if to != from {
            self.vertexes[to as usize].out.retain(|&s| s != slot);
            self.adjacency_entries -= 1;
        }
        self.live_edges -= 1;
        Ok(tuple)
    }

    /// Remove a vertex by user-visible id. Refuses while incident edges
    /// remain (referential integrity of the edge source, §3.3).
    pub fn remove_vertex(&mut self, id: VertexId) -> Result<RowId> {
        let slot = self.vertex_slot(id)?;
        {
            let v = &self.vertexes[slot as usize];
            if !v.out.is_empty() || !v.inc.is_empty() {
                return Err(Error::constraint(format!(
                    "vertex {id} in graph `{}` still has incident edges",
                    self.name
                )));
            }
        }
        self.vertex_by_id.remove(&id);
        let v = &mut self.vertexes[slot as usize];
        v.alive = false;
        self.live_vertexes -= 1;
        Ok(v.tuple)
    }

    /// Rename a vertex's user-visible id (§3.3.1: identifier updates must
    /// keep the topology consistent with the relational source).
    pub fn rename_vertex(&mut self, old: VertexId, new: VertexId) -> Result<()> {
        if old == new {
            return Ok(());
        }
        if self.vertex_by_id.contains_key(&new) {
            return Err(Error::constraint(format!(
                "graph view `{}` already has vertex {new}",
                self.name
            )));
        }
        let slot = self.vertex_slot(old)?;
        self.vertex_by_id.remove(&old);
        self.vertex_by_id.insert(new, slot);
        self.vertexes[slot as usize].id = new;
        Ok(())
    }

    /// Rename an edge's user-visible id.
    pub fn rename_edge(&mut self, old: EdgeId, new: EdgeId) -> Result<()> {
        if old == new {
            return Ok(());
        }
        if self.edge_by_id.contains_key(&new) {
            return Err(Error::constraint(format!(
                "graph view `{}` already has edge {new}",
                self.name
            )));
        }
        let slot = *self
            .edge_by_id
            .get(&old)
            .ok_or_else(|| Error::constraint(format!("edge {old} not in graph `{}`", self.name)))?;
        self.edge_by_id.remove(&old);
        self.edge_by_id.insert(new, slot);
        self.edges[slot as usize].id = new;
        Ok(())
    }

    // ---- O(1) navigation ----------------------------------------------------

    /// Id → slot (the hash-map hop of Figure 4).
    #[inline]
    pub fn vertex_slot(&self, id: VertexId) -> Result<VertexSlot> {
        self.vertex_by_id.get(&id).copied().ok_or_else(|| {
            Error::constraint(format!("vertex {id} not in graph `{}`", self.name))
        })
    }

    /// Id → slot for edges.
    #[inline]
    pub fn edge_slot(&self, id: EdgeId) -> Result<EdgeSlot> {
        self.edge_by_id
            .get(&id)
            .copied()
            .ok_or_else(|| Error::constraint(format!("edge {id} not in graph `{}`", self.name)))
    }

    #[inline]
    pub fn has_vertex(&self, id: VertexId) -> bool {
        self.vertex_by_id.contains_key(&id)
    }

    #[inline]
    pub fn vertex_id(&self, slot: VertexSlot) -> VertexId {
        self.vertexes[slot as usize].id
    }

    #[inline]
    pub fn edge_id(&self, slot: EdgeSlot) -> EdgeId {
        self.edges[slot as usize].id
    }

    /// Vertex slot → tuple pointer.
    #[inline]
    pub fn vertex_tuple(&self, slot: VertexSlot) -> RowId {
        self.vertexes[slot as usize].tuple
    }

    /// Edge slot → tuple pointer.
    #[inline]
    pub fn edge_tuple(&self, slot: EdgeSlot) -> RowId {
        self.edges[slot as usize].tuple
    }

    /// Update the stored tuple pointer (storage may hand the engine a new
    /// slot if a row is deleted+reinserted by an id update).
    pub fn set_vertex_tuple(&mut self, slot: VertexSlot, tuple: RowId) {
        self.vertexes[slot as usize].tuple = tuple;
    }

    pub fn set_edge_tuple(&mut self, slot: EdgeSlot, tuple: RowId) {
        self.edges[slot as usize].tuple = tuple;
    }

    /// Endpoints of an edge, as slots.
    #[inline]
    pub fn edge_endpoints(&self, slot: EdgeSlot) -> (VertexSlot, VertexSlot) {
        let e = &self.edges[slot as usize];
        (e.from, e.to)
    }

    /// Outgoing edges of a vertex (all incident edges for undirected
    /// graphs).
    #[inline]
    pub fn out_edges(&self, slot: VertexSlot) -> &[EdgeSlot] {
        &self.vertexes[slot as usize].out
    }

    /// Incoming edges (empty for undirected graphs — use `out_edges`).
    #[inline]
    pub fn in_edges(&self, slot: VertexSlot) -> &[EdgeSlot] {
        &self.vertexes[slot as usize].inc
    }

    /// `FanOut` property (§5.2): O(1).
    #[inline]
    pub fn fan_out(&self, slot: VertexSlot) -> usize {
        self.vertexes[slot as usize].out.len()
    }

    /// `FanIn` property (§5.2): O(1). Equal to `FanOut` for undirected
    /// graphs.
    #[inline]
    pub fn fan_in(&self, slot: VertexSlot) -> usize {
        if self.directed {
            self.vertexes[slot as usize].inc.len()
        } else {
            self.vertexes[slot as usize].out.len()
        }
    }

    /// Given an edge incident to `from`, the vertex on the other side.
    /// (For directed graphs, traversal always moves from→to.)
    #[inline]
    pub fn edge_target(&self, edge: EdgeSlot, from: VertexSlot) -> VertexSlot {
        let e = &self.edges[edge as usize];
        if e.from == from {
            e.to
        } else {
            e.from
        }
    }

    /// Iterate live vertex slots.
    pub fn vertex_slots(&self) -> impl Iterator<Item = VertexSlot> + '_ {
        self.vertexes
            .iter()
            .enumerate()
            .filter(|(_, v)| v.alive)
            .map(|(i, _)| i as VertexSlot)
    }

    /// Iterate live edge slots.
    pub fn edge_slots(&self) -> impl Iterator<Item = EdgeSlot> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive)
            .map(|(i, _)| i as EdgeSlot)
    }

    // ---- statistics -----------------------------------------------------------

    /// Average traversal branching factor `F` (§6.3's catalog statistic),
    /// in O(1): the adjacency-entry count is maintained incrementally on
    /// every edge insert/delete (the paper maintains the same statistic
    /// with a background thread).
    pub fn avg_fan_out(&self) -> f64 {
        if self.live_vertexes == 0 {
            return 0.0;
        }
        self.adjacency_entries as f64 / self.live_vertexes as f64
    }

    /// Topology statistics: the paper's optimizer keeps average fan-out per
    /// graph view in the system catalog (§6.3) to choose BFS vs. DFS.
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            vertex_count: self.live_vertexes,
            edge_count: self.live_edges,
            avg_fan_out: self.avg_fan_out(),
            memory_bytes: self.memory_bytes(),
        }
    }

    /// Rough resident size of the topology (arenas + adjacency + id maps),
    /// used by the graph-view build-cost experiment. Attribute data is NOT
    /// included — it lives in the relational sources (§3.2's decoupling).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let vertex_fixed = self.vertexes.capacity() * size_of::<VertexNode>();
        let adjacency: usize = self
            .vertexes
            .iter()
            .map(|v| (v.out.capacity() + v.inc.capacity()) * size_of::<EdgeSlot>())
            .sum();
        let edge_fixed = self.edges.capacity() * size_of::<EdgeNode>();
        // HashMap entries: key + value + bucket overhead estimate.
        let map_entry = size_of::<(VertexId, VertexSlot)>() * 2;
        let maps = self.vertex_by_id.len() * map_entry + self.edge_by_id.len() * map_entry;
        vertex_fixed + adjacency + edge_fixed + maps
    }
}

/// Statistics snapshot for a graph view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphStats {
    pub vertex_count: usize,
    pub edge_count: usize,
    /// Average traversal branching factor `F` used by the §6.3 heuristic
    /// (`use BFS iff F < L`).
    pub avg_fan_out: f64,
    /// Approximate topology memory footprint in bytes.
    pub memory_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond(directed: bool) -> GraphTopology {
        // 1 -> 2 -> 4, 1 -> 3 -> 4
        let mut g = GraphTopology::new("g", directed);
        for v in 1..=4 {
            g.add_vertex(v, RowId(v as u64)).unwrap();
        }
        g.add_edge(10, 1, 2, RowId(10)).unwrap();
        g.add_edge(11, 1, 3, RowId(11)).unwrap();
        g.add_edge(12, 2, 4, RowId(12)).unwrap();
        g.add_edge(13, 3, 4, RowId(13)).unwrap();
        g
    }

    #[test]
    fn directed_adjacency_and_fan() {
        let g = diamond(true);
        let v1 = g.vertex_slot(1).unwrap();
        let v4 = g.vertex_slot(4).unwrap();
        assert_eq!(g.fan_out(v1), 2);
        assert_eq!(g.fan_in(v1), 0);
        assert_eq!(g.fan_out(v4), 0);
        assert_eq!(g.fan_in(v4), 2);
        assert_eq!(g.out_edges(v1).len(), 2);
        assert_eq!(g.in_edges(v4).len(), 2);
    }

    #[test]
    fn undirected_adjacency_is_symmetric() {
        let g = diamond(false);
        let v1 = g.vertex_slot(1).unwrap();
        let v4 = g.vertex_slot(4).unwrap();
        assert_eq!(g.fan_out(v1), 2);
        assert_eq!(g.fan_in(v1), 2);
        assert_eq!(g.fan_out(v4), 2);
        // traversal from v4 reaches 2 and 3
        let mut targets: Vec<_> = g
            .out_edges(v4)
            .iter()
            .map(|&e| g.vertex_id(g.edge_target(e, v4)))
            .collect();
        targets.sort();
        assert_eq!(targets, vec![2, 3]);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut g = diamond(true);
        assert!(g.add_vertex(1, RowId(99)).is_err());
        assert!(g.add_edge(10, 2, 3, RowId(99)).is_err());
    }

    #[test]
    fn edge_endpoints_must_exist() {
        let mut g = GraphTopology::new("g", true);
        g.add_vertex(1, RowId(1)).unwrap();
        assert!(g.add_edge(10, 1, 99, RowId(10)).is_err());
        assert!(g.add_edge(10, 99, 1, RowId(10)).is_err());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn remove_edge_unlinks_adjacency() {
        let mut g = diamond(true);
        let tuple = g.remove_edge(10).unwrap();
        assert_eq!(tuple, RowId(10));
        assert_eq!(g.edge_count(), 3);
        let v1 = g.vertex_slot(1).unwrap();
        assert_eq!(g.fan_out(v1), 1);
        let v2 = g.vertex_slot(2).unwrap();
        assert_eq!(g.fan_in(v2), 0);
        assert!(g.remove_edge(10).is_err());
    }

    #[test]
    fn remove_vertex_requires_no_edges() {
        let mut g = diamond(true);
        assert!(g.remove_vertex(2).is_err());
        g.remove_edge(10).unwrap();
        g.remove_edge(12).unwrap();
        let tuple = g.remove_vertex(2).unwrap();
        assert_eq!(tuple, RowId(2));
        assert_eq!(g.vertex_count(), 3);
        assert!(!g.has_vertex(2));
        // Re-adding the id afterwards is allowed.
        g.add_vertex(2, RowId(22)).unwrap();
        assert!(g.has_vertex(2));
    }

    #[test]
    fn undirected_remove_edge_unlinks_both_sides() {
        let mut g = diamond(false);
        g.remove_edge(10).unwrap();
        let v2 = g.vertex_slot(2).unwrap();
        assert_eq!(g.fan_out(v2), 1); // only edge 12 remains
    }

    #[test]
    fn rename_vertex_keeps_topology() {
        let mut g = diamond(true);
        g.rename_vertex(1, 100).unwrap();
        assert!(!g.has_vertex(1));
        let slot = g.vertex_slot(100).unwrap();
        assert_eq!(g.fan_out(slot), 2);
        assert_eq!(g.vertex_id(slot), 100);
        // collision rejected
        assert!(g.rename_vertex(100, 2).is_err());
        // no-op rename ok
        g.rename_vertex(100, 100).unwrap();
    }

    #[test]
    fn rename_edge() {
        let mut g = diamond(true);
        g.rename_edge(10, 1000).unwrap();
        assert!(g.edge_slot(10).is_err());
        let slot = g.edge_slot(1000).unwrap();
        assert_eq!(g.edge_id(slot), 1000);
        assert!(g.rename_edge(1000, 11).is_err());
    }

    #[test]
    fn stats_avg_fanout() {
        let g = diamond(true);
        let s = g.stats();
        assert_eq!(s.vertex_count, 4);
        assert_eq!(s.edge_count, 4);
        assert!((s.avg_fan_out - 1.0).abs() < 1e-12); // 4 edges / 4 vertexes
        assert!(s.memory_bytes > 0);

        let g = diamond(false);
        // undirected: each edge in two lists -> branching factor 2
        assert!((g.stats().avg_fan_out - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tuple_pointers_roundtrip() {
        let mut g = diamond(true);
        let v1 = g.vertex_slot(1).unwrap();
        assert_eq!(g.vertex_tuple(v1), RowId(1));
        g.set_vertex_tuple(v1, RowId(77));
        assert_eq!(g.vertex_tuple(v1), RowId(77));
        let e = g.edge_slot(12).unwrap();
        assert_eq!(g.edge_tuple(e), RowId(12));
    }

    #[test]
    fn self_loop_undirected_not_double_linked() {
        let mut g = GraphTopology::new("g", false);
        g.add_vertex(1, RowId(1)).unwrap();
        g.add_edge(10, 1, 1, RowId(10)).unwrap();
        let v1 = g.vertex_slot(1).unwrap();
        assert_eq!(g.fan_out(v1), 1);
        g.remove_edge(10).unwrap();
        assert_eq!(g.fan_out(v1), 0);
    }
}
