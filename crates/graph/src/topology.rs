//! The materialized graph-view topology.

use std::collections::HashMap;

use grfusion_common::{EdgeId, Error, Result, RowId, VertexId};

/// Slot index of a vertex inside the topology's vertex arena.
pub type VertexSlot = u32;
/// Slot index of an edge inside the topology's edge arena.
pub type EdgeSlot = u32;

/// Widen a 32-bit slot (or CSR offset) to an array index. The single
/// audited widening site for the arena index casts below.
#[inline(always)]
fn ix(v: u32) -> usize {
    v as usize // cast-ok: u32 -> usize is lossless on every supported target
}

#[derive(Debug, Clone)]
struct VertexNode {
    id: VertexId,
    tuple: RowId,
    /// Outgoing edge slots. For undirected graphs every incident edge
    /// appears here (and `inc` stays empty).
    out: Vec<EdgeSlot>,
    /// Incoming edge slots (directed graphs only).
    inc: Vec<EdgeSlot>,
    alive: bool,
    /// Sealed topologies only: this vertex's adjacency lives in the
    /// per-vertex `out`/`inc` Vecs (the delta overlay) rather than in the
    /// sealed CSR arrays. Always false while the topology is unsealed.
    overlaid: bool,
}

#[derive(Debug, Clone)]
struct EdgeNode {
    id: EdgeId,
    from: VertexSlot,
    to: VertexSlot,
    tuple: RowId,
    alive: bool,
}

/// Sealed CSR (compressed sparse row) snapshot of the adjacency.
///
/// Built by [`GraphTopology::seal`] from the per-vertex edge lists:
/// `out_offsets[v]..out_offsets[v + 1]` indexes the contiguous
/// `out_targets` run holding vertex `v`'s outgoing edge slots in exactly
/// the order the per-vertex `Vec` held them, with the *resolved far
/// endpoint* of each hop laid out in the parallel `out_heads` array — so a
/// frontier expansion reads two cache-linear arrays instead of chasing one
/// heap-allocated `Vec` plus one `EdgeNode` per hop. Incoming edges get the
/// same offsets/targets treatment (no heads — `FanIn` only needs counts and
/// slots).
///
/// The arrays cover the vertex arena as it existed at seal time
/// (`out_offsets.len() - 1` slots). Vertexes added later, and vertexes
/// whose adjacency changed after sealing, are diverted to the delta
/// overlay (their `VertexNode::overlaid` flag) and never read the CSR.
#[derive(Debug)]
struct CsrLayout {
    /// `len == sealed vertex arena size + 1`; prefix sums into `out_targets`.
    out_offsets: Vec<u32>,
    /// Outgoing edge slots, vertex-major, per-vertex traversal order.
    out_targets: Vec<EdgeSlot>,
    /// Parallel to `out_targets`: the vertex on the other side of the hop
    /// (precomputed `edge_target`, the tuple-pointer hop of Figure 4 done
    /// once at seal time instead of per traversal step).
    out_heads: Vec<VertexSlot>,
    in_offsets: Vec<u32>,
    in_targets: Vec<EdgeSlot>,
}

impl CsrLayout {
    /// Number of vertex slots covered by the sealed arrays.
    #[inline]
    fn vertex_span(&self) -> usize {
        self.out_offsets.len() - 1
    }

    #[inline]
    fn out_range(&self, v: VertexSlot) -> std::ops::Range<usize> {
        ix(self.out_offsets[ix(v)])..ix(self.out_offsets[ix(v) + 1])
    }

    #[inline]
    fn out_slice(&self, v: VertexSlot) -> &[EdgeSlot] {
        &self.out_targets[self.out_range(v)]
    }

    #[inline]
    fn in_slice(&self, v: VertexSlot) -> &[EdgeSlot] {
        let r = ix(self.in_offsets[ix(v)])..ix(self.in_offsets[ix(v) + 1]);
        &self.in_targets[r]
    }

    /// Heap footprint of the sealed arrays.
    fn bytes(&self) -> usize {
        use std::mem::size_of;
        (self.out_offsets.capacity() + self.in_offsets.capacity()) * size_of::<u32>()
            + (self.out_targets.capacity() + self.in_targets.capacity()) * size_of::<EdgeSlot>()
            + self.out_heads.capacity() * size_of::<VertexSlot>()
    }
}

/// Which physical layout a topology's adjacency reads resolve to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyLayout {
    /// Never sealed (or sealing disabled): per-vertex adjacency `Vec`s.
    Adjacency,
    /// Sealed with an empty delta overlay: pure CSR.
    Csr,
    /// Sealed, with `n` vertexes diverted to the delta overlay by
    /// post-seal maintenance.
    Delta(usize),
}

impl std::fmt::Display for TopologyLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyLayout::Adjacency => write!(f, "adjacency"),
            TopologyLayout::Csr => write!(f, "csr"),
            TopologyLayout::Delta(n) => write!(f, "delta({n})"),
        }
    }
}

/// Adjacency-list graph topology with tuple pointers (EDBT 2018 §3.2,
/// Figure 4).
///
/// The topology stores **no attributes** — only identifiers, adjacency, and
/// `RowId` tuple pointers into the vertex/edge relational sources. Both
/// navigation directions are O(1): `vertex_by_id` hashes a user-visible id
/// to its slot, and each slot holds the tuple pointer back to storage.
///
/// Slots are stable: deletion marks a node dead and unlinks adjacency, but
/// never shifts other slots, so in-flight traversal state stays valid
/// across the serial-execution boundary.
#[derive(Debug, Clone)]
pub struct GraphTopology {
    name: String,
    directed: bool,
    vertexes: Vec<VertexNode>,
    edges: Vec<EdgeNode>,
    vertex_by_id: HashMap<VertexId, VertexSlot>,
    edge_by_id: HashMap<EdgeId, EdgeSlot>,
    live_vertexes: usize,
    live_edges: usize,
    /// Total adjacency-list entries across live vertexes (the traversal
    /// branching mass), maintained incrementally for O(1) fan-out stats.
    adjacency_entries: usize,
    /// Sealed CSR snapshot, if [`GraphTopology::seal`] has run. Vertexes
    /// whose `overlaid` flag is set bypass it (delta overlay). Behind `Arc`
    /// so epoch snapshots share the (immutable) sealed arrays with the live
    /// topology: a re-seal installs a *fresh* `Arc`, never mutates one.
    csr: Option<std::sync::Arc<CsrLayout>>,
    /// Number of vertexes currently diverted to the delta overlay; always
    /// 0 while unsealed.
    overlaid_vertexes: usize,
    /// Distribution statistics collected by the last [`GraphTopology::seal`]
    /// (degree histogram, reachability samples). `None` until first sealed;
    /// kept — but reported stale — while the delta overlay diverges from
    /// the sealed snapshot.
    seal_stats: Option<SealStats>,
}

/// Seal-time distribution statistics (§6.3's catalog, extended): collected
/// in one pass over the freshly built CSR arrays, refreshed on every
/// re-seal, and flagged stale once post-seal DML diverts vertexes to the
/// delta overlay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SealStats {
    /// Log2-bucketed out-degree histogram over live vertexes: bucket 0
    /// counts degree 0, bucket `k` (1..=14) counts degrees in
    /// `[2^(k-1), 2^k)`, bucket 15 counts everything above.
    pub degree_histogram: [usize; DEGREE_BUCKETS],
    /// Largest out-degree of any live vertex at seal time.
    pub max_out_degree: usize,
    /// Average number of distinct vertexes reachable within `d + 1` hops
    /// (cumulative, start excluded) from a deterministic sample of seeds.
    pub reach_profile: [f64; REACH_DEPTHS],
    /// Seeds the reachability profile averaged over (0 for an empty graph).
    pub reach_samples: usize,
    /// Live vertex / edge counts at seal time, used to detect post-seal
    /// drift that bypasses the overlay accounting.
    pub seal_vertexes: usize,
    pub seal_edges: usize,
}

/// Number of log2 buckets in [`SealStats::degree_histogram`].
pub const DEGREE_BUCKETS: usize = 16;
/// Hop depths sampled by [`SealStats::reach_profile`] (depths 1..=4).
pub const REACH_DEPTHS: usize = 4;
/// Seeds sampled for the reachability profile (evenly spaced slots).
const REACH_SAMPLE_SEEDS: usize = 16;
/// Per-seed visited-set cap bounding seal-time sampling work.
const REACH_SAMPLE_CAP: usize = 4096;

impl SealStats {
    /// Out-degree at or below which `quantile` of live vertexes fall —
    /// reconstructed from the log2 histogram (upper bucket bound, so the
    /// answer is conservative for skew detection).
    pub fn degree_quantile(&self, quantile: f64) -> usize {
        let total: usize = self.degree_histogram.iter().sum();
        if total == 0 {
            return 0;
        }
        let cutoff = (total as f64 * quantile.clamp(0.0, 1.0)).ceil() as usize; // cast-ok: bounded by vertex count
        let mut seen = 0usize;
        for (bucket, n) in self.degree_histogram.iter().enumerate() {
            seen += n;
            if seen >= cutoff {
                return bucket_upper_degree(bucket).min(self.max_out_degree);
            }
        }
        self.max_out_degree
    }
}

/// Histogram bucket for an out-degree (see [`SealStats::degree_histogram`]).
#[inline]
fn degree_bucket(d: usize) -> usize {
    if d == 0 {
        0
    } else {
        (usize::BITS - d.leading_zeros()).min(DEGREE_BUCKETS as u32 - 1) as usize // cast-ok: bucket index < 16
    }
}

/// Largest degree a histogram bucket can hold (`2^bucket - 1`).
#[inline]
fn bucket_upper_degree(bucket: usize) -> usize {
    if bucket == 0 {
        0
    } else if bucket >= DEGREE_BUCKETS - 1 {
        usize::MAX
    } else {
        (1usize << bucket) - 1
    }
}

impl GraphTopology {
    pub fn new(name: impl Into<String>, directed: bool) -> Self {
        GraphTopology {
            name: name.into(),
            directed,
            vertexes: Vec::new(),
            edges: Vec::new(),
            vertex_by_id: HashMap::new(),
            edge_by_id: HashMap::new(),
            live_vertexes: 0,
            live_edges: 0,
            adjacency_entries: 0,
            csr: None,
            overlaid_vertexes: 0,
            seal_stats: None,
        }
    }

    /// Pre-size the arenas when the source cardinalities are known (graph
    /// view construction does a single pass over the sources).
    pub fn with_capacity(
        name: impl Into<String>,
        directed: bool,
        vertexes: usize,
        edges: usize,
    ) -> Self {
        let mut g = GraphTopology::new(name, directed);
        g.vertexes.reserve(vertexes);
        g.edges.reserve(edges);
        g.vertex_by_id.reserve(vertexes);
        g.edge_by_id.reserve(edges);
        g
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn directed(&self) -> bool {
        self.directed
    }

    pub fn vertex_count(&self) -> usize {
        self.live_vertexes
    }

    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    // ---- construction / maintenance ---------------------------------------

    /// Divert a vertex to the delta overlay before mutating its adjacency:
    /// copy its sealed CSR runs back into the per-vertex `Vec`s (preserving
    /// order, so traversal emission order is layout-independent) and mark it
    /// overlaid. No-op while unsealed or when already overlaid.
    fn touch(&mut self, slot: VertexSlot) {
        let Some(csr) = &self.csr else { return };
        if self.vertexes[ix(slot)].overlaid {
            return;
        }
        // Vertexes added after sealing are born overlaid, so any
        // non-overlaid slot is covered by the sealed arrays.
        debug_assert!(ix(slot) < csr.vertex_span());
        let out: Vec<EdgeSlot> = csr.out_slice(slot).to_vec();
        let inc: Vec<EdgeSlot> = csr.in_slice(slot).to_vec();
        let node = &mut self.vertexes[ix(slot)];
        node.out = out;
        node.inc = inc;
        node.overlaid = true;
        self.overlaid_vertexes += 1;
    }

    /// Add a vertex. Fails on duplicate user-visible id.
    pub fn add_vertex(&mut self, id: VertexId, tuple: RowId) -> Result<VertexSlot> {
        if self.vertex_by_id.contains_key(&id) {
            return Err(Error::constraint(format!(
                "graph view `{}` already has vertex {id}",
                self.name
            )));
        }
        let slot = VertexSlot::try_from(self.vertexes.len()).map_err(|_| {
            Error::execution(format!(
                "graph view `{}` vertex arena is full ({} slots)",
                self.name,
                u32::MAX
            ))
        })?;
        // Post-seal vertexes have no CSR run: they live in the overlay
        // until the next re-seal.
        let overlaid = self.csr.is_some();
        self.vertexes.push(VertexNode {
            id,
            tuple,
            out: Vec::new(),
            inc: Vec::new(),
            alive: true,
            overlaid,
        });
        if overlaid {
            self.overlaid_vertexes += 1;
        }
        self.vertex_by_id.insert(id, slot);
        self.live_vertexes += 1;
        Ok(slot)
    }

    /// Add an edge between existing vertexes. Enforces the paper's §3.1
    /// constraint that edge endpoints are contained in the vertex set.
    pub fn add_edge(
        &mut self,
        id: EdgeId,
        from: VertexId,
        to: VertexId,
        tuple: RowId,
    ) -> Result<EdgeSlot> {
        if self.edge_by_id.contains_key(&id) {
            return Err(Error::constraint(format!(
                "graph view `{}` already has edge {id}",
                self.name
            )));
        }
        let from_slot = self.vertex_slot(from)?;
        let to_slot = self.vertex_slot(to)?;
        self.touch(from_slot);
        self.touch(to_slot);
        let slot = EdgeSlot::try_from(self.edges.len()).map_err(|_| {
            Error::execution(format!(
                "graph view `{}` edge arena is full ({} slots)",
                self.name,
                u32::MAX
            ))
        })?;
        // Each edge adds at most two adjacency entries; keeping the total
        // below u32::MAX keeps the sealed CSR offsets (u32) in range, so
        // `seal` stays infallible.
        if self.adjacency_entries + 2 > u32::MAX as usize { // cast-ok: constant widening
            return Err(Error::execution(format!(
                "graph view `{}` adjacency is full ({} entries)",
                self.name,
                u32::MAX
            )));
        }
        self.edges.push(EdgeNode {
            id,
            from: from_slot,
            to: to_slot,
            tuple,
            alive: true,
        });
        self.edge_by_id.insert(id, slot);
        self.vertexes[ix(from_slot)].out.push(slot);
        self.adjacency_entries += 1;
        if self.directed {
            self.vertexes[ix(to_slot)].inc.push(slot);
        } else if to_slot != from_slot {
            // Undirected: the edge is traversable from both endpoints.
            self.vertexes[ix(to_slot)].out.push(slot);
            self.adjacency_entries += 1;
        }
        self.live_edges += 1;
        Ok(slot)
    }

    /// Remove an edge by user-visible id, returning its tuple pointer so
    /// the caller can undo / clean up relational state.
    pub fn remove_edge(&mut self, id: EdgeId) -> Result<RowId> {
        let slot = self
            .edge_by_id
            .remove(&id)
            .ok_or_else(|| Error::constraint(format!("edge {id} not in graph `{}`", self.name)))?;
        let (from, to, tuple) = {
            let e = &mut self.edges[ix(slot)];
            e.alive = false;
            (e.from, e.to, e.tuple)
        };
        self.touch(from);
        self.touch(to);
        self.vertexes[ix(from)].out.retain(|&s| s != slot);
        self.adjacency_entries -= 1;
        if self.directed {
            self.vertexes[ix(to)].inc.retain(|&s| s != slot);
        } else if to != from {
            self.vertexes[ix(to)].out.retain(|&s| s != slot);
            self.adjacency_entries -= 1;
        }
        self.live_edges -= 1;
        Ok(tuple)
    }

    /// Remove a vertex by user-visible id. Refuses while incident edges
    /// remain (referential integrity of the edge source, §3.3).
    pub fn remove_vertex(&mut self, id: VertexId) -> Result<RowId> {
        let slot = self.vertex_slot(id)?;
        // Effective adjacency (CSR or overlay): a sealed vertex's Vecs are
        // empty, its edges live in the sealed arrays.
        if !self.out_edges(slot).is_empty() || !self.in_edges(slot).is_empty() {
            return Err(Error::constraint(format!(
                "vertex {id} in graph `{}` still has incident edges",
                self.name
            )));
        }
        self.vertex_by_id.remove(&id);
        let v = &mut self.vertexes[ix(slot)];
        v.alive = false;
        self.live_vertexes -= 1;
        Ok(v.tuple)
    }

    /// Rename a vertex's user-visible id (§3.3.1: identifier updates must
    /// keep the topology consistent with the relational source).
    pub fn rename_vertex(&mut self, old: VertexId, new: VertexId) -> Result<()> {
        if old == new {
            return Ok(());
        }
        if self.vertex_by_id.contains_key(&new) {
            return Err(Error::constraint(format!(
                "graph view `{}` already has vertex {new}",
                self.name
            )));
        }
        let slot = self.vertex_slot(old)?;
        self.vertex_by_id.remove(&old);
        self.vertex_by_id.insert(new, slot);
        self.vertexes[ix(slot)].id = new;
        Ok(())
    }

    /// Rename an edge's user-visible id.
    pub fn rename_edge(&mut self, old: EdgeId, new: EdgeId) -> Result<()> {
        if old == new {
            return Ok(());
        }
        if self.edge_by_id.contains_key(&new) {
            return Err(Error::constraint(format!(
                "graph view `{}` already has edge {new}",
                self.name
            )));
        }
        let slot = *self
            .edge_by_id
            .get(&old)
            .ok_or_else(|| Error::constraint(format!("edge {old} not in graph `{}`", self.name)))?;
        self.edge_by_id.remove(&old);
        self.edge_by_id.insert(new, slot);
        self.edges[ix(slot)].id = new;
        Ok(())
    }

    // ---- O(1) navigation ----------------------------------------------------

    /// Id → slot (the hash-map hop of Figure 4).
    #[inline]
    pub fn vertex_slot(&self, id: VertexId) -> Result<VertexSlot> {
        self.vertex_by_id.get(&id).copied().ok_or_else(|| {
            Error::constraint(format!("vertex {id} not in graph `{}`", self.name))
        })
    }

    /// Id → slot for edges.
    #[inline]
    pub fn edge_slot(&self, id: EdgeId) -> Result<EdgeSlot> {
        self.edge_by_id
            .get(&id)
            .copied()
            .ok_or_else(|| Error::constraint(format!("edge {id} not in graph `{}`", self.name)))
    }

    #[inline]
    pub fn has_vertex(&self, id: VertexId) -> bool {
        self.vertex_by_id.contains_key(&id)
    }

    #[inline]
    pub fn vertex_id(&self, slot: VertexSlot) -> VertexId {
        self.vertexes[ix(slot)].id
    }

    #[inline]
    pub fn edge_id(&self, slot: EdgeSlot) -> EdgeId {
        self.edges[ix(slot)].id
    }

    /// Vertex slot → tuple pointer.
    #[inline]
    pub fn vertex_tuple(&self, slot: VertexSlot) -> RowId {
        self.vertexes[ix(slot)].tuple
    }

    /// Edge slot → tuple pointer.
    #[inline]
    pub fn edge_tuple(&self, slot: EdgeSlot) -> RowId {
        self.edges[ix(slot)].tuple
    }

    /// Update the stored tuple pointer (storage may hand the engine a new
    /// slot if a row is deleted+reinserted by an id update).
    pub fn set_vertex_tuple(&mut self, slot: VertexSlot, tuple: RowId) {
        self.vertexes[ix(slot)].tuple = tuple;
    }

    pub fn set_edge_tuple(&mut self, slot: EdgeSlot, tuple: RowId) {
        self.edges[ix(slot)].tuple = tuple;
    }

    /// Endpoints of an edge, as slots.
    #[inline]
    pub fn edge_endpoints(&self, slot: EdgeSlot) -> (VertexSlot, VertexSlot) {
        let e = &self.edges[ix(slot)];
        (e.from, e.to)
    }

    /// Outgoing edges of a vertex (all incident edges for undirected
    /// graphs). Sealed vertexes resolve to a contiguous CSR run; overlaid
    /// (or never-sealed) vertexes to their per-vertex `Vec` — same slice
    /// type, same order either way.
    #[inline]
    pub fn out_edges(&self, slot: VertexSlot) -> &[EdgeSlot] {
        let node = &self.vertexes[ix(slot)];
        match &self.csr {
            Some(csr) if !node.overlaid => csr.out_slice(slot),
            _ => &node.out,
        }
    }

    /// Incoming edges (empty for undirected graphs — use `out_edges`).
    #[inline]
    pub fn in_edges(&self, slot: VertexSlot) -> &[EdgeSlot] {
        let node = &self.vertexes[ix(slot)];
        match &self.csr {
            Some(csr) if !node.overlaid => csr.in_slice(slot),
            _ => &node.inc,
        }
    }

    /// `FanOut` property (§5.2): O(1).
    #[inline]
    pub fn fan_out(&self, slot: VertexSlot) -> usize {
        self.out_edges(slot).len()
    }

    /// `FanIn` property (§5.2): O(1). Equal to `FanOut` for undirected
    /// graphs.
    #[inline]
    pub fn fan_in(&self, slot: VertexSlot) -> usize {
        if self.directed {
            self.in_edges(slot).len()
        } else {
            self.out_edges(slot).len()
        }
    }

    /// Outgoing hop `i` of vertex `slot`: the edge plus its far endpoint.
    /// On the sealed path both come from parallel CSR arrays (two
    /// cache-linear reads, no `EdgeNode` dereference); on the overlay path
    /// the endpoint is resolved through the edge arena.
    #[inline]
    pub fn out_hop(&self, slot: VertexSlot, i: usize) -> (EdgeSlot, VertexSlot) {
        let node = &self.vertexes[ix(slot)];
        if let Some(csr) = &self.csr {
            if !node.overlaid {
                let at = ix(csr.out_offsets[ix(slot)]) + i;
                return (csr.out_targets[at], csr.out_heads[at]);
            }
        }
        let e = node.out[i];
        (e, self.edge_target(e, slot))
    }

    /// Given an edge incident to `from`, the vertex on the other side.
    /// (For directed graphs, traversal always moves from→to.)
    #[inline]
    pub fn edge_target(&self, edge: EdgeSlot, from: VertexSlot) -> VertexSlot {
        let e = &self.edges[ix(edge)];
        if e.from == from {
            e.to
        } else {
            e.from
        }
    }

    /// Iterate `(edge, far endpoint)` hops out of `slot` in traversal
    /// order, resolving the sealed-vs-overlay dispatch once per vertex
    /// instead of once per hop (`out_hop` pays it per call — fine for the
    /// cursor-resumable DFS, measurable on full frontier expansions).
    #[inline]
    pub fn out_hops(&self, slot: VertexSlot) -> OutHops<'_> {
        let node = &self.vertexes[ix(slot)];
        if let Some(csr) = &self.csr {
            if !node.overlaid {
                let r = csr.out_range(slot);
                return OutHops(OutHopsInner::Sealed(
                    csr.out_targets[r.clone()]
                        .iter()
                        .copied()
                        .zip(csr.out_heads[r].iter().copied()),
                ));
            }
        }
        OutHops(OutHopsInner::Linked {
            graph: self,
            from: slot,
            edges: node.out.iter(),
        })
    }

    /// Iterate live vertex slots.
    pub fn vertex_slots(&self) -> impl Iterator<Item = VertexSlot> + '_ {
        self.vertexes
            .iter()
            .enumerate()
            .filter(|(_, v)| v.alive)
            .map(|(i, _)| i as VertexSlot) // cast-ok: arena size < 2^32 enforced in add_vertex
    }

    /// Iterate live edge slots.
    pub fn edge_slots(&self) -> impl Iterator<Item = EdgeSlot> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive)
            .map(|(i, _)| i as EdgeSlot) // cast-ok: arena size < 2^32 enforced in add_edge
    }

    // ---- sealing --------------------------------------------------------------

    /// Compact the adjacency into sealed CSR arrays (out- and in-edges,
    /// plus the parallel far-endpoint array) and empty the delta overlay.
    ///
    /// The new arrays are built completely before any existing state is
    /// modified, so a caller that aborts *before* invoking `seal` (fault
    /// injection, memory-cap refusal of [`GraphTopology::sealed_bytes_estimate`])
    /// leaves a topology that is exactly as usable as before; `seal` itself
    /// never fails. Traversal emission order is unchanged: the CSR runs are
    /// copied from the per-vertex lists verbatim.
    pub fn seal(&mut self) {
        let span = self.vertexes.len();
        let mut out_offsets = Vec::with_capacity(span + 1);
        let mut out_targets = Vec::with_capacity(self.adjacency_entries);
        let mut out_heads = Vec::with_capacity(self.adjacency_entries);
        let mut in_offsets = Vec::with_capacity(span + 1);
        let mut in_targets =
            Vec::with_capacity(if self.directed { self.live_edges } else { 0 });
        out_offsets.push(0u32);
        in_offsets.push(0u32);
        for slot in 0..span as VertexSlot { // cast-ok: arena size < 2^32 enforced in add_vertex
            for &e in self.out_edges(slot) {
                out_targets.push(e);
                out_heads.push(self.edge_target(e, slot));
            }
            for &e in self.in_edges(slot) {
                in_targets.push(e);
            }
            out_offsets.push(out_targets.len() as u32); // cast-ok: adjacency_entries < 2^32 enforced in add_edge
            in_offsets.push(in_targets.len() as u32); // cast-ok: in-entries <= live_edges < 2^32
        }
        let csr = std::sync::Arc::new(CsrLayout {
            out_offsets,
            out_targets,
            out_heads,
            in_offsets,
            in_targets,
        });
        self.seal_stats = Some(self.collect_seal_stats(&csr));
        self.csr = Some(csr);
        for v in &mut self.vertexes {
            // Drop the Vec allocations outright: the overlay starts empty
            // and grows only for vertexes DML actually touches.
            v.out = Vec::new();
            v.inc = Vec::new();
            v.overlaid = false;
        }
        self.overlaid_vertexes = 0;
    }

    /// One-pass seal-time statistics over freshly built CSR arrays: the
    /// out-degree histogram is exact (every live vertex), the reachability
    /// profile averages a bounded visited-set BFS from a deterministic
    /// sample of evenly spaced live slots. Runs before the per-vertex
    /// overlay `Vec`s are cleared, but reads only the CSR, so it sees
    /// exactly the sealed adjacency.
    fn collect_seal_stats(&self, csr: &CsrLayout) -> SealStats {
        let mut histogram = [0usize; DEGREE_BUCKETS];
        let mut max_out = 0usize;
        let mut live_slots: Vec<VertexSlot> = Vec::with_capacity(self.live_vertexes);
        for (slot, node) in self.vertexes.iter().enumerate() {
            if !node.alive {
                continue;
            }
            let slot = slot as VertexSlot; // cast-ok: arena size < 2^32 enforced in add_vertex
            let d = csr.out_range(slot).len();
            histogram[degree_bucket(d)] += 1;
            max_out = max_out.max(d);
            live_slots.push(slot);
        }
        let mut reach = [0.0f64; REACH_DEPTHS];
        let samples = live_slots.len().min(REACH_SAMPLE_SEEDS);
        if samples > 0 {
            let stride = live_slots.len() / samples;
            for i in 0..samples {
                let seed = live_slots[i * stride];
                let per_seed = self.sample_reach(csr, seed);
                for (acc, n) in reach.iter_mut().zip(per_seed) {
                    *acc += n as f64; // cast-ok: statistic, f64 precision ample for arena sizes
                }
            }
            for acc in &mut reach {
                *acc /= samples as f64; // cast-ok: statistic, samples <= 16
            }
        }
        SealStats {
            degree_histogram: histogram,
            max_out_degree: max_out,
            reach_profile: reach,
            reach_samples: samples,
            seal_vertexes: self.live_vertexes,
            seal_edges: self.live_edges,
        }
    }

    /// Visited-set BFS from `seed` over the sealed arrays, depth-capped at
    /// [`REACH_DEPTHS`] and work-capped at [`REACH_SAMPLE_CAP`] vertexes.
    /// Returns the cumulative distinct-vertex count at each depth (seed
    /// excluded).
    fn sample_reach(&self, csr: &CsrLayout, seed: VertexSlot) -> [usize; REACH_DEPTHS] {
        let mut reached = [0usize; REACH_DEPTHS];
        let mut visited = std::collections::HashSet::with_capacity(64);
        visited.insert(seed);
        let mut frontier = vec![seed];
        let mut total = 0usize;
        for depth in 0..REACH_DEPTHS {
            let mut next = Vec::new();
            for &v in &frontier {
                let r = csr.out_range(v);
                for &head in &csr.out_heads[r] {
                    if total >= REACH_SAMPLE_CAP {
                        break;
                    }
                    if visited.insert(head) {
                        next.push(head);
                        total += 1;
                    }
                }
            }
            reached[depth] = total;
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        // Deeper levels that the early-exit skipped still report the
        // cumulative total (monotone profile).
        for d in 1..REACH_DEPTHS {
            reached[d] = reached[d].max(reached[d - 1]);
        }
        reached
    }

    /// Seal-time distribution statistics, if the topology has ever been
    /// sealed, plus whether they still describe the current graph (false
    /// while the delta overlay or live counts have drifted from the sealed
    /// snapshot).
    pub fn seal_stats(&self) -> Option<(SealStats, bool)> {
        self.seal_stats.map(|s| {
            let fresh = self.overlaid_vertexes == 0
                && self.live_vertexes == s.seal_vertexes
                && self.live_edges == s.seal_edges;
            (s, fresh)
        })
    }

    /// A point-in-time copy of the topology for epoch publication: the
    /// arenas and id maps are cloned (the overlay Vecs of sealed vertexes
    /// are empty, so this is cheap for a mostly-sealed graph), while the
    /// sealed CSR arrays — immutable once built — are shared by `Arc`.
    pub fn snapshot(&self) -> GraphTopology {
        self.clone()
    }

    /// Whether a sealed CSR snapshot exists (possibly with an overlay).
    #[inline]
    pub fn is_sealed(&self) -> bool {
        self.csr.is_some()
    }

    /// Current physical layout, for `EXPLAIN ANALYZE`'s `layout=` note.
    pub fn layout(&self) -> TopologyLayout {
        match &self.csr {
            None => TopologyLayout::Adjacency,
            Some(_) if self.overlaid_vertexes == 0 => TopologyLayout::Csr,
            Some(_) => TopologyLayout::Delta(self.overlaid_vertexes),
        }
    }

    /// Number of vertexes currently diverted to the delta overlay.
    #[inline]
    pub fn overlaid_vertexes(&self) -> usize {
        self.overlaid_vertexes
    }

    /// Overlaid share of the live vertex set — the re-seal trigger
    /// statistic (0 while unsealed).
    pub fn overlay_fraction(&self) -> f64 {
        if self.live_vertexes == 0 {
            return if self.overlaid_vertexes == 0 { 0.0 } else { 1.0 };
        }
        self.overlaid_vertexes as f64 / self.live_vertexes as f64 // cast-ok: statistic, f64 precision ample for arena sizes
    }

    /// Exact byte size of the CSR arrays a [`GraphTopology::seal`] call
    /// would allocate right now — charged to the resource governor *before*
    /// sealing so a memory-cap abort happens with the topology untouched.
    pub fn sealed_bytes_estimate(&self) -> usize {
        use std::mem::size_of;
        let span = self.vertexes.len() + 1;
        let inc = if self.directed { self.live_edges } else { 0 };
        span * 2 * size_of::<u32>()
            + self.adjacency_entries * (size_of::<EdgeSlot>() + size_of::<VertexSlot>())
            + inc * size_of::<EdgeSlot>()
    }

    // ---- statistics -----------------------------------------------------------

    /// Average traversal branching factor `F` (§6.3's catalog statistic),
    /// in O(1): the adjacency-entry count is maintained incrementally on
    /// every edge insert/delete (the paper maintains the same statistic
    /// with a background thread).
    pub fn avg_fan_out(&self) -> f64 {
        if self.live_vertexes == 0 {
            return 0.0;
        }
        self.adjacency_entries as f64 / self.live_vertexes as f64 // cast-ok: statistic, f64 precision ample for arena sizes
    }

    /// Topology statistics: the paper's optimizer keeps average fan-out per
    /// graph view in the system catalog (§6.3) to choose BFS vs. DFS.
    pub fn stats(&self) -> GraphStats {
        let seal = self.seal_stats();
        GraphStats {
            vertex_count: self.live_vertexes,
            edge_count: self.live_edges,
            avg_fan_out: self.avg_fan_out(),
            memory_bytes: self.memory_bytes(),
            sealed_bytes: self.sealed_bytes(),
            overlay_bytes: self.overlay_bytes(),
            live_epochs: 0,
            retained_bytes: 0,
            seal: seal.map(|(s, _)| s),
            seal_fresh: seal.map_or(false, |(_, fresh)| fresh),
        }
    }

    /// Heap bytes held by the sealed CSR arrays (0 while unsealed).
    pub fn sealed_bytes(&self) -> usize {
        self.csr.as_ref().map_or(0, |c| c.bytes())
    }

    /// Heap bytes held by the per-vertex adjacency `Vec`s of *overlaid*
    /// vertexes (0 while unsealed: pre-seal adjacency is the baseline
    /// layout, not an overlay, and is accounted in `memory_bytes`).
    pub fn overlay_bytes(&self) -> usize {
        use std::mem::size_of;
        if self.csr.is_none() {
            return 0;
        }
        self.vertexes
            .iter()
            .filter(|v| v.overlaid)
            .map(|v| (v.out.capacity() + v.inc.capacity()) * size_of::<EdgeSlot>())
            .sum()
    }

    /// Rough resident size of the topology (arenas + adjacency — sealed
    /// arrays and overlay Vecs included — + id maps), used by the
    /// graph-view build-cost experiment and the governor's seal accounting.
    /// Attribute data is NOT included — it lives in the relational sources
    /// (§3.2's decoupling).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let vertex_fixed = self.vertexes.capacity() * size_of::<VertexNode>();
        // Per-vertex Vec heap: the whole adjacency when unsealed, just the
        // delta overlay after sealing (sealed vertexes hold empty Vecs).
        let adjacency: usize = self
            .vertexes
            .iter()
            .map(|v| (v.out.capacity() + v.inc.capacity()) * size_of::<EdgeSlot>())
            .sum();
        let edge_fixed = self.edges.capacity() * size_of::<EdgeNode>();
        // HashMap entries: key + value + bucket overhead estimate.
        let map_entry = size_of::<(VertexId, VertexSlot)>() * 2;
        let maps = self.vertex_by_id.len() * map_entry + self.edge_by_id.len() * map_entry;
        vertex_fixed + adjacency + edge_fixed + maps + self.sealed_bytes()
    }

    // ---- dumps ----------------------------------------------------------------

    /// Deterministic dump of the topology: every vertex `(id, tuple)` and
    /// every edge `(id, from, to, tuple)` sorted by id, independent of
    /// insertion order, internal slot layout, and — by construction —
    /// whether the adjacency is sealed, overlaid, or plain. Two topologies
    /// with equal dumps are indistinguishable to queries; the property
    /// suite uses this to prove seal → DML → re-seal round-trips, and the
    /// robustness battery to prove all-or-nothing maintenance.
    pub fn topology_dump(&self) -> String {
        let mut verts: Vec<(VertexId, u64)> = self
            .vertex_slots()
            .map(|s| (self.vertex_id(s), self.vertex_tuple(s).0))
            .collect();
        verts.sort_unstable();
        let mut edges: Vec<(EdgeId, VertexId, VertexId, u64)> = self
            .edge_slots()
            .map(|s| {
                let (f, t) = self.edge_endpoints(s);
                (
                    self.edge_id(s),
                    self.vertex_id(f),
                    self.vertex_id(t),
                    self.edge_tuple(s).0,
                )
            })
            .collect();
        edges.sort_unstable();
        let mut out = format!(
            "graph {} directed={} V={} E={}\n",
            self.name,
            self.directed,
            verts.len(),
            edges.len()
        );
        for (id, tuple) in verts {
            out.push_str(&format!("v {id} @{tuple}\n"));
        }
        for (id, from, to, tuple) in edges {
            out.push_str(&format!("e {id} {from}->{to} @{tuple}\n"));
        }
        out
    }

    /// The read-side accessor all traversal kernels go through.
    #[inline]
    pub fn view(&self) -> TopologyView<'_> {
        TopologyView { graph: self }
    }
}

/// Unified adjacency read path for traversal kernels (serial DFS/BFS,
/// targeted BFS, Dijkstra/top-k, and the morsel-parallel workers all
/// expand frontiers through this one accessor), so every kernel resolves
/// the sealed-CSR vs. delta-overlay split in exactly one place.
///
/// `Copy` over a shared borrow: cloning a view is free, and a view pins the
/// topology read guard the query already holds — the layout cannot change
/// underneath an in-flight traversal.
#[derive(Clone, Copy)]
pub struct TopologyView<'g> {
    graph: &'g GraphTopology,
}

impl<'g> TopologyView<'g> {
    /// The underlying topology (for id/tuple lookups and filters).
    #[inline]
    pub fn graph(&self) -> &'g GraphTopology {
        self.graph
    }

    /// Outgoing edge slots of `v` (CSR run or overlay Vec).
    #[inline]
    pub fn out_edges(&self, v: VertexSlot) -> &'g [EdgeSlot] {
        self.graph.out_edges(v)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_len(&self, v: VertexSlot) -> usize {
        self.graph.out_edges(v).len()
    }

    /// Hop `i` out of `v`: `(edge, far endpoint)` — parallel-array reads
    /// on the sealed path.
    #[inline]
    pub fn out_hop(&self, v: VertexSlot, i: usize) -> (EdgeSlot, VertexSlot) {
        self.graph.out_hop(v, i)
    }

    /// Iterate `(edge, far endpoint)` hops out of `v` in traversal order.
    #[inline]
    pub fn out_hops(&self, v: VertexSlot) -> OutHops<'g> {
        self.graph.out_hops(v)
    }
}

/// Iterator over a vertex's `(edge, far endpoint)` hops — see
/// [`GraphTopology::out_hops`]. The layout dispatch happens at
/// construction: sealed vertexes walk the two parallel CSR arrays,
/// overlaid (or never-sealed) vertexes walk their `Vec` and resolve each
/// endpoint through the edge arena.
pub struct OutHops<'a>(OutHopsInner<'a>);

enum OutHopsInner<'a> {
    Sealed(
        std::iter::Zip<
            std::iter::Copied<std::slice::Iter<'a, EdgeSlot>>,
            std::iter::Copied<std::slice::Iter<'a, VertexSlot>>,
        >,
    ),
    Linked {
        graph: &'a GraphTopology,
        from: VertexSlot,
        edges: std::slice::Iter<'a, EdgeSlot>,
    },
}

impl Iterator for OutHops<'_> {
    type Item = (EdgeSlot, VertexSlot);

    #[inline]
    fn next(&mut self) -> Option<(EdgeSlot, VertexSlot)> {
        match &mut self.0 {
            OutHopsInner::Sealed(it) => it.next(),
            OutHopsInner::Linked { graph, from, edges } => {
                let &e = edges.next()?;
                Some((e, graph.edge_target(e, *from)))
            }
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.0 {
            OutHopsInner::Sealed(it) => it.size_hint(),
            OutHopsInner::Linked { edges, .. } => edges.size_hint(),
        }
    }
}

impl ExactSizeIterator for OutHops<'_> {}

/// Statistics snapshot for a graph view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphStats {
    pub vertex_count: usize,
    pub edge_count: usize,
    /// Average traversal branching factor `F` used by the §6.3 heuristic
    /// (`use BFS iff F < L`).
    pub avg_fan_out: f64,
    /// Approximate topology memory footprint in bytes (includes the sealed
    /// arrays and the overlay).
    pub memory_bytes: usize,
    /// Bytes held by the sealed CSR arrays (0 while unsealed).
    pub sealed_bytes: usize,
    /// Bytes held by delta-overlay adjacency `Vec`s (0 while unsealed).
    pub overlay_bytes: usize,
    /// Published epochs still alive (pinned by a reader or current); 0 when
    /// epoch publication is disabled. Filled in by the engine layer — the
    /// topology itself knows nothing about epochs.
    pub live_epochs: usize,
    /// Bytes retained by superseded epochs that readers still pin (excludes
    /// the current epoch); 0 once every old reader has dropped its pin.
    pub retained_bytes: usize,
    /// Seal-time distribution statistics (degree histogram, max out-degree,
    /// reachability profile); `None` until the first seal.
    pub seal: Option<SealStats>,
    /// Whether `seal` still describes the current graph: true only while no
    /// vertex has been diverted to the delta overlay and the live counts
    /// match the sealed snapshot. Stale statistics remain usable as rough
    /// guides — the cost model discounts them.
    pub seal_fresh: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond(directed: bool) -> GraphTopology {
        // 1 -> 2 -> 4, 1 -> 3 -> 4
        let mut g = GraphTopology::new("g", directed);
        for v in 1..=4 {
            g.add_vertex(v, RowId(v as u64)).unwrap(); // cast-ok: test ids are small positive
        }
        g.add_edge(10, 1, 2, RowId(10)).unwrap();
        g.add_edge(11, 1, 3, RowId(11)).unwrap();
        g.add_edge(12, 2, 4, RowId(12)).unwrap();
        g.add_edge(13, 3, 4, RowId(13)).unwrap();
        g
    }

    #[test]
    fn directed_adjacency_and_fan() {
        let g = diamond(true);
        let v1 = g.vertex_slot(1).unwrap();
        let v4 = g.vertex_slot(4).unwrap();
        assert_eq!(g.fan_out(v1), 2);
        assert_eq!(g.fan_in(v1), 0);
        assert_eq!(g.fan_out(v4), 0);
        assert_eq!(g.fan_in(v4), 2);
        assert_eq!(g.out_edges(v1).len(), 2);
        assert_eq!(g.in_edges(v4).len(), 2);
    }

    #[test]
    fn undirected_adjacency_is_symmetric() {
        let g = diamond(false);
        let v1 = g.vertex_slot(1).unwrap();
        let v4 = g.vertex_slot(4).unwrap();
        assert_eq!(g.fan_out(v1), 2);
        assert_eq!(g.fan_in(v1), 2);
        assert_eq!(g.fan_out(v4), 2);
        // traversal from v4 reaches 2 and 3
        let mut targets: Vec<_> = g
            .out_edges(v4)
            .iter()
            .map(|&e| g.vertex_id(g.edge_target(e, v4)))
            .collect();
        targets.sort();
        assert_eq!(targets, vec![2, 3]);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut g = diamond(true);
        assert!(g.add_vertex(1, RowId(99)).is_err());
        assert!(g.add_edge(10, 2, 3, RowId(99)).is_err());
    }

    #[test]
    fn edge_endpoints_must_exist() {
        let mut g = GraphTopology::new("g", true);
        g.add_vertex(1, RowId(1)).unwrap();
        assert!(g.add_edge(10, 1, 99, RowId(10)).is_err());
        assert!(g.add_edge(10, 99, 1, RowId(10)).is_err());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn remove_edge_unlinks_adjacency() {
        let mut g = diamond(true);
        let tuple = g.remove_edge(10).unwrap();
        assert_eq!(tuple, RowId(10));
        assert_eq!(g.edge_count(), 3);
        let v1 = g.vertex_slot(1).unwrap();
        assert_eq!(g.fan_out(v1), 1);
        let v2 = g.vertex_slot(2).unwrap();
        assert_eq!(g.fan_in(v2), 0);
        assert!(g.remove_edge(10).is_err());
    }

    #[test]
    fn remove_vertex_requires_no_edges() {
        let mut g = diamond(true);
        assert!(g.remove_vertex(2).is_err());
        g.remove_edge(10).unwrap();
        g.remove_edge(12).unwrap();
        let tuple = g.remove_vertex(2).unwrap();
        assert_eq!(tuple, RowId(2));
        assert_eq!(g.vertex_count(), 3);
        assert!(!g.has_vertex(2));
        // Re-adding the id afterwards is allowed.
        g.add_vertex(2, RowId(22)).unwrap();
        assert!(g.has_vertex(2));
    }

    #[test]
    fn undirected_remove_edge_unlinks_both_sides() {
        let mut g = diamond(false);
        g.remove_edge(10).unwrap();
        let v2 = g.vertex_slot(2).unwrap();
        assert_eq!(g.fan_out(v2), 1); // only edge 12 remains
    }

    #[test]
    fn rename_vertex_keeps_topology() {
        let mut g = diamond(true);
        g.rename_vertex(1, 100).unwrap();
        assert!(!g.has_vertex(1));
        let slot = g.vertex_slot(100).unwrap();
        assert_eq!(g.fan_out(slot), 2);
        assert_eq!(g.vertex_id(slot), 100);
        // collision rejected
        assert!(g.rename_vertex(100, 2).is_err());
        // no-op rename ok
        g.rename_vertex(100, 100).unwrap();
    }

    #[test]
    fn rename_edge() {
        let mut g = diamond(true);
        g.rename_edge(10, 1000).unwrap();
        assert!(g.edge_slot(10).is_err());
        let slot = g.edge_slot(1000).unwrap();
        assert_eq!(g.edge_id(slot), 1000);
        assert!(g.rename_edge(1000, 11).is_err());
    }

    #[test]
    fn stats_avg_fanout() {
        let g = diamond(true);
        let s = g.stats();
        assert_eq!(s.vertex_count, 4);
        assert_eq!(s.edge_count, 4);
        assert!((s.avg_fan_out - 1.0).abs() < 1e-12); // 4 edges / 4 vertexes
        assert!(s.memory_bytes > 0);

        let g = diamond(false);
        // undirected: each edge in two lists -> branching factor 2
        assert!((g.stats().avg_fan_out - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tuple_pointers_roundtrip() {
        let mut g = diamond(true);
        let v1 = g.vertex_slot(1).unwrap();
        assert_eq!(g.vertex_tuple(v1), RowId(1));
        g.set_vertex_tuple(v1, RowId(77));
        assert_eq!(g.vertex_tuple(v1), RowId(77));
        let e = g.edge_slot(12).unwrap();
        assert_eq!(g.edge_tuple(e), RowId(12));
    }

    /// Adjacency observations that must be layout-independent.
    fn observe(g: &GraphTopology) -> Vec<(VertexId, Vec<(EdgeId, VertexId)>, usize, usize)> {
        let view = g.view();
        let mut all: Vec<_> = g
            .vertex_slots()
            .map(|v| {
                let hops: Vec<(EdgeId, VertexId)> = view
                    .out_hops(v)
                    .map(|(e, t)| (g.edge_id(e), g.vertex_id(t)))
                    .collect();
                (g.vertex_id(v), hops, g.fan_out(v), g.fan_in(v))
            })
            .collect();
        all.sort();
        all
    }

    #[test]
    fn seal_preserves_adjacency_and_order() {
        for directed in [true, false] {
            let mut g = diamond(directed);
            let before = observe(&g);
            let dump = g.topology_dump();
            g.seal();
            assert_eq!(g.layout(), TopologyLayout::Csr);
            assert_eq!(observe(&g), before, "directed={directed}");
            assert_eq!(g.topology_dump(), dump);
            // Indexed hops agree with the slice accessor.
            for v in g.vertex_slots().collect::<Vec<_>>() {
                for (i, &e) in g.out_edges(v).iter().enumerate() {
                    assert_eq!(g.out_hop(v, i), (e, g.edge_target(e, v)));
                }
            }
        }
    }

    #[test]
    fn post_seal_dml_overlays_touched_vertexes_only() {
        let mut g = diamond(true);
        g.seal();
        g.remove_edge(10).unwrap(); // 1 -> 2
        assert_eq!(g.layout(), TopologyLayout::Delta(2));
        assert_eq!(g.overlaid_vertexes(), 2);
        let v1 = g.vertex_slot(1).unwrap();
        let v2 = g.vertex_slot(2).unwrap();
        let v3 = g.vertex_slot(3).unwrap();
        assert_eq!(g.fan_out(v1), 1);
        assert_eq!(g.fan_in(v2), 0);
        // Untouched vertex still reads the sealed arrays.
        assert_eq!(g.fan_out(v3), 1);
        // Mutating through the overlay round-trips against a never-sealed twin.
        let mut plain = diamond(true);
        plain.remove_edge(10).unwrap();
        assert_eq!(observe(&g), observe(&plain));
        assert_eq!(g.topology_dump(), plain.topology_dump());
    }

    #[test]
    fn post_seal_vertexes_are_born_overlaid() {
        let mut g = diamond(true);
        g.seal();
        g.add_vertex(5, RowId(5)).unwrap();
        g.add_edge(14, 4, 5, RowId(14)).unwrap();
        assert_eq!(g.layout(), TopologyLayout::Delta(2)); // v4 touched + v5 born overlaid
        let v4 = g.vertex_slot(4).unwrap();
        let v5 = g.vertex_slot(5).unwrap();
        assert_eq!(g.fan_out(v4), 1);
        assert_eq!(g.fan_in(v5), 1);
        let hops: Vec<_> = g.view().out_hops(v4).collect();
        assert_eq!(hops, vec![(g.edge_slot(14).unwrap(), v5)]);
        // Re-seal folds the overlay back in.
        g.seal();
        assert_eq!(g.layout(), TopologyLayout::Csr);
        assert_eq!(g.fan_out(v4), 1);
        assert_eq!(g.overlaid_vertexes(), 0);
    }

    #[test]
    fn reseal_after_dml_burst_matches_never_sealed() {
        let mut sealed = diamond(false);
        let mut plain = diamond(false);
        sealed.seal();
        for g in [&mut sealed, &mut plain] {
            g.remove_edge(11).unwrap();
            g.add_vertex(9, RowId(9)).unwrap();
            g.add_edge(20, 9, 1, RowId(20)).unwrap();
            g.add_edge(21, 9, 9, RowId(21)).unwrap(); // self-loop
            g.remove_edge(20).unwrap();
            g.rename_vertex(2, 200).unwrap();
        }
        sealed.seal();
        assert_eq!(observe(&sealed), observe(&plain));
        assert_eq!(sealed.topology_dump(), plain.topology_dump());
        assert_eq!(sealed.avg_fan_out(), plain.avg_fan_out());
    }

    #[test]
    fn sealed_vertex_removal_checks_csr_incidence() {
        let mut g = diamond(true);
        g.seal();
        // v2 still has sealed edges: refuse (and leave it un-overlaid).
        assert!(g.remove_vertex(2).is_err());
        assert_eq!(g.layout(), TopologyLayout::Csr);
        g.remove_edge(10).unwrap();
        g.remove_edge(12).unwrap();
        g.remove_vertex(2).unwrap();
        assert_eq!(g.vertex_count(), 3);
    }

    #[test]
    fn seal_accounting_and_estimate() {
        let mut g = diamond(true);
        let est = g.sealed_bytes_estimate();
        assert!(est > 0);
        g.seal();
        let s = g.stats();
        assert_eq!(s.sealed_bytes, est);
        assert_eq!(s.overlay_bytes, 0);
        assert!(s.memory_bytes >= s.sealed_bytes);
        g.remove_edge(10).unwrap();
        let s = g.stats();
        assert!(s.overlay_bytes > 0);
        assert!((g.overlay_fraction() - 0.5).abs() < 1e-12); // 2 of 4
    }

    #[test]
    fn layout_labels() {
        let mut g = diamond(true);
        assert_eq!(g.layout().to_string(), "adjacency");
        g.seal();
        assert_eq!(g.layout().to_string(), "csr");
        g.remove_edge(10).unwrap();
        assert_eq!(g.layout().to_string(), "delta(2)");
    }

    #[test]
    fn self_loop_undirected_not_double_linked() {
        let mut g = GraphTopology::new("g", false);
        g.add_vertex(1, RowId(1)).unwrap();
        g.add_edge(10, 1, 1, RowId(10)).unwrap();
        let v1 = g.vertex_slot(1).unwrap();
        assert_eq!(g.fan_out(v1), 1);
        g.remove_edge(10).unwrap();
        assert_eq!(g.fan_out(v1), 0);
    }

    // ---- seal-time statistics -------------------------------------------------

    fn chain(n: i64) -> GraphTopology {
        let mut g = GraphTopology::new("g", true);
        for v in 0..n {
            g.add_vertex(v, RowId(v as u64)).unwrap(); // cast-ok: test ids are small positive
        }
        for v in 0..n - 1 {
            g.add_edge(1000 + v, v, v + 1, RowId(0)).unwrap();
        }
        g
    }

    fn clique(n: i64) -> GraphTopology {
        let mut g = GraphTopology::new("g", true);
        for v in 0..n {
            g.add_vertex(v, RowId(v as u64)).unwrap(); // cast-ok: test ids are small positive
        }
        let mut eid = 1000;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    g.add_edge(eid, a, b, RowId(0)).unwrap();
                    eid += 1;
                }
            }
        }
        g
    }

    /// Deterministic power-law-ish graph: vertex v gets roughly n/(v+1)
    /// out-edges, so a few hubs and a long tail of low-degree vertexes.
    fn power_law(n: i64) -> GraphTopology {
        let mut g = GraphTopology::new("g", true);
        for v in 0..n {
            g.add_vertex(v, RowId(v as u64)).unwrap(); // cast-ok: test ids are small positive
        }
        let mut eid = 1000;
        for v in 0..n {
            let deg = n / (v + 1);
            for i in 0..deg {
                let t = (v + 1 + i) % n;
                if t != v {
                    g.add_edge(eid, v, t, RowId(0)).unwrap();
                    eid += 1;
                }
            }
        }
        g
    }

    /// Naive per-vertex out-degree census to compare against the sealed
    /// histogram: same bucketing function, but computed from the pre-seal
    /// adjacency lists.
    fn naive_histogram(g: &GraphTopology) -> ([usize; DEGREE_BUCKETS], usize) {
        let mut hist = [0usize; DEGREE_BUCKETS];
        let mut max = 0;
        for v in g.vertex_slots() {
            let d = g.fan_out(v);
            hist[degree_bucket(d)] += 1;
            max = max.max(d);
        }
        (hist, max)
    }

    #[test]
    fn seal_stats_match_naive_counts() {
        for mut g in [chain(40), clique(9), power_law(32)] {
            let (want_hist, want_max) = naive_histogram(&g);
            assert!(g.seal_stats().is_none(), "no stats before first seal");
            g.seal();
            let (s, fresh) = g.seal_stats().unwrap();
            assert!(fresh);
            assert_eq!(s.degree_histogram, want_hist);
            assert_eq!(s.max_out_degree, want_max);
            assert_eq!(s.seal_vertexes, g.vertex_count());
            assert_eq!(s.seal_edges, g.edge_count());
            assert_eq!(s.degree_histogram.iter().sum::<usize>(), g.vertex_count());
            assert!(s.reach_samples > 0);
            // Profile is monotone in depth and each value is a plausible
            // distinct-vertex count.
            for d in 1..REACH_DEPTHS {
                assert!(s.reach_profile[d] >= s.reach_profile[d - 1]);
            }
            for &r in &s.reach_profile {
                assert!(r.is_finite() && r >= 0.0);
                assert!(r < g.vertex_count() as f64); // cast-ok: test sizes are small
            }
        }
    }

    #[test]
    fn seal_stats_reach_profile_exact_on_fixtures() {
        // Clique on 9: from any seed, depth 1 already reaches the other 8
        // distinct vertexes and deeper levels add nothing.
        let mut g = clique(9);
        g.seal();
        let (s, _) = g.seal_stats().unwrap();
        for d in 0..REACH_DEPTHS {
            assert!((s.reach_profile[d] - 8.0).abs() < 1e-12);
        }
        // Chain: a seed at distance >= REACH_DEPTHS from the tail reaches
        // exactly d+1... but tail-adjacent seeds reach fewer, so only bound
        // it: average reach at depth d is in (0, d].
        let mut c = chain(40);
        c.seal();
        let (s, _) = c.seal_stats().unwrap();
        for d in 0..REACH_DEPTHS {
            assert!(s.reach_profile[d] > 0.0);
            assert!(s.reach_profile[d] <= (d + 1) as f64); // cast-ok: small loop index
        }
    }

    #[test]
    fn seal_stats_refresh_on_reseal_and_go_stale_under_overlay() {
        let mut g = chain(10);
        g.seal();
        let (first, fresh) = g.seal_stats().unwrap();
        assert!(fresh);
        assert!(g.stats().seal_fresh);

        // Overlay growth invalidates: stats still present, marked stale.
        g.add_vertex(100, RowId(100)).unwrap();
        g.add_edge(9000, 9, 100, RowId(0)).unwrap();
        let (stale, fresh) = g.seal_stats().unwrap();
        assert!(!fresh);
        assert_eq!(stale, first, "stale stats still describe the old seal");
        let snap = g.stats();
        assert!(!snap.seal_fresh);
        assert_eq!(snap.seal, Some(first));

        // Re-seal refreshes: new histogram counts the added vertex/edge.
        g.seal();
        let (second, fresh) = g.seal_stats().unwrap();
        assert!(fresh);
        assert_eq!(second.seal_vertexes, 11);
        assert_eq!(second.seal_edges, 10);
        assert_ne!(second, first);
        let (want_hist, want_max) = naive_histogram(&g);
        assert_eq!(second.degree_histogram, want_hist);
        assert_eq!(second.max_out_degree, want_max);
    }

    #[test]
    fn seal_stats_count_deleted_vertexes_out() {
        let mut g = clique(5);
        g.seal();
        // Remove one vertex (and its incident edges) post-seal, re-seal:
        // the refreshed histogram must be that of a 4-clique.
        for e in g.edge_slots().collect::<Vec<_>>() {
            let id = g.edge_id(e);
            let (f, t) = g.edge_endpoints(e);
            if g.vertex_id(f) == 0 || g.vertex_id(t) == 0 {
                g.remove_edge(id).unwrap();
            }
        }
        g.remove_vertex(0).unwrap();
        g.seal();
        let (s, fresh) = g.seal_stats().unwrap();
        assert!(fresh);
        assert_eq!(s.seal_vertexes, 4);
        assert_eq!(s.max_out_degree, 3);
        assert_eq!(s.degree_histogram.iter().sum::<usize>(), 4);
    }

    #[test]
    fn degree_bucket_bounds() {
        assert_eq!(degree_bucket(0), 0);
        assert_eq!(degree_bucket(1), 1);
        assert_eq!(degree_bucket(2), 2);
        assert_eq!(degree_bucket(3), 2);
        assert_eq!(degree_bucket(4), 3);
        assert_eq!(degree_bucket(usize::MAX), DEGREE_BUCKETS - 1);
        assert_eq!(bucket_upper_degree(0), 0);
        assert_eq!(bucket_upper_degree(1), 1);
        assert_eq!(bucket_upper_degree(2), 3);
        assert_eq!(bucket_upper_degree(DEGREE_BUCKETS - 1), usize::MAX);
    }

    #[test]
    fn degree_quantile_walks_histogram() {
        let mut g = power_law(32);
        g.seal();
        let (s, _) = g.seal_stats().unwrap();
        let p50 = s.degree_quantile(0.5);
        let p100 = s.degree_quantile(1.0);
        assert!(p50 <= p100);
        assert_eq!(p100, s.max_out_degree);
    }
}
