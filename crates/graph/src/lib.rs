//! Native graph topology and traversal primitives.
//!
//! This crate implements the materialized graph-view *topology* of GRFusion
//! (EDBT 2018 §3.2): an adjacency-list structure whose vertexes and edges
//! carry main-memory tuple pointers ([`RowId`](grfusion_common::RowId)s)
//! into the relational sources that store their attributes. The topology is
//! a "traversal index" — it answers neighbourhood questions in O(degree)
//! without relational joins, while attribute predicates dereference tuple
//! pointers in O(1).
//!
//! Three lazy traversal engines back the paper's physical path operators
//! (§5.1.2, §6.3):
//!
//! * [`DfsPaths`] — depth-first simple-path enumeration (`DFScan`),
//! * [`BfsPaths`] — breadth-first simple-path enumeration (`BFScan`),
//! * [`KShortestPaths`] — pull-based shortest-path enumeration in
//!   non-decreasing cost order (`SPScan`, Dijkstra-based).
//!
//! All three are pull-based iterators: paths are produced only when the
//! parent operator asks (the paper's lazy `PathScan`), so `LIMIT 1`
//! reachability stops traversing on the first hit.

pub mod dijkstra;
pub mod filter;
pub mod topology;
pub mod traverse;

pub use dijkstra::{shortest_path, KShortestPaths};
pub use filter::{NoFilter, TraversalFilter};
pub use topology::{EdgeSlot, GraphStats, GraphTopology, VertexSlot};
pub use traverse::{BfsPaths, DfsPaths, TraversalSpec};
