//! Native graph topology and traversal primitives.
//!
//! This crate implements the materialized graph-view *topology* of GRFusion
//! (EDBT 2018 §3.2): an adjacency-list structure whose vertexes and edges
//! carry main-memory tuple pointers ([`RowId`](grfusion_common::RowId)s)
//! into the relational sources that store their attributes. The topology is
//! a "traversal index" — it answers neighbourhood questions in O(degree)
//! without relational joins, while attribute predicates dereference tuple
//! pointers in O(1).
//!
//! Three lazy traversal engines back the paper's physical path operators
//! (§5.1.2, §6.3):
//!
//! * [`DfsPaths`] — depth-first simple-path enumeration (`DFScan`),
//! * [`BfsPaths`] — breadth-first simple-path enumeration (`BFScan`),
//! * [`KShortestPaths`] — pull-based shortest-path enumeration in
//!   non-decreasing cost order (`SPScan`, Dijkstra-based).
//!
//! All three are pull-based iterators: paths are produced only when the
//! parent operator asks (the paper's lazy `PathScan`), so `LIMIT 1`
//! reachability stops traversing on the first hit.

pub mod dijkstra;
pub mod filter;
pub mod topology;
pub mod traverse;

pub use dijkstra::{shortest_path, shortest_path_with_stats, KShortestPaths, SearchStats};
pub use filter::{NoFilter, TraversalFilter};
pub use topology::{
    EdgeSlot, GraphStats, GraphTopology, SealStats, TopologyLayout, TopologyView, VertexSlot,
    DEGREE_BUCKETS, REACH_DEPTHS,
};
pub use traverse::{BfsPaths, DfsPaths, TraversalSpec};

// Thread-safety contract: the morsel-driven parallel executor in the core
// crate shares one read-only `GraphTopology` across scoped worker threads,
// each running its own traversal iterator. These bounds are load-bearing —
// adding interior mutability (Cell/RefCell/Rc) to the topology or the
// traversal state would break compilation here rather than at the distant
// executor call site.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    const fn assert_send<T: Send>() {}
    assert_sync_send::<GraphTopology>();
    assert_sync_send::<TopologyView<'static>>();
    assert_sync_send::<NoFilter>();
    assert_send::<DfsPaths<'static, NoFilter>>();
    assert_send::<BfsPaths<'static, NoFilter>>();
};

#[cfg(test)]
mod thread_safety_tests {
    use super::*;
    use grfusion_common::RowId;

    /// Many reader threads traversing one shared topology concurrently
    /// must agree with a serial traversal (smoke test for the executor's
    /// shared-read-only-topology assumption).
    #[test]
    fn concurrent_readers_match_serial_traversal() {
        let mut g = GraphTopology::new("g", true);
        for v in 0..64 {
            g.add_vertex(v, RowId(v as u64)).unwrap();
        }
        let mut eid = 0;
        for v in 0..64i64 {
            for d in [1i64, 3, 7] {
                let t = (v + d) % 64;
                g.add_edge(eid, v, t, RowId(0)).unwrap();
                eid += 1;
            }
        }
        let serial: Vec<String> = DfsPaths::new(
            &g,
            g.vertex_slots().collect(),
            TraversalSpec::new(1, 3),
            NoFilter,
        )
        .map(|p| p.path_string())
        .collect();
        assert!(!serial.is_empty());

        // Sealing must not change traversal output, and the sealed CSR is
        // read concurrently below (the executor's common case).
        g.seal();
        let sealed: Vec<String> = DfsPaths::new(
            &g,
            g.vertex_slots().collect(),
            TraversalSpec::new(1, 3),
            NoFilter,
        )
        .map(|p| p.path_string())
        .collect();
        assert_eq!(sealed, serial);

        let results: Vec<Vec<String>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        DfsPaths::new(
                            &g,
                            g.vertex_slots().collect(),
                            TraversalSpec::new(1, 3),
                            NoFilter,
                        )
                        .map(|p| p.path_string())
                        .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in results {
            assert_eq!(r, serial);
        }
    }
}
