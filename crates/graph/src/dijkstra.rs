//! Shortest-path traversal (the `SPScan` physical operator, EDBT 2018 §6.3).
//!
//! Two entry points:
//!
//! * [`shortest_path`] — classic single-pair Dijkstra with a closed set;
//!   the fast path for `LIMIT 1` / plain shortest-path queries.
//! * [`KShortestPaths`] — a lazy, pull-based enumerator that yields simple
//!   paths between two vertexes in non-decreasing cost order; each `next()`
//!   does only the work needed for one more path, matching the paper's
//!   "returns the next shortest path as requested (pulled) by the parent
//!   operator" (useful for `TOP k` queries, Listing 6).
//!
//! Edge costs come from a caller-supplied function over edge slots (the
//! engine dereferences the hinted cost attribute through tuple pointers).
//! Costs must be non-negative, as the paper requires for Dijkstra.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use grfusion_common::{Error, PathData, Result};

use crate::filter::TraversalFilter;
use crate::topology::{EdgeSlot, GraphTopology, TopologyView, VertexSlot};

/// A heap entry ordered by ascending cost (BinaryHeap is a max-heap, so the
/// `Ord` impl is reversed). `seq` breaks ties deterministically.
struct HeapEntry {
    cost: f64,
    seq: u64,
    vertexes: Vec<VertexSlot>,
    edges: Vec<EdgeSlot>,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smaller cost = greater priority.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

fn snapshot(
    graph: &GraphTopology,
    vertexes: &[VertexSlot],
    edges: &[EdgeSlot],
    cost: f64,
) -> PathData {
    PathData {
        graph_view: graph.name().to_string(),
        vertexes: vertexes.iter().map(|&s| graph.vertex_id(s)).collect(),
        edges: edges.iter().map(|&s| graph.edge_id(s)).collect(),
        cost,
    }
}

/// Work counters of one closed-set Dijkstra search (vertexes settled,
/// edges relaxed) — the quantities the engine's `EXPLAIN ANALYZE` reports
/// for the shortest-path fast path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    pub vertices_visited: u64,
    pub edges_examined: u64,
}

/// Single-pair Dijkstra with a closed set. Returns `None` when `target` is
/// unreachable (under the filter). Errors on negative edge costs.
pub fn shortest_path<F, C>(
    graph: &GraphTopology,
    source: VertexSlot,
    target: VertexSlot,
    cost_fn: C,
    filter: &F,
) -> Result<Option<PathData>>
where
    F: TraversalFilter,
    C: Fn(&GraphTopology, EdgeSlot) -> f64,
{
    shortest_path_with_stats(graph, source, target, cost_fn, filter).map(|(p, _)| p)
}

/// [`shortest_path`] variant that also reports how much of the graph the
/// search touched.
pub fn shortest_path_with_stats<F, C>(
    graph: &GraphTopology,
    source: VertexSlot,
    target: VertexSlot,
    cost_fn: C,
    filter: &F,
) -> Result<(Option<PathData>, SearchStats)>
where
    F: TraversalFilter,
    C: Fn(&GraphTopology, EdgeSlot) -> f64,
{
    let mut stats = SearchStats::default();
    let view = graph.view();
    if !filter.vertex_allowed(graph, source, 0) {
        return Ok((None, stats));
    }
    // dist/parent maps keyed by vertex slot.
    let mut dist: std::collections::HashMap<VertexSlot, f64> = std::collections::HashMap::new();
    let mut parent: std::collections::HashMap<VertexSlot, (VertexSlot, EdgeSlot)> =
        std::collections::HashMap::new();
    let mut closed: std::collections::HashSet<VertexSlot> = std::collections::HashSet::new();
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
    let mut seq = 0u64;

    dist.insert(source, 0.0);
    heap.push(HeapEntry {
        cost: 0.0,
        seq,
        vertexes: vec![source],
        edges: Vec::new(),
    });

    while let Some(entry) = heap.pop() {
        let v = *entry.vertexes.last().expect("non-empty");
        if closed.contains(&v) {
            continue;
        }
        closed.insert(v);
        stats.vertices_visited += 1;
        if v == target {
            // Reconstruct via parent chain (entry holds only the tip here —
            // vertexes/edges vecs are single-element for the closed-set
            // variant; reconstruct from parents instead).
            let mut vs = vec![v]; // alloc-ok: path reconstruction runs once, at target
            let mut es = Vec::new(); // alloc-ok: empty Vec does not allocate
            let mut cur = v;
            while let Some(&(p, e)) = parent.get(&cur) {
                vs.push(p);
                es.push(e);
                cur = p;
            }
            vs.reverse();
            es.reverse();
            return Ok((Some(snapshot(graph, &vs, &es, entry.cost)), stats));
        }
        // Position argument for vertex filters: hop count is unknown in
        // Dijkstra order, so pass 1 (non-seed) — engine filters that need
        // exact positions use the enumerating scans instead.
        for (e, t) in view.out_hops(v) {
            stats.edges_examined += 1;
            if !filter.edge_allowed(graph, e, entry.edges.len()) {
                continue;
            }
            let w = cost_fn(graph, e);
            if w < 0.0 {
                return Err(Error::execution(
                    "SPScan requires a non-negative edge cost attribute",
                ));
            }
            if closed.contains(&t) || !filter.vertex_allowed(graph, t, 1) {
                continue;
            }
            let nd = entry.cost + w;
            if dist.get(&t).is_none_or(|&d| nd < d) {
                dist.insert(t, nd);
                parent.insert(t, (v, e));
                seq += 1;
                heap.push(HeapEntry {
                    cost: nd,
                    seq,
                    vertexes: vec![t], // alloc-ok: closed-set variant carries only the tip
                    edges: Vec::new(), // alloc-ok: empty Vec does not allocate
                });
            }
        }
    }
    Ok((None, stats))
}

/// Lazy enumeration of simple paths from `source` to `target` in
/// non-decreasing cost order (best-first search over simple paths).
///
/// Complete and correct for non-negative costs; worst-case exponential like
/// any simple-path enumeration, so callers bound it with `max_len` and/or
/// by pulling only `k` results (the paper's `TOP k` + `LIMIT` usage).
pub struct KShortestPaths<'g, F: TraversalFilter, C>
where
    C: Fn(&GraphTopology, EdgeSlot) -> f64,
{
    graph: &'g GraphTopology,
    /// Unified adjacency accessor (sealed CSR or delta overlay).
    view: TopologyView<'g>,
    target: VertexSlot,
    cost_fn: C,
    filter: F,
    max_len: usize,
    heap: BinaryHeap<HeapEntry>,
    seq: u64,
    /// Set when a negative cost is observed; surfaced on the next pull.
    error: Option<Error>,
    vertices_visited: u64,
    edges_examined: u64,
}

impl<'g, F: TraversalFilter, C> KShortestPaths<'g, F, C>
where
    C: Fn(&GraphTopology, EdgeSlot) -> f64,
{
    pub fn new(
        graph: &'g GraphTopology,
        source: VertexSlot,
        target: VertexSlot,
        max_len: usize,
        cost_fn: C,
        filter: F,
    ) -> Self {
        let mut heap = BinaryHeap::new();
        if filter.vertex_allowed(graph, source, 0) {
            heap.push(HeapEntry {
                cost: 0.0,
                seq: 0,
                vertexes: vec![source],
                edges: Vec::new(),
            });
        }
        KShortestPaths {
            graph,
            view: graph.view(),
            target,
            cost_fn,
            filter,
            max_len,
            heap,
            seq: 0,
            error: None,
            vertices_visited: 0,
            edges_examined: 0,
        }
    }

    /// Error observed during enumeration (negative edge cost).
    pub fn take_error(&mut self) -> Option<Error> {
        self.error.take()
    }

    /// Heap entries processed (path tips considered) so far.
    pub fn vertices_visited(&self) -> u64 {
        self.vertices_visited
    }

    /// Out-edges examined during expansion so far.
    pub fn edges_examined(&self) -> u64 {
        self.edges_examined
    }

    /// The traversal filter, for callers that track filter-side counters.
    pub fn filter(&self) -> &F {
        &self.filter
    }
}

impl<'g, F: TraversalFilter, C> Iterator for KShortestPaths<'g, F, C>
where
    C: Fn(&GraphTopology, EdgeSlot) -> f64,
{
    type Item = PathData;

    fn next(&mut self) -> Option<PathData> {
        if self.error.is_some() {
            return None;
        }
        while let Some(entry) = self.heap.pop() {
            let v = *entry.vertexes.last().expect("non-empty");
            self.vertices_visited += 1;
            let at_target = v == self.target;
            let is_seed = entry.edges.is_empty();
            // A non-seed entry ending at the target is a result and is never
            // extended (a simple path cannot end at the target twice). The
            // seed IS extended even when source == target, so cycle queries
            // enumerate the cycles after the trivial zero-length path.
            let expand = entry.edges.len() < self.max_len && (!at_target || is_seed);
            if !expand && !at_target {
                continue;
            }
            if !expand {
                return Some(snapshot(self.graph, &entry.vertexes, &entry.edges, entry.cost));
            }
            for (e, t) in self.view.out_hops(v) {
                self.edges_examined += 1;
                if !self.filter.edge_allowed(self.graph, e, entry.edges.len()) {
                    continue;
                }
                let w = (self.cost_fn)(self.graph, e);
                if w < 0.0 {
                    self.error = Some(Error::execution(
                        "SPScan requires a non-negative edge cost attribute",
                    ));
                    return None;
                }
                // Simple paths: no intermediate revisit, no edge reuse. A
                // return to the start is only useful (and only allowed)
                // when the query asks for cycles (target == source).
                if entry.vertexes[1..].contains(&t) {
                    continue;
                }
                if t == entry.vertexes[0]
                    && (t != self.target || entry.edges.contains(&e))
                {
                    continue;
                }
                if !self.filter.vertex_allowed(self.graph, t, entry.vertexes.len()) {
                    continue;
                }
                let mut vs = entry.vertexes.clone(); // alloc-ok: path enumeration forks the prefix per expansion
                vs.push(t);
                let mut es = entry.edges.clone(); // alloc-ok: path enumeration forks the prefix per expansion
                es.push(e);
                self.seq += 1;
                self.heap.push(HeapEntry {
                    cost: entry.cost + w,
                    seq: self.seq,
                    vertexes: vs,
                    edges: es,
                });
            }
            if at_target {
                // The seed of a source == target query: emit the trivial
                // zero-length path after queueing its extensions.
                return Some(snapshot(self.graph, &entry.vertexes, &entry.edges, entry.cost));
            }
        }
        None
    }
}

/// Reference Bellman-Ford single-source shortest distances — the test
/// oracle for Dijkstra correctness (used by unit and property tests; not
/// part of the query engine).
pub fn reference_distances<C>(
    graph: &GraphTopology,
    source: VertexSlot,
    cost_fn: C,
) -> std::collections::HashMap<VertexSlot, f64>
where
    C: Fn(&GraphTopology, EdgeSlot) -> f64,
{
    let mut dist = std::collections::HashMap::new();
    dist.insert(source, 0.0);
    let n = graph.vertex_count();
    for _ in 0..n {
        let mut changed = false;
        for v in graph.vertex_slots() {
            let Some(&dv) = dist.get(&v) else { continue };
            for &e in graph.out_edges(v) {
                let t = graph.edge_target(e, v);
                let nd = dv + cost_fn(graph, e);
                if dist.get(&t).is_none_or(|&d| nd < d - 1e-12) {
                    dist.insert(t, nd);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{edge_filter, NoFilter};
    use grfusion_common::RowId;

    /// Weighted diamond: 1->2 (1), 2->4 (1), 1->3 (1), 3->4 (5), 1->4 (10)
    fn weighted() -> (GraphTopology, impl Fn(&GraphTopology, EdgeSlot) -> f64) {
        let mut g = GraphTopology::new("g", true);
        for v in 1..=4 {
            g.add_vertex(v, RowId(0)).unwrap();
        }
        g.add_edge(10, 1, 2, RowId(0)).unwrap();
        g.add_edge(11, 2, 4, RowId(0)).unwrap();
        g.add_edge(12, 1, 3, RowId(0)).unwrap();
        g.add_edge(13, 3, 4, RowId(0)).unwrap();
        g.add_edge(14, 1, 4, RowId(0)).unwrap();
        let cost = |g: &GraphTopology, e: EdgeSlot| match g.edge_id(e) {
            10..=12 => 1.0,
            13 => 5.0,
            14 => 10.0,
            _ => unreachable!(),
        };
        (g, cost)
    }

    #[test]
    fn dijkstra_finds_cheapest_path() {
        let (g, cost) = weighted();
        let s = g.vertex_slot(1).unwrap();
        let t = g.vertex_slot(4).unwrap();
        let p = shortest_path(&g, s, t, cost, &NoFilter).unwrap().unwrap();
        assert_eq!(p.path_string(), "1->2->4");
        assert!((p.cost - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dijkstra_unreachable_is_none() {
        let (g, cost) = weighted();
        let s = g.vertex_slot(4).unwrap();
        let t = g.vertex_slot(1).unwrap();
        assert!(shortest_path(&g, s, t, cost, &NoFilter).unwrap().is_none());
    }

    #[test]
    fn dijkstra_respects_edge_filter() {
        let (g, cost) = weighted();
        let s = g.vertex_slot(1).unwrap();
        let t = g.vertex_slot(4).unwrap();
        // Exclude the cheap 2->4 edge: forces 1->3->4 (6) over 1->4 (10).
        let f = edge_filter(|g: &GraphTopology, e, _| g.edge_id(e) != 11);
        let p = shortest_path(&g, s, t, cost, &f).unwrap().unwrap();
        assert_eq!(p.path_string(), "1->3->4");
        assert!((p.cost - 6.0).abs() < 1e-12);
    }

    #[test]
    fn dijkstra_rejects_negative_costs() {
        let (g, _) = weighted();
        let s = g.vertex_slot(1).unwrap();
        let t = g.vertex_slot(4).unwrap();
        let r = shortest_path(&g, s, t, |_, _| -1.0, &NoFilter);
        assert!(r.is_err());
    }

    #[test]
    fn dijkstra_source_equals_target() {
        let (g, cost) = weighted();
        let s = g.vertex_slot(1).unwrap();
        let p = shortest_path(&g, s, s, cost, &NoFilter).unwrap().unwrap();
        assert_eq!(p.length(), 0);
        assert_eq!(p.cost, 0.0);
    }

    #[test]
    fn k_shortest_yields_nondecreasing_costs() {
        let (g, cost) = weighted();
        let s = g.vertex_slot(1).unwrap();
        let t = g.vertex_slot(4).unwrap();
        let paths: Vec<PathData> = KShortestPaths::new(&g, s, t, 10, cost, NoFilter).collect();
        let strings: Vec<String> = paths.iter().map(|p| p.path_string()).collect();
        assert_eq!(strings, vec!["1->2->4", "1->3->4", "1->4"]);
        let costs: Vec<f64> = paths.iter().map(|p| p.cost).collect();
        assert_eq!(costs, vec![2.0, 6.0, 10.0]);
    }

    #[test]
    fn k_shortest_is_lazy() {
        let (g, cost) = weighted();
        let s = g.vertex_slot(1).unwrap();
        let t = g.vertex_slot(4).unwrap();
        let mut it = KShortestPaths::new(&g, s, t, 10, cost, NoFilter);
        assert_eq!(it.next().unwrap().path_string(), "1->2->4");
        // pull just one more
        assert_eq!(it.next().unwrap().path_string(), "1->3->4");
    }

    #[test]
    fn k_shortest_max_len_caps_exploration() {
        let (g, cost) = weighted();
        let s = g.vertex_slot(1).unwrap();
        let t = g.vertex_slot(4).unwrap();
        let paths: Vec<String> = KShortestPaths::new(&g, s, t, 1, cost, NoFilter)
            .map(|p| p.path_string())
            .collect();
        assert_eq!(paths, vec!["1->4"]);
    }

    #[test]
    fn k_shortest_negative_cost_sets_error() {
        let (g, _) = weighted();
        let s = g.vertex_slot(1).unwrap();
        let t = g.vertex_slot(4).unwrap();
        let mut it = KShortestPaths::new(&g, s, t, 10, |_, _| -1.0, NoFilter);
        assert!(it.next().is_none());
        assert!(it.take_error().is_some());
    }

    #[test]
    fn dijkstra_agrees_with_bellman_ford_on_grid() {
        // 4x4 grid, undirected, unit-ish costs derived from edge ids.
        let mut g = GraphTopology::new("g", false);
        let n = 4i64;
        for v in 0..n * n {
            g.add_vertex(v, RowId(0)).unwrap();
        }
        let mut eid = 0;
        for r in 0..n {
            for c in 0..n {
                let v = r * n + c;
                if c + 1 < n {
                    g.add_edge(eid, v, v + 1, RowId(0)).unwrap();
                    eid += 1;
                }
                if r + 1 < n {
                    g.add_edge(eid, v, v + n, RowId(0)).unwrap();
                    eid += 1;
                }
            }
        }
        let cost = |g: &GraphTopology, e: EdgeSlot| 1.0 + (g.edge_id(e) % 7) as f64;
        let s = g.vertex_slot(0).unwrap();
        let reference = reference_distances(&g, s, cost);
        for v in 0..n * n {
            let t = g.vertex_slot(v).unwrap();
            let got = shortest_path(&g, s, t, cost, &NoFilter).unwrap();
            let want = reference.get(&t).copied();
            match (got, want) {
                (Some(p), Some(d)) => assert!((p.cost - d).abs() < 1e-9, "vertex {v}"),
                (None, None) => {}
                (g, w) => panic!("mismatch at {v}: {g:?} vs {w:?}"),
            }
        }
    }
}
