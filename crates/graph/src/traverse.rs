//! Lazy depth-first and breadth-first simple-path enumeration.
//!
//! These back the paper's `DFScan` and `BFScan` physical operators
//! (EDBT 2018 §5.1.2, §6.3). Both are pull-based: each `next()` call does
//! only as much traversal as needed to surface one more qualifying path,
//! so `LIMIT`-style parents stop the walk early. Both enumerate **simple**
//! paths — no intermediate vertex is revisited and no edge is reused — and
//! respect a length window `[min_len, max_len]` that the optimizer infers
//! from query predicates (§6.1).
//!
//! One deliberate extension of "simple": a path may return to its *start*
//! vertex, closing a simple cycle, and a closed path is never extended
//! further. The paper's sub-graph pattern queries depend on this — Listing
//! 4's triangle count matches paths with `P.Length = 3 AND
//! P.Edges[2].EndVertex = P.Edges[0].StartVertex`, which only exist if the
//! third hop may land back on the start.

use grfusion_common::PathData;

use crate::filter::TraversalFilter;
use crate::topology::{EdgeSlot, GraphTopology, TopologyView, VertexSlot};

/// Traversal parameters shared by DFS and BFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraversalSpec {
    /// Minimum path length (edges) to emit. 0 emits the seed itself.
    pub min_len: usize,
    /// Maximum path length (edges) to explore. Traversal never expands a
    /// path beyond this, which is the §6.1 early-pruning guarantee.
    pub max_len: usize,
    /// When true, traversal filters receive `prefix_allowed` callbacks with
    /// a materialized [`PathData`] after each extension (needed for running
    /// path aggregates; costs one allocation per expansion, so it is opt-in).
    pub check_prefixes: bool,
}

impl TraversalSpec {
    pub fn new(min_len: usize, max_len: usize) -> Self {
        TraversalSpec {
            min_len,
            max_len,
            check_prefixes: false,
        }
    }

    pub fn with_prefix_checks(mut self) -> Self {
        self.check_prefixes = true;
        self
    }
}

/// Snapshot a slot-form path into user-id form.
fn snapshot(
    graph: &GraphTopology,
    vertexes: &[VertexSlot],
    edges: &[EdgeSlot],
) -> PathData {
    PathData {
        graph_view: graph.name().to_string(),
        vertexes: vertexes.iter().map(|&s| graph.vertex_id(s)).collect(),
        edges: edges.iter().map(|&s| graph.edge_id(s)).collect(),
        cost: 0.0,
    }
}

// ---------------------------------------------------------------------------
// Depth-first
// ---------------------------------------------------------------------------

/// Iterative DFS over simple paths from a set of start vertexes.
///
/// The stack holds one cursor per path position (which out-edge to try
/// next), so the memory footprint is `O(path length + Σ on-path degree)` —
/// the `F·L` stack bound from §6.3.
pub struct DfsPaths<'g, F: TraversalFilter> {
    graph: &'g GraphTopology,
    /// Unified adjacency accessor (sealed CSR or delta overlay).
    view: TopologyView<'g>,
    filter: F,
    spec: TraversalSpec,
    seeds: Vec<VertexSlot>,
    next_seed: usize,
    path_vertexes: Vec<VertexSlot>,
    path_edges: Vec<EdgeSlot>,
    cursors: Vec<usize>,
    /// Peak stack depth observed (ablation metric).
    max_depth: usize,
    /// Total edges examined (work metric).
    edges_examined: u64,
    /// Vertexes pushed onto the path stack (work metric).
    vertices_visited: u64,
}

impl<'g, F: TraversalFilter> DfsPaths<'g, F> {
    pub fn new(
        graph: &'g GraphTopology,
        seeds: Vec<VertexSlot>,
        spec: TraversalSpec,
        filter: F,
    ) -> Self {
        DfsPaths {
            graph,
            view: graph.view(),
            filter,
            spec,
            seeds,
            next_seed: 0,
            path_vertexes: Vec::new(),
            path_edges: Vec::new(),
            cursors: Vec::new(),
            max_depth: 0,
            edges_examined: 0,
            vertices_visited: 0,
        }
    }

    pub fn max_stack_depth(&self) -> usize {
        self.max_depth
    }

    pub fn edges_examined(&self) -> u64 {
        self.edges_examined
    }

    pub fn vertices_visited(&self) -> u64 {
        self.vertices_visited
    }

    /// The traversal filter (counters live on engine-side filters).
    pub fn filter(&self) -> &F {
        &self.filter
    }

    fn pop(&mut self) {
        self.path_vertexes.pop();
        self.cursors.pop();
        if !self.path_vertexes.is_empty() {
            self.path_edges.pop();
        } else {
            self.path_edges.clear();
        }
    }

    fn current_snapshot(&self) -> PathData {
        snapshot(self.graph, &self.path_vertexes, &self.path_edges)
    }
}

impl<'g, F: TraversalFilter> Iterator for DfsPaths<'g, F> {
    type Item = PathData;

    fn next(&mut self) -> Option<PathData> {
        loop {
            // Start a new seed when the stack is empty.
            if self.path_vertexes.is_empty() {
                let seed = loop {
                    if self.next_seed >= self.seeds.len() {
                        return None;
                    }
                    let s = self.seeds[self.next_seed];
                    self.next_seed += 1;
                    if self.filter.vertex_allowed(self.graph, s, 0) {
                        break s;
                    }
                };
                self.path_vertexes.push(seed);
                self.cursors.push(0);
                self.vertices_visited += 1;
                self.max_depth = self.max_depth.max(1);
                if self.spec.min_len == 0 {
                    return Some(self.current_snapshot());
                }
                continue;
            }

            let depth = self.path_edges.len();
            let v = *self.path_vertexes.last().expect("non-empty");

            // A closed path (returned to its start) is never extended.
            let closed = depth > 0 && v == self.path_vertexes[0];
            let mut extended = false;
            if depth < self.spec.max_len && !closed {
                let out_len = self.view.out_len(v);
                while self.cursors[depth] < out_len {
                    let (e, t) = self.view.out_hop(v, self.cursors[depth]);
                    self.cursors[depth] += 1;
                    self.edges_examined += 1;
                    if !self.filter.edge_allowed(self.graph, e, depth) {
                        continue;
                    }
                    // Simple paths: never revisit an intermediate vertex,
                    // never reuse an edge; returning to the start closes a
                    // simple cycle and is allowed.
                    if self.path_vertexes[1..].contains(&t) {
                        continue;
                    }
                    if t == self.path_vertexes[0] && self.path_edges.contains(&e) {
                        continue;
                    }
                    if !self.filter.vertex_allowed(self.graph, t, depth + 1) {
                        continue;
                    }
                    self.path_edges.push(e);
                    self.path_vertexes.push(t);
                    self.cursors.push(0);
                    self.vertices_visited += 1;
                    self.max_depth = self.max_depth.max(self.path_vertexes.len());
                    if self.spec.check_prefixes {
                        let snap = self.current_snapshot();
                        if !self.filter.prefix_allowed(self.graph, &snap) {
                            self.pop();
                            continue;
                        }
                        if snap.length() >= self.spec.min_len {
                            return Some(snap);
                        }
                    } else if self.path_edges.len() >= self.spec.min_len {
                        return Some(self.current_snapshot());
                    }
                    extended = true;
                    break;
                }
            }
            if !extended {
                self.pop();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Breadth-first
// ---------------------------------------------------------------------------

/// BFS over simple paths from a set of start vertexes.
///
/// The queue holds compact slot-form path descriptors; its peak size is the
/// `F^L` frontier bound from §6.3 (the reason the optimizer prefers BFS
/// only when the fan-out is small relative to the target length).
pub struct BfsPaths<'g, F: TraversalFilter> {
    graph: &'g GraphTopology,
    /// Unified adjacency accessor (sealed CSR or delta overlay).
    view: TopologyView<'g>,
    filter: F,
    spec: TraversalSpec,
    queue: std::collections::VecDeque<(Vec<VertexSlot>, Vec<EdgeSlot>)>,
    max_frontier: usize,
    edges_examined: u64,
    /// Vertexes enqueued onto the frontier (work metric).
    vertices_visited: u64,
}

impl<'g, F: TraversalFilter> BfsPaths<'g, F> {
    pub fn new(
        graph: &'g GraphTopology,
        seeds: Vec<VertexSlot>,
        spec: TraversalSpec,
        filter: F,
    ) -> Self {
        let mut queue = std::collections::VecDeque::new();
        for s in seeds {
            if filter.vertex_allowed(graph, s, 0) {
                queue.push_back((vec![s], Vec::new())); // alloc-ok: one-time seed initialization
            }
        }
        let max_frontier = queue.len();
        let vertices_visited = queue.len() as u64;
        BfsPaths {
            graph,
            view: graph.view(),
            filter,
            spec,
            queue,
            max_frontier,
            edges_examined: 0,
            vertices_visited,
        }
    }

    pub fn max_frontier(&self) -> usize {
        self.max_frontier
    }

    pub fn edges_examined(&self) -> u64 {
        self.edges_examined
    }

    pub fn vertices_visited(&self) -> u64 {
        self.vertices_visited
    }

    /// The traversal filter (counters live on engine-side filters).
    pub fn filter(&self) -> &F {
        &self.filter
    }
}

impl<'g, F: TraversalFilter> Iterator for BfsPaths<'g, F> {
    type Item = PathData;

    fn next(&mut self) -> Option<PathData> {
        while let Some((vertexes, edges)) = self.queue.pop_front() {
            let depth = edges.len();
            // Expand children first so the emitted path's successors are
            // queued even when we return below. Closed paths (returned to
            // their start) are never extended.
            let v = *vertexes.last().expect("non-empty path");
            let is_closed = depth > 0 && v == vertexes[0];
            if depth < self.spec.max_len && !is_closed {
                for (e, t) in self.view.out_hops(v) {
                    self.edges_examined += 1;
                    if !self.filter.edge_allowed(self.graph, e, depth) {
                        continue;
                    }
                    // Simple paths: no intermediate revisit, no edge reuse;
                    // returning to the start closes a simple cycle.
                    if vertexes[1..].contains(&t) {
                        continue;
                    }
                    if t == vertexes[0] && edges.contains(&e) {
                        continue;
                    }
                    if !self.filter.vertex_allowed(self.graph, t, depth + 1) {
                        continue;
                    }
                    let mut cv = vertexes.clone(); // alloc-ok: PATH output forks the prefix per expansion
                    cv.push(t);
                    let mut ce = edges.clone(); // alloc-ok: PATH output forks the prefix per expansion
                    ce.push(e);
                    if self.spec.check_prefixes {
                        let snap = snapshot(self.graph, &cv, &ce);
                        if !self.filter.prefix_allowed(self.graph, &snap) {
                            continue;
                        }
                    }
                    self.vertices_visited += 1;
                    self.queue.push_back((cv, ce));
                }
                self.max_frontier = self.max_frontier.max(self.queue.len());
            }
            if depth >= self.spec.min_len {
                return Some(snapshot(self.graph, &vertexes, &edges));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{edge_filter, NoFilter};
    use grfusion_common::RowId;

    /// 1 -> 2 -> 4, 1 -> 3 -> 4, 4 -> 5 (directed)
    fn sample() -> GraphTopology {
        let mut g = GraphTopology::new("g", true);
        for v in 1..=5 {
            g.add_vertex(v, RowId(v as u64)).unwrap();
        }
        g.add_edge(10, 1, 2, RowId(0)).unwrap();
        g.add_edge(11, 1, 3, RowId(0)).unwrap();
        g.add_edge(12, 2, 4, RowId(0)).unwrap();
        g.add_edge(13, 3, 4, RowId(0)).unwrap();
        g.add_edge(14, 4, 5, RowId(0)).unwrap();
        g
    }

    fn path_strings<I: Iterator<Item = PathData>>(it: I) -> Vec<String> {
        let mut v: Vec<String> = it.map(|p| p.path_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn dfs_enumerates_all_simple_paths_in_window() {
        let g = sample();
        let seed = g.vertex_slot(1).unwrap();
        let paths = path_strings(DfsPaths::new(
            &g,
            vec![seed],
            TraversalSpec::new(1, 3),
            NoFilter,
        ));
        assert_eq!(
            paths,
            vec![
                "1->2", "1->2->4", "1->2->4->5", "1->3", "1->3->4", "1->3->4->5"
            ]
        );
    }

    #[test]
    fn bfs_matches_dfs_path_set() {
        let g = sample();
        let seed = g.vertex_slot(1).unwrap();
        let dfs = path_strings(DfsPaths::new(
            &g,
            vec![seed],
            TraversalSpec::new(1, 3),
            NoFilter,
        ));
        let bfs = path_strings(BfsPaths::new(
            &g,
            vec![seed],
            TraversalSpec::new(1, 3),
            NoFilter,
        ));
        assert_eq!(dfs, bfs);
    }

    #[test]
    fn bfs_emits_in_length_order() {
        let g = sample();
        let seed = g.vertex_slot(1).unwrap();
        let lens: Vec<usize> = BfsPaths::new(&g, vec![seed], TraversalSpec::new(1, 3), NoFilter)
            .map(|p| p.length())
            .collect();
        let mut sorted = lens.clone();
        sorted.sort();
        assert_eq!(lens, sorted);
    }

    #[test]
    fn min_len_zero_emits_seed() {
        let g = sample();
        let seed = g.vertex_slot(5).unwrap();
        let paths = path_strings(DfsPaths::new(
            &g,
            vec![seed],
            TraversalSpec::new(0, 2),
            NoFilter,
        ));
        assert_eq!(paths, vec!["5"]);
        let paths = path_strings(BfsPaths::new(
            &g,
            vec![seed],
            TraversalSpec::new(0, 2),
            NoFilter,
        ));
        assert_eq!(paths, vec!["5"]);
    }

    #[test]
    fn window_excludes_short_and_long() {
        let g = sample();
        let seed = g.vertex_slot(1).unwrap();
        let paths = path_strings(DfsPaths::new(
            &g,
            vec![seed],
            TraversalSpec::new(2, 2),
            NoFilter,
        ));
        assert_eq!(paths, vec!["1->2->4", "1->3->4"]);
    }

    #[test]
    fn multiple_seeds() {
        let g = sample();
        let seeds = vec![g.vertex_slot(2).unwrap(), g.vertex_slot(3).unwrap()];
        let paths = path_strings(BfsPaths::new(
            &g,
            seeds,
            TraversalSpec::new(1, 1),
            NoFilter,
        ));
        assert_eq!(paths, vec!["2->4", "3->4"]);
    }

    #[test]
    fn simple_paths_only_in_cycles() {
        // triangle 1->2->3->1
        let mut g = GraphTopology::new("g", true);
        for v in 1..=3 {
            g.add_vertex(v, RowId(0)).unwrap();
        }
        g.add_edge(10, 1, 2, RowId(0)).unwrap();
        g.add_edge(11, 2, 3, RowId(0)).unwrap();
        g.add_edge(12, 3, 1, RowId(0)).unwrap();
        let seed = g.vertex_slot(1).unwrap();
        // Even with a huge max length, nothing longer than the closing
        // cycle is produced: intermediates are never revisited, and the
        // closed path 1->2->3->1 is not extended.
        let paths = path_strings(DfsPaths::new(
            &g,
            vec![seed],
            TraversalSpec::new(1, 10),
            NoFilter,
        ));
        assert_eq!(paths, vec!["1->2", "1->2->3", "1->2->3->1"]);
        // BFS agrees.
        let paths = path_strings(BfsPaths::new(
            &g,
            vec![seed],
            TraversalSpec::new(1, 10),
            NoFilter,
        ));
        assert_eq!(paths, vec!["1->2", "1->2->3", "1->2->3->1"]);
    }

    #[test]
    fn undirected_edge_not_reused_to_close() {
        // Single undirected edge 1-2: the only length-2 "cycle" would reuse
        // the edge, which is forbidden.
        let mut g = GraphTopology::new("g", false);
        g.add_vertex(1, RowId(0)).unwrap();
        g.add_vertex(2, RowId(0)).unwrap();
        g.add_edge(10, 1, 2, RowId(0)).unwrap();
        let seed = g.vertex_slot(1).unwrap();
        let paths = path_strings(DfsPaths::new(
            &g,
            vec![seed],
            TraversalSpec::new(1, 3),
            NoFilter,
        ));
        assert_eq!(paths, vec!["1->2"]);
        // With a parallel edge, the 2-cycle exists.
        g.add_edge(11, 2, 1, RowId(0)).unwrap();
        let seed = g.vertex_slot(1).unwrap();
        let paths = path_strings(BfsPaths::new(
            &g,
            vec![seed],
            TraversalSpec::new(2, 2),
            NoFilter,
        ));
        assert_eq!(paths, vec!["1->2->1", "1->2->1"]);
    }

    #[test]
    fn undirected_traversal_crosses_both_ways() {
        let mut g = GraphTopology::new("g", false);
        g.add_vertex(1, RowId(0)).unwrap();
        g.add_vertex(2, RowId(0)).unwrap();
        g.add_edge(10, 2, 1, RowId(0)).unwrap(); // declared 2->1
        let seed = g.vertex_slot(1).unwrap();
        let paths = path_strings(BfsPaths::new(
            &g,
            vec![seed],
            TraversalSpec::new(1, 1),
            NoFilter,
        ));
        assert_eq!(paths, vec!["1->2"]);
    }

    #[test]
    fn edge_filter_prunes_during_traversal() {
        let g = sample();
        let seed = g.vertex_slot(1).unwrap();
        // Forbid edge 11 (1->3): only the 1->2->4 branch survives.
        let f = edge_filter(|g: &GraphTopology, e, _| g.edge_id(e) != 11);
        let paths = path_strings(DfsPaths::new(&g, vec![seed], TraversalSpec::new(1, 3), f));
        assert_eq!(paths, vec!["1->2", "1->2->4", "1->2->4->5"]);
    }

    #[test]
    fn hop_indexed_edge_filter() {
        let g = sample();
        let seed = g.vertex_slot(1).unwrap();
        // Hop 0 must be edge 10; later hops unconstrained.
        let f = edge_filter(|g: &GraphTopology, e, hop| hop != 0 || g.edge_id(e) == 10);
        let paths = path_strings(BfsPaths::new(&g, vec![seed], TraversalSpec::new(1, 2), f));
        assert_eq!(paths, vec!["1->2", "1->2->4"]);
    }

    #[test]
    fn prefix_filter_prunes_subtrees() {
        let g = sample();
        let seed = g.vertex_slot(1).unwrap();
        // Reject any prefix that reaches vertex 4: its extensions vanish too.
        let f = crate::filter::FnFilter {
            edge: |_: &GraphTopology, _, _| true,
            vertex: |_: &GraphTopology, _, _| true,
            prefix: |_: &GraphTopology, p: &PathData| p.end_vertex() != 4,
        };
        let paths = path_strings(DfsPaths::new(
            &g,
            vec![seed],
            TraversalSpec::new(1, 3).with_prefix_checks(),
            f,
        ));
        assert_eq!(paths, vec!["1->2", "1->3"]);
    }

    #[test]
    fn lazy_pull_stops_early() {
        let g = sample();
        let seed = g.vertex_slot(1).unwrap();
        let mut it = DfsPaths::new(&g, vec![seed], TraversalSpec::new(1, 3), NoFilter);
        let first = it.next().unwrap();
        assert_eq!(first.length(), 1);
        // Only a prefix of the graph has been examined so far.
        assert!(it.edges_examined() <= 2);
    }

    #[test]
    fn traversal_metrics_populate() {
        let g = sample();
        let seed = g.vertex_slot(1).unwrap();
        let mut dfs = DfsPaths::new(&g, vec![seed], TraversalSpec::new(1, 3), NoFilter);
        while dfs.next().is_some() {}
        assert!(dfs.max_stack_depth() >= 4); // path 1->2->4->5 has 4 vertexes
        // Seed + one push per emitted path (6 simple paths from vertex 1).
        assert_eq!(dfs.vertices_visited(), 7);
        assert!(dfs.edges_examined() >= 6);
        let mut bfs = BfsPaths::new(&g, vec![seed], TraversalSpec::new(1, 3), NoFilter);
        while bfs.next().is_some() {}
        assert!(bfs.max_frontier() >= 2);
        assert_eq!(bfs.vertices_visited(), 7);
    }

    #[test]
    fn seed_vertex_filter_applies() {
        let g = sample();
        let seeds = vec![g.vertex_slot(1).unwrap(), g.vertex_slot(2).unwrap()];
        let f = crate::filter::FnFilter {
            edge: |_: &GraphTopology, _, _| true,
            vertex: |g: &GraphTopology, v: VertexSlot, pos: usize| {
                pos != 0 || g.vertex_id(v) != 1
            },
            prefix: |_: &GraphTopology, _: &PathData| true,
        };
        let paths = path_strings(DfsPaths::new(&g, seeds, TraversalSpec::new(1, 1), f));
        assert_eq!(paths, vec!["2->4"]);
    }
}
