//! Traversal-time filtering hooks.
//!
//! GRFusion's optimizer pushes relational predicates *ahead of* the
//! `PathScan` operator (EDBT 2018 §6.2): edge/vertex predicates and running
//! path aggregates are checked while the graph is being traversed so that
//! doomed paths are pruned before they ever reach the pipeline. The engine
//! crate implements this trait with closures that dereference tuple
//! pointers into the relational sources; the traversal iterators here call
//! it at every expansion step.

use grfusion_common::PathData;

use crate::topology::{EdgeSlot, GraphTopology, VertexSlot};

/// Pruning decisions consulted during traversal.
///
/// All methods default to "allowed" so implementations override only what
/// the query constrains. `hop` / `position` are 0-based indexes into the
/// path's edge / vertex lists, enabling indexed predicates like
/// `PS.Edges[0..2].Type = 'covalent'`.
pub trait TraversalFilter {
    /// May edge `edge` be used as hop number `hop`?
    fn edge_allowed(&self, graph: &GraphTopology, edge: EdgeSlot, hop: usize) -> bool {
        let _ = (graph, edge, hop);
        true
    }

    /// May vertex `vertex` appear at `position` on the path? (Position 0 is
    /// the start vertex.)
    fn vertex_allowed(&self, graph: &GraphTopology, vertex: VertexSlot, position: usize) -> bool {
        let _ = (graph, vertex, position);
        true
    }

    /// May this partial path still lead to results? Used for running
    /// aggregates (e.g. `SUM(PS.Edges.Cost) < 10` prunes as soon as the
    /// accumulated cost exceeds the bound, §6.2).
    fn prefix_allowed(&self, graph: &GraphTopology, path: &PathData) -> bool {
        let _ = (graph, path);
        true
    }
}

/// The no-op filter (unconstrained traversal).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFilter;

impl TraversalFilter for NoFilter {}

/// Filter defined by closures — convenient for tests and ad-hoc traversals.
pub struct FnFilter<E, V, P>
where
    E: Fn(&GraphTopology, EdgeSlot, usize) -> bool,
    V: Fn(&GraphTopology, VertexSlot, usize) -> bool,
    P: Fn(&GraphTopology, &PathData) -> bool,
{
    pub edge: E,
    pub vertex: V,
    pub prefix: P,
}

impl<E, V, P> TraversalFilter for FnFilter<E, V, P>
where
    E: Fn(&GraphTopology, EdgeSlot, usize) -> bool,
    V: Fn(&GraphTopology, VertexSlot, usize) -> bool,
    P: Fn(&GraphTopology, &PathData) -> bool,
{
    fn edge_allowed(&self, graph: &GraphTopology, edge: EdgeSlot, hop: usize) -> bool {
        (self.edge)(graph, edge, hop)
    }
    fn vertex_allowed(&self, graph: &GraphTopology, vertex: VertexSlot, position: usize) -> bool {
        (self.vertex)(graph, vertex, position)
    }
    fn prefix_allowed(&self, graph: &GraphTopology, path: &PathData) -> bool {
        (self.prefix)(graph, path)
    }
}

/// An edge-only closure filter (the common pushdown case).
pub fn edge_filter<F>(f: F) -> impl TraversalFilter
where
    F: Fn(&GraphTopology, EdgeSlot, usize) -> bool,
{
    FnFilter {
        edge: f,
        vertex: |_: &GraphTopology, _: VertexSlot, _: usize| true,
        prefix: |_: &GraphTopology, _: &PathData| true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grfusion_common::RowId;

    #[test]
    fn no_filter_allows_everything() {
        let g = GraphTopology::new("g", true);
        let f = NoFilter;
        assert!(f.edge_allowed(&g, 0, 0));
        assert!(f.vertex_allowed(&g, 0, 0));
        assert!(f.prefix_allowed(&g, &PathData::seed("g", 1)));
    }

    #[test]
    fn edge_filter_dispatches() {
        let mut g = GraphTopology::new("g", true);
        g.add_vertex(1, RowId(0)).unwrap();
        g.add_vertex(2, RowId(1)).unwrap();
        let e = g.add_edge(10, 1, 2, RowId(2)).unwrap();
        let f = edge_filter(|g: &GraphTopology, edge, _| g.edge_id(edge) != 10);
        assert!(!f.edge_allowed(&g, e, 0));
        assert!(f.vertex_allowed(&g, 0, 0));
    }
}
