//! Property tests at the topology/traversal API level (below SQL).

use proptest::prelude::*;

use grfusion_common::RowId;
use grfusion_graph::{
    shortest_path, BfsPaths, DfsPaths, GraphTopology, KShortestPaths, NoFilter, TraversalSpec,
};

fn arb_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize)>, bool)> {
    (2usize..9).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..20);
        (Just(n), edges, any::<bool>())
    })
}

fn build(n: usize, edges: &[(usize, usize)], directed: bool) -> GraphTopology {
    let mut g = GraphTopology::new("g", directed);
    for v in 0..n as i64 {
        g.add_vertex(v, RowId(v as u64)).unwrap();
    }
    for (i, (a, b)) in edges.iter().enumerate() {
        g.add_edge(i as i64, *a as i64, *b as i64, RowId(0)).unwrap();
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DFS and BFS enumerate the same multiset of edge sequences.
    #[test]
    fn dfs_bfs_same_paths((n, edges, directed) in arb_graph(), max in 1usize..4) {
        let g = build(n, &edges, directed);
        let seed = g.vertex_slot(0).unwrap();
        let spec = TraversalSpec::new(0, max);
        let mut dfs: Vec<Vec<i64>> =
            DfsPaths::new(&g, vec![seed], spec, NoFilter).map(|p| p.edges).collect();
        let mut bfs: Vec<Vec<i64>> =
            BfsPaths::new(&g, vec![seed], spec, NoFilter).map(|p| p.edges).collect();
        dfs.sort();
        bfs.sort();
        prop_assert_eq!(dfs, bfs);
    }

    /// BFS emits paths in non-decreasing length order (needed by the
    /// fewest-hops semantics of reachability).
    #[test]
    fn bfs_length_monotone((n, edges, directed) in arb_graph()) {
        let g = build(n, &edges, directed);
        let seed = g.vertex_slot(0).unwrap();
        let lens: Vec<usize> =
            BfsPaths::new(&g, vec![seed], TraversalSpec::new(0, 3), NoFilter)
                .map(|p| p.length())
                .collect();
        prop_assert!(lens.windows(2).all(|w| w[0] <= w[1]));
    }

    /// K-shortest-path enumeration yields non-decreasing costs, and its
    /// first result matches classic Dijkstra.
    #[test]
    fn ksp_costs_monotone_and_first_is_shortest(
        (n, edges, directed) in arb_graph(), target in 0usize..9
    ) {
        let target = target % n;
        let g = build(n, &edges, directed);
        let s = g.vertex_slot(0).unwrap();
        let t = g.vertex_slot(target as i64).unwrap();
        let cost = |g: &GraphTopology, e: grfusion_graph::EdgeSlot| {
            1.0 + (g.edge_id(e) % 5) as f64
        };
        let paths: Vec<_> = KShortestPaths::new(&g, s, t, 6, cost, NoFilter)
            .take(12)
            .collect();
        prop_assert!(paths.windows(2).all(|w| w[0].cost <= w[1].cost + 1e-12));
        let dij = shortest_path(&g, s, t, cost, &NoFilter).unwrap();
        match (paths.first(), dij) {
            (Some(p), Some(d)) => prop_assert!((p.cost - d.cost).abs() < 1e-9),
            (None, None) => {}
            // KSP bounded at 6 hops may miss a longer-but-only route that
            // unbounded Dijkstra finds.
            (None, Some(d)) => prop_assert!(d.length() > 6),
            (p, d) => prop_assert!(false, "mismatch: {:?} vs {:?}", p, d),
        }
    }

    /// Removing and re-adding edges keeps adjacency exactly consistent
    /// with a freshly built topology.
    #[test]
    fn edge_churn_matches_fresh_build(
        (n, edges, directed) in arb_graph(),
        remove in proptest::collection::vec(0usize..20, 0..10)
    ) {
        let mut g = build(n, &edges, directed);
        let mut kept: Vec<(usize, (usize, usize))> = edges.iter().cloned().enumerate().collect();
        for r in remove {
            if kept.is_empty() { break; }
            let i = r % kept.len();
            let (eid, _) = kept.remove(i);
            g.remove_edge(eid as i64).unwrap();
        }
        // fresh topology over the kept edges
        let mut fresh = GraphTopology::new("g", directed);
        for v in 0..n as i64 {
            fresh.add_vertex(v, RowId(v as u64)).unwrap();
        }
        for (eid, (a, b)) in &kept {
            fresh.add_edge(*eid as i64, *a as i64, *b as i64, RowId(0)).unwrap();
        }
        prop_assert_eq!(g.edge_count(), fresh.edge_count());
        for v in 0..n as i64 {
            let gs = g.vertex_slot(v).unwrap();
            let fs = fresh.vertex_slot(v).unwrap();
            prop_assert_eq!(g.fan_out(gs), fresh.fan_out(fs), "fan_out of {}", v);
            prop_assert_eq!(g.fan_in(gs), fresh.fan_in(fs), "fan_in of {}", v);
            let mut a: Vec<i64> = g.out_edges(gs).iter().map(|&e| g.edge_id(e)).collect();
            let mut b: Vec<i64> = fresh.out_edges(fs).iter().map(|&e| fresh.edge_id(e)).collect();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "adjacency of {}", v);
        }
    }

    /// Stats stay consistent under churn: avg fan-out equals the direct
    /// adjacency average.
    #[test]
    fn stats_consistent((n, edges, directed) in arb_graph()) {
        let g = build(n, &edges, directed);
        let stats = g.stats();
        let total: usize = g.vertex_slots().map(|v| g.fan_out(v)).sum();
        let expect = total as f64 / g.vertex_count() as f64;
        prop_assert!((stats.avg_fan_out - expect).abs() < 1e-12);
        prop_assert_eq!(stats.vertex_count, n);
        prop_assert_eq!(stats.edge_count, edges.len());
    }
}
