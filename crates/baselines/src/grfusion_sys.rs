//! GRFusion driven through its SQL surface — the system under test.
//!
//! Queries run as prepared statements with `?` parameters, matching the
//! VoltDB stored-procedure execution model the paper's system inherits
//! (plans are compiled once; each call only binds parameters and runs).

use std::collections::HashMap;
use std::sync::Arc;

use grfusion::{Database, EngineConfig, PreparedQuery};
use grfusion_common::{DataType, Error, Result, Row, Value};
use grfusion_datasets::Dataset;
use parking_lot::Mutex;

use crate::GraphSystem;

/// GRFusion loaded with a dataset as two relational tables plus a
/// materialized graph view named `g` (the paper's §3 setup).
pub struct GrFusionSystem {
    db: Database,
    directed: bool,
    /// Prepared-plan cache keyed by SQL template (the "stored procedures").
    prepared: Mutex<HashMap<String, Arc<PreparedQuery>>>,
}

fn sql_type(t: DataType) -> &'static str {
    match t {
        DataType::Integer => "INTEGER",
        DataType::Double => "DOUBLE",
        DataType::Boolean => "BOOLEAN",
        DataType::Varchar => "VARCHAR",
        DataType::Path => unreachable!("datasets never carry PATH columns"),
    }
}

impl GrFusionSystem {
    /// Load with the default (paper) engine configuration.
    pub fn load(ds: &Dataset) -> Result<GrFusionSystem> {
        Self::load_with(ds, EngineConfig::default())
    }

    /// Load with a custom configuration (ablation benches flip optimizer
    /// flags here).
    pub fn load_with(ds: &Dataset, config: EngineConfig) -> Result<GrFusionSystem> {
        let db = Self::prepare_tables(ds, config)?;
        db.execute(&Self::graph_view_ddl(ds))?;
        Ok(GrFusionSystem {
            db,
            directed: ds.directed,
            prepared: Mutex::new(HashMap::new()),
        })
    }

    /// Create and fill the relational sources WITHOUT materializing the
    /// graph view — the build-cost experiment times the `CREATE GRAPH
    /// VIEW` statement separately.
    pub fn prepare_tables(ds: &Dataset, config: EngineConfig) -> Result<Database> {
        let db = Database::with_config(config);
        let mut vddl = String::from("CREATE TABLE v_src (id INTEGER PRIMARY KEY");
        for (name, ty) in &ds.vertex_schema {
            vddl.push_str(&format!(", {name} {}", sql_type(*ty)));
        }
        vddl.push(')');
        db.execute(&vddl)?;
        let mut eddl =
            String::from("CREATE TABLE e_src (id INTEGER PRIMARY KEY, src INTEGER, dst INTEGER");
        for (name, ty) in &ds.edge_schema {
            eddl.push_str(&format!(", {name} {}", sql_type(*ty)));
        }
        eddl.push(')');
        db.execute(&eddl)?;

        let vrows: Vec<Row> = ds
            .vertices
            .iter()
            .map(|(id, attrs)| {
                let mut r = Vec::with_capacity(1 + attrs.len());
                r.push(Value::Integer(*id));
                r.extend(attrs.iter().cloned());
                r
            })
            .collect();
        db.bulk_insert("v_src", vrows)?;
        let erows: Vec<Row> = ds
            .edges
            .iter()
            .map(|(id, from, to, attrs)| {
                let mut r = Vec::with_capacity(3 + attrs.len());
                r.push(Value::Integer(*id));
                r.push(Value::Integer(*from));
                r.push(Value::Integer(*to));
                r.extend(attrs.iter().cloned());
                r
            })
            .collect();
        db.bulk_insert("e_src", erows)?;
        Ok(db)
    }

    /// The `CREATE GRAPH VIEW` DDL for a dataset (paper Listing 1 shape).
    pub fn graph_view_ddl(ds: &Dataset) -> String {
        let mut gv = format!(
            "CREATE {} GRAPH VIEW g VERTEXES(ID = id",
            if ds.directed { "DIRECTED" } else { "UNDIRECTED" }
        );
        for (name, _) in &ds.vertex_schema {
            gv.push_str(&format!(", {name} = {name}"));
        }
        gv.push_str(") FROM v_src EDGES(ID = id, FROM = src, TO = dst");
        for (name, _) in &ds.edge_schema {
            gv.push_str(&format!(", {name} = {name}"));
        }
        gv.push_str(") FROM e_src");
        gv
    }

    /// Access the underlying database (for stats and ad-hoc queries).
    pub fn db(&self) -> &Database {
        &self.db
    }
}

impl GrFusionSystem {
    /// Prepare-once execution: fetch or compile the plan for a SQL
    /// template, then run it with the given parameters.
    fn run_prepared(
        &self,
        sql: &str,
        params: &[Value],
    ) -> Result<grfusion::ResultSet> {
        let plan = {
            let mut cache = self.prepared.lock();
            match cache.get(sql) {
                Some(p) => p.clone(),
                None => {
                    let p = Arc::new(self.db.prepare(sql)?);
                    cache.insert(sql.to_string(), p.clone());
                    p
                }
            }
        };
        self.db.execute_prepared(&plan, params)
    }
}

impl GraphSystem for GrFusionSystem {
    fn name(&self) -> &'static str {
        "grfusion"
    }

    fn reachable(&self, s: i64, t: i64, max_hops: usize, sel_lt: Option<i64>) -> Result<bool> {
        // The length bound stays inline (the §6.1 window inference needs a
        // literal); endpoints and the selectivity threshold are parameters.
        let pred = if sel_lt.is_some() {
            " AND PS.Edges[0..*].sel < ?"
        } else {
            ""
        };
        let sql = format!(
            "SELECT PS.Length FROM g.Paths PS WHERE PS.StartVertex.Id = ? \
             AND PS.EndVertex.Id = ? AND PS.Length <= {max_hops}{pred} LIMIT 1"
        );
        let mut params = vec![Value::Integer(s), Value::Integer(t)];
        if let Some(k) = sel_lt {
            params.push(Value::Integer(k));
        }
        Ok(!self.run_prepared(&sql, &params)?.rows.is_empty())
    }

    fn shortest_path_cost(&self, s: i64, t: i64, sel_lt: Option<i64>) -> Result<Option<f64>> {
        let pred = if sel_lt.is_some() {
            " AND PS.Edges[0..*].sel < ?"
        } else {
            ""
        };
        let sql = format!(
            "SELECT PS.Cost FROM g.Paths PS HINT(SHORTESTPATH(weight)) \
             WHERE PS.StartVertex.Id = ? AND PS.EndVertex.Id = ?{pred} LIMIT 1"
        );
        let mut params = vec![Value::Integer(s), Value::Integer(t)];
        if let Some(k) = sel_lt {
            params.push(Value::Integer(k));
        }
        let rs = self.run_prepared(&sql, &params)?;
        match rs.rows.first() {
            None => Ok(None),
            Some(row) => Ok(Some(row[0].as_double()?)),
        }
    }

    fn count_triangles(&self, sel_lt: i64) -> Result<u64> {
        // Listing 4: closed simple 3-paths; each distinct triangle appears
        // once per start vertex × direction.
        let sql = "SELECT COUNT(P) FROM g.Paths P WHERE P.Length = 3 \
             AND P.Edges[0..*].sel < ? \
             AND P.Edges[2].EndVertex = P.Edges[0].StartVertex";
        let rs = self.run_prepared(sql, &[Value::Integer(sel_lt)])?;
        let closed = rs
            .scalar()
            .ok_or_else(|| Error::execution("COUNT returned no rows"))?
            .as_integer()? as u64;
        let norm = if self.directed { 3 } else { 6 };
        Ok(closed / norm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grfusion_datasets::{protein, roads};

    #[test]
    fn load_and_reach() {
        let ds = roads(100, 1);
        let sys = GrFusionSystem::load(&ds).unwrap();
        let stats = sys.db().graph_stats("g").unwrap();
        assert_eq!(stats.vertex_count, ds.vertex_count());
        assert_eq!(stats.edge_count, ds.edge_count());
        // A vertex reaches itself trivially and reaches its neighbour.
        assert!(sys.reachable(0, 0, 0, None).unwrap());
    }

    #[test]
    fn shortest_path_cost_positive() {
        let ds = protein(200, 2);
        let sys = GrFusionSystem::load(&ds).unwrap();
        // find some connected pair via the dataset adjacency
        let adj = grfusion_datasets::Adjacency::build(&ds);
        let pairs = grfusion_datasets::random_connected_pairs(&ds, &adj, 4, 1, 3);
        let (s, t) = pairs[0];
        let cost = sys.shortest_path_cost(s, t, None).unwrap();
        assert!(cost.unwrap() > 0.0);
    }

    #[test]
    fn triangle_count_nonnegative_and_monotone_in_selectivity() {
        let ds = protein(150, 5);
        let sys = GrFusionSystem::load(&ds).unwrap();
        let t20 = sys.count_triangles(20).unwrap();
        let t80 = sys.count_triangles(80).unwrap();
        let t100 = sys.count_triangles(100).unwrap();
        assert!(t20 <= t80 && t80 <= t100);
        assert!(t100 > 0, "clustered protein graph should contain triangles");
    }
}
