//! Titan-style baseline: a property graph layered over a sorted key-value
//! store (the second Native Graph-Core system of EDBT 2018 §7).
//!
//! Titan stores its graph in a BigTable-style backend (Cassandra/HBase; the
//! paper used the in-memory storage configuration): each vertex's adjacency
//! is a contiguous run of KV entries, and reading a neighbourhood means a
//! prefix **range scan** followed by **per-edge byte decoding**. That
//! serialize-the-graph-into-sorted-bytes cost profile is what this module
//! reproduces:
//!
//! * key layout: `[0x01 | vid]` for vertex records,
//!   `[0x02 | vid | dir | edge-id]` for adjacency entries (big-endian ids
//!   so byte order = numeric order);
//! * values carry the full property map in a compact length-prefixed
//!   binary codec (built with the `bytes` crate);
//! * every hop of every traversal performs a fresh range scan and decodes
//!   each edge record it touches.

use std::collections::{BinaryHeap, BTreeMap, HashMap, HashSet, VecDeque};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use grfusion_common::{Error, Result, Value};
use grfusion_datasets::Dataset;

use crate::GraphSystem;

const TAG_VERTEX: u8 = 0x01;
const TAG_EDGE: u8 = 0x02;
const DIR_OUT: u8 = 0x00;
const DIR_IN: u8 = 0x01;

/// The Titan-style store.
pub struct TitanDb {
    kv: BTreeMap<Bytes, Bytes>,
    directed: bool,
    vertex_count: usize,
    edge_count: usize,
}

// ---- codec -----------------------------------------------------------------

fn vertex_key(vid: i64) -> Bytes {
    let mut k = BytesMut::with_capacity(9);
    k.put_u8(TAG_VERTEX);
    k.put_i64(vid);
    k.freeze()
}

fn edge_key(vid: i64, dir: u8, eid: i64) -> Bytes {
    let mut k = BytesMut::with_capacity(18);
    k.put_u8(TAG_EDGE);
    k.put_i64(vid);
    k.put_u8(dir);
    k.put_i64(eid);
    k.freeze()
}

fn adjacency_prefix(vid: i64, dir: u8) -> (Bytes, Bytes) {
    let mut lo = BytesMut::with_capacity(10);
    lo.put_u8(TAG_EDGE);
    lo.put_i64(vid);
    lo.put_u8(dir);
    let mut hi = lo.clone();
    hi.put_i64(i64::MAX);
    (lo.freeze(), hi.freeze())
}

/// Serialize a property list (name → value) into the record codec.
fn encode_props(buf: &mut BytesMut, props: &[(String, Value)]) {
    buf.put_u16(props.len() as u16);
    for (name, v) in props {
        buf.put_u8(name.len() as u8);
        buf.put_slice(name.as_bytes());
        match v {
            Value::Null => buf.put_u8(0),
            Value::Integer(i) => {
                buf.put_u8(1);
                buf.put_i64(*i);
            }
            Value::Double(d) => {
                buf.put_u8(2);
                buf.put_f64(*d);
            }
            Value::Boolean(b) => {
                buf.put_u8(3);
                buf.put_u8(*b as u8);
            }
            Value::Text(s) => {
                buf.put_u8(4);
                buf.put_u32(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
            Value::Path(_) => unreachable!("paths are never stored"),
        }
    }
}

/// Decode a single named property from a record, skipping the others —
/// the per-edge decode cost every traversal hop pays.
fn decode_prop(mut buf: &[u8], want: &str) -> Result<Option<Value>> {
    if buf.remaining() < 2 {
        return Err(Error::execution("corrupt titan record"));
    }
    let n = buf.get_u16();
    let mut found = None;
    for _ in 0..n {
        let name_len = buf.get_u8() as usize;
        let name = std::str::from_utf8(&buf[..name_len])
            .map_err(|_| Error::execution("corrupt titan record"))?
            .to_string();
        buf.advance(name_len);
        let tag = buf.get_u8();
        let value = match tag {
            0 => Value::Null,
            1 => Value::Integer(buf.get_i64()),
            2 => Value::Double(buf.get_f64()),
            3 => Value::Boolean(buf.get_u8() != 0),
            4 => {
                let len = buf.get_u32() as usize;
                let s = std::str::from_utf8(&buf[..len])
                    .map_err(|_| Error::execution("corrupt titan record"))?
                    .to_string();
                buf.advance(len);
                Value::text(s)
            }
            _ => return Err(Error::execution("corrupt titan record")),
        };
        if name.eq_ignore_ascii_case(want) && found.is_none() {
            found = Some(value);
        }
    }
    Ok(found)
}

/// An edge record value: other endpoint + properties.
fn encode_edge_value(other: i64, props: &[(String, Value)]) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + props.len() * 16);
    buf.put_i64(other);
    encode_props(&mut buf, props);
    buf.freeze()
}

impl TitanDb {
    pub fn load(ds: &Dataset) -> TitanDb {
        let mut kv = BTreeMap::new();
        for (id, attrs) in &ds.vertices {
            let props: Vec<(String, Value)> = ds
                .vertex_schema
                .iter()
                .map(|(n, _)| n.clone())
                .zip(attrs.iter().cloned())
                .collect();
            let mut buf = BytesMut::new();
            encode_props(&mut buf, &props);
            kv.insert(vertex_key(*id), buf.freeze());
        }
        for (eid, from, to, attrs) in &ds.edges {
            let props: Vec<(String, Value)> = ds
                .edge_schema
                .iter()
                .map(|(n, _)| n.clone())
                .zip(attrs.iter().cloned())
                .collect();
            kv.insert(edge_key(*from, DIR_OUT, *eid), encode_edge_value(*to, &props));
            if ds.directed {
                kv.insert(edge_key(*to, DIR_IN, *eid), encode_edge_value(*from, &props));
            } else if from != to {
                // Undirected: materialize the edge under both endpoints'
                // OUT runs (Titan stores one adjacency entry per direction).
                kv.insert(edge_key(*to, DIR_OUT, *eid), encode_edge_value(*from, &props));
            }
        }
        TitanDb {
            kv,
            directed: ds.directed,
            vertex_count: ds.vertex_count(),
            edge_count: ds.edge_count(),
        }
    }

    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    pub fn kv_entries(&self) -> usize {
        self.kv.len()
    }

    /// Read one vertex property (range-scan-free point read + decode).
    pub fn vertex_prop(&self, vid: i64, key: &str) -> Result<Option<Value>> {
        match self.kv.get(&vertex_key(vid)) {
            None => Ok(None),
            Some(rec) => decode_prop(rec, key),
        }
    }

    /// One traversal hop: range-scan the OUT adjacency run of `v`,
    /// decoding each edge record and applying the `sel < k` predicate.
    fn expand(&self, v: i64, sel_lt: Option<i64>) -> Result<Vec<(i64, i64, f64)>> {
        let (lo, hi) = adjacency_prefix(v, DIR_OUT);
        let mut out = Vec::new();
        for (key, value) in self.kv.range(lo..=hi) {
            let mut id_buf = &key[10..18];
            let eid = id_buf.get_i64();
            let mut val = &value[..];
            let other = val.get_i64();
            if let Some(k) = sel_lt {
                match decode_prop(val, "sel")? {
                    Some(Value::Integer(s)) if s < k => {}
                    _ => continue,
                }
            }
            let weight = match decode_prop(val, "weight")? {
                Some(Value::Double(w)) => w,
                Some(Value::Integer(w)) => w as f64,
                _ => f64::INFINITY,
            };
            out.push((eid, other, weight));
        }
        Ok(out)
    }
}

impl GraphSystem for TitanDb {
    fn name(&self) -> &'static str {
        "titan-like"
    }

    fn reachable(&self, s: i64, t: i64, max_hops: usize, sel_lt: Option<i64>) -> Result<bool> {
        if s == t {
            return Ok(true);
        }
        let mut visited: HashSet<i64> = HashSet::new();
        visited.insert(s);
        let mut frontier = VecDeque::new();
        frontier.push_back((s, 0usize));
        while let Some((v, d)) = frontier.pop_front() {
            if d >= max_hops {
                continue;
            }
            for (_, n, _) in self.expand(v, sel_lt)? {
                if n == t {
                    return Ok(true);
                }
                if visited.insert(n) {
                    frontier.push_back((n, d + 1));
                }
            }
        }
        Ok(false)
    }

    fn shortest_path_cost(&self, s: i64, t: i64, sel_lt: Option<i64>) -> Result<Option<f64>> {
        let mut dist: HashMap<i64, f64> = HashMap::new();
        dist.insert(s, 0.0);
        let mut settled: HashSet<i64> = HashSet::new();
        let mut heap: BinaryHeap<(std::cmp::Reverse<u64>, i64)> = BinaryHeap::new();
        heap.push((std::cmp::Reverse(0), s));
        while let Some((std::cmp::Reverse(dbits), v)) = heap.pop() {
            let d = f64::from_bits(dbits);
            if !settled.insert(v) {
                continue;
            }
            if v == t {
                return Ok(Some(d));
            }
            for (_, n, w) in self.expand(v, sel_lt)? {
                if settled.contains(&n) {
                    continue;
                }
                let nd = d + w;
                if dist.get(&n).is_none_or(|&cur| nd < cur) {
                    dist.insert(n, nd);
                    heap.push((std::cmp::Reverse(nd.to_bits()), n));
                }
            }
        }
        Ok(None)
    }

    fn count_triangles(&self, sel_lt: i64) -> Result<u64> {
        let mut closed = 0u64;
        for vid in 0..self.vertex_count as i64 {
            for (r0, b, _) in self.expand(vid, Some(sel_lt))? {
                if b == vid {
                    continue;
                }
                for (r1, c, _) in self.expand(b, Some(sel_lt))? {
                    if r1 == r0 || c == vid || c == b {
                        continue;
                    }
                    for (r2, back, _) in self.expand(c, Some(sel_lt))? {
                        if r2 == r0 || r2 == r1 {
                            continue;
                        }
                        if back == vid {
                            closed += 1;
                        }
                    }
                }
            }
        }
        let norm = if self.directed { 3 } else { 6 };
        Ok(closed / norm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grfusion_datasets::{protein, roads, Adjacency};

    #[test]
    fn codec_roundtrip() {
        let props = vec![
            ("weight".to_string(), Value::Double(2.5)),
            ("sel".to_string(), Value::Integer(42)),
            ("label".to_string(), Value::text("B")),
            ("flag".to_string(), Value::Boolean(true)),
            ("nothing".to_string(), Value::Null),
        ];
        let rec = encode_edge_value(7, &props);
        let mut buf = &rec[..];
        assert_eq!(buf.get_i64(), 7);
        assert_eq!(decode_prop(buf, "weight").unwrap(), Some(Value::Double(2.5)));
        assert_eq!(decode_prop(buf, "sel").unwrap(), Some(Value::Integer(42)));
        assert_eq!(decode_prop(buf, "label").unwrap(), Some(Value::text("B")));
        assert_eq!(decode_prop(buf, "flag").unwrap(), Some(Value::Boolean(true)));
        assert_eq!(decode_prop(buf, "nothing").unwrap(), Some(Value::Null));
        assert_eq!(decode_prop(buf, "missing").unwrap(), None);
    }

    #[test]
    fn key_order_groups_adjacency_runs() {
        // All OUT edges of vertex v sort together between the prefixes.
        let k1 = edge_key(5, DIR_OUT, 1);
        let k2 = edge_key(5, DIR_OUT, 900);
        let k3 = edge_key(6, DIR_OUT, 0);
        assert!(k1 < k2 && k2 < k3);
        let (lo, hi) = adjacency_prefix(5, DIR_OUT);
        assert!(lo <= k1 && k2 <= hi && k3 > hi);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // indexing two parallel arrays
    fn reachability_matches_reference_bfs() {
        let ds = roads(64, 3);
        let db = TitanDb::load(&ds);
        let adj = Adjacency::build(&ds);
        let dist = adj.bfs_depths(0, 4);
        for t in 0..ds.vertex_count() {
            assert_eq!(
                db.reachable(0, t as i64, 4, None).unwrap(),
                dist[t] <= 4,
                "target {t}"
            );
        }
    }

    #[test]
    fn vertex_props_readable() {
        let ds = roads(25, 1);
        let db = TitanDb::load(&ds);
        assert_eq!(
            db.vertex_prop(0, "name").unwrap(),
            Some(Value::text("Address 0"))
        );
        assert_eq!(db.vertex_prop(999_999, "name").unwrap(), None);
    }

    #[test]
    fn triangles_positive_on_clustered_graph() {
        let ds = protein(150, 5);
        let db = TitanDb::load(&ds);
        assert!(db.count_triangles(100).unwrap() > 0);
    }
}
