//! Comparison systems for the GRFusion evaluation (EDBT 2018 §7).
//!
//! The paper compares GRFusion (Native G+R Core) against two architectural
//! families; this crate implements a good-faith member of each, plus an
//! adapter that drives GRFusion itself through SQL, all behind one
//! [`GraphSystem`] trait so the benchmark harness treats them uniformly.
//!
//! * **Native Relational-Core** — [`sqlgraph`]: the graph lives in
//!   relational tables inside the same engine; every hop of a traversal is
//!   an indexed relational self-join (SQLGraph \[46\]). [`grail`]: shortest
//!   paths as iterative set-at-a-time relational computation over
//!   frontier/distance tables (Grail \[25\]).
//! * **Native Graph-Core** — [`neodb`]: a standalone in-memory property
//!   graph store in the style of Neo4j (per-entity string-keyed property
//!   maps, hash-addressed nodes/relationships). [`titandb`]: a property
//!   graph layered over a sorted key-value store in the style of Titan
//!   (adjacency read by prefix range scans, per-edge byte decoding).
//!
//! Semantics are aligned so cross-system agreement is testable: every
//! system answers the same three query families over a
//! [`Dataset`](grfusion_datasets::Dataset) — bounded reachability with an
//! optional `sel < K` edge predicate, weighted shortest-path cost, and
//! triangle counting under an edge predicate (normalized to *distinct
//! triangles*).

pub mod grail;
pub mod grfusion_sys;
pub mod neodb;
pub mod sqlgraph;
pub mod titandb;

use grfusion_common::Result;

/// Uniform query interface over all systems under test.
pub trait GraphSystem {
    /// Short system name for reports ("grfusion", "sqlgraph", ...).
    fn name(&self) -> &'static str;

    /// Is there a path from `s` to `t` of at most `max_hops` edges, using
    /// only edges with `sel < sel_lt` (when given)?
    fn reachable(&self, s: i64, t: i64, max_hops: usize, sel_lt: Option<i64>) -> Result<bool>;

    /// Cost of the cheapest path from `s` to `t` over the `weight` edge
    /// attribute (optionally restricted to edges with `sel < sel_lt`);
    /// `None` when unreachable.
    fn shortest_path_cost(&self, s: i64, t: i64, sel_lt: Option<i64>) -> Result<Option<f64>>;

    /// Number of distinct triangles whose three edges all have
    /// `sel < sel_lt`.
    fn count_triangles(&self, sel_lt: i64) -> Result<u64>;
}

pub use grail::GrailSystem;
pub use grfusion_sys::GrFusionSystem;
pub use neodb::NeoDb;
pub use sqlgraph::SqlGraphSystem;
pub use titandb::TitanDb;
