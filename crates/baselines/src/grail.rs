//! Grail-style baseline: shortest paths as iterative relational
//! computation (Grail \[25\]; EDBT 2018 §7.1's shortest-path comparator).
//!
//! Grail translates vertex-centric graph algorithms into procedural SQL:
//! a driver loop repeatedly joins a *frontier* table with the adjacency
//! table, improving a *distance* table until a fixpoint — classic
//! set-at-a-time Bellman-Ford. We reproduce exactly that computational
//! model on the same relational engine GRFusion uses: the expensive part
//! of each iteration (the frontier ⋈ adjacency join with its predicates)
//! runs as a SQL query, and the driver applies the relaxation results back
//! into the frontier table, standing in for Grail's `INSERT … SELECT`
//! statements.
//!
//! The cost profile the paper attributes to Grail — per-iteration
//! relational overhead and full-frontier materialization, versus
//! GRFusion's pointer-chasing SPScan — is preserved.

use std::collections::HashMap;

use grfusion::{Database, EngineConfig};
use grfusion_common::{DataType, Error, Result, Row, Value};
use grfusion_datasets::Dataset;

use crate::GraphSystem;

/// The Grail-style system.
pub struct GrailSystem {
    db: Database,
}

impl GrailSystem {
    pub fn load(ds: &Dataset) -> Result<GrailSystem> {
        let db = Database::with_config(EngineConfig::default());
        let mut eddl = String::from(
            "CREATE TABLE gr_adj (rowid INTEGER PRIMARY KEY, src INTEGER, dst INTEGER",
        );
        for (name, ty) in &ds.edge_schema {
            let t = match ty {
                DataType::Integer => "INTEGER",
                DataType::Double => "DOUBLE",
                DataType::Boolean => "BOOLEAN",
                DataType::Varchar => "VARCHAR",
                DataType::Path => unreachable!(),
            };
            eddl.push_str(&format!(", {name} {t}"));
        }
        eddl.push(')');
        db.execute(&eddl)?;
        db.execute("CREATE INDEX gr_adj_src ON gr_adj (src)")?;
        // The frontier working table of the iterative computation.
        db.execute("CREATE TABLE gr_frontier (vid INTEGER, d DOUBLE)")?;

        let mut erows: Vec<Row> =
            Vec::with_capacity(ds.edge_count() * if ds.directed { 1 } else { 2 });
        let mut rowid = 0i64;
        for (_, from, to, attrs) in &ds.edges {
            for (a, b) in if ds.directed {
                vec![(*from, *to)]
            } else {
                vec![(*from, *to), (*to, *from)]
            } {
                let mut r = Vec::with_capacity(3 + attrs.len());
                r.push(Value::Integer(rowid));
                rowid += 1;
                r.push(Value::Integer(a));
                r.push(Value::Integer(b));
                r.extend(attrs.iter().cloned());
                erows.push(r);
            }
        }
        db.bulk_insert("gr_adj", erows)?;
        Ok(GrailSystem { db })
    }

    pub fn db(&self) -> &Database {
        &self.db
    }

    /// One Bellman-Ford / BFS driver loop. `weighted` selects edge-weight
    /// relaxation vs. hop counting; returns the final distance of `t` if
    /// settled.
    fn iterate(
        &self,
        s: i64,
        t: i64,
        sel_lt: Option<i64>,
        weighted: bool,
        max_iterations: usize,
    ) -> Result<Option<f64>> {
        let mut dist: HashMap<i64, f64> = HashMap::new();
        dist.insert(s, 0.0);
        self.db.execute("DELETE FROM gr_frontier")?;
        self.db
            .bulk_insert("gr_frontier", vec![vec![Value::Integer(s), Value::Double(0.0)]])?;
        let pred = sel_lt
            .map(|k| format!(" AND e.sel < {k}"))
            .unwrap_or_default();
        let step = if weighted { "e.weight" } else { "1.0" };
        for _ in 0..max_iterations {
            // The per-iteration relational join (Grail's INSERT..SELECT body).
            let rs = self.db.execute(&format!(
                "SELECT e.dst, f.d + {step} FROM gr_frontier f, gr_adj e \
                 WHERE e.src = f.vid{pred}"
            ))?;
            // Relaxation: keep strict improvements; they form the next
            // frontier (the driver stands in for Grail's set updates).
            let mut next: HashMap<i64, f64> = HashMap::new();
            for row in &rs.rows {
                let v = row[0].as_integer()?;
                let d = row[1].as_double()?;
                if dist.get(&v).is_none_or(|&cur| d < cur - 1e-12) {
                    dist.insert(v, d);
                    let e = next.entry(v).or_insert(d);
                    if d < *e {
                        *e = d;
                    }
                }
            }
            self.db.execute("DELETE FROM gr_frontier")?;
            if next.is_empty() {
                break;
            }
            if !weighted && dist.contains_key(&t) {
                // BFS can stop as soon as the target is labelled.
                break;
            }
            let rows: Vec<Row> = next
                .into_iter()
                .map(|(v, d)| vec![Value::Integer(v), Value::Double(d)])
                .collect();
            self.db.bulk_insert("gr_frontier", rows)?;
        }
        Ok(dist.get(&t).copied())
    }
}

impl GraphSystem for GrailSystem {
    fn name(&self) -> &'static str {
        "grail"
    }

    fn reachable(&self, s: i64, t: i64, max_hops: usize, sel_lt: Option<i64>) -> Result<bool> {
        if s == t {
            return Ok(true);
        }
        Ok(self
            .iterate(s, t, sel_lt, false, max_hops)?
            .is_some_and(|d| d <= max_hops as f64 + 1e-9))
    }

    fn shortest_path_cost(&self, s: i64, t: i64, sel_lt: Option<i64>) -> Result<Option<f64>> {
        if s == t {
            return Ok(Some(0.0));
        }
        // Bellman-Ford converges in ≤ |V| - 1 iterations; the per-query
        // vertex count is unknown here, so iterate to fixpoint with a
        // generous cap.
        self.iterate(s, t, sel_lt, true, 10_000)
    }

    fn count_triangles(&self, _sel_lt: i64) -> Result<u64> {
        Err(Error::plan(
            "grail baseline implements path algorithms only (paper compares it on shortest paths)",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grfusion_datasets::{roads, Adjacency};

    #[test]
    fn grail_bfs_matches_reference() {
        let ds = roads(64, 3);
        let sys = GrailSystem::load(&ds).unwrap();
        let adj = Adjacency::build(&ds);
        let dist = adj.bfs_depths(0, 5);
        for t in [1usize, 5, 17, 40] {
            let want = dist[t] <= 5;
            assert_eq!(
                sys.reachable(0, t as i64, 5, None).unwrap(),
                want,
                "target {t}"
            );
        }
    }

    #[test]
    fn grail_shortest_path_matches_dijkstra_reference() {
        let ds = roads(64, 9);
        let sys = GrailSystem::load(&ds).unwrap();
        // reference: Dijkstra over the dataset
        let n = ds.vertex_count();
        let w = ds.weight_attr_index();
        let mut out: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for (_, a, b, attrs) in &ds.edges {
            let c = attrs[w].as_double().unwrap();
            out[*a as usize].push((*b as usize, c));
            out[*b as usize].push((*a as usize, c));
        }
        let mut dist = vec![f64::INFINITY; n];
        dist[0] = 0.0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push((std::cmp::Reverse(ordered_float(0.0)), 0usize));
        while let Some((std::cmp::Reverse(d), v)) = heap.pop() {
            let d = f64::from_bits(d);
            if d > dist[v] {
                continue;
            }
            for &(t, c) in &out[v] {
                if d + c < dist[t] {
                    dist[t] = d + c;
                    heap.push((std::cmp::Reverse(ordered_float(d + c)), t));
                }
            }
        }
        for t in [3usize, 20, 45] {
            let got = sys.shortest_path_cost(0, t as i64, None).unwrap();
            if dist[t].is_finite() {
                assert!((got.unwrap() - dist[t]).abs() < 1e-9, "target {t}");
            } else {
                assert!(got.is_none());
            }
        }
    }

    /// Order-preserving f64→u64 for the reference heap (non-negative).
    fn ordered_float(d: f64) -> u64 {
        d.to_bits()
    }
}
