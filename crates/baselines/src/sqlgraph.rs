//! SQLGraph-style baseline: the Native Relational-Core approach
//! (EDBT 2018 §1, Figure 1a; SQLGraph \[46\]).
//!
//! The graph is encoded into relational tables inside the *same* engine
//! GRFusion uses — a vertex table and an adjacency table with a hash index
//! on the source column — and graph queries are translated into plain SQL
//! whose traversals become chains of indexed relational self-joins, one
//! join per hop. This isolates the paper's variable: identical storage and
//! executor, but topology navigation through joins instead of through a
//! materialized native topology.
//!
//! Undirected datasets are encoded with both edge directions materialized
//! (the standard relational encoding), so a hop is always `src → dst`.

use grfusion::{Database, EngineConfig, ExecLimits};
use grfusion_common::{DataType, Error, Result, Row, Value};
use grfusion_datasets::Dataset;

use crate::GraphSystem;

/// The SQLGraph-style system: graph-in-tables + SQL translation.
pub struct SqlGraphSystem {
    db: Database,
    directed: bool,
}

impl SqlGraphSystem {
    /// Load without a resource budget.
    pub fn load(ds: &Dataset) -> Result<SqlGraphSystem> {
        Self::load_with_budget(ds, None)
    }

    /// Load with an intermediate-result budget, reproducing the paper's
    /// §7.2 observation that deep join chains exhaust temp memory (the
    /// Twitter DNFs): queries that exceed it fail with
    /// `Error::ResourceExhausted`.
    pub fn load_with_budget(
        ds: &Dataset,
        max_intermediate_rows: Option<u64>,
    ) -> Result<SqlGraphSystem> {
        let db = Database::with_config(EngineConfig {
            limits: ExecLimits {
                max_intermediate_rows,
            },
            ..Default::default()
        });
        db.execute("CREATE TABLE sg_v (id INTEGER PRIMARY KEY)")?;
        let mut eddl =
            String::from("CREATE TABLE sg_adj (rowid INTEGER PRIMARY KEY, src INTEGER, dst INTEGER");
        for (name, ty) in &ds.edge_schema {
            let t = match ty {
                DataType::Integer => "INTEGER",
                DataType::Double => "DOUBLE",
                DataType::Boolean => "BOOLEAN",
                DataType::Varchar => "VARCHAR",
                DataType::Path => unreachable!(),
            };
            eddl.push_str(&format!(", {name} {t}"));
        }
        eddl.push(')');
        db.execute(&eddl)?;
        db.execute("CREATE INDEX sg_adj_src ON sg_adj (src)")?;

        let vrows: Vec<Row> = ds
            .vertices
            .iter()
            .map(|(id, _)| vec![Value::Integer(*id)])
            .collect();
        db.bulk_insert("sg_v", vrows)?;

        let mut erows: Vec<Row> = Vec::with_capacity(
            ds.edge_count() * if ds.directed { 1 } else { 2 },
        );
        let mut rowid = 0i64;
        for (_, from, to, attrs) in &ds.edges {
            let mut r = Vec::with_capacity(3 + attrs.len());
            r.push(Value::Integer(rowid));
            rowid += 1;
            r.push(Value::Integer(*from));
            r.push(Value::Integer(*to));
            r.extend(attrs.iter().cloned());
            erows.push(r);
            if !ds.directed {
                let mut r = Vec::with_capacity(3 + attrs.len());
                r.push(Value::Integer(rowid));
                rowid += 1;
                r.push(Value::Integer(*to));
                r.push(Value::Integer(*from));
                r.extend(attrs.iter().cloned());
                erows.push(r);
            }
        }
        db.bulk_insert("sg_adj", erows)?;

        Ok(SqlGraphSystem {
            db,
            directed: ds.directed,
        })
    }

    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The translated SQL for an exact-`hops` reachability probe: one
    /// indexed self-join per hop (the Native Relational-Core cost model).
    fn hop_chain_sql(s: i64, t: i64, hops: usize, sel_lt: Option<i64>) -> String {
        debug_assert!(hops >= 1);
        let mut from = String::new();
        let mut wher = format!("e0.src = {s}");
        for i in 0..hops {
            if i > 0 {
                from.push_str(", ");
                wher.push_str(&format!(" AND e{i}.src = e{}.dst", i - 1));
            }
            from.push_str(&format!("sg_adj e{i}"));
            if let Some(k) = sel_lt {
                wher.push_str(&format!(" AND e{i}.sel < {k}"));
            }
        }
        wher.push_str(&format!(" AND e{}.dst = {t}", hops - 1));
        format!("SELECT e0.src FROM {from} WHERE {wher} LIMIT 1")
    }
}

impl GraphSystem for SqlGraphSystem {
    fn name(&self) -> &'static str {
        "sqlgraph"
    }

    fn reachable(&self, s: i64, t: i64, max_hops: usize, sel_lt: Option<i64>) -> Result<bool> {
        if s == t {
            return Ok(true);
        }
        // Iterative deepening: issue the depth-l join chain for l = 1..=H
        // (the SQL translation of a bounded Gremlin traversal). Join-chain
        // walks subsume simple paths, so this agrees with native BFS.
        for hops in 1..=max_hops {
            let sql = Self::hop_chain_sql(s, t, hops, sel_lt);
            if !self.db.execute(&sql)?.rows.is_empty() {
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn shortest_path_cost(&self, _s: i64, _t: i64, _sel_lt: Option<i64>) -> Result<Option<f64>> {
        // The paper compares shortest paths against Grail, not SQLGraph
        // (§7.1); a single SQL statement cannot express Dijkstra.
        Err(Error::plan(
            "sqlgraph baseline does not support shortest-path queries (paper compares Grail)",
        ))
    }

    fn count_triangles(&self, sel_lt: i64) -> Result<u64> {
        // The classic 3-way self-join triangle plan.
        let sql = format!(
            "SELECT COUNT(*) FROM sg_adj e0, sg_adj e1, sg_adj e2 \
             WHERE e1.src = e0.dst AND e2.src = e1.dst AND e2.dst = e0.src \
             AND e0.sel < {sel_lt} AND e1.sel < {sel_lt} AND e2.sel < {sel_lt} \
             AND e0.src <> e0.dst AND e1.src <> e1.dst AND e0.src <> e1.dst"
        );
        let rs = self.db.execute(&sql)?;
        let closed = rs
            .scalar()
            .ok_or_else(|| Error::execution("COUNT returned no rows"))?
            .as_integer()? as u64;
        let norm = if self.directed { 3 } else { 6 };
        Ok(closed / norm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grfusion_datasets::{protein, roads, Adjacency};

    #[test]
    fn chain_sql_shape() {
        let sql = SqlGraphSystem::hop_chain_sql(1, 9, 3, Some(50));
        assert!(sql.contains("sg_adj e0, sg_adj e1, sg_adj e2"));
        assert!(sql.contains("e1.src = e0.dst"));
        assert!(sql.contains("e2.dst = 9"));
        assert!(sql.contains("e1.sel < 50"));
        assert!(sql.ends_with("LIMIT 1"));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // indexing two parallel arrays
    fn reachability_agrees_with_dataset_bfs() {
        let ds = roads(64, 3);
        let sys = SqlGraphSystem::load(&ds).unwrap();
        let adj = Adjacency::build(&ds);
        let dist = adj.bfs_depths(0, 4);
        for t in 0..ds.vertex_count() {
            let want = dist[t] <= 4;
            let got = sys.reachable(0, t as i64, 4, None).unwrap();
            // join chains find walks; a vertex at BFS depth ≤ 4 is always
            // found, and anything found is within 4 hops.
            assert_eq!(got, want, "target {t} depth {}", dist[t]);
        }
    }

    #[test]
    fn budget_aborts_deep_chains() {
        let ds = protein(300, 4);
        let sys = SqlGraphSystem::load_with_budget(&ds, Some(2_000)).unwrap();
        // An unreachable target forces the join chains to enumerate every
        // walk at each depth — the §7.2 temp-memory blowup. Depth-4 walk
        // counts on a clustered graph exceed the 2 000-row budget.
        let err = sys.reachable(0, -1, 8, None).unwrap_err();
        assert!(
            matches!(err, grfusion_common::Error::ResourceExhausted { .. }),
            "{err}"
        );
    }

    #[test]
    fn triangles_match_brute_force() {
        let ds = protein(120, 6);
        let sys = SqlGraphSystem::load(&ds).unwrap();
        // brute-force triangle count over edges with sel < 60
        let k = 60;
        let mut adj = vec![std::collections::BTreeSet::new(); ds.vertex_count()];
        for (_, a, b, attrs) in &ds.edges {
            let sel = attrs[ds.sel_attr_index()].as_integer().unwrap();
            if sel < k && a != b {
                adj[*a as usize].insert(*b as usize);
                adj[*b as usize].insert(*a as usize);
            }
        }
        let n = ds.vertex_count();
        let mut brute = 0u64;
        for a in 0..n {
            for &b in adj[a].iter().filter(|&&b| b > a) {
                for &c in adj[b].iter().filter(|&&c| c > b) {
                    if adj[a].contains(&c) {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(sys.count_triangles(k).unwrap(), brute);
    }
}
