//! Neo4j-style baseline: a standalone in-memory property-graph database
//! (the Native Graph-Core approach, EDBT 2018 §1 Figure 1b).
//!
//! Modelled on the parts of Neo4j's architecture that the paper identifies
//! as "implementation factors" behind GRFusion's advantage (§7.2):
//!
//! * nodes and relationships are independent records addressed through
//!   hash maps (id → record) rather than dense arenas;
//! * every property access goes through a per-entity *string-keyed*
//!   property map (Neo4j's property chains);
//! * every query runs inside a transaction object that tracks touched
//!   entities (a lightweight stand-in for Neo4j's read-transaction
//!   machinery).
//!
//! The traversal algorithms themselves are honest — BFS with a visited
//! set for reachability, binary-heap Dijkstra for shortest paths,
//! neighbourhood iteration for triangles — so the comparison measures
//! storage/representation overheads, not algorithmic handicaps.

use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

use grfusion_common::{Result, Value};
use grfusion_datasets::Dataset;

use crate::GraphSystem;

#[derive(Debug)]
struct Node {
    props: HashMap<String, Value>,
    /// Relationship ids in which this node participates, with the
    /// direction as seen from this node (true = outgoing).
    rels: Vec<(i64, bool)>,
}

#[derive(Debug)]
struct Relationship {
    start: i64,
    end: i64,
    props: HashMap<String, Value>,
}

/// A read transaction: tracks entity touches, standing in for the
/// bookkeeping a transactional graph store performs per access.
#[derive(Default)]
struct ReadTx {
    touched: u64,
}

impl ReadTx {
    #[inline]
    fn touch(&mut self) {
        self.touched += 1;
    }
}

/// The Neo4j-style property graph store.
pub struct NeoDb {
    nodes: HashMap<i64, Node>,
    rels: HashMap<i64, Relationship>,
    directed: bool,
}

impl NeoDb {
    pub fn load(ds: &Dataset) -> NeoDb {
        let mut nodes: HashMap<i64, Node> = HashMap::with_capacity(ds.vertex_count());
        for (id, attrs) in &ds.vertices {
            let mut props = HashMap::new();
            for ((name, _), v) in ds.vertex_schema.iter().zip(attrs) {
                props.insert(name.clone(), v.clone());
            }
            nodes.insert(
                *id,
                Node {
                    props,
                    rels: Vec::new(),
                },
            );
        }
        let mut rels = HashMap::with_capacity(ds.edge_count());
        for (id, from, to, attrs) in &ds.edges {
            let mut props = HashMap::new();
            for ((name, _), v) in ds.edge_schema.iter().zip(attrs) {
                props.insert(name.clone(), v.clone());
            }
            rels.insert(
                *id,
                Relationship {
                    start: *from,
                    end: *to,
                    props,
                },
            );
            nodes.get_mut(from).expect("endpoint").rels.push((*id, true));
            if from != to {
                nodes.get_mut(to).expect("endpoint").rels.push((*id, false));
            }
        }
        NeoDb {
            nodes,
            rels,
            directed: ds.directed,
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn relationship_count(&self) -> usize {
        self.rels.len()
    }

    /// Property of a node (string-keyed map access).
    pub fn node_prop(&self, id: i64, key: &str) -> Option<&Value> {
        self.nodes.get(&id).and_then(|n| n.props.get(key))
    }

    /// Expand one hop from `v`, yielding `(rel id, neighbour)` pairs that
    /// pass the `sel < k` predicate. Directed graphs follow outgoing
    /// relationships; undirected follow both.
    fn expand(
        &self,
        tx: &mut ReadTx,
        v: i64,
        sel_lt: Option<i64>,
    ) -> Vec<(i64, i64)> {
        let Some(node) = self.nodes.get(&v) else {
            return Vec::new();
        };
        tx.touch();
        let mut out = Vec::with_capacity(node.rels.len());
        for &(rid, outgoing) in &node.rels {
            if self.directed && !outgoing {
                continue;
            }
            let rel = &self.rels[&rid];
            tx.touch();
            if let Some(k) = sel_lt {
                // String-keyed property read on the hot path.
                match rel.props.get("sel") {
                    Some(Value::Integer(s)) if *s < k => {}
                    _ => continue,
                }
            }
            let other = if rel.start == v { rel.end } else { rel.start };
            out.push((rid, other));
        }
        out
    }
}

impl GraphSystem for NeoDb {
    fn name(&self) -> &'static str {
        "neo4j-like"
    }

    fn reachable(&self, s: i64, t: i64, max_hops: usize, sel_lt: Option<i64>) -> Result<bool> {
        if s == t {
            return Ok(true);
        }
        let mut tx = ReadTx::default();
        let mut visited: HashSet<i64> = HashSet::new();
        visited.insert(s);
        let mut frontier = VecDeque::new();
        frontier.push_back((s, 0usize));
        while let Some((v, d)) = frontier.pop_front() {
            if d >= max_hops {
                continue;
            }
            for (_, n) in self.expand(&mut tx, v, sel_lt) {
                if n == t {
                    return Ok(true);
                }
                if visited.insert(n) {
                    frontier.push_back((n, d + 1));
                }
            }
        }
        Ok(false)
    }

    fn shortest_path_cost(&self, s: i64, t: i64, sel_lt: Option<i64>) -> Result<Option<f64>> {
        let mut tx = ReadTx::default();
        let mut dist: HashMap<i64, f64> = HashMap::new();
        dist.insert(s, 0.0);
        let mut heap: BinaryHeap<(std::cmp::Reverse<u64>, i64)> = BinaryHeap::new();
        heap.push((std::cmp::Reverse(0), s));
        let mut settled: HashSet<i64> = HashSet::new();
        while let Some((std::cmp::Reverse(dbits), v)) = heap.pop() {
            let d = f64::from_bits(dbits);
            if !settled.insert(v) {
                continue;
            }
            if v == t {
                return Ok(Some(d));
            }
            for (rid, n) in self.expand(&mut tx, v, sel_lt) {
                if settled.contains(&n) {
                    continue;
                }
                let w = match self.rels[&rid].props.get("weight") {
                    Some(Value::Double(w)) => *w,
                    Some(Value::Integer(w)) => *w as f64,
                    _ => f64::INFINITY,
                };
                let nd = d + w;
                if dist.get(&n).is_none_or(|&cur| nd < cur) {
                    dist.insert(n, nd);
                    heap.push((std::cmp::Reverse(nd.to_bits()), n));
                }
            }
        }
        Ok(None)
    }

    fn count_triangles(&self, sel_lt: i64) -> Result<u64> {
        // Closed simple 3-path enumeration, like the Cypher/Gremlin query
        // a graph-store user would run; normalized to distinct triangles.
        let mut tx = ReadTx::default();
        let mut closed = 0u64;
        let ids: Vec<i64> = self.nodes.keys().copied().collect();
        for &a in &ids {
            for (r0, b) in self.expand(&mut tx, a, Some(sel_lt)) {
                if b == a {
                    continue;
                }
                for (r1, c) in self.expand(&mut tx, b, Some(sel_lt)) {
                    if r1 == r0 || c == a || c == b {
                        continue;
                    }
                    for (r2, back) in self.expand(&mut tx, c, Some(sel_lt)) {
                        if r2 == r0 || r2 == r1 {
                            continue;
                        }
                        if back == a {
                            closed += 1;
                        }
                    }
                }
            }
        }
        let norm = if self.directed { 3 } else { 6 };
        Ok(closed / norm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grfusion_datasets::{protein, roads, Adjacency};

    #[test]
    fn load_counts() {
        let ds = roads(100, 1);
        let db = NeoDb::load(&ds);
        assert_eq!(db.node_count(), ds.vertex_count());
        assert_eq!(db.relationship_count(), ds.edge_count());
        assert!(db.node_prop(0, "name").is_some());
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // indexing two parallel arrays
    fn reachability_matches_reference_bfs() {
        let ds = roads(64, 3);
        let db = NeoDb::load(&ds);
        let adj = Adjacency::build(&ds);
        let dist = adj.bfs_depths(0, 4);
        for t in 0..ds.vertex_count() {
            assert_eq!(
                db.reachable(0, t as i64, 4, None).unwrap(),
                dist[t] <= 4,
                "target {t}"
            );
        }
    }

    #[test]
    fn dijkstra_basic() {
        let ds = roads(36, 5);
        let db = NeoDb::load(&ds);
        let c = db.shortest_path_cost(0, 0, None).unwrap();
        assert_eq!(c, Some(0.0));
        // any neighbour is reachable at its edge weight
        let adj = Adjacency::build(&ds);
        if let Some(&n) = adj.neighbours(0).first() {
            let c = db.shortest_path_cost(0, n as i64, None).unwrap().unwrap();
            assert!(c > 0.0);
        }
    }

    #[test]
    fn triangles_monotone_in_selectivity() {
        let ds = protein(150, 5);
        let db = NeoDb::load(&ds);
        let a = db.count_triangles(30).unwrap();
        let b = db.count_triangles(100).unwrap();
        assert!(a <= b);
        assert!(b > 0);
    }
}
