//! Graph views as database objects (EDBT 2018 §3).

use std::sync::Arc;

use grfusion_common::{Column, DataType, Error, Result, Schema, Value};
use grfusion_graph::GraphTopology;
use grfusion_sql::CreateGraphView;
use grfusion_storage::{Catalog, Table};
use parking_lot::RwLock;

/// Resolved definition of a graph view: which relational sources feed it
/// and how source columns map to exposed vertex/edge attributes.
///
/// All names are stored lowercase; exposed attribute lookups are
/// case-insensitive.
#[derive(Debug, Clone)]
pub struct GraphViewDef {
    /// Graph-view name, lowercase (the topology's name too, so a
    /// [`PathData`](grfusion_common::PathData) can be traced back to its
    /// view).
    pub name: String,
    pub directed: bool,
    /// Vertexes relational-source (lowercase table name).
    pub vertex_source: String,
    /// Edges relational-source (lowercase table name).
    pub edge_source: String,
    /// Column of `vertex_source` providing the vertex id.
    pub vertex_id_col: usize,
    /// `(exposed attribute name lowercase, source column)` pairs.
    pub vertex_attrs: Vec<(String, usize)>,
    pub edge_id_col: usize,
    pub edge_from_col: usize,
    pub edge_to_col: usize,
    pub edge_attrs: Vec<(String, usize)>,
}

impl GraphViewDef {
    /// Resolve a `CREATE GRAPH VIEW` statement against the catalog.
    pub fn resolve(stmt: &CreateGraphView, catalog: &Catalog) -> Result<GraphViewDef> {
        let vertex_table = catalog.table(&stmt.vertex_source)?;
        let edge_table = catalog.table(&stmt.edge_source)?;
        let vt = vertex_table.read();
        let et = edge_table.read();
        let vs = vt.schema();
        let es = et.schema();

        let resolve_col = |schema: &Schema, col: &str, clause: &str| -> Result<usize> {
            schema.index_of(col).ok_or_else(|| {
                Error::analysis(format!(
                    "{clause} clause references unknown column `{col}`"
                ))
            })
        };

        let mut vertex_attrs = Vec::with_capacity(stmt.vertex_attrs.len());
        for (exposed, col) in &stmt.vertex_attrs {
            vertex_attrs.push((
                exposed.to_ascii_lowercase(),
                resolve_col(vs, col, "VERTEXES")?,
            ));
        }
        let mut edge_attrs = Vec::with_capacity(stmt.edge_attrs.len());
        for (exposed, col) in &stmt.edge_attrs {
            edge_attrs.push((exposed.to_ascii_lowercase(), resolve_col(es, col, "EDGES")?));
        }

        Ok(GraphViewDef {
            name: stmt.name.to_ascii_lowercase(),
            directed: stmt.directed,
            vertex_source: stmt.vertex_source.to_ascii_lowercase(),
            edge_source: stmt.edge_source.to_ascii_lowercase(),
            vertex_id_col: resolve_col(vs, &stmt.vertex_id, "VERTEXES")?,
            vertex_attrs,
            edge_id_col: resolve_col(es, &stmt.edge_id, "EDGES")?,
            edge_from_col: resolve_col(es, &stmt.edge_from, "EDGES")?,
            edge_to_col: resolve_col(es, &stmt.edge_to, "EDGES")?,
            edge_attrs,
        })
    }

    /// Output schema of the `gv.VERTEXES` scan: `id`, exposed attributes,
    /// then the graph-only `fanin`/`fanout` properties (§5.2).
    pub fn vertex_scan_schema(&self, vertex_table: &Table) -> Schema {
        let src = vertex_table.schema();
        let mut cols = vec![Column::new("id", DataType::Integer)];
        for (exposed, col) in &self.vertex_attrs {
            cols.push(Column::new(exposed.clone(), src.column(*col).data_type));
        }
        cols.push(Column::new("fanin", DataType::Integer));
        cols.push(Column::new("fanout", DataType::Integer));
        Schema::new(cols)
    }

    /// Output schema of the `gv.EDGES` scan: `id`, `from`, `to`, exposed
    /// attributes.
    pub fn edge_scan_schema(&self, edge_table: &Table) -> Schema {
        let src = edge_table.schema();
        let mut cols = vec![
            Column::new("id", DataType::Integer),
            Column::new("from", DataType::Integer),
            Column::new("to", DataType::Integer),
        ];
        for (exposed, col) in &self.edge_attrs {
            cols.push(Column::new(exposed.clone(), src.column(*col).data_type));
        }
        Schema::new(cols)
    }

    /// Find the source column of an exposed vertex attribute.
    pub fn vertex_attr_col(&self, attr: &str) -> Option<usize> {
        self.vertex_attrs
            .iter()
            .find(|(a, _)| a.eq_ignore_ascii_case(attr))
            .map(|(_, c)| *c)
    }

    /// Find the source column of an exposed edge attribute.
    pub fn edge_attr_col(&self, attr: &str) -> Option<usize> {
        self.edge_attrs
            .iter()
            .find(|(a, _)| a.eq_ignore_ascii_case(attr))
            .map(|(_, c)| *c)
    }
}

/// A graph view: the resolved definition plus the singleton materialized
/// topology (shared by every query that references the view, §3.2).
#[derive(Debug)]
pub struct GraphView {
    pub def: GraphViewDef,
    pub topology: Arc<RwLock<GraphTopology>>,
}

impl GraphView {
    /// Materialize a graph view: a single pass over the vertexes source,
    /// then a single pass over the edges source (§3.2). Edge endpoints must
    /// exist in the vertex set.
    pub fn materialize(def: GraphViewDef, catalog: &Catalog) -> Result<GraphView> {
        let vertex_table = catalog.table(&def.vertex_source)?;
        let edge_table = catalog.table(&def.edge_source)?;
        let vt = vertex_table.read();
        let et = edge_table.read();

        let mut topo =
            GraphTopology::with_capacity(def.name.clone(), def.directed, vt.len(), et.len());
        for (row_id, row) in vt.scan() {
            let id = id_value(&row[def.vertex_id_col], "vertex")?;
            topo.add_vertex(id, row_id)?;
        }
        for (row_id, row) in et.scan() {
            let id = id_value(&row[def.edge_id_col], "edge")?;
            let from = id_value(&row[def.edge_from_col], "edge FROM")?;
            let to = id_value(&row[def.edge_to_col], "edge TO")?;
            topo.add_edge(id, from, to, row_id)?;
        }
        Ok(GraphView {
            def,
            topology: Arc::new(RwLock::new(topo)),
        })
    }

    /// Deterministic dump of the materialized topology: every vertex
    /// `(id, tuple)` and every edge `(id, from, to, tuple)` sorted by id,
    /// independent of insertion order and internal slot layout. Two views
    /// with equal dumps are indistinguishable to queries — the robustness
    /// battery compares dumps before/after a faulted statement to prove
    /// all-or-nothing maintenance.
    pub fn topology_dump(&self) -> String {
        self.topology.read().topology_dump()
    }
}

/// Extract an integer id from a source column value.
pub fn id_value(v: &Value, what: &str) -> Result<i64> {
    match v {
        Value::Integer(i) => Ok(*i),
        other => Err(Error::constraint(format!(
            "{what} id must be a non-null INTEGER, got {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grfusion_sql::parse_statement;
    use grfusion_sql::Statement;

    fn catalog_with_social() -> Result<Catalog> {
        let mut c = Catalog::new();
        let mut users = Table::new(
            "Users",
            Schema::from_pairs(&[
                ("uid", DataType::Integer),
                ("lname", DataType::Varchar),
                ("dob", DataType::Varchar),
            ]),
        );
        users.insert(vec![Value::Integer(1), Value::text("Smith"), Value::text("1989")])?;
        users.insert(vec![Value::Integer(2), Value::text("Jones"), Value::text("1991")])?;
        c.create_table(users)?;
        let mut rel = Table::new(
            "Relationships",
            Schema::from_pairs(&[
                ("relid", DataType::Integer),
                ("uid1", DataType::Integer),
                ("uid2", DataType::Integer),
                ("isrelative", DataType::Boolean),
            ]),
        );
        rel.insert(vec![
            Value::Integer(10),
            Value::Integer(1),
            Value::Integer(2),
            Value::Boolean(true),
        ])?;
        c.create_table(rel)?;
        Ok(c)
    }

    fn parse_graph_view(sql: &str) -> Result<grfusion_sql::CreateGraphView> {
        match parse_statement(sql)? {
            Statement::CreateGraphView(stmt) => Ok(stmt),
            _ => Err(Error::execution("test SQL did not parse to CREATE GRAPH VIEW")),
        }
    }

    fn social_def(catalog: &Catalog) -> Result<GraphViewDef> {
        let sql = "CREATE UNDIRECTED GRAPH VIEW Social \
                   VERTEXES(ID = uid, lstName = lname, birthdate = dob) FROM Users \
                   EDGES(ID = relid, FROM = uid1, TO = uid2, relative = isrelative) FROM Relationships";
        GraphViewDef::resolve(&parse_graph_view(sql)?, catalog)
    }

    #[test]
    fn resolve_maps_columns() -> Result<()> {
        let c = catalog_with_social()?;
        let def = social_def(&c)?;
        assert_eq!(def.name, "social");
        assert!(!def.directed);
        assert_eq!(def.vertex_id_col, 0);
        assert_eq!(def.vertex_attrs, vec![("lstname".into(), 1), ("birthdate".into(), 2)]);
        assert_eq!(def.edge_from_col, 1);
        assert_eq!(def.edge_to_col, 2);
        assert_eq!(def.vertex_attr_col("LstName"), Some(1));
        assert_eq!(def.edge_attr_col("relative"), Some(3));
        assert_eq!(def.edge_attr_col("nope"), None);
        Ok(())
    }

    #[test]
    fn resolve_rejects_unknown_columns() -> Result<()> {
        let c = catalog_with_social()?;
        let sql = "CREATE GRAPH VIEW g VERTEXES(ID = missing) FROM Users \
                   EDGES(ID = relid, FROM = uid1, TO = uid2) FROM Relationships";
        assert!(GraphViewDef::resolve(&parse_graph_view(sql)?, &c).is_err());
        Ok(())
    }

    #[test]
    fn resolve_rejects_unknown_tables() -> Result<()> {
        let c = catalog_with_social()?;
        let sql = "CREATE GRAPH VIEW g VERTEXES(ID = uid) FROM nope \
                   EDGES(ID = relid, FROM = uid1, TO = uid2) FROM Relationships";
        assert!(GraphViewDef::resolve(&parse_graph_view(sql)?, &c).is_err());
        Ok(())
    }

    #[test]
    fn materialize_builds_topology_with_tuple_pointers() -> Result<()> {
        let c = catalog_with_social()?;
        let def = social_def(&c)?;
        let gv = GraphView::materialize(def, &c)?;
        let topo = gv.topology.read();
        assert_eq!(topo.vertex_count(), 2);
        assert_eq!(topo.edge_count(), 1);
        // tuple pointer of vertex 1 dereferences to the Smith row
        let slot = topo.vertex_slot(1)?;
        let users = c.table("users")?;
        let users = users.read();
        let row = users
            .get(topo.vertex_tuple(slot))
            .ok_or_else(|| Error::execution("tuple pointer dangles"))?;
        assert_eq!(row[1], Value::text("Smith"));
        Ok(())
    }

    #[test]
    fn materialize_rejects_dangling_edges() -> Result<()> {
        let c = catalog_with_social()?;
        // add an edge to a nonexistent vertex
        let rel = c.table("relationships")?;
        rel.write().insert(vec![
            Value::Integer(11),
            Value::Integer(1),
            Value::Integer(99),
            Value::Boolean(false),
        ])?;
        let def = social_def(&c)?;
        assert!(GraphView::materialize(def, &c).is_err());
        Ok(())
    }

    #[test]
    fn scan_schemas() -> Result<()> {
        let c = catalog_with_social()?;
        let def = social_def(&c)?;
        let users = c.table("users")?;
        let vs = def.vertex_scan_schema(&users.read());
        let names: Vec<&str> = vs.columns().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["id", "lstname", "birthdate", "fanin", "fanout"]);
        let rel = c.table("relationships")?;
        let es = def.edge_scan_schema(&rel.read());
        let names: Vec<&str> = es.columns().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["id", "from", "to", "relative"]);
        assert_eq!(es.column(3).data_type, DataType::Boolean);
        Ok(())
    }

    #[test]
    fn id_value_requires_integer() -> Result<()> {
        assert_eq!(id_value(&Value::Integer(5), "v")?, 5);
        assert!(id_value(&Value::text("x"), "v").is_err());
        assert!(id_value(&Value::Null, "v").is_err());
        Ok(())
    }
}
