//! Query results.

use crate::metrics::QueryMetrics;
use grfusion_common::{Row, Schema};
use std::sync::Arc;

/// A materialized query result.
///
/// VoltDB materializes each transaction's result table before returning it
/// to the client; we do the same (laziness matters *inside* the pipeline —
/// `LIMIT` still short-circuits traversal — not at the client boundary).
#[derive(Debug, Clone)]
pub struct ResultSet {
    /// Output column names/types.
    pub schema: Arc<Schema>,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Rows affected, for DML statements (0 for queries/DDL).
    pub rows_affected: u64,
    /// Per-operator runtime metrics; `Some` only for instrumented runs
    /// (`EXPLAIN ANALYZE` / `Database::execute_with_metrics`).
    pub metrics: Option<QueryMetrics>,
}

impl ResultSet {
    /// An empty result (DDL, transaction control).
    pub fn empty() -> Self {
        ResultSet {
            schema: Arc::new(Schema::default()),
            rows: Vec::new(),
            rows_affected: 0,
            metrics: None,
        }
    }

    /// A DML acknowledgement.
    pub fn affected(n: u64) -> Self {
        ResultSet {
            schema: Arc::new(Schema::default()),
            rows: Vec::new(),
            rows_affected: n,
            metrics: None,
        }
    }

    /// Render as a tab-separated table with a header line (for examples and
    /// the benchmark harness).
    pub fn to_table_string(&self) -> String {
        let mut out = String::new();
        let header: Vec<&str> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        out.push_str(&header.join("\t"));
        for row in &self.rows {
            out.push('\n');
            out.push_str(&grfusion_common::row::format_row(row));
        }
        out
    }

    /// First value of the first row (convenient for scalar queries).
    pub fn scalar(&self) -> Option<&grfusion_common::Value> {
        self.rows.first().and_then(|r| r.first())
    }

    /// Render as an aligned, boxed table (used by the interactive shell).
    pub fn to_pretty_table(&self) -> String {
        if self.schema.is_empty() {
            return if self.rows_affected > 0 {
                format!("({} row(s) affected)", self.rows_affected)
            } else {
                "OK".to_string()
            };
        }
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let rule = |sep: (&str, &str, &str)| {
            let mut s = String::from(sep.0);
            for (i, w) in widths.iter().enumerate() {
                if i > 0 {
                    s.push_str(sep.1);
                }
                s.push_str(&"-".repeat(w + 2));
            }
            s.push_str(sep.2);
            s
        };
        let fmt_row = |cells: &[String]| {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(&widths) {
                s.push(' ');
                s.push_str(cell);
                s.push_str(&" ".repeat(w - cell.chars().count()));
                s.push_str(" |");
            }
            s
        };
        let mut out = String::new();
        out.push_str(&rule(("+", "+", "+")));
        out.push('\n');
        out.push_str(&fmt_row(&headers));
        out.push('\n');
        out.push_str(&rule(("+", "+", "+")));
        for row in &rendered {
            out.push('\n');
            out.push_str(&fmt_row(row));
        }
        out.push('\n');
        out.push_str(&rule(("+", "+", "+")));
        out.push_str(&format!("\n({} row(s))", self.rows.len()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grfusion_common::{Column, DataType, Value};

    #[test]
    fn table_string_renders_header_and_rows() {
        let rs = ResultSet {
            schema: Arc::new(Schema::new(vec![
                Column::new("a", DataType::Integer),
                Column::new("b", DataType::Varchar),
            ])),
            rows: vec![vec![Value::Integer(1), Value::text("x")]],
            rows_affected: 0,
            metrics: None,
        };
        assert_eq!(rs.to_table_string(), "a\tb\n1\tx");
        assert_eq!(rs.scalar(), Some(&Value::Integer(1)));
    }

    #[test]
    fn empty_and_affected() {
        assert_eq!(ResultSet::empty().rows.len(), 0);
        assert_eq!(ResultSet::affected(7).rows_affected, 7);
        assert!(ResultSet::empty().scalar().is_none());
    }

    #[test]
    fn pretty_table_aligns_columns() {
        let rs = ResultSet {
            schema: Arc::new(Schema::new(vec![
                Column::new("id", DataType::Integer),
                Column::new("name", DataType::Varchar),
            ])),
            rows: vec![
                vec![Value::Integer(1), Value::text("a")],
                vec![Value::Integer(100), Value::text("longer")],
            ],
            rows_affected: 0,
            metrics: None,
        };
        let t = rs.to_pretty_table();
        assert!(t.contains("| id  | name   |"), "{t}");
        assert!(t.contains("| 1   | a      |"), "{t}");
        assert!(t.contains("| 100 | longer |"), "{t}");
        assert!(t.ends_with("(2 row(s))"), "{t}");
        // schema-less results render as acknowledgements
        assert_eq!(ResultSet::affected(3).to_pretty_table(), "(3 row(s) affected)");
        assert_eq!(ResultSet::empty().to_pretty_table(), "OK");
    }
}
