//! Morsel-driven intra-query parallelism for graph operators.
//!
//! A standalone `PathScan` over many seed vertexes is embarrassingly
//! parallel: each seed's traversal touches only shared *read-only* state
//! (the topology, the vertex/edge tables, the bound filter inputs), so the
//! seed set can be split into fixed-size morsels and fanned out over scoped
//! worker threads (Leis et al., "Morsel-Driven Parallelism", SIGMOD 2014).
//! Workers run the exact same per-seed traversal iterators the serial
//! executor uses, so per-path semantics are identical by construction; the
//! only parallel-specific code is morsel dispatch and the merge.
//!
//! # Determinism
//!
//! The merge reproduces the serial emission order exactly:
//!
//! * **DFS** drains one seed's stack completely before starting the next
//!   seed, so the serial output is the concatenation of per-seed outputs in
//!   seed order. Concatenating per-morsel outputs in morsel order (morsels
//!   are contiguous seed ranges) is the same sequence.
//! * **BFS** uses one global FIFO queue seeded in seed order, so level
//!   `d` paths appear in (seed order, per-seed discovery order) within the
//!   level — by induction: level-`d` entries are enqueued while popping
//!   level-`d-1` entries, which are already in that order. Concatenating
//!   per-morsel outputs in morsel order and then *stably* sorting by path
//!   length reproduces exactly that (length, seed, discovery) order.
//! * **Shortest-path** scans stay serial: they consume only the first seed
//!   (one morsel — nothing to fan out), and the serial `SPScan` streams
//!   best-first so a `LIMIT k` parent stops the enumeration after `k`
//!   paths, which materialization would forfeit (top-k over a dense graph
//!   enumerates astronomically many simple paths).
//!
//! The same streaming argument applies to *any* single-morsel job
//! (anchored starts, seed sets within one morsel): the pool would add
//! materialization without adding parallelism, so those fall back to the
//! serial probe too.
//!
//! # Budget accounting
//!
//! Workers never touch the shared `RowBudget`: the budget is charged on
//! *emission*, when `PathScanOp` yields a path up the pipeline — the same
//! point at any worker count — so a `LIMIT 1` query that stays under
//! budget serially can never trip it in parallel. The physical cost of
//! morsels enumerating eagerly is governed instead by the per-query
//! [`ExecContext`]: each worker charges estimated path bytes against the
//! shared memory accountant as it enumerates and polls the deadline/cancel
//! token at every morsel claim (plus the per-expansion checks inside its
//! own bound traversal filter), so a runaway fan-out aborts promptly with
//! the governor's typed error instead of silently blowing past a row
//! budget the consumer would never have spent.
//!
//! # Failure containment
//!
//! Each morsel runs under `catch_unwind`; a panicking worker surfaces as a
//! single clean `Error::Execution` (see [`Error::from_panic`]) instead of
//! tearing down the process. The first error in morsel order wins, and an
//! atomic stop flag keeps other workers from claiming further morsels. The
//! flag is checked only at morsel-claim time, so every merged `Ok` slot is
//! a fully completed morsel.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use grfusion_common::{Error, PathData, Result, Row};
use grfusion_graph::{BfsPaths, DfsPaths, TraversalSpec, VertexSlot};

use crate::env::{GraphEnv, QueryEnv};
use crate::exec::bind_filter;
use crate::governor::{path_bytes, ExecContext};
use crate::metrics::{GovCounters, GraphCounters, WorkerMetrics};
use crate::plan::{PathScanConfig, ScanMode, StartSource};

/// Traversal mode after `Auto` resolution, shared read-only by all workers.
enum ResolvedMode {
    Dfs,
    Bfs,
}

/// A completed parallel scan: the merged path buffer plus per-worker
/// counters (morsels claimed, paths enumerated, traversal work) so
/// `EXPLAIN ANALYZE` can report fan-out balance.
pub(crate) struct ParallelScanResult {
    pub paths: Vec<PathData>,
    pub workers: Vec<WorkerMetrics>,
    /// Governor work done during the fan-out: bytes the workers charged to
    /// the memory accountant and cooperative checks they performed.
    pub gov: GovCounters,
}

/// Run a standalone `PathScan` through the morsel pool.
///
/// Returns `Ok(None)` when the scan should fall back to the serial probe:
/// the planner-proven reachability fast path, shortest-path scans, and any
/// seed set that fits in a single morsel — all cases where there is nothing
/// to fan out and the serial probe's streaming (a `LIMIT` parent stops it
/// early) beats materializing. Otherwise returns every qualifying path,
/// merged into the serial emission order; the row budget is charged later,
/// at emission, by `PathScanOp`.
pub(crate) fn try_parallel_path_scan<'e>(
    config: &PathScanConfig,
    env: &'e QueryEnv<'e>,
) -> Result<Option<ParallelScanResult>> {
    // The reachability fast path (targeted BFS / classic Dijkstra) answers
    // the whole query with one search from one seed, and `SPScan` always
    // traverses from a single seed — serial either way.
    if config.reachability || matches!(config.mode, ScanMode::ShortestPath { .. }) {
        return Ok(None);
    }

    let genv = env.graph(&config.graph)?;
    let topo = genv.topo;

    // Only an unanchored scan (seed set = every vertex) has a seed set
    // worth splitting; `Constant`/`Probe` starts resolve to at most one
    // seed — one morsel — so the serial probe handles them.
    let seeds: Vec<VertexSlot> = match &config.start {
        StartSource::AllVertexes => topo.vertex_slots().collect(),
        StartSource::Constant(_) | StartSource::Probe(_) => return Ok(None),
    };

    // Resolve the physical mode with the same §6.3 heuristic as the serial
    // probe.
    let mode = match &config.mode {
        ScanMode::Auto => {
            if topo.avg_fan_out() < config.max_len as f64 {
                ResolvedMode::Bfs
            } else {
                ResolvedMode::Dfs
            }
        }
        ScanMode::Dfs => ResolvedMode::Dfs,
        ScanMode::Bfs => ResolvedMode::Bfs,
        // Guarded by the early return above; if a future edit breaks that,
        // fail the query instead of the process.
        ScanMode::ShortestPath { .. } => {
            return Err(Error::plan(
                "shortest-path scan reached the morsel pool (serial-only mode)",
            ))
        }
    };

    // Partition seeds into contiguous morsels. A single morsel (anchored
    // start, tiny seed set) has nothing to fan out — the serial probe
    // streams instead of materializing, and skips thread spawns that would
    // dominate small scans, so fall back.
    let morsels: Vec<Vec<VertexSlot>> = seeds
        .chunks(env.parallel.morsel_size.max(1))
        .map(|c| c.to_vec())
        .collect();
    if morsels.len() <= 1 {
        return Ok(None);
    }

    let n_workers = env.parallel.workers.min(morsels.len()).max(1);
    let next_morsel = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);

    // Fan out. Each worker claims morsels off the shared counter and runs
    // the serial per-seed iterators against the shared read-only env. Each
    // worker also keeps its own counters (thread-local plain integers, no
    // atomics) that are merged once at join time.
    let (mut slots, workers, gov) = std::thread::scope(|s| {
        let morsels = &morsels;
        let next_morsel = &next_morsel;
        let stop = &stop;
        let mode = &mode;
        let handles: Vec<_> = (0..n_workers)
            .map(|w| {
                s.spawn(move || {
                    let mut done = Vec::new();
                    let mut wm = WorkerMetrics {
                        worker: w,
                        ..WorkerMetrics::default()
                    };
                    let mut gov = GovCounters::default();
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let idx = next_morsel.fetch_add(1, Ordering::Relaxed);
                        if idx >= morsels.len() {
                            break;
                        }
                        // Morsel boundaries are the pool's cooperative
                        // checkpoints: a tripped deadline/cancel keeps any
                        // further morsel from starting.
                        if env.gov.active() {
                            gov.checks += 1;
                            if let Err(e) = env.gov.check_now() {
                                stop.store(true, Ordering::Relaxed);
                                done.push((idx, Err(e)));
                                break;
                            }
                        }
                        let r = catch_unwind(AssertUnwindSafe(|| {
                            run_morsel(config, env, genv, &morsels[idx], mode)
                        }))
                        .unwrap_or_else(|payload| Err(Error::from_panic(payload)));
                        match r {
                            Ok((paths, counters, morsel_gov)) => {
                                wm.morsels += 1;
                                wm.paths += paths.len() as u64;
                                wm.counters.merge(&counters);
                                gov.merge(&morsel_gov);
                                done.push((idx, Ok(paths)));
                            }
                            Err(e) => {
                                stop.store(true, Ordering::Relaxed);
                                done.push((idx, Err(e)));
                            }
                        }
                    }
                    (done, wm, gov)
                })
            })
            .collect();
        let mut slots: Vec<(usize, Result<Vec<PathData>>)> = Vec::with_capacity(morsels.len());
        let mut workers = Vec::with_capacity(n_workers);
        let mut gov = GovCounters::default();
        for h in handles {
            match h.join() {
                Ok((done, wm, worker_gov)) => {
                    slots.extend(done);
                    workers.push(wm);
                    gov.merge(&worker_gov);
                }
                Err(payload) => slots.push((usize::MAX, Err(Error::from_panic(payload)))),
            }
        }
        (slots, workers, gov)
    });

    // Merge in morsel (= seed) order; the first error in that order wins.
    slots.sort_by_key(|(idx, _)| *idx);
    let mut merged = Vec::new();
    for (_, r) in slots {
        merged.extend(r?);
    }
    if matches!(mode, ResolvedMode::Bfs) {
        // Stable by-length sort turns per-morsel level order into the
        // global (length, seed, discovery) order of the serial scan.
        merged.sort_by_key(|p| p.length());
    }
    Ok(Some(ParallelScanResult {
        paths: merged,
        workers,
        gov,
    }))
}

/// Enumerate every qualifying path for one morsel of seeds, charging each
/// materialized path's estimated bytes against the shared memory
/// accountant. Also returns the traversal and governor counters of this
/// morsel's enumeration.
fn run_morsel<'e>(
    config: &PathScanConfig,
    env: &'e QueryEnv<'e>,
    genv: &'e GraphEnv<'e>,
    seeds: &[VertexSlot],
    mode: &ResolvedMode,
) -> Result<(Vec<PathData>, GraphCounters, GovCounters)> {
    let topo = genv.topo;
    let outer_row: Row = Vec::new();
    // Traversal iterators consume the filter by value, so each morsel
    // rebinds it (binding is cheap: predicate RHS evaluation only). The
    // bound filter carries this morsel's per-expansion governor hook.
    let filter = bind_filter(config, &outer_row, env, genv)?;
    let mut spec = TraversalSpec::new(config.min_len, config.max_len);
    if filter.has_agg_preds() {
        spec = spec.with_prefix_checks();
    }

    let gov: &ExecContext = &env.gov;
    let track = gov.active();
    let mut bytes = 0u64;
    let mut out = Vec::new();
    let mut drain = |it: &mut dyn Iterator<Item = PathData>| -> Result<()> {
        for p in it {
            if track {
                let b = path_bytes(&p);
                bytes += b;
                gov.charge_bytes(b)?;
            }
            out.push(p);
        }
        Ok(())
    };
    let (counters, checks) = match mode {
        ResolvedMode::Dfs => {
            let mut it = DfsPaths::new(topo, seeds.to_vec(), spec, filter);
            drain(&mut it)?;
            (
                GraphCounters {
                    vertices_visited: it.vertices_visited(),
                    edges_expanded: it.edges_examined(),
                    tuple_derefs: DfsPaths::filter(&it).derefs(),
                },
                DfsPaths::filter(&it).gov_checks(),
            )
        }
        ResolvedMode::Bfs => {
            let mut it = BfsPaths::new(topo, seeds.to_vec(), spec, filter);
            drain(&mut it)?;
            (
                GraphCounters {
                    vertices_visited: it.vertices_visited(),
                    edges_expanded: it.edges_examined(),
                    tuple_derefs: BfsPaths::filter(&it).derefs(),
                },
                BfsPaths::filter(&it).gov_checks(),
            )
        }
    };
    // A tripped filter drains its traversal without enumerating further;
    // re-derive the governor error here so the morsel reports the abort
    // instead of returning a silently truncated buffer.
    if track {
        gov.check_now()?;
    }
    Ok((out, counters, GovCounters { bytes, checks }))
}

#[cfg(test)]
mod tests {
    // The parallel scan is exercised end-to-end (including against its
    // serial twin) by `tests/tests/property.rs` and
    // `tests/tests/parallel_exec.rs`; unit coverage here sticks to the
    // pieces that do not need a full database.
    use crate::config::ParallelConfig;

    #[test]
    fn morsel_partitioning_covers_all_seeds() {
        let seeds: Vec<u32> = (0..257).collect();
        let cfg = ParallelConfig {
            workers: 4,
            morsel_size: 64,
        };
        let morsels: Vec<Vec<u32>> = seeds
            .chunks(cfg.morsel_size)
            .map(|c| c.to_vec())
            .collect();
        assert_eq!(morsels.len(), 5);
        assert_eq!(morsels.iter().map(|m| m.len()).sum::<usize>(), 257);
        // Concatenation preserves seed order.
        let flat: Vec<u32> = morsels.into_iter().flatten().collect();
        assert_eq!(flat, seeds);
    }
}
