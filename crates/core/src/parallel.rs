//! Morsel-driven intra-query parallelism for graph operators.
//!
//! A standalone `PathScan` over many seed vertexes is embarrassingly
//! parallel: each seed's traversal touches only shared *read-only* state
//! (the topology, the vertex/edge tables, the bound filter inputs), so the
//! seed set can be split into fixed-size morsels and fanned out over scoped
//! worker threads (Leis et al., "Morsel-Driven Parallelism", SIGMOD 2014).
//! Workers run the exact same per-seed traversal iterators the serial
//! executor uses, so per-path semantics are identical by construction; the
//! only parallel-specific code is morsel dispatch and the merge.
//!
//! # Determinism
//!
//! The merge reproduces the serial emission order exactly:
//!
//! * **DFS** drains one seed's stack completely before starting the next
//!   seed, so the serial output is the concatenation of per-seed outputs in
//!   seed order. Concatenating per-morsel outputs in morsel order (morsels
//!   are contiguous seed ranges) is the same sequence.
//! * **BFS** uses one global FIFO queue seeded in seed order, so level
//!   `d` paths appear in (seed order, per-seed discovery order) within the
//!   level — by induction: level-`d` entries are enqueued while popping
//!   level-`d-1` entries, which are already in that order. Concatenating
//!   per-morsel outputs in morsel order and then *stably* sorting by path
//!   length reproduces exactly that (length, seed, discovery) order.
//! * **Shortest-path** scans stay serial: they consume only the first seed
//!   (one morsel — nothing to fan out), and the serial `SPScan` streams
//!   best-first so a `LIMIT k` parent stops the enumeration after `k`
//!   paths, which materialization would forfeit (top-k over a dense graph
//!   enumerates astronomically many simple paths).
//!
//! The same streaming argument applies to *any* single-morsel job
//! (anchored starts, seed sets within one morsel): the pool would add
//! materialization without adding parallelism, so those fall back to the
//! serial probe too.
//!
//! # Budget accounting
//!
//! Workers charge the shared [`RowBudget`] while *enumerating* paths, not
//! when the parent later pulls them (the scan hands back an
//! `ActiveScan::PreTicked` buffer so rows are not double-counted). Whether
//! the budget errs is still deterministic — the counter is monotonic and
//! the candidate row total is fixed, so some tick crosses the limit iff the
//! serial run would eventually produce more rows than the limit — but a
//! `LIMIT`-style parent that stops pulling early can no longer keep the
//! scan under budget. That divergence is why `workers = 1` stays the
//! engine default.
//!
//! # Failure containment
//!
//! Each morsel runs under `catch_unwind`; a panicking worker surfaces as a
//! single clean `Error::Execution` (see [`Error::from_panic`]) instead of
//! tearing down the process. The first error in morsel order wins, and an
//! atomic stop flag keeps other workers from claiming further morsels. The
//! flag is checked only at morsel-claim time, so every merged `Ok` slot is
//! a fully completed morsel.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use grfusion_common::{Error, PathData, Result, Row};
use grfusion_graph::{BfsPaths, DfsPaths, TraversalSpec, VertexSlot};

use crate::env::{GraphEnv, QueryEnv};
use crate::exec::{bind_filter, RowBudget};
use crate::metrics::{GraphCounters, WorkerMetrics};
use crate::plan::{PathScanConfig, ScanMode, StartSource};

/// Traversal mode after `Auto` resolution, shared read-only by all workers.
enum ResolvedMode {
    Dfs,
    Bfs,
}

/// A completed parallel scan: the merged path buffer plus per-worker
/// counters (morsels claimed, paths enumerated, traversal work) so
/// `EXPLAIN ANALYZE` can report fan-out balance.
pub(crate) struct ParallelScanResult {
    pub paths: Vec<PathData>,
    pub workers: Vec<WorkerMetrics>,
}

/// Run a standalone `PathScan` through the morsel pool.
///
/// Returns `Ok(None)` when the scan should fall back to the serial probe:
/// the planner-proven reachability fast path, shortest-path scans, and any
/// seed set that fits in a single morsel — all cases where there is nothing
/// to fan out and the serial probe's streaming (a `LIMIT` parent stops it
/// early) beats materializing. Otherwise returns every qualifying path,
/// merged into the serial emission order and already charged against
/// `budget`.
pub(crate) fn try_parallel_path_scan<'e>(
    config: &PathScanConfig,
    env: &'e QueryEnv<'e>,
    budget: &RowBudget,
) -> Result<Option<ParallelScanResult>> {
    // The reachability fast path (targeted BFS / classic Dijkstra) answers
    // the whole query with one search from one seed, and `SPScan` always
    // traverses from a single seed — serial either way.
    if config.reachability || matches!(config.mode, ScanMode::ShortestPath { .. }) {
        return Ok(None);
    }

    let genv = env.graph(&config.graph)?;
    let topo = genv.topo;

    // Only an unanchored scan (seed set = every vertex) has a seed set
    // worth splitting; `Constant`/`Probe` starts resolve to at most one
    // seed — one morsel — so the serial probe handles them.
    let seeds: Vec<VertexSlot> = match &config.start {
        StartSource::AllVertexes => topo.vertex_slots().collect(),
        StartSource::Constant(_) | StartSource::Probe(_) => return Ok(None),
    };

    // Resolve the physical mode with the same §6.3 heuristic as the serial
    // probe.
    let mode = match &config.mode {
        ScanMode::Auto => {
            if topo.avg_fan_out() < config.max_len as f64 {
                ResolvedMode::Bfs
            } else {
                ResolvedMode::Dfs
            }
        }
        ScanMode::Dfs => ResolvedMode::Dfs,
        ScanMode::Bfs => ResolvedMode::Bfs,
        ScanMode::ShortestPath { .. } => unreachable!("handled above"),
    };

    // Partition seeds into contiguous morsels. A single morsel (anchored
    // start, tiny seed set) has nothing to fan out — the serial probe
    // streams instead of materializing, and skips thread spawns that would
    // dominate small scans, so fall back.
    let morsels: Vec<Vec<VertexSlot>> = seeds
        .chunks(env.parallel.morsel_size.max(1))
        .map(|c| c.to_vec())
        .collect();
    if morsels.len() <= 1 {
        return Ok(None);
    }

    let n_workers = env.parallel.workers.min(morsels.len()).max(1);
    let next_morsel = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);

    // Fan out. Each worker claims morsels off the shared counter and runs
    // the serial per-seed iterators against the shared read-only env. Each
    // worker also keeps its own counters (thread-local plain integers, no
    // atomics) that are merged once at join time.
    let (mut slots, workers) = std::thread::scope(|s| {
        let morsels = &morsels;
        let next_morsel = &next_morsel;
        let stop = &stop;
        let mode = &mode;
        let handles: Vec<_> = (0..n_workers)
            .map(|w| {
                s.spawn(move || {
                    let mut done = Vec::new();
                    let mut wm = WorkerMetrics {
                        worker: w,
                        ..WorkerMetrics::default()
                    };
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let idx = next_morsel.fetch_add(1, Ordering::Relaxed);
                        if idx >= morsels.len() {
                            break;
                        }
                        let r = catch_unwind(AssertUnwindSafe(|| {
                            run_morsel(config, env, genv, budget, &morsels[idx], mode)
                        }))
                        .unwrap_or_else(|payload| Err(Error::from_panic(payload)));
                        match r {
                            Ok((paths, counters)) => {
                                wm.morsels += 1;
                                wm.paths += paths.len() as u64;
                                wm.counters.merge(&counters);
                                done.push((idx, Ok(paths)));
                            }
                            Err(e) => {
                                stop.store(true, Ordering::Relaxed);
                                done.push((idx, Err(e)));
                            }
                        }
                    }
                    (done, wm)
                })
            })
            .collect();
        let mut slots: Vec<(usize, Result<Vec<PathData>>)> = Vec::with_capacity(morsels.len());
        let mut workers = Vec::with_capacity(n_workers);
        for h in handles {
            match h.join() {
                Ok((done, wm)) => {
                    slots.extend(done);
                    workers.push(wm);
                }
                Err(payload) => slots.push((usize::MAX, Err(Error::from_panic(payload)))),
            }
        }
        (slots, workers)
    });

    // Merge in morsel (= seed) order; the first error in that order wins.
    slots.sort_by_key(|(idx, _)| *idx);
    let mut merged = Vec::new();
    for (_, r) in slots {
        merged.extend(r?);
    }
    if matches!(mode, ResolvedMode::Bfs) {
        // Stable by-length sort turns per-morsel level order into the
        // global (length, seed, discovery) order of the serial scan.
        merged.sort_by_key(|p| p.length());
    }
    Ok(Some(ParallelScanResult {
        paths: merged,
        workers,
    }))
}

/// Enumerate every qualifying path for one morsel of seeds, charging the
/// shared budget per emitted path. Also returns the traversal counters of
/// this morsel's enumeration.
fn run_morsel<'e>(
    config: &PathScanConfig,
    env: &'e QueryEnv<'e>,
    genv: &'e GraphEnv<'e>,
    budget: &RowBudget,
    seeds: &[VertexSlot],
    mode: &ResolvedMode,
) -> Result<(Vec<PathData>, GraphCounters)> {
    let topo = genv.topo;
    let outer_row: Row = Vec::new();
    // Traversal iterators consume the filter by value, so each morsel
    // rebinds it (binding is cheap: predicate RHS evaluation only).
    let filter = bind_filter(config, &outer_row, env, genv)?;
    let mut spec = TraversalSpec::new(config.min_len, config.max_len);
    if filter.has_agg_preds() {
        spec = spec.with_prefix_checks();
    }

    // With a limit configured, tick per path so enumeration aborts
    // promptly once the shared budget is blown. Without one, the tick can
    // never fail — charge in one batch at the end instead of serializing
    // every worker on the counter's cache line.
    let per_path = budget.has_limit();
    let mut out = Vec::new();
    let counters = match mode {
        ResolvedMode::Dfs => {
            let mut it = DfsPaths::new(topo, seeds.to_vec(), spec, filter);
            for p in it.by_ref() {
                if per_path {
                    budget.tick()?;
                }
                out.push(p);
            }
            GraphCounters {
                vertices_visited: it.vertices_visited(),
                edges_expanded: it.edges_examined(),
                tuple_derefs: DfsPaths::filter(&it).derefs(),
            }
        }
        ResolvedMode::Bfs => {
            let mut it = BfsPaths::new(topo, seeds.to_vec(), spec, filter);
            for p in it.by_ref() {
                if per_path {
                    budget.tick()?;
                }
                out.push(p);
            }
            GraphCounters {
                vertices_visited: it.vertices_visited(),
                edges_expanded: it.edges_examined(),
                tuple_derefs: BfsPaths::filter(&it).derefs(),
            }
        }
    };
    if !per_path {
        budget.charge(out.len() as u64)?;
    }
    Ok((out, counters))
}

#[cfg(test)]
mod tests {
    // The parallel scan is exercised end-to-end (including against its
    // serial twin) by `tests/tests/property.rs` and
    // `tests/tests/parallel_exec.rs`; unit coverage here sticks to the
    // pieces that do not need a full database.
    use crate::config::ParallelConfig;

    #[test]
    fn morsel_partitioning_covers_all_seeds() {
        let seeds: Vec<u32> = (0..257).collect();
        let cfg = ParallelConfig {
            workers: 4,
            morsel_size: 64,
        };
        let morsels: Vec<Vec<u32>> = seeds
            .chunks(cfg.morsel_size)
            .map(|c| c.to_vec())
            .collect();
        assert_eq!(morsels.len(), 5);
        assert_eq!(morsels.iter().map(|m| m.len()).sum::<usize>(), 257);
        // Concatenation preserves seed order.
        let flat: Vec<u32> = morsels.into_iter().flatten().collect();
        assert_eq!(flat, seeds);
    }
}
