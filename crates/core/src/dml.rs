//! DML execution with transactional graph-view maintenance (EDBT 2018 §3.3).
//!
//! When a table serves as a graph view's vertexes or edges
//! relational-source, every INSERT/UPDATE/DELETE on it must keep the
//! materialized topology consistent **as part of the same transaction**.
//! This module implements that: a unified [`Journal`] interleaves storage
//! undo actions with topology undo actions so a failed statement (or an
//! explicit ROLLBACK) restores both sides exactly.
//!
//! Maintenance rules (paper §3.3.1–§3.3.2):
//! * insert into a vertex source → `add_vertex`; into an edge source →
//!   `add_edge` (endpoints must exist — referential integrity);
//! * delete from a vertex source → `remove_vertex` (refused while incident
//!   edges remain); from an edge source → `remove_edge`;
//! * updating a vertex id renames the vertex *and cascades* the new id into
//!   edge-source rows referencing it; updating edge endpoints re-links the
//!   edge; updating any other attribute touches only the relational store
//!   (the topology holds tuple pointers, which stay valid across updates).

use std::collections::HashMap;
use std::sync::Arc;

use grfusion_common::{Error, Result, Row, RowId, Value};
use grfusion_sql::{Delete, Expr, Insert, Update};
use grfusion_storage::{Catalog, UndoOp};

use crate::env::QueryEnv;
use crate::expr::{compile, BindingKind, GraphMeta, Namespace, PhysExpr};
use crate::governor::{ExecContext, FaultState};
use crate::graph_view::{id_value, GraphView};

/// A reversible topology action.
#[derive(Debug, Clone)]
pub enum GraphUndo {
    AddedVertex { gv: String, id: i64 },
    RemovedVertex { gv: String, id: i64, tuple: RowId },
    AddedEdge { gv: String, id: i64 },
    RemovedEdge {
        gv: String,
        id: i64,
        from: i64,
        to: i64,
        tuple: RowId,
    },
    RenamedVertex { gv: String, from: i64, to: i64 },
    RenamedEdge { gv: String, from: i64, to: i64 },
}

/// One journal entry: either a storage action or a topology action.
#[derive(Debug, Clone)]
pub enum EngineUndo {
    Storage(UndoOp),
    Graph(GraphUndo),
}

/// The transaction journal. Entries are appended in execution order and
/// rolled back newest-first.
#[derive(Debug, Default)]
pub struct Journal {
    entries: Vec<EngineUndo>,
}

impl Journal {
    pub fn new() -> Self {
        Journal::default()
    }

    pub fn record_storage(&mut self, op: UndoOp) {
        self.entries.push(EngineUndo::Storage(op));
    }

    pub fn record_graph(&mut self, op: GraphUndo) {
        self.entries.push(EngineUndo::Graph(op));
    }

    pub fn savepoint(&self) -> usize {
        self.entries.len()
    }

    /// Lowercase names of the tables and graph views touched by entries at
    /// or after `savepoint` — the dirty set epoch publication uses to
    /// re-snapshot only what a statement actually changed.
    pub(crate) fn dirty_since(
        &self,
        savepoint: usize,
    ) -> (
        std::collections::HashSet<String>,
        std::collections::HashSet<String>,
    ) {
        let mut tables = std::collections::HashSet::new();
        let mut views = std::collections::HashSet::new();
        for entry in &self.entries[savepoint.min(self.entries.len())..] {
            match entry {
                EngineUndo::Storage(op) => {
                    let t = match op {
                        UndoOp::Insert { table, .. }
                        | UndoOp::Delete { table, .. }
                        | UndoOp::Update { table, .. } => table,
                    };
                    tables.insert(t.clone());
                }
                EngineUndo::Graph(op) => {
                    let gv = match op {
                        GraphUndo::AddedVertex { gv, .. }
                        | GraphUndo::RemovedVertex { gv, .. }
                        | GraphUndo::AddedEdge { gv, .. }
                        | GraphUndo::RemovedEdge { gv, .. }
                        | GraphUndo::RenamedVertex { gv, .. }
                        | GraphUndo::RenamedEdge { gv, .. } => gv,
                    };
                    views.insert(gv.clone());
                }
            }
        }
        (tables, views)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Roll back to `savepoint`, undoing storage and topology actions in
    /// reverse order.
    pub fn rollback_to(&mut self, ctx: &DmlCtx<'_>, savepoint: usize) -> Result<()> {
        while self.entries.len() > savepoint {
            let Some(entry) = self.entries.pop() else {
                break;
            };
            match entry {
                EngineUndo::Storage(op) => match op {
                    UndoOp::Insert { table, row } => {
                        ctx.catalog.table(&table)?.write().delete(row)?;
                    }
                    UndoOp::Delete { table, row, old } => {
                        ctx.catalog.table(&table)?.write().restore(row, old)?;
                    }
                    UndoOp::Update { table, row, old } => {
                        ctx.catalog.table(&table)?.write().update(row, old)?;
                    }
                },
                EngineUndo::Graph(op) => {
                    let apply = |gv: &str, f: &mut dyn FnMut(&GraphView) -> Result<()>| {
                        let view = ctx
                            .graph_views
                            .get(gv)
                            .ok_or_else(|| Error::catalog(format!("graph view `{gv}` missing")))?;
                        f(view)
                    };
                    match op {
                        GraphUndo::AddedVertex { gv, id } => apply(&gv, &mut |v| {
                            v.topology.write().remove_vertex(id).map(|_| ())
                        })?,
                        GraphUndo::RemovedVertex { gv, id, tuple } => apply(&gv, &mut |v| {
                            v.topology.write().add_vertex(id, tuple).map(|_| ())
                        })?,
                        GraphUndo::AddedEdge { gv, id } => apply(&gv, &mut |v| {
                            v.topology.write().remove_edge(id).map(|_| ())
                        })?,
                        GraphUndo::RemovedEdge {
                            gv,
                            id,
                            from,
                            to,
                            tuple,
                        } => apply(&gv, &mut |v| {
                            v.topology.write().add_edge(id, from, to, tuple).map(|_| ())
                        })?,
                        GraphUndo::RenamedVertex { gv, from, to } => apply(&gv, &mut |v| {
                            v.topology.write().rename_vertex(to, from)
                        })?,
                        GraphUndo::RenamedEdge { gv, from, to } => apply(&gv, &mut |v| {
                            v.topology.write().rename_edge(to, from)
                        })?,
                    }
                }
            }
        }
        Ok(())
    }
}

/// Read-only context handed to DML executors.
pub struct DmlCtx<'a> {
    pub catalog: &'a Catalog,
    /// Lowercase name → graph view.
    pub graph_views: &'a HashMap<String, GraphView>,
    /// Lowercase table name → graph views that use it as a source.
    pub source_map: &'a HashMap<String, Vec<String>>,
    /// Armed fault-injection plan (`None` on the rollback path and for
    /// databases without one — every `fault(..)` call is then a no-op).
    pub faults: Option<Arc<FaultState>>,
    /// Per-statement governor, polled at every fault site so a client
    /// disconnect or deadline expiry aborts a long DML statement at the
    /// next maintenance step (the journal then rolls the prefix back).
    /// `None` on the rollback/recovery path: an abort signal must never
    /// interrupt undo, or atomicity would be lost.
    pub gov: Option<&'a ExecContext>,
}

impl<'a> DmlCtx<'a> {
    /// Graph views using `table` as a source, in registration order.
    fn views_of(&self, table: &str) -> &[String] {
        self.source_map
            .get(table)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Hit a named fault-injection site (see [`crate::governor::DML_FAULT_SITES`]).
    /// Doubles as the DML cancellation/deadline checkpoint: sites sit at
    /// every maintenance step, which is exactly the granularity at which a
    /// statement can safely abort and roll back.
    #[inline]
    pub(crate) fn fault(&self, site: &str) -> Result<()> {
        if let Some(gov) = self.gov {
            if gov.active() {
                gov.check_now()?;
            }
        }
        match &self.faults {
            Some(f) => f.hit(site),
            None => Ok(()),
        }
    }
}

/// Evaluate a constant expression (INSERT values, constant assignments).
pub fn eval_const_expr(expr: &Expr) -> Result<Value> {
    let ns = Namespace::new(std::sync::Arc::new(HashMap::<String, GraphMeta>::new()));
    let pe = compile(expr, &ns)?;
    let env = QueryEnv {
        tables: HashMap::new(),
        graphs: HashMap::new(),
        limits: Default::default(),
        parallel: Default::default(),
        params: Vec::new(),
        gov: Default::default(),
        batch: Default::default(),
    };
    pe.eval(&Vec::new(), &env)
}

/// Compile a predicate or assignment expression against one table's schema.
fn compile_for_table(
    expr: &Expr,
    table_name: &str,
    schema: std::sync::Arc<grfusion_common::Schema>,
) -> Result<PhysExpr> {
    let mut ns = Namespace::new(std::sync::Arc::new(HashMap::<String, GraphMeta>::new()));
    ns.push(
        table_name,
        BindingKind::Table(table_name.to_string()),
        schema,
    )?;
    compile(expr, &ns)
}

/// Rows of `table` matching an optional predicate (read phase: collect row
/// ids and contents before any mutation).
fn matching_rows(
    ctx: &DmlCtx<'_>,
    table_name: &str,
    selection: &Option<Expr>,
) -> Result<Vec<(RowId, Row)>> {
    let handle = ctx.catalog.table(table_name)?;
    let table = handle.read();
    let pred = selection
        .as_ref()
        .map(|e| compile_for_table(e, table_name, table.schema().clone()))
        .transpose()?;
    let env = QueryEnv {
        tables: HashMap::new(),
        graphs: HashMap::new(),
        limits: Default::default(),
        parallel: Default::default(),
        params: Vec::new(),
        gov: Default::default(),
        batch: Default::default(),
    };
    let mut out = Vec::new();
    for (id, row) in table.scan() {
        if let Some(p) = &pred {
            if !p.matches(row, &env)? {
                continue;
            }
        }
        out.push((id, row.clone()));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// INSERT
// ---------------------------------------------------------------------------

/// Execute an `INSERT ... VALUES`, maintaining affected graph views
/// (§3.3.2). `INSERT ... SELECT` is evaluated by the engine layer, which
/// feeds the materialized rows to [`execute_insert_rows`].
pub fn execute_insert(ctx: &DmlCtx<'_>, journal: &mut Journal, ins: &Insert) -> Result<u64> {
    let grfusion_sql::InsertSource::Values(value_rows) = &ins.source else {
        return Err(Error::execution(
            "INSERT ... SELECT must be evaluated by the engine layer",
        ));
    };
    // Static typecheck before any evaluation: arity per row, and each
    // statically certain value type must be admissible in its column.
    {
        let table_name = ins.table.to_ascii_lowercase();
        let handle = ctx.catalog.table(&table_name)?;
        let schema = handle.read().schema().clone();
        let positions: Vec<usize> = match &ins.columns {
            None => (0..schema.len()).collect(),
            Some(cols) => cols
                .iter()
                .map(|c| schema.resolve(c))
                .collect::<Result<_>>()?,
        };
        crate::analyze::check_insert_values(&schema, &positions, value_rows)?;
    }
    let rows: Vec<Row> = value_rows
        .iter()
        .map(|r| r.iter().map(eval_const_expr).collect::<Result<Row>>())
        .collect::<Result<_>>()?;
    execute_insert_rows(ctx, journal, &ins.table, &ins.columns, rows)
}

/// Insert pre-evaluated value rows, honoring an optional column list
/// (missing columns become NULL).
pub fn execute_insert_rows(
    ctx: &DmlCtx<'_>,
    journal: &mut Journal,
    table: &str,
    columns: &Option<Vec<String>>,
    rows: Vec<Row>,
) -> Result<u64> {
    let table_name = table.to_ascii_lowercase();
    let handle = ctx.catalog.table(&table_name)?;
    let schema = handle.read().schema().clone();

    // Resolve the column list → positions.
    let positions: Vec<usize> = match columns {
        None => (0..schema.len()).collect(),
        Some(cols) => cols
            .iter()
            .map(|c| schema.resolve(c))
            .collect::<Result<_>>()?,
    };

    let mut n = 0u64;
    for value_row in rows {
        if value_row.len() != positions.len() {
            return Err(Error::execution(format!(
                "INSERT expects {} values, got {}",
                positions.len(),
                value_row.len()
            )));
        }
        let mut row: Row = vec![Value::Null; schema.len()];
        for (pos, v) in positions.iter().zip(value_row) {
            row[*pos] = v;
        }
        ctx.fault("dml.insert.row")?;
        let row_id = handle.write().insert(row.clone())?;
        journal.record_storage(UndoOp::Insert {
            table: table_name.clone(),
            row: row_id,
        });
        maintain_insert(ctx, journal, &table_name, row_id, &row)?;
        ctx.fault("dml.insert.post")?;
        n += 1;
    }
    Ok(n)
}

/// Topology maintenance for one inserted row.
fn maintain_insert(
    ctx: &DmlCtx<'_>,
    journal: &mut Journal,
    table: &str,
    row_id: RowId,
    row: &Row,
) -> Result<()> {
    for gv_name in ctx.views_of(table) {
        ctx.fault("dml.insert.maintain")?;
        let view = &ctx.graph_views[gv_name];
        if view.def.vertex_source == table {
            let id = id_value(&row[view.def.vertex_id_col], "vertex")?;
            view.topology.write().add_vertex(id, row_id)?;
            journal.record_graph(GraphUndo::AddedVertex {
                gv: gv_name.clone(),
                id,
            });
        }
        if view.def.edge_source == table {
            let id = id_value(&row[view.def.edge_id_col], "edge")?;
            let from = id_value(&row[view.def.edge_from_col], "edge FROM")?;
            let to = id_value(&row[view.def.edge_to_col], "edge TO")?;
            view.topology.write().add_edge(id, from, to, row_id)?;
            journal.record_graph(GraphUndo::AddedEdge {
                gv: gv_name.clone(),
                id,
            });
        }
    }
    Ok(())
}

/// Bulk-insert pre-built rows (the loader fast path — VoltDB similarly
/// ships a bulk loader that bypasses per-statement SQL processing). Graph
/// views are maintained exactly as for SQL INSERTs.
pub fn execute_bulk_insert(
    ctx: &DmlCtx<'_>,
    journal: &mut Journal,
    table: &str,
    rows: Vec<Row>,
) -> Result<u64> {
    let table_name = table.to_ascii_lowercase();
    let handle = ctx.catalog.table(&table_name)?;
    let mut n = 0u64;
    for row in rows {
        let row_id = handle.write().insert(row.clone())?;
        journal.record_storage(UndoOp::Insert {
            table: table_name.clone(),
            row: row_id,
        });
        maintain_insert(ctx, journal, &table_name, row_id, &row)?;
        n += 1;
    }
    Ok(n)
}

// ---------------------------------------------------------------------------
// DELETE
// ---------------------------------------------------------------------------

/// Execute a DELETE, maintaining affected graph views.
pub fn execute_delete(ctx: &DmlCtx<'_>, journal: &mut Journal, del: &Delete) -> Result<u64> {
    let table_name = del.table.to_ascii_lowercase();
    // Static typecheck: the WHERE clause must be BOOLEAN.
    {
        let schema = ctx.catalog.table(&table_name)?.read().schema().clone();
        crate::analyze::check_delete(&table_name, schema, &del.selection)?;
    }
    let victims = matching_rows(ctx, &table_name, &del.selection)?;
    let handle = ctx.catalog.table(&table_name)?;
    let mut n = 0u64;
    for (row_id, row) in victims {
        // Topology first: a vertex with incident edges refuses deletion,
        // aborting the statement before storage is touched for this row.
        maintain_delete(ctx, journal, &table_name, &row)?;
        ctx.fault("dml.delete.storage")?;
        let old = handle.write().delete(row_id)?;
        journal.record_storage(UndoOp::Delete {
            table: table_name.clone(),
            row: row_id,
            old,
        });
        ctx.fault("dml.delete.post")?;
        n += 1;
    }
    Ok(n)
}

fn maintain_delete(
    ctx: &DmlCtx<'_>,
    journal: &mut Journal,
    table: &str,
    row: &Row,
) -> Result<()> {
    for gv_name in ctx.views_of(table) {
        ctx.fault("dml.delete.maintain")?;
        let view = &ctx.graph_views[gv_name];
        if view.def.edge_source == table {
            let id = id_value(&row[view.def.edge_id_col], "edge")?;
            let from = id_value(&row[view.def.edge_from_col], "edge FROM")?;
            let to = id_value(&row[view.def.edge_to_col], "edge TO")?;
            let tuple = view.topology.write().remove_edge(id)?;
            journal.record_graph(GraphUndo::RemovedEdge {
                gv: gv_name.clone(),
                id,
                from,
                to,
                tuple,
            });
        }
        if view.def.vertex_source == table {
            let id = id_value(&row[view.def.vertex_id_col], "vertex")?;
            let tuple = view.topology.write().remove_vertex(id)?;
            journal.record_graph(GraphUndo::RemovedVertex {
                gv: gv_name.clone(),
                id,
                tuple,
            });
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// UPDATE
// ---------------------------------------------------------------------------

/// Execute an UPDATE, maintaining affected graph views (§3.3.1).
pub fn execute_update(ctx: &DmlCtx<'_>, journal: &mut Journal, upd: &Update) -> Result<u64> {
    let table_name = upd.table.to_ascii_lowercase();
    let handle = ctx.catalog.table(&table_name)?;
    let schema = handle.read().schema().clone();

    // Static typecheck: assignment types and a BOOLEAN WHERE clause.
    crate::analyze::check_update(&table_name, schema.clone(), &upd.assignments, &upd.selection)?;

    // Compile assignments once.
    let mut compiled: Vec<(usize, PhysExpr)> = Vec::with_capacity(upd.assignments.len());
    for (col, expr) in &upd.assignments {
        let pos = schema.resolve(col)?;
        compiled.push((pos, compile_for_table(expr, &table_name, schema.clone())?));
    }

    let victims = matching_rows(ctx, &table_name, &upd.selection)?;
    let env = QueryEnv {
        tables: HashMap::new(),
        graphs: HashMap::new(),
        limits: Default::default(),
        parallel: Default::default(),
        params: Vec::new(),
        gov: Default::default(),
        batch: Default::default(),
    };

    let mut n = 0u64;
    for (row_id, old_row) in victims {
        let mut new_row = old_row.clone();
        for (pos, expr) in &compiled {
            new_row[*pos] = expr.eval(&old_row, &env)?;
        }
        // Topology / identifier consistency before the storage write.
        maintain_update(ctx, journal, &table_name, row_id, &old_row, &new_row)?;
        ctx.fault("dml.update.storage")?;
        let old = handle.write().update(row_id, new_row)?;
        journal.record_storage(UndoOp::Update {
            table: table_name.clone(),
            row: row_id,
            old,
        });
        ctx.fault("dml.update.post")?;
        n += 1;
    }
    Ok(n)
}

fn maintain_update(
    ctx: &DmlCtx<'_>,
    journal: &mut Journal,
    table: &str,
    row_id: RowId,
    old_row: &Row,
    new_row: &Row,
) -> Result<()> {
    let changed = |col: usize| old_row[col].sql_eq(&new_row[col]) != Some(true);
    for gv_name in ctx.views_of(table) {
        ctx.fault("dml.update.maintain")?;
        let view = &ctx.graph_views[gv_name];
        if view.def.vertex_source == table && changed(view.def.vertex_id_col) {
            let old_id = id_value(&old_row[view.def.vertex_id_col], "vertex")?;
            let new_id = id_value(&new_row[view.def.vertex_id_col], "vertex")?;
            view.topology.write().rename_vertex(old_id, new_id)?;
            journal.record_graph(GraphUndo::RenamedVertex {
                gv: gv_name.clone(),
                from: old_id,
                to: new_id,
            });
            // Cascade the new id into the edges relational-source (§3.3.1:
            // referential integrity of the edge source on vertex-id update).
            cascade_vertex_id(ctx, journal, view, old_id, new_id)?;
        }
        if view.def.edge_source == table {
            let id_changed = changed(view.def.edge_id_col);
            let endpoint_changed =
                changed(view.def.edge_from_col) || changed(view.def.edge_to_col);
            if id_changed {
                let old_id = id_value(&old_row[view.def.edge_id_col], "edge")?;
                let new_id = id_value(&new_row[view.def.edge_id_col], "edge")?;
                view.topology.write().rename_edge(old_id, new_id)?;
                journal.record_graph(GraphUndo::RenamedEdge {
                    gv: gv_name.clone(),
                    from: old_id,
                    to: new_id,
                });
            }
            if endpoint_changed {
                // Re-link: drop the old edge and add the new one.
                let cur_id = id_value(&new_row[view.def.edge_id_col], "edge")?;
                let old_from = id_value(&old_row[view.def.edge_from_col], "edge FROM")?;
                let old_to = id_value(&old_row[view.def.edge_to_col], "edge TO")?;
                let new_from = id_value(&new_row[view.def.edge_from_col], "edge FROM")?;
                let new_to = id_value(&new_row[view.def.edge_to_col], "edge TO")?;
                let tuple = view.topology.write().remove_edge(cur_id)?;
                journal.record_graph(GraphUndo::RemovedEdge {
                    gv: gv_name.clone(),
                    id: cur_id,
                    from: old_from,
                    to: old_to,
                    tuple,
                });
                // The nastiest crash point: the edge is gone from the
                // topology but not yet re-added — rollback must restore it.
                ctx.fault("dml.update.relink")?;
                view.topology.write().add_edge(cur_id, new_from, new_to, row_id)?;
                journal.record_graph(GraphUndo::AddedEdge {
                    gv: gv_name.clone(),
                    id: cur_id,
                });
            }
        }
    }
    Ok(())
}

/// Propagate a vertex-id change into every edge-source row that references
/// the old id.
fn cascade_vertex_id(
    ctx: &DmlCtx<'_>,
    journal: &mut Journal,
    view: &GraphView,
    old_id: i64,
    new_id: i64,
) -> Result<()> {
    let handle = ctx.catalog.table(&view.def.edge_source)?;
    // Collect first (cannot mutate while scanning).
    let touched: Vec<(RowId, Row)> = {
        let t = handle.read();
        t.scan()
            .filter(|(_, row)| {
                matches!(row[view.def.edge_from_col], Value::Integer(i) if i == old_id)
                    || matches!(row[view.def.edge_to_col], Value::Integer(i) if i == old_id)
            })
            .map(|(id, row)| (id, row.clone()))
            .collect()
    };
    for (row_id, row) in touched {
        ctx.fault("dml.update.cascade")?;
        let mut new_row = row;
        if matches!(new_row[view.def.edge_from_col], Value::Integer(i) if i == old_id) {
            new_row[view.def.edge_from_col] = Value::Integer(new_id);
        }
        if matches!(new_row[view.def.edge_to_col], Value::Integer(i) if i == old_id) {
            new_row[view.def.edge_to_col] = Value::Integer(new_id);
        }
        let old = handle.write().update(row_id, new_row)?;
        journal.record_storage(UndoOp::Update {
            table: view.def.edge_source.clone(),
            row: row_id,
            old,
        });
    }
    Ok(())
}
