//! Interactive SQL shell for GRFusion (the `sqlcmd` of this engine).
//!
//! ```text
//! cargo run -p grfusion --bin grfusion-shell
//! grfusion> CREATE TABLE v (id INTEGER PRIMARY KEY, name VARCHAR);
//! grfusion> \d
//! ```
//!
//! Statements end with `;` and may span lines. Meta-commands:
//!
//! | command | effect |
//! |---|---|
//! | `\d` | list tables |
//! | `\dg` | list graph views with topology stats |
//! | `\e <select>` | EXPLAIN a query (no trailing `;` needed) |
//! | `\timing` | toggle per-statement wall-time reporting |
//! | `\q` | quit |

use std::io::{BufRead, Write};
use std::time::Instant;

use grfusion::Database;

fn main() {
    let db = Database::new();
    let stdin = std::io::stdin();
    let mut timing = false;
    let mut buffer = String::new();

    println!("GRFusion shell — EDBT 2018 reproduction. \\q quits, \\d lists tables.");
    prompt(&buffer);
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();

        // Meta-commands act on a fresh buffer only.
        if buffer.trim().is_empty() && trimmed.starts_with('\\') {
            match meta_command(&db, trimmed, &mut timing) {
                MetaResult::Quit => return,
                MetaResult::Handled => {
                    prompt(&buffer);
                    continue;
                }
            }
        }

        buffer.push_str(&line);
        buffer.push('\n');
        if !statement_complete(&buffer) {
            prompt(&buffer);
            continue;
        }

        let sql = std::mem::take(&mut buffer);
        let started = Instant::now();
        match db.execute_script(&sql) {
            Ok(rs) => {
                println!("{}", rs.to_pretty_table());
                if timing {
                    println!("time: {:.3} ms", started.elapsed().as_secs_f64() * 1e3);
                }
            }
            Err(e) => println!("{e}"),
        }
        prompt(&buffer);
    }
}

fn prompt(buffer: &str) {
    if buffer.trim().is_empty() {
        print!("grfusion> ");
    } else {
        print!("      ...> ");
    }
    let _ = std::io::stdout().flush();
}

/// A statement is complete when a `;` appears outside string literals.
fn statement_complete(buffer: &str) -> bool {
    let mut in_string = false;
    let mut chars = buffer.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                if in_string && chars.peek() == Some(&'\'') {
                    chars.next(); // escaped quote
                } else {
                    in_string = !in_string;
                }
            }
            ';' if !in_string => return true,
            _ => {}
        }
    }
    false
}

enum MetaResult {
    Quit,
    Handled,
}

fn meta_command(db: &Database, cmd: &str, timing: &mut bool) -> MetaResult {
    match cmd {
        "\\q" | "\\quit" | "\\exit" => return MetaResult::Quit,
        "\\timing" => {
            *timing = !*timing;
            println!("timing is {}", if *timing { "on" } else { "off" });
        }
        "\\d" => {
            let names = db.table_names();
            if names.is_empty() {
                println!("no tables");
            }
            for n in names {
                match db.table_len(&n) {
                    Ok(len) => println!("{n}  ({len} rows)"),
                    Err(e) => println!("{n}  ({e})"),
                }
            }
        }
        "\\dg" => {
            let names = db.graph_view_names();
            if names.is_empty() {
                println!("no graph views");
            }
            for n in names {
                match db.graph_stats(&n) {
                    Ok(s) => println!(
                        "{n}  ({} vertexes, {} edges, avg fan-out {:.2}, ~{} KiB topology)",
                        s.vertex_count,
                        s.edge_count,
                        s.avg_fan_out,
                        s.memory_bytes / 1024
                    ),
                    Err(e) => println!("{n}  ({e})"),
                }
            }
        }
        other if other.starts_with("\\e ") => {
            let sql = other.trim_start_matches("\\e ").trim_end_matches(';');
            match db.explain(sql) {
                Ok(plan) => print!("{plan}"),
                Err(e) => println!("{e}"),
            }
        }
        other => println!("unknown meta-command `{other}` (try \\q, \\d, \\dg, \\e, \\timing)"),
    }
    MetaResult::Handled
}
