//! Batch-at-a-time execution for the relational spine.
//!
//! The volcano pipeline in [`crate::exec`] pays one virtual `next()` call
//! per tuple. This module gives the hot relational operators — table scan,
//! filter, project, the join family, and aggregation — a block-at-a-time
//! twin (the GRAPHITE design point): operators pull fixed-size columnar
//! [`Batch`]es, the scan fills them straight from the table's `Arc<Chunk>`
//! slot slices, and provably infallible predicates/projections are
//! evaluated columnarly ([`PhysExpr::eval_vector`]).
//!
//! # The Batch↔Row adapter contract
//!
//! Graph operators (`PathScan`, `PathJoin`, vertex/edge scans) keep
//! emitting paths row-at-a-time. The two worlds compose in one QEP through
//! two adapters:
//!
//! * [`BatchToRowOp`] sits on top of every maximal batch-native subtree and
//!   drains its batches row by row — the parent (a sort, a path join, the
//!   result collector) cannot tell it from a row operator.
//! * [`RowToBatchOp`] wraps a non-native child of a batch operator and
//!   fills batches by pulling up to `batch.size` rows at a time.
//!
//! Row order, row contents, budget ticks, and error precedence are
//! identical to row-at-a-time execution; what batching trades away is
//! per-row laziness *within one batch* — a `RowToBatchOp` may pull up to
//! one batch of rows beyond what its consumer ends up needing. Because
//! that eagerness is observable under an early-stopping consumer, batching
//! auto-disables for the whole query when (a) a row budget
//! (`max_intermediate_rows`) is armed — eager fill could trip the budget
//! where the row path would not, (b) a fault-injection plan is armed —
//! per-pull hit counts differ between the layouts, or (c) the plan
//! contains a `LIMIT` — rows past the cutoff could surface evaluation
//! errors the row path never reaches. In all three cases the row path runs
//! and results stay byte-identical by construction.
//!
//! The shim stack mirrors row mode per plan node: contracts verify every
//! row of every emitted batch, the governor keeps row mode's exact check
//! cadence (one poll per `OP_CHECK_INTERVAL` rows plus one at exhaustion,
//! so locked counter tests agree), metering records per-batch counters and tags the
//! node `layout=batch(n)` in `EXPLAIN ANALYZE`, and each operator charges
//! its batch buffer to the memory accountant once on first emission (its
//! retained state — join build side, aggregation table — is charged
//! exactly like row mode).

use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

use grfusion_common::value::GroupKey;
use grfusion_common::{Error, Result, Row, Value};

use crate::env::QueryEnv;
use crate::exec::{
    build, check_row_contract, index_probe_key, mem_tracker, AggState, BoxOp, ContractCtx,
    MemTracker, Op, RowBudget,
};
use crate::expr::PhysExpr;
use crate::governor::{row_bytes, value_bytes, ExecContext, OP_CHECK_INTERVAL};
use crate::metrics::{GovCounters, MetricsSink, NodeSlot};
use crate::plan::{AggSpec, PlanNode};

// ---------------------------------------------------------------------------
// Batches
// ---------------------------------------------------------------------------

/// A fixed-capacity run of rows, stored column-major so vectorized
/// expression kernels touch one contiguous `Vec<Value>` per column.
#[derive(Debug, Default)]
pub(crate) struct Batch {
    /// One value vector per output column; every vector has `len` entries.
    pub(crate) cols: Vec<Vec<Value>>,
    /// Number of rows in the batch.
    pub(crate) len: usize,
}

impl Batch {
    fn new() -> Batch {
        Batch::default()
    }

    /// Append a row, transposing its values into the column vectors.
    fn push_row(&mut self, row: Row) {
        if self.cols.is_empty() {
            self.cols = row.into_iter().map(|v| vec![v]).collect();
        } else {
            debug_assert_eq!(self.cols.len(), row.len());
            for (col, v) in self.cols.iter_mut().zip(row) {
                col.push(v);
            }
        }
        self.len += 1;
    }

    /// Append a borrowed row by cloning its values straight into the
    /// column vectors — no intermediate `Row` allocation (the per-row
    /// `Vec` the row-at-a-time scan pays on every `next()`). `cap` sizes
    /// the columns on first touch so a fill loop never reallocates.
    fn push_row_ref(&mut self, row: &[Value], cap: usize) {
        if self.cols.is_empty() {
            self.cols = row
                .iter()
                .map(|v| {
                    let mut c = Vec::with_capacity(cap);
                    c.push(v.clone());
                    c
                })
                .collect();
        } else {
            debug_assert_eq!(self.cols.len(), row.len());
            for (col, v) in self.cols.iter_mut().zip(row) {
                col.push(v.clone());
            }
        }
        self.len += 1;
    }

    /// Append the concatenation of two borrowed rows (a join emission)
    /// without materializing the concatenated `Row` first.
    fn push_concat(&mut self, left: &[Value], right: &[Value], cap: usize) {
        if self.cols.is_empty() {
            self.cols = (0..left.len() + right.len())
                .map(|_| Vec::with_capacity(cap))
                .collect();
        }
        debug_assert_eq!(self.cols.len(), left.len() + right.len());
        for (col, v) in self.cols.iter_mut().zip(left.iter().chain(right)) {
            col.push(v.clone());
        }
        self.len += 1;
    }

    /// Drop every row whose mask entry is not truthy, compacting each
    /// column in place (columnar survivor gather — no row round-trip).
    fn retain_by_mask(&mut self, mask: &[Value]) {
        let survivors = mask.iter().filter(|m| m.is_truthy()).count();
        if survivors == self.len {
            return;
        }
        for col in &mut self.cols {
            let mut keep = mask.iter();
            col.retain(|_| keep.next().is_some_and(Value::is_truthy));
        }
        self.len = survivors;
    }

    /// Move row `i` out of the batch (no clones; each row is taken at most
    /// once by the consuming adapter or operator).
    fn take_row(&mut self, i: usize) -> Row {
        self.cols
            .iter_mut()
            .map(|c| std::mem::replace(&mut c[i], Value::Null))
            .collect()
    }

    /// Clone row `i` (non-consuming; used by the contract shim).
    fn row_at(&self, i: usize) -> Row {
        self.cols.iter().map(|c| c[i].clone()).collect()
    }

    /// Estimated heap footprint, same estimator as the row path's
    /// `row_bytes` summed over the batch.
    fn bytes(&self) -> u64 {
        self.cols.iter().flatten().map(value_bytes).sum()
    }
}

/// A pull-based batch operator (the block-at-a-time twin of [`Op`]).
/// Never emits an empty batch: exhaustion is always `Ok(None)`.
pub(crate) trait BatchOp<'e> {
    fn next_batch(&mut self) -> Result<Option<Batch>>;

    /// Cumulative resource-governor counters, as in [`Op::governor_stats`].
    fn governor_stats(&self) -> Option<GovCounters> {
        None
    }
}

pub(crate) type BoxBatchOp<'e> = Box<dyn BatchOp<'e> + 'e>;

// ---------------------------------------------------------------------------
// Gating
// ---------------------------------------------------------------------------

/// Whether this query may route its relational spine through the batch
/// pipeline. See the module docs for why row budgets and fault plans force
/// the row path.
pub(crate) fn batch_active(env: &QueryEnv<'_>) -> bool {
    env.batch.enabled
        && env.limits.max_intermediate_rows.is_none()
        && env.gov.faults().is_none()
}

/// Plan nodes with a batch-native implementation. Everything else (graph
/// operators, sort, limit, distinct, index point-lookups) runs row-at-a-
/// time behind an adapter.
pub(crate) fn batch_native(plan: &PlanNode) -> bool {
    matches!(
        plan,
        PlanNode::TableScan { .. }
            | PlanNode::Filter { .. }
            | PlanNode::Project { .. }
            | PlanNode::NestedLoopJoin { .. }
            | PlanNode::IndexJoin { .. }
            | PlanNode::Aggregate { .. }
    )
}

/// Whether the plan contains a `LIMIT` node anywhere — the one operator
/// that stops pulling early, which batch eagerness would be observable
/// under (see the module docs).
pub(crate) fn plan_has_limit(plan: &PlanNode) -> bool {
    match plan {
        PlanNode::Limit { .. } => true,
        PlanNode::TableScan { .. }
        | PlanNode::IndexLookup { .. }
        | PlanNode::VertexScan { .. }
        | PlanNode::EdgeScan { .. }
        | PlanNode::PathScan { .. } => false,
        PlanNode::PathJoin { outer: input, .. }
        | PlanNode::Filter { input, .. }
        | PlanNode::IndexJoin { outer: input, .. }
        | PlanNode::Project { input, .. }
        | PlanNode::Aggregate { input, .. }
        | PlanNode::Sort { input, .. }
        | PlanNode::Distinct { input, .. } => plan_has_limit(input),
        PlanNode::NestedLoopJoin { left, right, .. } => {
            plan_has_limit(left) || plan_has_limit(right)
        }
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// Batch→Row adapter: drains batches from a batch-native subtree one row at
/// a time, so row operators (and the result collector) compose with it
/// unchanged. Not a plan node — it registers no metrics slot and consumes
/// no contract.
struct BatchToRowOp<'e> {
    inner: BoxBatchOp<'e>,
    current: Option<Batch>,
    pos: usize,
}

impl<'e> BatchToRowOp<'e> {
    fn new(inner: BoxBatchOp<'e>) -> Self {
        BatchToRowOp {
            inner,
            current: None,
            pos: 0,
        }
    }

    fn next_row(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(b) = &mut self.current {
                if self.pos < b.len {
                    let row = b.take_row(self.pos);
                    self.pos += 1;
                    return Ok(Some(row));
                }
                self.current = None;
            }
            match self.inner.next_batch()? {
                None => return Ok(None),
                Some(b) => {
                    self.current = Some(b);
                    self.pos = 0;
                }
            }
        }
    }
}

impl<'e> Op<'e> for BatchToRowOp<'e> {
    fn next(&mut self) -> Result<Option<Row>> {
        self.next_row()
    }

    fn governor_stats(&self) -> Option<GovCounters> {
        self.inner.governor_stats()
    }
}

/// Row→Batch adapter: fills batches from a row operator (a graph scan, a
/// sort, a point lookup) so batch operators can consume it. Pulls at most
/// `size` rows per batch.
struct RowToBatchOp<'e> {
    inner: BoxOp<'e>,
    size: usize,
    done: bool,
}

impl<'e> BatchOp<'e> for RowToBatchOp<'e> {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        let mut b = Batch::new();
        while b.len < self.size {
            match self.inner.next()? {
                Some(row) => b.push_row(row),
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        if b.len == 0 {
            Ok(None)
        } else {
            Ok(Some(b))
        }
    }

    fn governor_stats(&self) -> Option<GovCounters> {
        self.inner.governor_stats()
    }
}

// ---------------------------------------------------------------------------
// Shims (batch twins of CheckedOp / GovernedOp / MeteredOp)
// ---------------------------------------------------------------------------

/// Contract shim: asserts every row of every emitted batch against the
/// node's statically inferred schema, via the same checker row mode uses.
struct CheckedBatchOp<'e> {
    inner: BoxBatchOp<'e>,
    contract: crate::analyze::NodeContract,
    label: String,
}

impl<'e> BatchOp<'e> for CheckedBatchOp<'e> {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let r = self.inner.next_batch()?;
        if let Some(b) = &r {
            for i in 0..b.len {
                check_row_contract(&self.contract, &self.label, &b.row_at(i))?;
            }
        }
        Ok(r)
    }

    fn governor_stats(&self) -> Option<GovCounters> {
        self.inner.governor_stats()
    }
}

/// Governor shim: keeps the row path's check cadence exactly — one
/// cooperative deadline/cancel poll per [`OP_CHECK_INTERVAL`] rows (an
/// emitted batch of `n` rows advances the same virtual pull counter `n`
/// row pulls would), plus one on exhaustion (the same end-of-stream
/// conversion as row mode's `GovernedOp`). Locked governor-counter tests
/// therefore see identical `checks=` in both layouts.
struct GovernedBatchOp<'e> {
    inner: BoxBatchOp<'e>,
    ctx: &'e ExecContext,
    pulls: u64,
    checks: u64,
}

impl<'e> BatchOp<'e> for GovernedBatchOp<'e> {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let r = self.inner.next_batch()?;
        match &r {
            Some(b) => {
                let before = self.pulls;
                self.pulls += b.len as u64;
                let crossings =
                    self.pulls / OP_CHECK_INTERVAL - before / OP_CHECK_INTERVAL;
                for _ in 0..crossings {
                    self.checks += 1;
                    self.ctx.check_now()?;
                }
            }
            None => {
                // The exhausting pull, which row mode also counts against
                // the interval before its end-of-stream check.
                self.pulls += 1;
                if self.pulls % OP_CHECK_INTERVAL == 0 {
                    self.checks += 1;
                    self.ctx.check_now()?;
                }
                self.checks += 1;
                self.ctx.check_now()?;
            }
        }
        Ok(r)
    }

    fn governor_stats(&self) -> Option<GovCounters> {
        let mut g = self.inner.governor_stats().unwrap_or_default();
        g.checks += self.checks;
        Some(g)
    }
}

/// Metering shim: times each `next_batch()` inclusively, counts the batch's
/// rows into the node's slot, and tags the node with its batch size so
/// `EXPLAIN ANALYZE` renders `layout=batch(n)`.
struct MeteredBatchOp<'e> {
    inner: BoxBatchOp<'e>,
    slot: Rc<NodeSlot>,
    size: u64,
}

impl<'e> BatchOp<'e> for MeteredBatchOp<'e> {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        self.slot.set_batch(self.size);
        let start = Instant::now();
        let r = self.inner.next_batch();
        let elapsed = start.elapsed().as_nanos() as u64;
        let rows = match &r {
            Ok(Some(b)) => Some(b.len as u64),
            _ => None,
        };
        self.slot.record_batch(elapsed, rows);
        if let Some(g) = self.inner.governor_stats() {
            self.slot.set_gov(g);
        }
        r
    }

    fn governor_stats(&self) -> Option<GovCounters> {
        self.inner.governor_stats()
    }
}

// ---------------------------------------------------------------------------
// Build
// ---------------------------------------------------------------------------

/// Build the batch pipeline for a batch-native subtree and wrap it in the
/// Batch→Row adapter. Called from [`build`] when batching is active and the
/// subtree root is batch-native.
pub(crate) fn build_batch_bridge<'e>(
    plan: &'e PlanNode,
    env: &'e QueryEnv<'e>,
    budget: &'e RowBudget,
    sink: Option<&'e MetricsSink>,
    contracts: Option<&'e ContractCtx>,
    depth: usize,
) -> Result<BoxOp<'e>> {
    let inner = build_batch(plan, env, budget, sink, contracts, depth)?;
    Ok(Box::new(BatchToRowOp::new(inner)))
}

/// Batch twin of [`build`]: registers the node's metrics slot and consumes
/// its contract in the same pre-order walk, then stacks the batch shims
/// innermost-out (Checked → Governed → Metered; no fault shim — batching
/// deactivates under fault plans).
fn build_batch<'e>(
    plan: &'e PlanNode,
    env: &'e QueryEnv<'e>,
    budget: &'e RowBudget,
    sink: Option<&'e MetricsSink>,
    contracts: Option<&'e ContractCtx>,
    depth: usize,
) -> Result<BoxBatchOp<'e>> {
    let slot = sink.map(|s| s.register(plan.node_label(), depth));
    let contract = contracts.and_then(|c| c.next_contract());
    let op = build_batch_inner(plan, env, budget, sink, contracts, depth)?;
    let op = match contract {
        Some(contract) => Box::new(CheckedBatchOp {
            inner: op,
            contract,
            label: plan.node_label(),
        }) as BoxBatchOp<'e>,
        None => op,
    };
    let op = if env.gov.active() {
        Box::new(GovernedBatchOp {
            inner: op,
            ctx: &env.gov,
            pulls: 0,
            checks: 0,
        }) as BoxBatchOp<'e>
    } else {
        op
    };
    Ok(match slot {
        Some(slot) => Box::new(MeteredBatchOp {
            inner: op,
            slot,
            size: env.batch.size as u64,
        }),
        None => op,
    })
}

/// Build a child as a batch stream: natively when it is batch-native,
/// otherwise through the Row→Batch adapter around the ordinary row build
/// (which registers the child's metrics slot and contract as usual).
fn batch_input<'e>(
    child: &'e PlanNode,
    env: &'e QueryEnv<'e>,
    budget: &'e RowBudget,
    sink: Option<&'e MetricsSink>,
    contracts: Option<&'e ContractCtx>,
    depth: usize,
) -> Result<BoxBatchOp<'e>> {
    if batch_native(child) {
        build_batch(child, env, budget, sink, contracts, depth)
    } else {
        let inner = build(child, env, budget, sink, contracts, depth, true)?;
        Ok(Box::new(RowToBatchOp {
            inner,
            size: env.batch.size,
            done: false,
        }))
    }
}

/// `Some(indices)` when every projection expression is a bare column
/// reference and no column is selected twice — the batch projector may
/// then move the selected columns instead of cloning them.
fn pure_column_list(exprs: &[PhysExpr]) -> Option<Vec<usize>> {
    let mut seen = std::collections::HashSet::new();
    exprs
        .iter()
        .map(|e| match e {
            PhysExpr::Column { index, .. } if seen.insert(*index) => Some(*index),
            _ => None,
        })
        .collect()
}

fn build_batch_inner<'e>(
    plan: &'e PlanNode,
    env: &'e QueryEnv<'e>,
    budget: &'e RowBudget,
    sink: Option<&'e MetricsSink>,
    contracts: Option<&'e ContractCtx>,
    depth: usize,
) -> Result<BoxBatchOp<'e>> {
    Ok(match plan {
        PlanNode::TableScan { table, filter, .. } => {
            let t = env.table(table)?;
            Box::new(BatchTableScanOp {
                chunks: t.chunk_slices().collect(),
                chunk: 0,
                slot: 0,
                filter: filter.as_ref(),
                env,
                budget,
                size: env.batch.size,
                buf: BufCharge::new(env),
            })
        }
        PlanNode::Filter {
            input, predicate, ..
        } => Box::new(BatchFilterOp {
            input: batch_input(input, env, budget, sink, contracts, depth + 1)?,
            predicate,
            vectorized: predicate.vector_safe(),
            env,
            buf: BufCharge::new(env),
        }),
        PlanNode::Project { input, exprs, .. } => Box::new(BatchProjectOp {
            input: batch_input(input, env, budget, sink, contracts, depth + 1)?,
            exprs,
            col_indices: pure_column_list(exprs),
            all_vector: exprs.iter().all(|e| e.vector_safe()),
            env,
            buf: BufCharge::new(env),
        }),
        PlanNode::NestedLoopJoin {
            left,
            right,
            condition,
            ..
        } => Box::new(BatchNestedLoopJoinOp {
            left: Some(batch_input(left, env, budget, sink, contracts, depth + 1)?),
            left_rows: None,
            right: BatchToRowOp::new(batch_input(
                right, env, budget, sink, contracts, depth + 1,
            )?),
            right_row: None,
            left_pos: 0,
            condition: condition.as_ref(),
            env,
            budget,
            size: env.batch.size,
            tracker: mem_tracker(env),
            buf: BufCharge::new(env),
        }),
        PlanNode::IndexJoin {
            outer,
            table,
            column,
            key,
            filter,
            ..
        } => {
            let t = env.table(table)?;
            // Resolved once here and held for the whole join — the row
            // operator re-finds the index on every probe; the batch twin
            // may be faster as long as answers are identical.
            let Some(index) = t.index_on(*column, Some(grfusion_storage::IndexKind::Hash))
            else {
                return Err(Error::execution(format!(
                    "planned index join but table `{table}` has no hash index on column {column}"
                )));
            };
            Box::new(BatchIndexJoinOp {
                outer: BatchToRowOp::new(batch_input(
                    outer, env, budget, sink, contracts, depth + 1,
                )?),
                table: t,
                index,
                col_ty: t.schema().column(*column).data_type,
                key,
                filter: filter.as_ref(),
                current: None,
                env,
                budget,
                size: env.batch.size,
                buf: BufCharge::new(env),
            })
        }
        PlanNode::Aggregate {
            input,
            group_exprs,
            aggs,
            ..
        } => Box::new(BatchAggregateOp {
            input: Some(BatchToRowOp::new(batch_input(
                input, env, budget, sink, contracts, depth + 1,
            )?)),
            group_exprs,
            aggs,
            env,
            output: Vec::new(),
            pos: 0,
            done: false,
            size: env.batch.size,
            tracker: mem_tracker(env),
            buf: BufCharge::new(env),
        }),
        other => {
            return Err(Error::execution(format!(
                "plan node has no batch implementation: {}",
                other.node_label()
            )))
        }
    })
}

// ---------------------------------------------------------------------------
// Batch-buffer memory accounting
// ---------------------------------------------------------------------------

/// One-shot batch-buffer charge against the memory accountant: an
/// operator's in-flight batch is live state the row path never holds, so
/// its footprint is charged once (at first emission, when the buffer
/// reaches its working size). Retained state — join build sides,
/// aggregation tables — is charged separately, exactly like row mode.
struct BufCharge<'e> {
    tracker: Option<MemTracker<'e>>,
    charged: bool,
}

impl<'e> BufCharge<'e> {
    fn new(env: &'e QueryEnv<'e>) -> Self {
        BufCharge {
            tracker: mem_tracker(env),
            charged: false,
        }
    }

    fn charge_first(&mut self, b: &Batch) -> Result<()> {
        if self.charged {
            return Ok(());
        }
        self.charged = true;
        if let Some(t) = &self.tracker {
            t.charge(b.bytes())?;
        }
        Ok(())
    }

    fn counters(&self) -> Option<GovCounters> {
        self.tracker.as_ref().map(|t| t.counters())
    }
}

// ---------------------------------------------------------------------------
// Batch operators
// ---------------------------------------------------------------------------

/// Block-at-a-time table scan over the table's chunk slices: the fill loop
/// walks contiguous `Option<Row>` slots directly (no per-row virtual
/// dispatch), applies the pushed filter on the borrowed row, and clones
/// only survivors into the batch — same predicate order, ticks, and clones
/// as the row scan.
struct BatchTableScanOp<'e> {
    chunks: Vec<&'e [Option<Row>]>,
    chunk: usize,
    slot: usize,
    filter: Option<&'e PhysExpr>,
    env: &'e QueryEnv<'e>,
    budget: &'e RowBudget,
    size: usize,
    buf: BufCharge<'e>,
}

impl<'e> BatchOp<'e> for BatchTableScanOp<'e> {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let mut b = Batch::new();
        'fill: while b.len < self.size {
            let Some(chunk) = self.chunks.get(self.chunk) else {
                break 'fill;
            };
            let Some(slot) = chunk.get(self.slot) else {
                self.chunk += 1;
                self.slot = 0;
                continue;
            };
            self.slot += 1;
            let Some(row) = slot.as_ref() else {
                continue;
            };
            if let Some(f) = self.filter {
                if !f.matches(row, self.env)? {
                    continue;
                }
            }
            self.budget.tick()?;
            b.push_row_ref(row, self.size);
        }
        if b.len == 0 {
            return Ok(None);
        }
        self.buf.charge_first(&b)?;
        Ok(Some(b))
    }

    fn governor_stats(&self) -> Option<GovCounters> {
        self.buf.counters()
    }
}

/// Batch filter: a [`PhysExpr::vector_safe`] predicate is evaluated
/// columnarly over the whole batch and survivors are gathered by mask;
/// fallible predicates fall back to row-major evaluation with scalar
/// semantics (identical short-circuit and error order).
struct BatchFilterOp<'e> {
    input: BoxBatchOp<'e>,
    predicate: &'e PhysExpr,
    vectorized: bool,
    env: &'e QueryEnv<'e>,
    buf: BufCharge<'e>,
}

impl<'e> BatchOp<'e> for BatchFilterOp<'e> {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        loop {
            let Some(mut b) = self.input.next_batch()? else {
                return Ok(None);
            };
            let out = if self.vectorized {
                let mask = self.predicate.eval_vector(&b.cols, b.len, self.env)?;
                b.retain_by_mask(&mask);
                b
            } else {
                let mut out = Batch::new();
                for i in 0..b.len {
                    let row = b.take_row(i);
                    if self.predicate.matches(&row, self.env)? {
                        out.push_row(row);
                    }
                }
                out
            };
            if out.len > 0 {
                self.buf.charge_first(&out)?;
                return Ok(Some(out));
            }
        }
    }

    fn governor_stats(&self) -> Option<GovCounters> {
        self.buf.counters()
    }
}

/// Batch projection: a projection that is purely a distinct column list
/// *moves* the selected columns out of the input batch (zero clones);
/// otherwise, when every output expression is vector-safe, each is
/// evaluated as one columnar kernel producing a whole output column;
/// otherwise the batch is projected row-major (scalar evaluation order, so
/// error precedence matches row mode exactly).
struct BatchProjectOp<'e> {
    input: BoxBatchOp<'e>,
    exprs: &'e [PhysExpr],
    /// `Some` when every expression is a bare column reference and no
    /// column is referenced twice (each may be moved at most once).
    col_indices: Option<Vec<usize>>,
    all_vector: bool,
    env: &'e QueryEnv<'e>,
    buf: BufCharge<'e>,
}

impl<'e> BatchOp<'e> for BatchProjectOp<'e> {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let Some(mut b) = self.input.next_batch()? else {
            return Ok(None);
        };
        let out = if let Some(ix) = &self.col_indices {
            let cols = ix.iter().map(|&i| std::mem::take(&mut b.cols[i])).collect();
            Batch { cols, len: b.len }
        } else if self.all_vector {
            let cols: Vec<Vec<Value>> = self
                .exprs
                .iter()
                .map(|e| e.eval_vector(&b.cols, b.len, self.env))
                .collect::<Result<_>>()?;
            Batch { cols, len: b.len }
        } else {
            let mut out = Batch::new();
            for i in 0..b.len {
                let row = b.take_row(i);
                let mut projected = Vec::with_capacity(self.exprs.len());
                for e in self.exprs {
                    projected.push(e.eval(&row, self.env)?);
                }
                out.push_row(projected);
            }
            out
        };
        self.buf.charge_first(&out)?;
        Ok(Some(out))
    }

    fn governor_stats(&self) -> Option<GovCounters> {
        self.buf.counters()
    }
}

/// Batch nested-loop join: same shape as the row operator (left side
/// buffered and charged, right side streamed, right-major emission order,
/// tick per emitted row) with output accumulated into batches.
struct BatchNestedLoopJoinOp<'e> {
    left: Option<BoxBatchOp<'e>>,
    left_rows: Option<Vec<Row>>,
    right: BatchToRowOp<'e>,
    right_row: Option<Row>,
    left_pos: usize,
    condition: Option<&'e PhysExpr>,
    env: &'e QueryEnv<'e>,
    budget: &'e RowBudget,
    size: usize,
    tracker: Option<MemTracker<'e>>,
    buf: BufCharge<'e>,
}

impl<'e> BatchNestedLoopJoinOp<'e> {
    /// One joined row, with logic identical to the row operator's `next`.
    fn next_join_row(&mut self) -> Result<Option<Row>> {
        if self.left_rows.is_none() {
            let mut rows = Vec::new();
            if let Some(mut left) = self.left.take() {
                while let Some(mut b) = left.next_batch()? {
                    for i in 0..b.len {
                        let r = b.take_row(i);
                        // The build side is retained for the whole join.
                        if let Some(t) = &self.tracker {
                            t.charge(row_bytes(&r))?;
                        }
                        rows.push(r);
                    }
                }
            }
            self.left_rows = Some(rows);
        }
        let Some(left_rows) = self.left_rows.as_ref() else {
            return Ok(None);
        };
        if left_rows.is_empty() {
            return Ok(None);
        }
        loop {
            if self.right_row.is_none() || self.left_pos >= left_rows.len() {
                match self.right.next_row()? {
                    None => return Ok(None),
                    Some(r) => {
                        self.right_row = Some(r);
                        self.left_pos = 0;
                    }
                }
            }
            let Some(right) = self.right_row.as_ref() else {
                return Ok(None);
            };
            while self.left_pos < left_rows.len() {
                let l = &left_rows[self.left_pos];
                self.left_pos += 1;
                let mut out = Vec::with_capacity(l.len() + right.len());
                out.extend_from_slice(l);
                out.extend_from_slice(right);
                if let Some(cond) = self.condition {
                    if !cond.matches(&out, self.env)? {
                        continue;
                    }
                }
                self.budget.tick()?;
                return Ok(Some(out));
            }
        }
    }
}

impl<'e> BatchOp<'e> for BatchNestedLoopJoinOp<'e> {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let mut b = Batch::new();
        while b.len < self.size {
            match self.next_join_row()? {
                Some(row) => b.push_row(row),
                None => break,
            }
        }
        if b.len == 0 {
            return Ok(None);
        }
        self.buf.charge_first(&b)?;
        Ok(Some(b))
    }

    fn governor_stats(&self) -> Option<GovCounters> {
        let mut g = self.tracker.as_ref().map(|t| t.counters()).unwrap_or_default();
        if let Some(mine) = self.buf.counters() {
            g.merge(&mine);
        }
        Some(g)
    }
}

/// Batch index nested-loop join: per outer row, probe the inner table's
/// hash index; emission order, filters, and ticks match the row operator.
/// Joined rows are cloned straight into the output columns — no
/// per-emission concatenated `Row` allocation — and the probed index is
/// resolved once at build instead of on every outer row.
struct BatchIndexJoinOp<'e> {
    outer: BatchToRowOp<'e>,
    table: &'e grfusion_storage::Table,
    index: &'e grfusion_storage::Index,
    col_ty: grfusion_common::DataType,
    key: &'e PhysExpr,
    filter: Option<&'e PhysExpr>,
    /// (outer row, matching inner row ids, cursor)
    current: Option<(Row, Vec<grfusion_common::RowId>, usize)>,
    env: &'e QueryEnv<'e>,
    budget: &'e RowBudget,
    size: usize,
    buf: BufCharge<'e>,
}

impl<'e> BatchOp<'e> for BatchIndexJoinOp<'e> {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let mut b = Batch::new();
        'fill: while b.len < self.size {
            if let Some((outer_row, ids, pos)) = &mut self.current {
                while *pos < ids.len() {
                    if b.len >= self.size {
                        // Batch full mid-probe; resume here next call.
                        break 'fill;
                    }
                    let id = ids[*pos];
                    *pos += 1;
                    let Some(inner) = self.table.get(id) else {
                        continue;
                    };
                    if let Some(f) = self.filter {
                        if !f.matches(inner, self.env)? {
                            continue;
                        }
                    }
                    self.budget.tick()?;
                    b.push_concat(outer_row, inner, self.size);
                }
                self.current = None;
            }
            match self.outer.next_row()? {
                None => break 'fill,
                Some(outer_row) => {
                    let key_val =
                        index_probe_key(self.key.eval(&outer_row, self.env)?, self.col_ty);
                    let ids = match key_val {
                        None => Vec::new(), // alloc-ok: empty Vec does not allocate
                        Some(k) => self.index.get(&k),
                    };
                    self.current = Some((outer_row, ids, 0));
                }
            }
        }
        if b.len == 0 {
            return Ok(None);
        }
        self.buf.charge_first(&b)?;
        Ok(Some(b))
    }

    fn governor_stats(&self) -> Option<GovCounters> {
        self.buf.counters()
    }
}

/// Batch hash aggregation: consumes the input batch stream through the
/// same grouping and `AggState` machinery as the row operator (identical
/// group insertion order, charges, and finish arithmetic), then emits the
/// result rows in batches.
struct BatchAggregateOp<'e> {
    input: Option<BatchToRowOp<'e>>,
    group_exprs: &'e [PhysExpr],
    aggs: &'e [AggSpec],
    env: &'e QueryEnv<'e>,
    output: Vec<Row>,
    pos: usize,
    done: bool,
    size: usize,
    tracker: Option<MemTracker<'e>>,
    buf: BufCharge<'e>,
}

impl<'e> BatchOp<'e> for BatchAggregateOp<'e> {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if !self.done {
            let Some(mut input) = self.input.take() else {
                return Ok(None);
            };
            let mut groups: HashMap<Vec<GroupKey>, (Row, Vec<AggState>)> = HashMap::new();
            let mut order: Vec<Vec<GroupKey>> = Vec::new();
            while let Some(row) = input.next_row()? {
                let mut key = Vec::with_capacity(self.group_exprs.len());
                let mut key_vals = Vec::with_capacity(self.group_exprs.len());
                for g in self.group_exprs {
                    let v = g.eval(&row, self.env)?;
                    key.push(v.group_key());
                    key_vals.push(v);
                }
                // Each new group adds its key values plus one aggregation
                // state per aggregate to the hash table.
                if let Some(t) = &self.tracker {
                    if !groups.contains_key(&key) {
                        t.charge(
                            row_bytes(&key_vals)
                                + (self.aggs.len() * std::mem::size_of::<AggState>()) as u64,
                        )?;
                    }
                }
                let entry = groups.entry(key.clone()).or_insert_with(|| { // alloc-ok: std entry API needs an owned key
                    order.push(key);
                    (key_vals, vec![AggState::new(); self.aggs.len()]) // alloc-ok: runs once per new group
                });
                for (i, spec) in self.aggs.iter().enumerate() {
                    match &spec.arg {
                        None => {
                            // COUNT(*)
                            entry.1[i].count += 1;
                        }
                        Some(e) => {
                            let v = e.eval(&row, self.env)?;
                            entry.1[i].update(&v)?;
                        }
                    }
                }
            }
            if groups.is_empty() && self.group_exprs.is_empty() {
                // Global aggregate over an empty input: one row of defaults.
                let row: Row = self
                    .aggs
                    .iter()
                    .map(|spec| AggState::new().finish(spec.func))
                    .collect::<Result<_>>()?;
                self.output.push(row);
            } else {
                for key in order {
                    let Some((vals, states)) = groups.remove(&key) else {
                        continue;
                    };
                    let mut row = vals;
                    for (spec, st) in self.aggs.iter().zip(&states) {
                        row.push(st.finish(spec.func)?);
                    }
                    self.output.push(row);
                }
            }
            self.done = true;
        }
        let mut b = Batch::new();
        while self.pos < self.output.len() && b.len < self.size {
            b.push_row(std::mem::take(&mut self.output[self.pos]));
            self.pos += 1;
        }
        if b.len == 0 {
            return Ok(None);
        }
        self.buf.charge_first(&b)?;
        Ok(Some(b))
    }

    fn governor_stats(&self) -> Option<GovCounters> {
        let mut g = self.tracker.as_ref().map(|t| t.counters()).unwrap_or_default();
        if let Some(mine) = self.buf.counters() {
            g.merge(&mine);
        }
        Some(g)
    }
}
