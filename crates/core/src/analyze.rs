//! Static QEP verification: plan-time schema/type analysis.
//!
//! GRFusion's cross-model QEPs compose graph operators (VertexScan /
//! EdgeScan / PathScan) freely with relational ones, which means an
//! ill-typed plan node — a `Paths.` attribute that doesn't resolve, a
//! predicate comparing PATH to INTEGER — would otherwise only surface as
//! a mid-execution `Err` deep inside the executor, after side effects and
//! wasted traversal work. This module closes that gap with three layers:
//!
//! 1. **AST typechecking** ([`check_select`]): every expression of a
//!    SELECT is typed with 3VL-aware inference *before* residual
//!    compilation. Ill-typed queries are rejected at plan time with the
//!    source span of the offending token. Unknown types (parameters, NULL
//!    literals) unify with everything, mirroring runtime coercion.
//! 2. **Plan verification** ([`verify_plan`]): after the planner builds a
//!    physical tree, every node's output schema is re-derived bottom-up
//!    and checked for width/type consistency, and graph-operator
//!    invariants are validated statically: pushed-down predicates only
//!    reference attributes the traversal can materialize, anchors are
//!    numeric, and SHORTESTPATH / reachability scans carry the anchors
//!    their physical implementation requires.
//! 3. **Contract inference** ([`node_contracts`]): for each node, the
//!    statically inferred per-column type + nullability contract that the
//!    debug-mode `CheckedOp` shim (see `exec.rs`) asserts against every
//!    emitted tuple — turning the analyzer into a continuously
//!    self-checking oracle across the whole test suite.
//!
//! [`explain_typed`] renders the plan with the inferred schema per node,
//! so plan-shape locks also lock types.

use std::collections::HashMap;
use std::sync::Arc;

use grfusion_common::{DataType, Error, Result, Schema, Value};
use grfusion_sql::{BinaryOp, Expr, RefPart, Select, SelectItem, UnaryOp};

use crate::expr::{AggFunc, BindingKind, GraphMeta, Namespace, PathProp, PhysExpr};
use crate::plan::{AggSpec, PathScanConfig, PlanNode, PushedAggPred, PushedPred, ScanMode, StartSource};

/// The analyzer's type domain: `None` is "unknown" (parameters and NULL
/// literals), which unifies with every concrete type — exactly the values
/// the runtime coerces dynamically.
pub type Ty = Option<DataType>;

fn show(t: Ty) -> String {
    match t {
        Some(dt) => dt.to_string(),
        None => "UNKNOWN".to_string(),
    }
}

fn is_numeric(t: Ty) -> bool {
    matches!(t, None | Some(DataType::Integer) | Some(DataType::Double))
}

fn is_boolean(t: Ty) -> bool {
    matches!(t, None | Some(DataType::Boolean))
}

/// `" at line:col"` for a reference part, empty if the span is unknown.
fn at(part: &RefPart) -> String {
    if part.span.is_known() {
        format!(" at {}", part.span)
    } else {
        String::new()
    }
}

fn value_type(v: &Value) -> Ty {
    match v {
        Value::Null => None,
        Value::Integer(_) => Some(DataType::Integer),
        Value::Double(_) => Some(DataType::Double),
        Value::Boolean(_) => Some(DataType::Boolean),
        Value::Text(_) => Some(DataType::Varchar),
        Value::Path(_) => Some(DataType::Path),
    }
}

// ---------------------------------------------------------------------------
// AST typechecking (runs in the planner, before residual compilation)
// ---------------------------------------------------------------------------

/// Typecheck every expression of a SELECT against the FROM namespace.
///
/// Acceptance is deliberately *at least* as permissive as `expr::compile`
/// on structural matters (ranged references, aggregate placement): the
/// compiler stays the authority there. What this pass adds is type
/// soundness — comparisons must be comparable, arithmetic numeric,
/// predicates boolean — and attribute resolution with source spans for
/// forms the compiler defers to runtime (quantified-range attributes).
pub fn check_select(select: &Select, ns: &Namespace) -> Result<()> {
    if let Some(sel) = &select.selection {
        expect_boolean(sel, ns, "WHERE")?;
    }
    for item in &select.projections {
        if let SelectItem::Expr { expr, .. } = item {
            infer(expr, ns)?;
        }
    }
    for g in &select.group_by {
        infer(g, ns)?;
    }
    if let Some(h) = &select.having {
        expect_boolean(h, ns, "HAVING")?;
    }
    for (e, _) in &select.order_by {
        infer(e, ns)?;
    }
    Ok(())
}

fn expect_boolean(e: &Expr, ns: &Namespace, clause: &str) -> Result<()> {
    let t = infer(e, ns)?;
    if !is_boolean(t) {
        return Err(Error::analysis(format!(
            "{clause} predicate must be BOOLEAN, got {}{}",
            show(t),
            e.span_suffix()
        )));
    }
    Ok(())
}

/// Infer the type of an expression, rejecting ill-typed subtrees.
pub fn infer(expr: &Expr, ns: &Namespace) -> Result<Ty> {
    match expr {
        Expr::Literal(v) => Ok(value_type(v)),
        Expr::Parameter(_) => Ok(None),
        Expr::CompoundRef(parts) => ref_type(parts, ns),
        Expr::Unary { op: UnaryOp::Not, expr: inner } => {
            let t = infer(inner, ns)?;
            if !is_boolean(t) {
                return Err(Error::analysis(format!(
                    "NOT requires a BOOLEAN operand, got {}{}",
                    show(t),
                    inner.span_suffix()
                )));
            }
            Ok(Some(DataType::Boolean))
        }
        Expr::Unary { op: UnaryOp::Neg, expr: inner } => {
            let t = infer(inner, ns)?;
            if !is_numeric(t) {
                return Err(Error::analysis(format!(
                    "unary minus requires a numeric operand, got {}{}",
                    show(t),
                    inner.span_suffix()
                )));
            }
            Ok(t)
        }
        Expr::Binary { left, op, right } => {
            let lt = infer(left, ns)?;
            let rt = infer(right, ns)?;
            match op {
                BinaryOp::And | BinaryOp::Or => {
                    for (t, side) in [(lt, &**left), (rt, &**right)] {
                        if !is_boolean(t) {
                            return Err(Error::analysis(format!(
                                "{} requires BOOLEAN operands, got {}{}",
                                if *op == BinaryOp::And { "AND" } else { "OR" },
                                show(t),
                                side.span_suffix()
                            )));
                        }
                    }
                    Ok(Some(DataType::Boolean))
                }
                BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq => {
                    check_comparable(lt, rt, expr)?;
                    Ok(Some(DataType::Boolean))
                }
                BinaryOp::Add
                | BinaryOp::Sub
                | BinaryOp::Mul
                | BinaryOp::Div
                | BinaryOp::Mod => {
                    for (t, side) in [(lt, &**left), (rt, &**right)] {
                        if !is_numeric(t) {
                            return Err(Error::analysis(format!(
                                "arithmetic requires numeric operands, got {}{}",
                                show(t),
                                side.span_suffix()
                            )));
                        }
                    }
                    Ok(match (lt, rt) {
                        (Some(DataType::Integer), Some(DataType::Integer)) => {
                            Some(DataType::Integer)
                        }
                        (None, _) | (_, None) => None,
                        _ => Some(DataType::Double),
                    })
                }
            }
        }
        Expr::InList { expr: needle, list, .. } => {
            let t = infer(needle, ns)?;
            for item in list {
                let it = infer(item, ns)?;
                check_comparable(t, it, item)?;
            }
            Ok(Some(DataType::Boolean))
        }
        Expr::InSubquery { expr: needle, .. } => {
            // The engine folds uncorrelated subqueries into literal lists
            // before planning; the inner SELECT is analyzed on its own
            // pass. Only the needle is typed here.
            infer(needle, ns)?;
            Ok(Some(DataType::Boolean))
        }
        Expr::Between { expr: needle, low, high, .. } => {
            let t = infer(needle, ns)?;
            for bound in [&**low, &**high] {
                let bt = infer(bound, ns)?;
                check_comparable(t, bt, bound)?;
            }
            Ok(Some(DataType::Boolean))
        }
        Expr::Function { name, args, star } => {
            let Some(func) = AggFunc::parse(name) else {
                return Err(Error::analysis(format!(
                    "unknown function `{name}`{}",
                    expr.span_suffix()
                )));
            };
            if *star {
                return Ok(Some(DataType::Integer));
            }
            if args.len() != 1 {
                return Err(Error::analysis(format!(
                    "{name}() takes exactly one argument{}",
                    expr.span_suffix()
                )));
            }
            let arg = &args[0];
            let t = infer(arg, ns)?;
            match func {
                AggFunc::Count => Ok(Some(DataType::Integer)),
                AggFunc::Sum => {
                    require_numeric_agg(t, "SUM", arg)?;
                    Ok(t)
                }
                AggFunc::Avg => {
                    require_numeric_agg(t, "AVG", arg)?;
                    Ok(Some(DataType::Double))
                }
                AggFunc::Min | AggFunc::Max => {
                    if t == Some(DataType::Path) {
                        return Err(Error::analysis(format!(
                            "{} cannot aggregate PATH values{}",
                            name.to_ascii_uppercase(),
                            arg.span_suffix()
                        )));
                    }
                    Ok(t)
                }
            }
        }
    }
}

fn require_numeric_agg(t: Ty, func: &str, arg: &Expr) -> Result<()> {
    if !is_numeric(t) {
        return Err(Error::analysis(format!(
            "{func}() requires a numeric argument, got {}{}",
            show(t),
            arg.span_suffix()
        )));
    }
    Ok(())
}

/// Whether two operand types can meet in a comparison under the runtime's
/// three-valued `sql_cmp`: unknowns unify with everything, INTEGER and
/// DOUBLE cross-compare, every other pair must match exactly — and PATH
/// values have no defined ordering at all.
fn check_comparable(a: Ty, b: Ty, expr: &Expr) -> Result<()> {
    let ok = match (a, b) {
        (None, _) | (_, None) => true,
        (Some(DataType::Path), _) | (_, Some(DataType::Path)) => false,
        (Some(x), Some(y)) => x == y || (is_numeric(Some(x)) && is_numeric(Some(y))),
    };
    if !ok {
        return Err(Error::analysis(format!(
            "cannot compare {} with {}{}",
            show(a),
            show(b),
            expr.span_suffix()
        )));
    }
    Ok(())
}

/// Resolve a compound reference to its value type, validating every
/// attribute against the namespace (tables, graph-view scan schemas, and
/// the graph view's exposed vertex/edge attributes for path references).
fn ref_type(parts: &[RefPart], ns: &Namespace) -> Result<Ty> {
    if parts.len() == 1 {
        let head = &parts[0];
        if let Some(b) = ns.binding(&head.name) {
            return match &b.kind {
                BindingKind::Paths(_) => Ok(Some(DataType::Path)),
                _ => Err(Error::analysis(format!(
                    "binding `{}` cannot be used as a value; select its columns{}",
                    head.name,
                    at(head)
                ))),
            };
        }
        // Unqualified column: search every binding's schema.
        let lower = head.name.to_ascii_lowercase();
        let mut found: Ty = None;
        let mut hits = 0usize;
        for b in &ns.bindings {
            if let Some(i) = b.schema.index_of(&lower) {
                hits += 1;
                found = Some(b.schema.column(i).data_type);
            }
        }
        return match hits {
            0 => Err(Error::analysis(format!(
                "unknown column `{}`{}",
                head.name,
                at(head)
            ))),
            1 => Ok(found),
            _ => Err(Error::analysis(format!(
                "ambiguous column `{}`{}",
                head.name,
                at(head)
            ))),
        };
    }

    let head = &parts[0];
    if head.index.is_some() {
        return Err(Error::analysis(format!(
            "cannot index binding `{}` directly{}",
            head.name,
            at(head)
        )));
    }
    let Some(binding) = ns.binding(&head.name) else {
        return Err(Error::analysis(format!(
            "unknown binding `{}` in reference{}",
            head.name,
            at(head)
        )));
    };
    match &binding.kind {
        BindingKind::Table(_) | BindingKind::Vertexes(_) | BindingKind::Edges(_) => {
            if parts.len() != 2 || parts[1].index.is_some() {
                return Err(Error::analysis(format!(
                    "invalid column reference on binding `{}`{}",
                    head.name,
                    at(head)
                )));
            }
            let col = &parts[1];
            match binding.schema.index_of(&col.name.to_ascii_lowercase()) {
                Some(i) => Ok(Some(binding.schema.column(i).data_type)),
                None => Err(Error::analysis(format!(
                    "unknown column `{}` on binding `{}`{}",
                    col.name,
                    head.name,
                    at(col)
                ))),
            }
        }
        BindingKind::Paths(graph) => {
            let meta = ns.graphs.get(graph).ok_or_else(|| {
                Error::analysis(format!("unknown graph view `{graph}`"))
            })?;
            path_ref_type(meta, parts)
        }
    }
}

/// Type a `PS.<property>` reference through the graph view.
///
/// Ranged forms (`PS.Edges[0..*].attr`) resolve to the *element* type —
/// the compiler decides where a range is structurally legal; this pass
/// guarantees the attribute itself exists on the view so a quantified
/// predicate can't fail attribute resolution mid-traversal.
fn path_ref_type(meta: &GraphMeta, parts: &[RefPart]) -> Result<Ty> {
    let seg = &parts[1];
    let seg_name = seg.name.to_ascii_lowercase();
    match seg_name.as_str() {
        "length" => Ok(Some(DataType::Integer)),
        "pathstring" => Ok(Some(DataType::Varchar)),
        "cost" | "totalcost" => Ok(Some(DataType::Double)),
        "startvertexid" | "endvertexid" => Ok(Some(DataType::Integer)),
        "startvertex" | "endvertex" => {
            if parts.len() == 2 {
                return Ok(Some(DataType::Integer));
            }
            if parts.len() != 3 || parts[2].index.is_some() {
                return Err(Error::analysis(format!(
                    "expected `.attribute` after StartVertex/EndVertex{}",
                    at(seg)
                )));
            }
            let attr = &parts[2];
            vertex_attr_ty(meta, &attr.name.to_ascii_lowercase())
                .map(Some)
                .ok_or_else(|| no_vertex_attr(meta, attr))
        }
        "edges" | "vertexes" | "vertices" => {
            let is_edges = seg_name == "edges";
            if parts.len() == 2 {
                // `PS.Edges[i]` (element id) or a bare/ranged element list
                // whose structural legality the compiler decides.
                return Ok(Some(DataType::Integer));
            }
            if parts.len() != 3 || parts[2].index.is_some() {
                return Err(Error::analysis(format!(
                    "invalid path element reference on `{}`{}",
                    parts[0].name,
                    at(seg)
                )));
            }
            let attr = &parts[2];
            let lower = attr.name.to_ascii_lowercase();
            let ty = if is_edges {
                edge_attr_ty(meta, &lower).ok_or_else(|| no_edge_attr(meta, attr))?
            } else {
                vertex_attr_ty(meta, &lower).ok_or_else(|| no_vertex_attr(meta, attr))?
            };
            Ok(Some(ty))
        }
        _ => Err(Error::analysis(format!(
            "unknown path property `{}` on `{}`{}",
            seg.name,
            parts[0].name,
            at(seg)
        ))),
    }
}

/// Vertex attribute type through the view: the synthesized `id` / `fanin`
/// / `fanout` columns are INTEGER; everything else must be an exposed
/// attribute backed by a live base-table column (tuple-pointer
/// provenance).
fn vertex_attr_ty(meta: &GraphMeta, attr: &str) -> Option<DataType> {
    match attr {
        "id" | "fanin" | "fanout" => Some(DataType::Integer),
        _ => meta
            .def
            .vertex_attr_col(attr)
            .map(|c| meta.vertex_schema.column(c).data_type),
    }
}

/// Edge attribute type through the view: `id` plus the per-hop
/// `startvertex` / `endvertex` endpoints are INTEGER; everything else
/// resolves through the exposed edge attributes.
fn edge_attr_ty(meta: &GraphMeta, attr: &str) -> Option<DataType> {
    match attr {
        "id" | "startvertex" | "endvertex" => Some(DataType::Integer),
        _ => meta
            .def
            .edge_attr_col(attr)
            .map(|c| meta.edge_schema.column(c).data_type),
    }
}

fn no_vertex_attr(meta: &GraphMeta, part: &RefPart) -> Error {
    Error::analysis(format!(
        "graph view `{}` has no vertex attribute `{}`{}",
        meta.def.name,
        part.name,
        at(part)
    ))
}

fn no_edge_attr(meta: &GraphMeta, part: &RefPart) -> Error {
    Error::analysis(format!(
        "graph view `{}` has no edge attribute `{}`{}",
        meta.def.name,
        part.name,
        at(part)
    ))
}

// ---------------------------------------------------------------------------
// Physical-expression typing
// ---------------------------------------------------------------------------

/// Static type of a compiled expression, `None` where only the runtime
/// knows (parameters, NULL literals, and arithmetic over them). Unlike
/// `PhysExpr::static_type` (which must produce a concrete placeholder for
/// schema building), this is honest about unknowns — the contract shim
/// only asserts columns whose type is statically certain.
pub fn phys_type(e: &PhysExpr) -> Ty {
    match e {
        PhysExpr::Literal(v) => value_type(v),
        PhysExpr::Param { .. } => None,
        PhysExpr::Column { ty, .. }
        | PhysExpr::PathProp { ty, .. }
        | PhysExpr::PathAgg { ty, .. } => Some(*ty),
        PhysExpr::Not(_)
        | PhysExpr::And(..)
        | PhysExpr::Or(..)
        | PhysExpr::Cmp { .. }
        | PhysExpr::InList { .. }
        | PhysExpr::Between { .. }
        | PhysExpr::Quant { .. } => Some(DataType::Boolean),
        PhysExpr::Neg(inner) => phys_type(inner),
        PhysExpr::Arith { left, right, .. } => match (phys_type(left), phys_type(right)) {
            (Some(DataType::Integer), Some(DataType::Integer)) => Some(DataType::Integer),
            (None, _) | (_, None) => None,
            _ => Some(DataType::Double),
        },
    }
}

// ---------------------------------------------------------------------------
// Plan verification (runs on every planned SELECT before execution)
// ---------------------------------------------------------------------------

/// Re-derive and verify every node's output schema bottom-up, and check
/// the graph-operator invariants the physical traversal relies on. A
/// failure here is a planner bug surfacing at plan time instead of a
/// corrupt execution.
pub fn verify_plan(
    plan: &PlanNode,
    graphs: &HashMap<String, GraphMeta>,
    tables: &HashMap<String, Arc<Schema>>,
) -> Result<()> {
    match plan {
        PlanNode::TableScan { table, schema, .. } => {
            if let Some(cat) = tables.get(table) {
                expect_width(plan, schema.len(), cat.len())?;
            }
            Ok(())
        }
        PlanNode::IndexLookup { table, schema, column, .. } => {
            if let Some(cat) = tables.get(table) {
                expect_width(plan, schema.len(), cat.len())?;
            }
            if *column >= schema.len() {
                return Err(plan_bug(plan, "index column out of range"));
            }
            Ok(())
        }
        PlanNode::VertexScan { graph, .. } | PlanNode::EdgeScan { graph, .. } => {
            require_graph(graphs, graph).map(|_| ())
        }
        PlanNode::PathScan { config, schema } => {
            if schema.len() != 1 || schema.column(0).data_type != DataType::Path {
                return Err(plan_bug(plan, "path scan must emit exactly one PATH column"));
            }
            check_config(plan, config, graphs)
        }
        PlanNode::PathJoin { outer, config, schema } => {
            verify_plan(outer, graphs, tables)?;
            expect_width(plan, schema.len(), outer.schema().len() + 1)?;
            if schema.column(schema.len() - 1).data_type != DataType::Path {
                return Err(plan_bug(plan, "path join must append a PATH column"));
            }
            check_config(plan, config, graphs)
        }
        PlanNode::Filter { input, schema, .. }
        | PlanNode::Sort { input, schema, .. }
        | PlanNode::Limit { input, schema, .. }
        | PlanNode::Distinct { input, schema } => {
            verify_plan(input, graphs, tables)?;
            expect_width(plan, schema.len(), input.schema().len())
        }
        PlanNode::NestedLoopJoin { left, right, schema, .. } => {
            verify_plan(left, graphs, tables)?;
            verify_plan(right, graphs, tables)?;
            expect_width(plan, schema.len(), left.schema().len() + right.schema().len())
        }
        PlanNode::IndexJoin { outer, table, column, schema, .. } => {
            verify_plan(outer, graphs, tables)?;
            if let Some(cat) = tables.get(table) {
                expect_width(plan, schema.len(), outer.schema().len() + cat.len())?;
                if *column >= cat.len() {
                    return Err(plan_bug(plan, "index column out of range"));
                }
            }
            Ok(())
        }
        PlanNode::Project { input, exprs, schema } => {
            verify_plan(input, graphs, tables)?;
            expect_width(plan, schema.len(), exprs.len())?;
            for (i, e) in exprs.iter().enumerate() {
                if let Some(t) = phys_type(e) {
                    let declared = schema.column(i).data_type;
                    if t != declared {
                        return Err(plan_bug(
                            plan,
                            &format!(
                                "column {i} (`{}`) declared {declared} but computes {t}",
                                schema.column(i).name
                            ),
                        ));
                    }
                }
            }
            Ok(())
        }
        PlanNode::Aggregate { input, group_exprs, aggs, schema } => {
            verify_plan(input, graphs, tables)?;
            expect_width(plan, schema.len(), group_exprs.len() + aggs.len())
        }
    }
}

fn expect_width(plan: &PlanNode, declared: usize, derived: usize) -> Result<()> {
    if declared != derived {
        return Err(plan_bug(
            plan,
            &format!("schema declares {declared} columns but the node produces {derived}"),
        ));
    }
    Ok(())
}

fn plan_bug(plan: &PlanNode, detail: &str) -> Error {
    Error::plan(format!(
        "plan verification failed at {}: {detail}",
        plan.node_label()
    ))
}

fn require_graph<'a>(
    graphs: &'a HashMap<String, GraphMeta>,
    name: &str,
) -> Result<&'a GraphMeta> {
    graphs
        .get(name)
        .ok_or_else(|| Error::plan(format!("plan references unknown graph view `{name}`")))
}

/// Graph-operator invariants for a path scan / path join configuration.
///
/// An empty traversal window (`min_len > max_len`) is deliberately *not*
/// an error: `PS.Length = 5 AND PS.Length = 2` is a legal query whose
/// answer is zero rows.
fn check_config(
    plan: &PlanNode,
    config: &PathScanConfig,
    graphs: &HashMap<String, GraphMeta>,
) -> Result<()> {
    let meta = require_graph(graphs, &config.graph)?;

    if let ScanMode::ShortestPath { cost_attr } = &config.mode {
        if meta.def.edge_attr_col(&cost_attr.to_ascii_lowercase()).is_none() {
            return Err(plan_bug(
                plan,
                &format!(
                    "SHORTESTPATH cost attribute `{cost_attr}` does not resolve on graph view `{}`",
                    config.graph
                ),
            ));
        }
        if config.end.is_none() {
            return Err(Error::plan("SHORTESTPATH scan without end anchor"));
        }
        if matches!(config.start, StartSource::AllVertexes) {
            return Err(Error::plan("SHORTESTPATH scan without start anchor"));
        }
    }
    if config.reachability && config.end.is_none() {
        return Err(Error::plan("reachability scan without end anchor"));
    }

    for (label, anchor) in [
        ("start", start_expr(&config.start)),
        ("end", config.end.as_ref()),
    ] {
        if let Some(e) = anchor {
            let t = phys_type(e);
            if !is_numeric(t) {
                return Err(Error::analysis(format!(
                    "path {label} anchor must be a numeric vertex id, got {}",
                    show(t)
                )));
            }
        }
    }

    for p in config.edge_preds.iter().chain(&config.vertex_preds) {
        check_pushed_attr(plan, meta, &config.graph, p)?;
    }
    for p in &config.agg_preds {
        check_agg_attr(plan, meta, &config.graph, p)?;
    }
    Ok(())
}

fn start_expr(start: &StartSource) -> Option<&PhysExpr> {
    match start {
        StartSource::AllVertexes => None,
        StartSource::Constant(e) | StartSource::Probe(e) => Some(e),
    }
}

/// A pushed traversal predicate may only reference attributes the scan
/// can materialize per hop: the synthesized element ids / degrees, or an
/// exposed view attribute (which the executor dereferences through the
/// element's tuple pointer).
fn check_pushed_attr(
    plan: &PlanNode,
    meta: &GraphMeta,
    graph: &str,
    pred: &PushedPred,
) -> Result<()> {
    use crate::expr::PathTarget;
    let ok = match pred.target {
        PathTarget::Edges => edge_attr_ty(meta, &pred.attr).is_some(),
        PathTarget::Vertexes => vertex_attr_ty(meta, &pred.attr).is_some(),
    };
    if !ok {
        return Err(plan_bug(
            plan,
            &format!(
                "pushed predicate references attribute `{}` which graph view `{graph}` does not materialize",
                pred.attr
            ),
        ));
    }
    Ok(())
}

fn check_agg_attr(
    plan: &PlanNode,
    meta: &GraphMeta,
    graph: &str,
    pred: &PushedAggPred,
) -> Result<()> {
    use crate::expr::PathTarget;
    let ok = match pred.target {
        PathTarget::Edges => edge_attr_ty(meta, &pred.attr).is_some(),
        PathTarget::Vertexes => vertex_attr_ty(meta, &pred.attr).is_some(),
    };
    if !ok {
        return Err(plan_bug(
            plan,
            &format!(
                "pushed aggregate bound references attribute `{}` which graph view `{graph}` does not materialize",
                pred.attr
            ),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Per-node contracts (consumed by the CheckedOp shim and typed EXPLAIN)
// ---------------------------------------------------------------------------

/// The statically inferred output contract of one plan node.
#[derive(Debug, Clone)]
pub struct NodeContract {
    pub schema: Arc<Schema>,
    /// Per column: whether the declared type is statically certain. False
    /// for parameter- and NULL-literal-derived columns, whose schema type
    /// is a placeholder.
    pub check: Vec<bool>,
    /// Per column: whether NULL may legally appear.
    pub nullable: Vec<bool>,
}

/// Contracts for every node in **pre-order** (node before children,
/// children in `explain` order) — the same order `exec::build` walks the
/// tree, so the shim can consume them with a cursor.
pub fn node_contracts(plan: &PlanNode) -> Vec<NodeContract> {
    let mut out = Vec::new();
    walk(plan, &mut out);
    out
}

fn walk(plan: &PlanNode, out: &mut Vec<NodeContract>) -> usize {
    let idx = out.len();
    let n = plan.schema().len();
    out.push(NodeContract {
        schema: plan.schema().clone(),
        check: Vec::new(),
        nullable: Vec::new(),
    });
    let (check, nullable) = match plan {
        PlanNode::TableScan { .. } | PlanNode::IndexLookup { .. } => {
            (vec![true; n], vec![true; n])
        }
        PlanNode::VertexScan { .. } => {
            // [id, attrs..., fanin, fanout] — synthesized columns are
            // never NULL, exposed attributes may be.
            let mut nul = vec![true; n];
            nul[0] = false;
            if n >= 3 {
                nul[n - 1] = false;
                nul[n - 2] = false;
            }
            (vec![true; n], nul)
        }
        PlanNode::EdgeScan { .. } => {
            // [id, from, to, attrs...]
            let mut nul = vec![true; n];
            for slot in nul.iter_mut().take(3) {
                *slot = false;
            }
            (vec![true; n], nul)
        }
        PlanNode::PathScan { .. } => (vec![true; n], vec![false; n]),
        PlanNode::PathJoin { outer, .. } => {
            let o = walk(outer, out);
            let mut check = out[o].check.clone();
            let mut nul = out[o].nullable.clone();
            check.push(true);
            nul.push(false);
            (check, nul)
        }
        PlanNode::NestedLoopJoin { left, right, .. } => {
            let l = walk(left, out);
            let r = walk(right, out);
            let check = [out[l].check.as_slice(), out[r].check.as_slice()].concat();
            let nul = [out[l].nullable.as_slice(), out[r].nullable.as_slice()].concat();
            (check, nul)
        }
        PlanNode::IndexJoin { outer, .. } => {
            let o = walk(outer, out);
            let inner = n.saturating_sub(out[o].check.len());
            let mut check = out[o].check.clone();
            let mut nul = out[o].nullable.clone();
            check.extend(std::iter::repeat(true).take(inner));
            nul.extend(std::iter::repeat(true).take(inner));
            (check, nul)
        }
        PlanNode::Filter { input, .. }
        | PlanNode::Sort { input, .. }
        | PlanNode::Limit { input, .. }
        | PlanNode::Distinct { input, .. } => {
            let i = walk(input, out);
            (out[i].check.clone(), out[i].nullable.clone())
        }
        PlanNode::Project { input, exprs, .. } => {
            let i = walk(input, out);
            let (ic, inl) = (out[i].check.clone(), out[i].nullable.clone());
            let check = exprs.iter().map(|e| expr_checkable(e, &ic)).collect();
            let nul = exprs.iter().map(|e| expr_nullable(e, &inl)).collect();
            (check, nul)
        }
        PlanNode::Aggregate { input, group_exprs, aggs, .. } => {
            let i = walk(input, out);
            let (ic, inl) = (out[i].check.clone(), out[i].nullable.clone());
            let mut check: Vec<bool> =
                group_exprs.iter().map(|e| expr_checkable(e, &ic)).collect();
            let mut nul: Vec<bool> =
                group_exprs.iter().map(|e| expr_nullable(e, &inl)).collect();
            for AggSpec { func, arg } in aggs {
                match func {
                    AggFunc::Count => {
                        check.push(true);
                        nul.push(false);
                    }
                    _ => {
                        check.push(arg.as_ref().is_some_and(|e| expr_checkable(e, &ic)));
                        // SUM/AVG/MIN/MAX over an empty group are NULL.
                        nul.push(true);
                    }
                }
            }
            (check, nul)
        }
    };
    out[idx].check = check;
    out[idx].nullable = nullable;
    idx
}

/// Whether the expression's declared type is statically certain given
/// which input columns are.
fn expr_checkable(e: &PhysExpr, input: &[bool]) -> bool {
    match e {
        PhysExpr::Literal(v) => !v.is_null(),
        PhysExpr::Param { .. } => false,
        PhysExpr::Column { index, .. } => input.get(*index).copied().unwrap_or(false),
        PhysExpr::PathProp { .. } | PhysExpr::PathAgg { .. } => true,
        // Predicates are BOOLEAN no matter what feeds them.
        PhysExpr::Not(_)
        | PhysExpr::And(..)
        | PhysExpr::Or(..)
        | PhysExpr::Cmp { .. }
        | PhysExpr::InList { .. }
        | PhysExpr::Between { .. }
        | PhysExpr::Quant { .. } => true,
        PhysExpr::Neg(inner) => expr_checkable(inner, input),
        PhysExpr::Arith { left, right, .. } => {
            expr_checkable(left, input) && expr_checkable(right, input)
        }
    }
}

/// 3VL nullability: may evaluating this expression yield NULL, given
/// which input columns may be NULL?
fn expr_nullable(e: &PhysExpr, input: &[bool]) -> bool {
    match e {
        PhysExpr::Literal(v) => v.is_null(),
        PhysExpr::Param { .. } => true,
        PhysExpr::Column { index, .. } => input.get(*index).copied().unwrap_or(true),
        PhysExpr::PathProp { prop, .. } => match prop {
            // Always defined on any non-empty path.
            PathProp::Whole
            | PathProp::Length
            | PathProp::PathString
            | PathProp::Cost
            | PathProp::StartVertexId
            | PathProp::EndVertexId => false,
            // Attribute values come from base rows (may be NULL) and
            // positional element refs past the path's end are NULL.
            _ => true,
        },
        PhysExpr::PathAgg { func, .. } => !matches!(func, AggFunc::Count),
        // Kleene logic: NULL only escapes a connective if an operand can
        // be NULL; comparisons of non-NULL comparable values are defined.
        PhysExpr::Not(inner) => expr_nullable(inner, input),
        PhysExpr::And(a, b) | PhysExpr::Or(a, b) => {
            expr_nullable(a, input) || expr_nullable(b, input)
        }
        PhysExpr::Cmp { left, right, .. } => {
            expr_nullable(left, input) || expr_nullable(right, input)
        }
        PhysExpr::InList { expr, list, .. } => {
            expr_nullable(expr, input) || list.iter().any(|e| expr_nullable(e, input))
        }
        PhysExpr::Between { expr, low, high, .. } => {
            expr_nullable(expr, input)
                || expr_nullable(low, input)
                || expr_nullable(high, input)
        }
        // Quantified range tests always produce a definite boolean.
        PhysExpr::Quant { .. } => false,
        PhysExpr::Neg(inner) => expr_nullable(inner, input),
        PhysExpr::Arith { left, right, .. } => {
            expr_nullable(left, input) || expr_nullable(right, input)
        }
    }
}

// ---------------------------------------------------------------------------
// Typed EXPLAIN
// ---------------------------------------------------------------------------

/// Render one node's inferred schema: `(name TYPE, other TYPE?, ...)` —
/// `?` marks nullable columns, `*` columns whose type is a placeholder
/// (parameters / NULL literals).
pub fn render_contract(c: &NodeContract) -> String {
    let cols: Vec<String> = c
        .schema
        .columns()
        .iter()
        .enumerate()
        .map(|(i, col)| {
            format!(
                "{} {}{}{}",
                col.name,
                col.data_type,
                if c.nullable.get(i).copied().unwrap_or(true) { "?" } else { "" },
                if c.check.get(i).copied().unwrap_or(true) { "" } else { "*" },
            )
        })
        .collect();
    format!("({})", cols.join(", "))
}

/// `EXPLAIN` text with the statically inferred schema appended to every
/// node line, so plan-shape locks also lock types.
pub fn explain_typed(plan: &PlanNode) -> String {
    let contracts = node_contracts(plan);
    let mut out = String::new();
    let mut cursor = 0usize;
    explain_typed_into(plan, &contracts, &mut cursor, &mut out, 0);
    out
}

fn explain_typed_into(
    plan: &PlanNode,
    contracts: &[NodeContract],
    cursor: &mut usize,
    out: &mut String,
    depth: usize,
) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&plan.node_label());
    if let Some(c) = contracts.get(*cursor) {
        out.push_str(" :: ");
        out.push_str(&render_contract(c));
    }
    out.push('\n');
    *cursor += 1;
    match plan {
        PlanNode::TableScan { .. }
        | PlanNode::IndexLookup { .. }
        | PlanNode::VertexScan { .. }
        | PlanNode::EdgeScan { .. }
        | PlanNode::PathScan { .. } => {}
        PlanNode::PathJoin { outer, .. } | PlanNode::IndexJoin { outer, .. } => {
            explain_typed_into(outer, contracts, cursor, out, depth + 1);
        }
        PlanNode::NestedLoopJoin { left, right, .. } => {
            explain_typed_into(left, contracts, cursor, out, depth + 1);
            explain_typed_into(right, contracts, cursor, out, depth + 1);
        }
        PlanNode::Filter { input, .. }
        | PlanNode::Project { input, .. }
        | PlanNode::Aggregate { input, .. }
        | PlanNode::Sort { input, .. }
        | PlanNode::Limit { input, .. }
        | PlanNode::Distinct { input, .. } => {
            explain_typed_into(input, contracts, cursor, out, depth + 1);
        }
    }
}

// ---------------------------------------------------------------------------
// DML statement checks
// ---------------------------------------------------------------------------

/// Typecheck an INSERT's literal value rows against the target schema:
/// arity per row, and each statically certain value type must be
/// admissible in its destination column.
pub fn check_insert_values(
    schema: &Schema,
    positions: &[usize],
    rows: &[Vec<Expr>],
) -> Result<()> {
    let ns = empty_namespace();
    for row in rows {
        if row.len() != positions.len() {
            return Err(Error::analysis(format!(
                "INSERT expects {} values, got {}",
                positions.len(),
                row.len()
            )));
        }
        for (pos, e) in positions.iter().zip(row) {
            let t = infer(e, &ns)?;
            let col = schema.column(*pos);
            let ok = match t {
                None => true,
                Some(DataType::Integer) => {
                    matches!(col.data_type, DataType::Integer | DataType::Double)
                }
                Some(dt) => dt == col.data_type,
            };
            if !ok {
                return Err(Error::analysis(format!(
                    "cannot insert {} into column `{}` ({}){}",
                    show(t),
                    col.name,
                    col.data_type,
                    e.span_suffix()
                )));
            }
        }
    }
    Ok(())
}

/// Typecheck an UPDATE's assignments and WHERE clause against the table.
pub fn check_update(
    table: &str,
    schema: Arc<Schema>,
    assignments: &[(String, Expr)],
    selection: &Option<Expr>,
) -> Result<()> {
    let ns = table_namespace(table, schema.clone())?;
    for (col, e) in assignments {
        let pos = schema.resolve(col)?;
        let t = infer(e, &ns)?;
        let dest = schema.column(pos);
        let ok = match t {
            None => true,
            Some(DataType::Integer) => {
                matches!(dest.data_type, DataType::Integer | DataType::Double)
            }
            Some(dt) => dt == dest.data_type,
        };
        if !ok {
            return Err(Error::analysis(format!(
                "cannot assign {} to column `{}` ({}){}",
                show(t),
                dest.name,
                dest.data_type,
                e.span_suffix()
            )));
        }
    }
    if let Some(sel) = selection {
        expect_boolean(sel, &ns, "WHERE")?;
    }
    Ok(())
}

/// Typecheck a DELETE's WHERE clause against the table.
pub fn check_delete(table: &str, schema: Arc<Schema>, selection: &Option<Expr>) -> Result<()> {
    if let Some(sel) = selection {
        let ns = table_namespace(table, schema)?;
        expect_boolean(sel, &ns, "WHERE")?;
    }
    Ok(())
}

fn empty_namespace() -> Namespace {
    Namespace::new(Arc::new(HashMap::new()))
}

fn table_namespace(table: &str, schema: Arc<Schema>) -> Result<Namespace> {
    let mut ns = empty_namespace();
    ns.push(table, BindingKind::Table(table.to_string()), schema)?;
    Ok(ns)
}
