//! Execution environment: borrowed storage and topology state for one query.
//!
//! GRFusion executes queries serially (the H-Store single-partition model),
//! so a query takes read guards on every table and graph view it touches
//! once, up front, and operators work against plain references for the
//! whole execution. This module defines those borrowed views plus the
//! attribute-access helpers that dereference tuple pointers during path
//! evaluation (the O(1) topology→tuple hop of EDBT 2018 §3.2).

use std::collections::HashMap;

use grfusion_common::{Error, PathData, Result, Value};
use grfusion_graph::{GraphTopology, VertexSlot};
use grfusion_storage::Table;

use crate::graph_view::GraphViewDef;

/// Lossless `usize → i64` degree conversion. Topology degrees are bounded
/// by live row counts, so the fallible branch is unreachable in practice;
/// clamping (instead of `as`, which would wrap on a 64-bit count with the
/// high bit set) keeps the conversion total without a panic path.
#[inline]
pub fn degree_i64(n: usize) -> i64 {
    i64::try_from(n).unwrap_or(i64::MAX)
}

/// Borrowed view of one graph view during query execution.
pub struct GraphEnv<'e> {
    pub def: &'e GraphViewDef,
    pub topo: &'e GraphTopology,
    pub vertex_table: &'e Table,
    pub edge_table: &'e Table,
}

impl<'e> GraphEnv<'e> {
    /// Value of a vertex attribute by exposed name. Special properties:
    /// `id`, `fanin`, `fanout` (§5.2).
    pub fn vertex_attr(&self, slot: VertexSlot, attr: &str) -> Result<Value> {
        if attr.eq_ignore_ascii_case("id") {
            return Ok(Value::Integer(self.topo.vertex_id(slot)));
        }
        if attr.eq_ignore_ascii_case("fanin") {
            return Ok(Value::Integer(degree_i64(self.topo.fan_in(slot))));
        }
        if attr.eq_ignore_ascii_case("fanout") {
            return Ok(Value::Integer(degree_i64(self.topo.fan_out(slot))));
        }
        let col = self.def.vertex_attr_col(attr).ok_or_else(|| {
            Error::analysis(format!(
                "graph view `{}` has no vertex attribute `{attr}`",
                self.def.name
            ))
        })?;
        self.vertex_table
            .get_value(self.topo.vertex_tuple(slot), col)
            .cloned()
            .ok_or_else(|| Error::execution("dangling vertex tuple pointer"))
    }

    /// Value of an edge attribute by exposed name (`id` is special; the
    /// direction-sensitive `StartVertex`/`EndVertex` are resolved at the
    /// path level because an undirected edge has no intrinsic direction).
    pub fn edge_attr(&self, slot: grfusion_graph::EdgeSlot, attr: &str) -> Result<Value> {
        if attr.eq_ignore_ascii_case("id") {
            return Ok(Value::Integer(self.topo.edge_id(slot)));
        }
        let col = self.def.edge_attr_col(attr).ok_or_else(|| {
            Error::analysis(format!(
                "graph view `{}` has no edge attribute `{attr}`",
                self.def.name
            ))
        })?;
        self.edge_table
            .get_value(self.topo.edge_tuple(slot), col)
            .cloned()
            .ok_or_else(|| Error::execution("dangling edge tuple pointer"))
    }

    /// Attribute of the edge at path position `pos`, with
    /// traversal-direction semantics for `StartVertex`/`EndVertex`: the
    /// start of hop `i` is `path.vertexes[i]` and its end is
    /// `path.vertexes[i+1]` (this is what makes Listing 4's triangle
    /// predicate `P.Edges[2].EndVertex = P.Edges[0].StartVertex` work on
    /// undirected graphs).
    pub fn path_edge_attr(&self, path: &PathData, pos: usize, attr: &str) -> Result<Value> {
        if pos >= path.edges.len() {
            return Ok(Value::Null);
        }
        if attr.eq_ignore_ascii_case("startvertex") {
            return Ok(Value::Integer(path.vertexes[pos]));
        }
        if attr.eq_ignore_ascii_case("endvertex") {
            return Ok(Value::Integer(path.vertexes[pos + 1]));
        }
        let slot = self.topo.edge_slot(path.edges[pos])?;
        self.edge_attr(slot, attr)
    }

    /// Attribute of the vertex at path position `pos` (position 0 is the
    /// start vertex).
    pub fn path_vertex_attr(&self, path: &PathData, pos: usize, attr: &str) -> Result<Value> {
        if pos >= path.vertexes.len() {
            return Ok(Value::Null);
        }
        let slot = self.topo.vertex_slot(path.vertexes[pos])?;
        self.vertex_attr(slot, attr)
    }
}

/// All borrowed state for one query execution.
pub struct QueryEnv<'e> {
    /// Lowercase table name → table.
    pub tables: HashMap<String, &'e Table>,
    /// Lowercase graph-view name → graph environment.
    pub graphs: HashMap<String, GraphEnv<'e>>,
    /// Execution limits carried into operators.
    pub limits: crate::config::ExecLimits,
    /// Intra-query parallelism knobs for graph operators.
    pub parallel: crate::config::ParallelConfig,
    /// Bound parameter values for prepared statements (empty otherwise).
    pub params: Vec<grfusion_common::Value>,
    /// Per-query resource governor (deadline / cancellation / memory
    /// accountant / fault plan). Defaults to unlimited.
    pub gov: crate::governor::ExecContext,
    /// Batch-at-a-time execution policy for the relational spine.
    pub batch: crate::config::BatchConfig,
}

impl<'e> QueryEnv<'e> {
    pub fn table(&self, name: &str) -> Result<&'e Table> {
        self.tables
            .get(name)
            .copied()
            .ok_or_else(|| Error::execution(format!("table `{name}` not bound in query env")))
    }

    pub fn graph(&self, name: &str) -> Result<&GraphEnv<'e>> {
        self.graphs
            .get(name)
            .ok_or_else(|| Error::execution(format!("graph view `{name}` not bound in query env")))
    }

    /// Resolve the graph env a path value belongs to.
    pub fn graph_of_path(&self, path: &PathData) -> Result<&GraphEnv<'e>> {
        self.graph(&path.graph_view)
    }
}
